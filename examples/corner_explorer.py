#!/usr/bin/env python
"""Corner explorer: V/T delay scaling, ITD, and SDF emission.

Sweeps the Table-I operating-condition grid for an FU, printing how the
static (STA) and average dynamic delays move with voltage and
temperature — including the inverse-temperature-dependence flip the
paper highlights in Fig. 3 — and emits per-corner SDF files like a
signoff flow would.

Run:  python examples/corner_explorer.py
"""

import tempfile
from pathlib import Path

from repro.flow import CampaignJob, CampaignRunner, implement
from repro.timing import (
    DEFAULT_SCALING,
    OperatingCondition,
    temperature_points,
)
from repro.workloads import random_stream


def main() -> None:
    voltages = (0.81, 0.85, 0.90, 0.95, 1.00)
    temps = temperature_points()
    conditions = [OperatingCondition(v, t) for v in voltages for t in temps]

    print("== implement INT_ADD and sign off all corners ==")
    design = implement("int_add", conditions)
    stream = random_stream(600, seed=1)
    trace = CampaignRunner().run(
        [CampaignJob(design.fu, stream, conditions)])[0]

    print(f"\nITD crossover voltage at 50C: "
          f"{DEFAULT_SCALING.itd_crossover_voltage(50.0):.3f} V\n")

    header = "V \\ T   " + "".join(f"{t:>10.0f}C" for t in temps)
    print("static critical-path delay (ps):")
    print(header)
    for v in voltages:
        row = f"{v:.2f}   "
        for t in temps:
            row += f"{design.static_delay(OperatingCondition(v, t)):>11.0f}"
        print(row)

    print("\naverage dynamic delay (ps) for a random workload:")
    print(header)
    index = {c: i for i, c in enumerate(conditions)}
    means = trace.average_delay()
    for v in voltages:
        row = f"{v:.2f}   "
        for t in temps:
            row += f"{means[index[OperatingCondition(v, t)]]:>11.0f}"
        print(row)

    print("\nNote the flip: at 0.81 V the 100C column is FASTER than the "
          "0C column\n(inverse temperature dependence); at 1.00 V it is "
          "slower.")

    with tempfile.TemporaryDirectory() as tmp:
        paths = design.emit_sdf(tmp, conditions[:3])
        print(f"\nemitted {len(paths)} SDF files, e.g.:")
        print(Path(paths[0]).read_text().splitlines()[0:8])


if __name__ == "__main__":
    main()
