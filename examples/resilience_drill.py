#!/usr/bin/env python
"""Resilience drill for the serving layer: wedge it, crash it, keep serving.

Starts ``repro serve --workers 2`` as a real CLI process with a fault
plan armed over the cluster workers::

    REPRO_FAULT_PLAN=cluster.worker.batch:hang:1,
                     cluster.worker.batch:exit:2,
                     cluster.worker.batch:exit:3

so under concurrent client load one worker slot first *wedges*
mid-batch (alive but silent — only the watchdog can see it) and then
hard-crashes twice more, tripping the crash-loop quarantine.  The
drill asserts the failure chain the serving layer promises:

- zero lost or hung requests: every request gets a real answer,
  bit-exact with a fresh single-process engine over the same registry;
- the watchdog killed the wedged worker (``watchdog_kills`` in
  ``/stats``) and the batch was reissued, not dropped;
- the crash-looping slot was quarantined (``quarantines``,
  ``quarantined_slots``) while the survivor kept serving;
- ``/health`` degrades to 503 with ``"status": "degraded"`` so a load
  balancer can eject the instance;
- SIGTERM still drains cleanly (exit code 0) in the degraded state.

CI runs this as the resilience step::

    PYTHONPATH=src python examples/resilience_drill.py

Exit status is non-zero if any promise is broken.
"""

import os
import signal
import socket
import subprocess
import sys
import tempfile
import threading
import time
import urllib.error
import urllib.request
from pathlib import Path

import repro
from repro.circuits import build_functional_unit
from repro.core import TEVoT, build_training_set
from repro.flow import CampaignJob, CampaignRunner
from repro.serve import (
    ModelRegistry,
    PredictionEngine,
    PredictRequest,
    ServeClient,
)
from repro.timing import OperatingCondition
from repro.workloads import random_stream

SRC = str(Path(next(iter(repro.__path__))).resolve().parent)
COND = OperatingCondition(0.9, 25.0)

N_THREADS = 4
CHUNK = 8
CHUNKS_PER_THREAD = 4

FAULT_PLAN = ",".join([
    "cluster.worker.batch:hang:1",   # first batch receipt: wedge
    "cluster.worker.batch:exit:2",   # then two hard crashes ->
    "cluster.worker.batch:exit:3",   # crash-loop quarantine
])


def publish_model(root: Path) -> Path:
    fu = build_functional_unit("int_add", width=8)
    stream = random_stream(200, operand_width=8, seed=3)
    stream.name = "resilience_drill"
    trace = CampaignRunner(use_cache=False).run(
        [CampaignJob(fu, stream, [COND])])[0]
    model = TEVoT(operand_width=8)
    X, y = build_training_set(stream, [COND], trace.delays,
                              spec=model.spec)
    model.fit(X, y)
    registry_root = root / "registry"
    ModelRegistry(registry_root).publish(
        model, fu=fu, conditions=[COND], train_stream=stream)
    return registry_root


def free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def wait_healthy(host: str, port: int, timeout_s: float = 30.0) -> None:
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        try:
            payload = ServeClient(host, port, retries=0,
                                  timeout=2.0).health()
            if payload.get("status") == "healthy":
                return
        except Exception:
            pass
        time.sleep(0.2)
    raise RuntimeError("server never became healthy")


def drive_load(host: str, port: int):
    """Concurrent clients, one operand stream per thread.  Returns
    ``{thread: [prediction dicts in send order]}`` or raises."""
    results = {}
    errors = []

    n_total = CHUNK * CHUNKS_PER_THREAD

    def worker(t):
        stream = random_stream(n_total, operand_width=8, seed=100 + t)
        client = ServeClient(host, port, timeout=30.0, retries=2)
        got = []
        try:
            for lo in range(0, n_total, CHUNK):
                got.extend(client.predict_many([
                    {"fu": "int_add", "a": int(stream.a[i]),
                     "b": int(stream.b[i]), "voltage": COND.voltage,
                     "temperature": COND.temperature,
                     "stream_id": f"drill-{t}"}
                    for i in range(lo, lo + CHUNK)]))
            results[t] = got
        except Exception as exc:
            errors.append((t, exc))

    threads = [threading.Thread(target=worker, args=(t,))
               for t in range(N_THREADS)]
    for th in threads:
        th.start()
    for th in threads:
        th.join()
    if errors:
        raise RuntimeError(f"requests were lost under chaos: {errors}")
    return results


def expected_results(registry_root: Path):
    """The same per-stream sequences on a fresh single-process engine."""
    engine = PredictionEngine(registry=ModelRegistry(registry_root),
                              sim_fallback=False)
    out = {}
    n_total = CHUNK * CHUNKS_PER_THREAD
    for t in range(N_THREADS):
        stream = random_stream(n_total, operand_width=8, seed=100 + t)
        reqs = [PredictRequest(
            fu="int_add", a=int(stream.a[i]), b=int(stream.b[i]),
            voltage=COND.voltage, temperature=COND.temperature,
            stream_id=f"drill-{t}") for i in range(n_total)]
        out[t] = [p.delay_ps for p in engine.predict_batch(reqs)]
    return out


def main() -> int:
    tmp = Path(tempfile.mkdtemp(prefix="resilience-drill-"))
    print(f"[drill] workspace {tmp}")
    registry_root = publish_model(tmp)
    port = free_port()

    env = dict(os.environ, PYTHONPATH=SRC)
    env["REPRO_FAULT_PLAN"] = FAULT_PLAN
    env["REPRO_FAULT_STATE"] = str(tmp / "fault-state")  # fire once each
    env["REPRO_FAULT_HANG_S"] = "60"          # far past the watchdog
    env["REPRO_SERVE_HANG_TIMEOUT_S"] = "1.0"  # watchdog bound
    env["REPRO_CLUSTER_QUARANTINE_RESPAWNS"] = "3"
    env["REPRO_CLUSTER_QUARANTINE_WINDOW_S"] = "60"

    # log to a file, not a pipe: a wedged worker outlives a killed
    # front end and would hold a pipe open forever
    server_log = tmp / "server.log"
    log_fh = open(server_log, "w")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve",
         "--registry", str(registry_root), "--port", str(port),
         "--workers", "2"],
        env=env, stdout=log_fh, stderr=subprocess.STDOUT, text=True)
    try:
        wait_healthy("127.0.0.1", port)
        print("[drill] cluster up, driving concurrent load through "
              "hang + crash-loop faults ...")
        served = drive_load("127.0.0.1", port)

        n = sum(len(v) for v in served.values())
        assert n == N_THREADS * CHUNK * CHUNKS_PER_THREAD, \
            f"lost requests: {n}"
        assert all(p["ok"] for got in served.values() for p in got), \
            "a request came back failed"
        expected = expected_results(registry_root)
        for t, got in served.items():
            assert [p["delay_ps"] for p in got] == expected[t], \
                f"stream drill-{t} diverged from the offline engine"
        print(f"[drill] {n} requests answered bit-exact through the chaos")

        client = ServeClient("127.0.0.1", port, timeout=10.0)
        stats = client.stats()["engine"]
        assert stats["watchdog_kills"] >= 1, stats
        assert stats["quarantines"] == 1, stats
        assert len(stats["quarantined_slots"]) == 1, stats
        assert stats["respawns"] >= 2, stats
        print(f"[drill] stats: watchdog_kills={stats['watchdog_kills']} "
              f"respawns={stats['respawns']} reissues={stats['reissues']} "
              f"quarantined={stats['quarantined_slots']}")

        health = client.health()
        assert health["status"] == "degraded", health
        try:
            urllib.request.urlopen(
                f"http://127.0.0.1:{port}/health", timeout=10)
            raise AssertionError("/health answered 200 while degraded")
        except urllib.error.HTTPError as err:
            assert err.code == 503, err.code
        print("[drill] /health degraded (503) with the survivor serving")

        proc.send_signal(signal.SIGTERM)
        code = proc.wait(timeout=30)
        assert code == 0, f"SIGTERM drain exited {code}"
        print("[drill] SIGTERM drained cleanly; resilience drill OK")
        return 0
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=10)
        log_fh.close()
        out = server_log.read_text()
        if out:
            print("[drill] server log:")
            print(out)


if __name__ == "__main__":
    sys.exit(main())
