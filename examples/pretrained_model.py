#!/usr/bin/env python
"""Pre-trained model round-trip (the paper's "we will open-source the
pre-trained models" promise).

Trains TEVoT for the FP adder, saves it to disk, reloads it in a fresh
object, and shows a downstream user consuming it with zero knowledge of
the circuit: estimate timing error rates across the voltage range for a
proposed overclock, directly from the pickled model.

Run:  python examples/pretrained_model.py
"""

import tempfile
from pathlib import Path

from repro.core import TEVoT, build_training_set
from repro.flow import CampaignJob, CampaignRunner, error_free_clocks
from repro.circuits import build_functional_unit
from repro.timing import OperatingCondition, sped_up_clock
from repro.workloads import stream_for_unit


def main() -> None:
    conditions = [OperatingCondition(v, 25.0)
                  for v in (0.81, 0.85, 0.90, 0.95, 1.00)]
    fu = build_functional_unit("fp_add")

    print("== provider side: characterize, train, publish ==")
    train = stream_for_unit("fp_add", 3000, seed=0)
    train.name = "pretrain"
    trace = CampaignRunner().run(
        [CampaignJob(fu, train, conditions)])[0]
    clocks = error_free_clocks(trace)
    X, y = build_training_set(train, conditions, trace.delays)
    model = TEVoT().fit(X, y)

    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "tevot_fp_add.pkl"
        model.save(path)
        print(f"published {path.name} "
              f"({path.stat().st_size / 1024:.0f} KiB)")

        print("\n== consumer side: load and explore, no circuit access ==")
        loaded = TEVoT.load(path)
        workload = stream_for_unit("fp_add", 800, seed=9)
        workload.name = "user_workload"
        print("estimated TER for a +10% overclock of this workload:")
        for condition in conditions:
            tclk = sped_up_clock(clocks[condition], 0.10)
            ter = loaded.timing_error_rate(workload, condition, tclk)
            bar = "#" * int(ter * 200)
            print(f"  {condition.label}: {ter*100:6.2f}%  {bar}")

    print("\nA software developer can now pick the lowest voltage whose "
          "estimated TER\nmeets their application's resilience budget — "
          "without running any simulation.")


if __name__ == "__main__":
    main()
