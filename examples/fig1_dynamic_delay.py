#!/usr/bin/env python
"""Fig. 1 walk-through: why dynamic delay depends on the input pair.

Builds the paper's motivating circuit (two input buffers of different
delay feeding an AND gate and an output buffer), drives the two input
transitions from the figure, and shows the event-driven simulator
reporting 2 ns for the first transition and 1.5 ns for the second —
then dumps and re-parses a VCD to show the paper's extraction path.

Run:  python examples/fig1_dynamic_delay.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro.circuits.builder import CircuitBuilder
from repro.sim.eventsim import EventDrivenSimulator
from repro.sim.vcd import delays_from_vcd, read_vcd


def build_fig1_circuit():
    b = CircuitBuilder(name="fig1")
    x = b.input_bit("x")
    y = b.input_bit("y")
    slow_x = b.buf(x)          # 1 ns buffer on x
    fast_y = b.buf(y)          # 0.5 ns buffer on y
    anded = b.and_(slow_x, fast_y)
    out = b.buf(anded)         # 1 ns output stage
    b.netlist.mark_output(out, "out")
    netlist = b.build()
    gate_delays = [1000.0, 500.0, 0.0, 1000.0]  # ps, insertion order
    return netlist, gate_delays


def main() -> None:
    netlist, gate_delays = build_fig1_circuit()
    sim = EventDrivenSimulator(netlist, gate_delays)

    stimulus = np.array([
        [0, 1],   # initial state: x=0, y=1
        [1, 1],   # (b) x rises: path through the 1 ns buffer -> 2 ns
        [1, 0],   # (c) y falls: path through the 0.5 ns buffer -> 1.5 ns
    ], dtype=np.uint8)

    clock = 4000  # ps, slow enough to be error-free
    with tempfile.TemporaryDirectory() as tmp:
        vcd_path = Path(tmp) / "fig1.vcd"
        result = sim.run_trace(stimulus, vcd_path=vcd_path,
                               clock_period=clock)
        print("event-driven dynamic delays:")
        print(f"  cycle 1 (x: 0->1): {result.delays[0]:.0f} ps "
              f"(paper: 2 ns)")
        print(f"  cycle 2 (y: 1->0): {result.delays[1]:.0f} ps "
              f"(paper: 1.5 ns)")

        vcd = read_vcd(vcd_path)
        extracted = delays_from_vcd(vcd, clock, n_cycles=2)
        print("\nre-extracted from the VCD dump (the paper's flow):")
        for t, d in enumerate(extracted):
            print(f"  cycle {t + 1}: {d:.0f} ps")

    print("\nSame circuit, same operating condition — the sensitized "
          "path (and hence the delay)\nis decided entirely by which "
          "input changed. This is the workload dependence TEVoT models.")


if __name__ == "__main__":
    main()
