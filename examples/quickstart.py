#!/usr/bin/env python
"""Quickstart: train TEVoT for one FU and predict timing errors.

Walks the full Fig.-2 pipeline at a small scale through the
declarative ``repro.api`` layer — the same specs ``repro --config``
runs from TOML files:

1. elaborate a 32-bit integer adder to a gate netlist (the "synthesis"
   step of the simulated ASIC flow),
2. characterize its dynamic delay over a few (V, T) corners with a
   ``CampaignSpec`` executed by a ``Workspace``,
3. train the TEVoT random-forest delay model from a ``TrainSpec``,
4. classify unseen cycles as timing correct / erroneous at an
   overclocked period and compare against simulation ground truth.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.api import CampaignSpec, CornerSpec, StreamSpec, TrainSpec, Workspace
from repro.core import prediction_accuracy
from repro.core.features import build_feature_matrix
from repro.flow import error_free_clocks, implement
from repro.timing import sped_up_clock


def main() -> None:
    corners = CornerSpec(voltages=(0.81, 0.90, 1.00),
                         temperatures=(0.0, 50.0, 100.0))
    conditions = corners.conditions()
    workspace = Workspace()  # default trace store, no registry

    print("== 1. simulated ASIC flow ==")
    design = implement("int_add", conditions)
    print(f"netlist: {design.netlist!r}")
    for cond in conditions[:3]:
        print(f"  static delay @ {cond.label}: "
              f"{design.static_delay(cond):.0f} ps")

    print("\n== 2. dynamic timing analysis (declarative campaign) ==")
    test_spec = CampaignSpec(fus=("int_add",), corners=corners,
                             stream=StreamSpec(cycles=1000, seed=1,
                                               name="test"))
    test_trace = workspace.characterize(test_spec).traces[0]

    print("\n== 3. train TEVoT from a TrainSpec ==")
    train_spec = TrainSpec(fu="int_add", corners=corners,
                           stream=StreamSpec(cycles=2000, seed=0,
                                             name="train"))
    print(f"spec fingerprint: {train_spec.fingerprint()} "
          f"(keys the artifact like any content hash)")
    trained = workspace.train(train_spec)
    model = trained.model
    clocks = error_free_clocks(trained.train_trace)
    cond = conditions[0]
    print(f"trained on {trained.n_rows} rows; "
          f"mean dynamic delay @ {cond.label}: "
          f"{trained.train_trace.delays[0].mean():.0f} ps "
          f"(static: {design.static_delay(cond):.0f} ps)")

    print("\n== 4. predict timing errors on unseen data ==")
    test_stream = test_spec.stream.build("int_add")
    for speedup in (0.05, 0.10, 0.15):
        accs = []
        for k, condition in enumerate(conditions):
            tclk = sped_up_clock(clocks[condition], speedup)
            truth = (test_trace.delays[k] > tclk).astype(int)
            features = build_feature_matrix(test_stream, condition,
                                            model.spec)
            pred = model.predict_errors(features, tclk)
            accs.append(prediction_accuracy(truth, pred))
        print(f"  +{speedup:.0%} clock speedup: "
              f"prediction accuracy {np.mean(accs)*100:.1f}%")

    path = "/tmp/tevot_int_add.pkl"
    model.save(path)
    print(f"\nmodel saved to {path}; reload with TEVoT.load(...)")
    print("the same flow runs from a config file: "
          "python -m repro train --config examples/run.toml")


if __name__ == "__main__":
    main()
