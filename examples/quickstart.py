#!/usr/bin/env python
"""Quickstart: train TEVoT for one FU and predict timing errors.

Walks the full Fig.-2 pipeline at a small scale:

1. elaborate a 32-bit integer adder to a gate netlist (the "synthesis"
   step of the simulated ASIC flow),
2. characterize its dynamic delay over a few (V, T) corners with the
   levelized DTA engine,
3. train the TEVoT random-forest delay model,
4. classify unseen cycles as timing correct / erroneous at an
   overclocked period and compare against simulation ground truth.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.core import TEVoT, build_training_set, prediction_accuracy
from repro.core.features import build_feature_matrix
from repro.flow import CampaignRunner, error_free_clocks, implement
from repro.timing import OperatingCondition, sped_up_clock
from repro.workloads import random_stream


def main() -> None:
    conditions = [OperatingCondition(v, t)
                  for v in (0.81, 0.90, 1.00) for t in (0.0, 50.0, 100.0)]

    print("== 1. simulated ASIC flow ==")
    design = implement("int_add", conditions)
    print(f"netlist: {design.netlist!r}")
    for cond in conditions[:3]:
        print(f"  static delay @ {cond.label}: "
              f"{design.static_delay(cond):.0f} ps")

    print("\n== 2. dynamic timing analysis ==")
    train = random_stream(2000, seed=0, name="train")
    test = random_stream(1000, seed=1, name="test")
    runner = CampaignRunner()
    train_trace = runner.characterize(design.fu, train, conditions)
    test_trace = runner.characterize(design.fu, test, conditions)
    clocks = error_free_clocks(train_trace)
    cond = conditions[0]
    print(f"mean dynamic delay @ {cond.label}: "
          f"{train_trace.delays[0].mean():.0f} ps "
          f"(static: {design.static_delay(cond):.0f} ps)")

    print("\n== 3. train TEVoT ==")
    X, y = build_training_set(train, conditions, train_trace.delays)
    model = TEVoT().fit(X, y)
    print(f"trained on {X.shape[0]} rows x {X.shape[1]} features")

    print("\n== 4. predict timing errors on unseen data ==")
    for speedup in (0.05, 0.10, 0.15):
        accs = []
        for k, condition in enumerate(conditions):
            tclk = sped_up_clock(clocks[condition], speedup)
            truth = (test_trace.delays[k] > tclk).astype(int)
            features = build_feature_matrix(test, condition, model.spec)
            pred = model.predict_errors(features, tclk)
            accs.append(prediction_accuracy(truth, pred))
        print(f"  +{speedup:.0%} clock speedup: "
              f"prediction accuracy {np.mean(accs)*100:.1f}%")

    path = "/tmp/tevot_int_add.pkl"
    model.save(path)
    print(f"\nmodel saved to {path}; reload with TEVoT.load(...)")


if __name__ == "__main__":
    main()
