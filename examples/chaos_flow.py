#!/usr/bin/env python
"""Chaos drill for the persistence layer: crash everywhere, recover.

For every registered persistence fault point, this driver runs the full
characterize -> publish -> record flow in a child process with
``REPRO_FAULT_PLAN=<site>:exit:<nth>`` armed, asserts the child really
died at the fault point (exit code 23), then reruns the same flow clean
and verifies every store reopened without error and converged:

- the trace store serves the campaign trace (cache hit or recovered),
- a checkpointed campaign killed mid-journal resumes its finished
  shards instead of re-simulating them,
- the model registry resolves the published model,
- the request log replays its sealed prefix and the rerun appends a
  complete session after it.

CI runs this as the chaos step::

    PYTHONPATH=src python examples/chaos_flow.py

Exit status is non-zero if any site fails to crash where told to or
fails to recover.
"""

import os
import subprocess
import sys
import tempfile
import warnings
from pathlib import Path

import repro
import repro.flow.tracestore  # noqa: F401 - registers fault sites
import repro.serve.registry  # noqa: F401
import repro.serve.requestlog  # noqa: F401
from repro.flow import TraceStore
from repro.serve import ModelRegistry, read_request_log
from repro.testing import faults

SRC = str(Path(next(iter(repro.__path__))).resolve().parent)

#: One full pipeline pass, run in a child so a fault can kill it.
FLOW = """
import sys
from pathlib import Path
from repro.circuits import build_functional_unit
from repro.core import TEVoT, build_training_set
from repro.flow import CampaignJob, CampaignRunner, TraceStore
from repro.serve import (ModelRegistry, PredictionEngine, PredictRequest,
                         RequestLog)
from repro.timing import OperatingCondition
from repro.workloads import random_stream

root = Path(sys.argv[1])
conds = [OperatingCondition(0.9, 25.0)]
fu = build_functional_unit("int_add", width=8)
stream = random_stream(200, operand_width=8, seed=3)
stream.name = "chaos_flow"

runner = CampaignRunner(store=TraceStore(root / "store"), shard_cycles=50)
trace = runner.run([CampaignJob(fu, stream, conds)])[0]
print(f"resumed_shards={runner.stats.resumed_shards}")

model = TEVoT(operand_width=8)
X, y = build_training_set(stream, conds, trace.delays, spec=model.spec)
model.fit(X, y)
registry = ModelRegistry(root / "registry")
registry.publish(model, fu=fu, conditions=conds, train_stream=stream)

engine = PredictionEngine(registry=registry, sim_fallback=False)
reqs = [PredictRequest(fu="int_add", a=i, b=i + 1, voltage=0.9,
                       temperature=25.0) for i in range(8)]
with RequestLog(root / "requests.jsonl") as log:
    log.append_batch(reqs[:4], engine.predict_batch(reqs[:4]))
    log.append_batch(reqs[4:], engine.predict_batch(reqs[4:]))
print("flow complete")
"""

#: Which hit of each site to kill at.  Later hits leave partial state
#: behind (journaled shards, a written artifact) so the rerun has real
#: recovery work to do, not just an empty directory.
KILL_AT = {
    "campaign.journal.replace": 3,  # two shards journaled, then killed
    "requestlog.append": 2,  # header sealed, killed mid first batch
}


def run_flow(root, plan=None):
    env = dict(os.environ, PYTHONPATH=SRC)
    env.pop(faults.PLAN_ENV, None)
    env.pop(faults.STATE_ENV, None)
    if plan is not None:
        env[faults.PLAN_ENV] = plan
    return subprocess.run([sys.executable, "-c", FLOW, str(root)],
                          env=env, capture_output=True, text=True)


def check_recovery(root, site, rerun_stdout):
    store = TraceStore(root / "store")
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)
        entries = store.entries()
        assert entries, f"{site}: trace store lost the campaign trace"
        model, record = ModelRegistry(root / "registry").resolve("int_add")
        assert model is not None, f"{site}: registry lost the model"
        records = list(read_request_log(root / "requests.jsonl"))
    batches = [r for r in records if r["kind"] == "batch"]
    assert len(batches) >= 2, \
        f"{site}: rerun did not record a complete session"
    assert not list((root / "store").glob("journal_*.json")), \
        f"{site}: campaign journal not cleared after completion"
    if site == "campaign.journal.replace":
        assert "resumed_shards=2" in rerun_stdout, \
            f"{site}: rerun re-simulated journaled shards:\n{rerun_stdout}"
    return record.model_id


def main():
    sites = sorted(faults.persistence_sites())
    assert sites, "no persistence fault points registered"
    print(f"chaos drill over {len(sites)} persistence fault point(s)")
    for site in sites:
        nth = KILL_AT.get(site, 1)
        with tempfile.TemporaryDirectory(prefix="chaos_flow_") as tmp:
            root = Path(tmp)
            crashed = run_flow(root, plan=f"{site}:exit:{nth}")
            assert crashed.returncode == faults.EXIT_CODE, (
                f"{site}: expected crash (exit {faults.EXIT_CODE}), got "
                f"{crashed.returncode}:\n{crashed.stderr}")
            rerun = run_flow(root)
            assert rerun.returncode == 0, \
                f"{site}: rerun after crash failed:\n{rerun.stderr}"
            model_id = check_recovery(root, site, rerun.stdout)
            print(f"  {site}:exit:{nth} -> crashed, recovered, "
                  f"serving {model_id}")
    print("chaos drill passed: every crash recovered")


if __name__ == "__main__":
    main()
