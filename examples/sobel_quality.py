#!/usr/bin/env python
"""Application quality under voltage overscaling (the Sec. V-D case
study).

Profiles a Sobel filter's FU operand streams, measures the real timing
error rates at an aggressive operating point via gate-level DTA, then
injects errors back into the filter (erroneous FU ops return random
values) and reports the output PSNR — the circuit-level-to-application-
level exposure the paper argues for.

Run:  python examples/sobel_quality.py
"""

import numpy as np

from repro.apps import (
    app_stream,
    image_corpus,
    psnr,
    run_filter,
    run_filter_with_errors,
)
from repro.circuits import build_functional_unit
from repro.flow import CampaignJob, CampaignRunner, error_free_clocks
from repro.timing import OperatingCondition, sped_up_clock
from repro.workloads import stream_for_unit


def ascii_render(image: np.ndarray, width: int = 40) -> str:
    """Tiny ASCII visualization of a grayscale image."""
    ramp = " .:-=+*#%@"
    step = max(1, image.shape[1] // width)
    lines = []
    for row in image[::step]:
        chars = [ramp[min(9, int(v) * 10 // 256)] for v in row[::step]]
        lines.append("".join(chars))
    return "\n".join(lines)


def main() -> None:
    condition = OperatingCondition(0.81, 0.0)
    images = image_corpus(3, size=24, seed=7)
    image = images[0]

    print("== profile the Sobel kernel's FU operand streams ==")
    streams = {fu: app_stream(fu, "sobel", images[:2])
               for fu in ("int_mul", "int_add")}
    for fu_name, stream in streams.items():
        print(f"  {fu_name}: {stream.n_cycles} profiled operations")

    print(f"\n== measure TERs at {condition.label} via gate-level DTA ==")
    ters = {}
    for fu_name, stream in streams.items():
        fu = build_functional_unit(fu_name)
        # error-free clock from a random characterization workload
        runner = CampaignRunner()
        random_trace = runner.run([CampaignJob(
            fu, stream_for_unit(fu_name, 1000, seed=3), [condition])])[0]
        clock = error_free_clocks(random_trace)[condition]
        tclk = sped_up_clock(clock, 0.15)  # 15 % overclock
        app_trace = runner.run(
            [CampaignJob(fu, stream, [condition])])[0]
        ters[fu_name] = float((app_trace.delays[0] > tclk).mean())
        print(f"  {fu_name}: TER = {ters[fu_name]*100:.2f}% "
              f"at tclk = {tclk:.0f} ps")

    print("\n== inject the errors back into the application ==")
    clean = run_filter("sobel", image)
    noisy = run_filter_with_errors("sobel", image, ters, seed=0)
    quality = psnr(clean, noisy)
    print(f"  output PSNR: {quality:.1f} dB "
          f"({'acceptable' if quality >= 30 else 'unacceptable'} "
          f"at the 30 dB threshold)")

    print("\nclean Sobel output:")
    print(ascii_render(clean))
    print("\nerror-injected Sobel output:")
    print(ascii_render(noisy))


if __name__ == "__main__":
    main()
