#!/usr/bin/env python
"""Remote workspace + push rollout, end to end across real processes.

The two-terminal story from the README, automated:

- terminal 1: ``repro store serve --root DIR`` — one process owns the
  TraceStore + ModelRegistry;
- terminal 2: ``Workspace("http://host:port")`` runs the whole
  characterize → train → publish flow over the wire, then a 2-worker
  ``repro serve`` cluster dials the same URL for its registry.

The drill asserts the subsystem's promises:

- trace cache keys and the published model key are byte-identical to
  the same flow against a local directory root;
- publishing v2 through the remote workspace reaches both cluster
  workers by *push* (event-feed subscription) — with zero
  ``POST /models/refresh`` calls — and predictions flip to v2,
  bit-exact with a fresh local engine over the service's own root;
- SIGTERM drains both processes cleanly (exit code 0);
- a restarted store service still serves every published model.

CI runs this as the remote-store smoke step::

    PYTHONPATH=src python examples/remote_flow.py

Exit status is non-zero if any promise is broken.
"""

import os
import signal
import socket
import subprocess
import sys
import tempfile
import time
from pathlib import Path

import repro
from repro.api import CampaignSpec, TrainSpec, Workspace
from repro.remote import RemoteModelRegistry
from repro.serve import PredictionEngine, PredictRequest, ServeClient
from repro.timing import OperatingCondition
from repro.workloads import random_stream

SRC = str(Path(next(iter(repro.__path__))).resolve().parent)
COND = OperatingCondition(0.9, 25.0)
CYCLES = 200


def free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def campaign_spec() -> CampaignSpec:
    spec = CampaignSpec(fus=["int_add"])
    return spec.replace(stream=spec.stream.replace(cycles=CYCLES))


def train_spec(seed: int) -> TrainSpec:
    spec = TrainSpec(fu="int_add", publish=True)
    return spec.replace(stream=spec.stream.replace(cycles=CYCLES,
                                                   seed=seed))


def spawn(args, log_path: Path, env=None) -> subprocess.Popen:
    log_fh = open(log_path, "w")
    return subprocess.Popen(
        [sys.executable, "-m", "repro", *args],
        env=env or dict(os.environ, PYTHONPATH=SRC),
        stdout=log_fh, stderr=subprocess.STDOUT, text=True)


def wait_for(predicate, what: str, timeout_s: float = 30.0) -> None:
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        try:
            if predicate():
                return
        except Exception:
            pass
        time.sleep(0.2)
    raise RuntimeError(f"timed out waiting for {what}")


def sigterm_and_reap(proc: subprocess.Popen, what: str) -> None:
    proc.send_signal(signal.SIGTERM)
    code = proc.wait(timeout=30)
    assert code == 0, f"{what} exited {code} on SIGTERM (want 0)"


def predictions(host: str, port: int, stream_id: str, n: int = 8):
    # engines chain per-stream operand history, so every probe uses a
    # fresh stream_id to stay comparable with a fresh local engine
    stream = random_stream(n, operand_width=8, seed=77)
    client = ServeClient(host, port)
    return client.predict_many([
        {"fu": "int_add", "a": int(stream.a[i]), "b": int(stream.b[i]),
         "voltage": COND.voltage, "temperature": COND.temperature,
         "stream_id": stream_id} for i in range(n)])


def local_reference(registry_root: Path, stream_id: str, n: int = 8):
    engine = PredictionEngine(registry=registry_root, sim_fallback=False)
    stream = random_stream(n, operand_width=8, seed=77)
    reqs = [PredictRequest(
        fu="int_add", a=int(stream.a[i]), b=int(stream.b[i]),
        voltage=COND.voltage, temperature=COND.temperature,
        stream_id=stream_id) for i in range(n)]
    return [p.delay_ps for p in engine.predict_batch(reqs)]


def main() -> int:
    tmp = Path(tempfile.mkdtemp(prefix="remote-flow-"))
    print(f"[remote] workspace {tmp}")
    store_root = tmp / "svc"
    store_port = free_port()
    url = f"http://127.0.0.1:{store_port}"

    store_proc = spawn(["store", "serve", "--root", str(store_root),
                        "--port", str(store_port)], tmp / "store.log")
    serve_proc = None
    try:
        wait_for(lambda: RemoteModelRegistry(
            url, retries=0, timeout=2.0).manifest_fingerprint(),
            "store service")
        print(f"[remote] store service up at {url}")

        # -- remote flow vs local flow: byte-identical identity -------
        local = Workspace(tmp / "local")
        local.characterize(campaign_spec())
        v1_local = local.train(train_spec(seed=0))

        remote = Workspace(url)
        remote.characterize(campaign_spec())
        v1 = remote.train(train_spec(seed=0))

        local_keys = sorted(local.store.entries())
        remote_keys = sorted(remote.store.entries())
        assert local_keys == remote_keys, \
            f"trace keys diverged: {local_keys} != {remote_keys}"
        assert v1.record.key == v1_local.record.key, "model keys diverged"
        assert v1.record.model_id == "int_add/tevot/v1"
        print(f"[remote] local and remote flows agree: "
              f"trace {remote_keys[0][:12]}…, model {v1.record.key}")

        # -- push rollout to a 2-worker cluster -----------------------
        serve_port = free_port()
        serve_proc = spawn(["serve", "--registry", url, "--workers", "2",
                            "--port", str(serve_port), "--no-fallback"],
                           tmp / "serve.log")
        client = ServeClient("127.0.0.1", serve_port)
        wait_for(lambda: client.health()["status"] == "healthy",
                 "serving cluster")
        got = predictions("127.0.0.1", serve_port, "probe-v1")
        assert all(p["model_id"] == "int_add/tevot/v1" for p in got)

        v2 = remote.train(train_spec(seed=5))  # publish v2 at the store
        assert v2.record.model_id == "int_add/tevot/v2"
        probe = iter(range(10_000))
        wait_for(lambda: all(
            p["model_id"] == "int_add/tevot/v2"
            for p in predictions("127.0.0.1", serve_port,
                                 f"probe-{next(probe)}")),
            "v2 push rollout")
        stats = client.stats()
        assert stats["refresh_calls"] == 0, \
            f"manual refresh polled {stats['refresh_calls']}x (want push)"
        push = stats["engine"]["push"]
        assert push["refreshes"] >= 1, f"no push refresh recorded: {push}"
        got = [p["delay_ps"]
               for p in predictions("127.0.0.1", serve_port, "final")]
        want = local_reference(store_root / "registry", "final")
        assert got == want, "cluster diverged from the local engine"
        print(f"[remote] v2 reached both workers by push "
              f"(refresh_calls=0, push refreshes={push['refreshes']}), "
              f"bit-exact with the local engine")

        # -- graceful drain + durability ------------------------------
        sigterm_and_reap(serve_proc, "repro serve")
        serve_proc = None
        sigterm_and_reap(store_proc, "repro store serve")
        print("[remote] both processes drained cleanly on SIGTERM")

        store_proc2 = spawn(["store", "serve", "--root", str(store_root),
                             "--port", str(store_port)], tmp / "store2.log")
        try:
            wait_for(lambda: len(RemoteModelRegistry(
                url, retries=0, timeout=2.0).list_models()) == 2,
                "restarted store service")
            print("[remote] restarted service still serves both models")
        finally:
            sigterm_and_reap(store_proc2, "restarted store serve")
        print("[remote] PASS")
        return 0
    finally:
        for proc in (serve_proc, store_proc):
            if proc is not None and proc.poll() is None:
                proc.kill()
                proc.wait()


if __name__ == "__main__":
    sys.exit(main())
