"""Simulation throughput: per-gate engines vs compiled kernels vs shards.

Offline characterization bounds everything downstream (training-set
generation, the speedup bench, every ablation), so this bench tracks
the perf trajectory of the simulation substrate from the compiled-
kernel PR on:

* **kernel table** — cycles/sec of the per-gate reference engines
  (the pre-PR ``levelized``/``bitpacked`` code paths, rebuilt per call
  exactly as the old backends did) against the compiled level-parallel
  backends, per FU and corner count, with a bit-identity check on
  every measured run.  Floor: the compiled engine must clear
  ``MIN_KERNEL_SPEEDUP`` over the per-gate bit-packed engine — the
  backend every characterization ran on before the compiled kernels —
  on the ``FLOOR_FU`` at one corner.
* **corner-scaling table** — the multi-corner trajectory this repo's
  characterization actually runs (every paper table simulates the
  full corner grid): compiled vs per-gate throughput at 1/3/9 corners
  on the ``FLOOR_FU``, with a second floor
  (``MIN_KERNEL_SPEEDUP_9C``) at the 9-corner point the corner-aware
  arrival kernels target.
* **settled-value table** — ``run_values`` throughput (the functional-
  verification pass), where bit-packed level-parallel evaluation wins
  by an order of magnitude.
* **sharding table** — cold and warm wall time of one huge
  single-stream campaign job across worker/shard-grid/pool
  configurations (persistent warm pool vs the legacy fork-per-batch
  executor; cycle shards, corner shards, and mixed), reporting the
  planner's chosen grid and per-shard cold/warm timings, and
  asserting byte-identical stitched delay matrices whatever the
  configuration.  Scaling is reported, not asserted: CI boxes may
  have a single core, where the interesting number is how close the
  warm pool gets to the inline baseline (the legacy executor
  historically lost 2-4x here).
* **packing table** — a 3-job campaign planned per-job vs as one
  packed batch (:func:`repro.flow.plan_campaign`): with throughput
  history the packed planner spends the batch shard budget on the
  long jobs only, cutting per-shard overhead on the short ones.

``REPRO_BENCH_SMOKE=1`` shrinks every stream and skips the throughput
floors (keeps the kernels imported, exercised, and parity-checked on
cheap CI runs).
"""

import os
import time

import numpy as np
import pytest

from conftest import format_table, record_report
from repro.circuits import build_functional_unit
from repro.flow import CampaignJob, CampaignRunner
from repro.sim import get_backend
from repro.sim.bitpacked import BitPackedSimulator
from repro.sim.levelized import LevelizedSimulator
from repro.timing import DEFAULT_LIBRARY, OperatingCondition
from repro.workloads import stream_for_unit

SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"
# long enough that per-call constants (program lookup, scratch pages)
# amortize the way they do in real campaign streams
CYCLES = 130 if SMOKE else int(os.environ.get("REPRO_BENCH_CYCLES", 6000))
SHARD_JOB_CYCLES = 400 if SMOKE else 12_000
#: floor for compiled vs the per-gate bit-packed engine on FLOOR_FU.
MIN_KERNEL_SPEEDUP = 5.0
#: floor at the full 9-corner grid (the regime campaigns run in) —
#: the corner-aware arrival kernels must keep most of their edge as
#: the corner axis widens, not just at one corner.  Typical measured
#: speedup is 4.5-5x on a quiet machine; the asserted floor leaves
#: headroom because the compiled engine is memory-bandwidth-bound and
#: shared-VM contention slows it asymmetrically vs the dispatch-bound
#: per-gate reference (observed as low as 3.5x on a loaded box with
#: the kernels unchanged).  Losing any one of the structural
#: optimizations (dead-cone exclusion, level-1 corner collapse,
#: cache-sized sub-blocks) lands the ratio near 3x and trips this
#: reliably.
MIN_KERNEL_SPEEDUP_9C = 3.3
FLOOR_FU = "int_mul"
LARGE_FUS = ("int_mul", "fp_mul")  # 3540 / 4182 gates

CORNER_SETS = {
    1: [OperatingCondition(0.90, 25.0)],
    2: [OperatingCondition(0.81, 0.0), OperatingCondition(1.00, 100.0)],
}

#: 1/3/9-corner grids for the corner-scaling table (3x3 V/T grid at 9).
SCALING_CORNER_SETS = {
    1: [OperatingCondition(0.90, 25.0)],
    3: [OperatingCondition(0.81, 0.0), OperatingCondition(0.90, 50.0),
        OperatingCondition(1.00, 100.0)],
    9: [OperatingCondition(v, t) for v in (0.81, 0.90, 1.00)
        for t in (0.0, 50.0, 100.0)],
}


def _per_gate(sim_cls, netlist, inputs, delay_matrix):
    """One pre-PR-style backend call: rebuild the simulator, then run."""
    return sim_cls(netlist, compiled=False).run(inputs, delay_matrix)


def _record(title, lines):
    """Write the report only on full runs: smoke mode must not clobber
    the committed full-scale result tables with 130-cycle numbers."""
    if not SMOKE:
        record_report(title, lines)


def _time(fn, min_reps=2):
    """Best-of-reps wall time: min filters scheduler noise out of the
    speedup ratios (shared CI boxes inflate individual reps)."""
    budget = 0.05 if SMOKE else 0.4
    fn()  # warm caches (and the compiled program) out of the timing
    best = float("inf")
    reps = 0
    start = time.perf_counter()
    while True:
        rep_start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - rep_start)
        reps += 1
        if reps >= min_reps and time.perf_counter() - start > budget:
            return best


@pytest.mark.benchmark(group="simspeed")
def test_compiled_kernel_throughput(benchmark):
    rows, floors = benchmark.pedantic(_measure_kernels, rounds=1,
                                      iterations=1)
    _record(
        "Simspeed - compiled kernels vs per-gate engines",
        format_table(["fu", "corners", "engine", "cycles/s",
                      "vs best per-gate"], rows))
    if not SMOKE:
        speedup = floors[FLOOR_FU]
        assert speedup >= MIN_KERNEL_SPEEDUP, (
            f"compiled engine is {speedup:.1f}x the per-gate bitpacked "
            f"engine on {FLOOR_FU} (floor {MIN_KERNEL_SPEEDUP}x)")


def _measure_kernels():
    rows = []
    floors = {}
    for fu_name in LARGE_FUS:
        fu = build_functional_unit(fu_name)
        inputs = stream_for_unit(fu_name, CYCLES, seed=42).bit_matrix(fu)
        for n_corners, conditions in CORNER_SETS.items():
            dm = DEFAULT_LIBRARY.delay_matrix(fu.netlist, conditions)

            reference = _per_gate(LevelizedSimulator, fu.netlist,
                                  inputs, dm)
            measured = {}
            for label, run in (
                ("levelized (per-gate)",
                 lambda: _per_gate(LevelizedSimulator, fu.netlist,
                                   inputs, dm)),
                ("bitpacked (per-gate)",
                 lambda: _per_gate(BitPackedSimulator, fu.netlist,
                                   inputs, dm)),
                ("levelized (compiled)",
                 lambda: get_backend("levelized").run_delays(
                     fu.netlist, inputs, dm)),
                ("bitpacked (compiled)",
                 lambda: get_backend("bitpacked").run_delays(
                     fu.netlist, inputs, dm)),
                ("compiled",
                 lambda: get_backend("compiled").run_delays(
                     fu.netlist, inputs, dm)),
            ):
                np.testing.assert_array_equal(
                    run().delays, reference.delays,
                    err_msg=f"{fu_name}/{label} delay parity")
                measured[label] = _time(run)
            per_gate_best = min(measured["levelized (per-gate)"],
                                measured["bitpacked (per-gate)"])
            for label, seconds in measured.items():
                rows.append([fu_name, f"{n_corners}", label,
                             f"{CYCLES / seconds:,.0f}",
                             f"{per_gate_best / seconds:.1f}x"])
            if n_corners == 1:
                floors[fu_name] = (measured["bitpacked (per-gate)"]
                                   / measured["compiled"])
    return rows, floors


@pytest.mark.benchmark(group="simspeed")
def test_corner_scaling(benchmark):
    rows, ratio_9c = benchmark.pedantic(_measure_corner_scaling,
                                        rounds=1, iterations=1)
    _record(
        "Simspeed - corner scaling on int_mul",
        format_table(["corners", "per-gate cyc/s", "compiled cyc/s",
                      "speedup"], rows))
    if not SMOKE:
        assert ratio_9c >= MIN_KERNEL_SPEEDUP_9C, (
            f"compiled engine is {ratio_9c:.1f}x the per-gate bitpacked "
            f"engine on {FLOOR_FU} at 9 corners "
            f"(floor {MIN_KERNEL_SPEEDUP_9C}x)")


def _measure_corner_scaling():
    fu = build_functional_unit(FLOOR_FU)
    inputs = stream_for_unit(FLOOR_FU, CYCLES, seed=45).bit_matrix(fu)
    rows = []
    ratio_9c = None
    for n_corners, conditions in SCALING_CORNER_SETS.items():
        dm = DEFAULT_LIBRARY.delay_matrix(fu.netlist, conditions)
        ref_run = (lambda dm=dm:
                   _per_gate(BitPackedSimulator, fu.netlist, inputs, dm))
        comp_run = (lambda dm=dm:
                    get_backend("compiled").run_delays(fu.netlist,
                                                       inputs, dm))
        np.testing.assert_array_equal(
            comp_run().delays, ref_run().delays,
            err_msg=f"{FLOOR_FU}/{n_corners}-corner delay parity")
        t_ref = _time(ref_run)
        t_comp = _time(comp_run, min_reps=3)
        ratio = t_ref / t_comp
        rows.append([f"{n_corners}", f"{CYCLES / t_ref:,.0f}",
                     f"{CYCLES / t_comp:,.0f}", f"{ratio:.1f}x"])
        if n_corners == 9:
            ratio_9c = ratio
    return rows, ratio_9c


@pytest.mark.benchmark(group="simspeed")
def test_settled_value_throughput(benchmark):
    rows = benchmark.pedantic(_measure_values, rounds=1, iterations=1)
    _record("Simspeed - settled-value (run_values) throughput",
                  format_table(["fu", "engine", "rows/s"], rows))


def _measure_values():
    rows = []
    for fu_name in LARGE_FUS:
        fu = build_functional_unit(fu_name)
        inputs = stream_for_unit(fu_name, CYCLES, seed=43).bit_matrix(fu)
        reference = LevelizedSimulator(fu.netlist,
                                       compiled=False).run_values(inputs)
        for label, run in (
            ("levelized (per-gate)",
             lambda: LevelizedSimulator(fu.netlist,
                                        compiled=False).run_values(inputs)),
            ("bitpacked (per-gate)",
             lambda: BitPackedSimulator(fu.netlist,
                                        compiled=False).run_values(inputs)),
            ("compiled",
             lambda: get_backend("compiled").run_values(fu.netlist,
                                                        inputs)),
        ):
            np.testing.assert_array_equal(run(), reference,
                                          err_msg=f"{fu_name}/{label}")
            seconds = _time(run)
            rows.append([fu_name, label, f"{CYCLES / seconds:,.0f}"])
    return rows


@pytest.mark.benchmark(group="simspeed")
def test_shard_grid_scaling(benchmark):
    rows = benchmark.pedantic(_measure_sharding, rounds=1, iterations=1)
    rows.insert(0, ["job", f"{SHARD_JOB_CYCLES} cycles",
                    f"{os.cpu_count()} cpu(s)", "", "", "", "", ""])
    _record(
        "Simspeed - corner x cycle sharding of one int_mul job",
        format_table(["workers", "pool", "grid", "shards", "cold (s)",
                      "warm (s)", "speedup", "shard cold/warm (s)"],
                     rows))


def _shard_report(cold_stats, warm_stats):
    """(grid, per-shard cold/warm) cells from the two runs' stats."""
    grid = warm_stats.job_grids.get(0)
    grid_cell = f"{grid[0]}c x {grid[1]}t" if grid else "-"
    cold = [s.seconds for s in cold_stats.shard_log if s.warm is False]
    warm = [s.seconds for s in warm_stats.shard_log if s.warm]
    if not cold:  # legacy/inline paths cannot observe worker state
        cold = [s.seconds for s in cold_stats.shard_log]
    if not warm:
        warm = [s.seconds for s in warm_stats.shard_log]
    return grid_cell, (f"{sum(cold) / len(cold):.2f}/"
                       f"{sum(warm) / len(warm):.2f}")


def _measure_sharding():
    fu = build_functional_unit("int_mul")
    stream = stream_for_unit("int_mul", SHARD_JOB_CYCLES, seed=44)
    stream.name = "bench_simspeed_shard"
    conditions = SCALING_CORNER_SETS[3]

    rows = []
    reference = None
    base_warm = None
    # (pool label, runner kwargs): the persistent warm pool against the
    # inline baseline and the legacy fork-per-batch executor
    configs = [
        ("inline", dict(n_workers=1)),
        ("warm", dict(n_workers=2)),
        ("warm", dict(n_workers=4)),
        ("fork/batch", dict(n_workers=2, persistent=False)),
        ("warm", dict(n_workers=2, shard_corners=1)),   # corner-parallel
        ("warm", dict(n_workers=2, shard_corners=2,
                      shard_cycles=SHARD_JOB_CYCLES // 4)),  # 2-D grid
    ]
    for pool_label, kwargs in configs:
        with CampaignRunner(use_cache=False, **kwargs) as runner:
            start = time.perf_counter()
            trace = runner.run([CampaignJob(fu, stream, conditions)])[0]
            cold = time.perf_counter() - start
            cold_stats = runner.stats
            # second run through the same (now warm) pool: workers hold
            # the compiled program and the registered payload, tasks are
            # tiny descriptors
            start = time.perf_counter()
            warm_trace = runner.run(
                [CampaignJob(fu, stream, conditions)])[0]
            warm = time.perf_counter() - start
            warm_stats = runner.stats
        if reference is None:
            reference, base_warm = trace, warm
        # byte-identical whatever the worker count, shard grid, or pool
        assert trace.delays.tobytes() == reference.delays.tobytes()
        assert warm_trace.delays.tobytes() == reference.delays.tobytes()
        grid_cell, shard_cell = _shard_report(cold_stats, warm_stats)
        rows.append([f"{kwargs['n_workers']}", pool_label, grid_cell,
                     f"{warm_stats.total_shards}", f"{cold:.2f}",
                     f"{warm:.2f}", f"{base_warm / warm:.2f}x",
                     shard_cell])

    # with throughput history the adaptive planner notices this job is
    # under TARGET_SHARD_SECONDS and declines to shard it at all — the
    # warm rerun runs inline even at n_workers=2 (this is what caps the
    # pool's worst case at ~1x instead of the old 0.4x)
    import tempfile
    with tempfile.TemporaryDirectory() as tmp:
        with CampaignRunner(store=tmp, n_workers=2) as runner:
            start = time.perf_counter()
            trace = runner.run([CampaignJob(fu, stream, conditions)])[0]
            cold = time.perf_counter() - start
            cold_stats = runner.stats
            runner.store.gc(max_bytes=0)
            start = time.perf_counter()
            warm_trace = runner.run(
                [CampaignJob(fu, stream, conditions)])[0]
            warm = time.perf_counter() - start
            warm_stats = runner.stats
    assert trace.delays.tobytes() == reference.delays.tobytes()
    assert warm_trace.delays.tobytes() == reference.delays.tobytes()
    grid_cell, shard_cell = _shard_report(cold_stats, warm_stats)
    rows.append(["2", "warm+hist", grid_cell,
                 f"{warm_stats.total_shards}", f"{cold:.2f}",
                 f"{warm:.2f}", f"{base_warm / warm:.2f}x", shard_cell])
    return rows


#: Per-job cycle count of the packing bench.  Sized so that with this
#: box's throughput history each job's estimate lands between
#: TARGET_SHARD_SECONDS and twice that: per-job planning then splits
#: every job into ``n_workers`` shards, while the packed planner sees
#: the whole batch and covers the pool with (mostly) unsplit jobs.
PACK_CYCLES = 300 if SMOKE else 100_000


@pytest.mark.benchmark(group="simspeed")
def test_campaign_packing(benchmark):
    rows = benchmark.pedantic(_measure_packing, rounds=1, iterations=1)
    rows.insert(0, ["3 jobs", f"int_mul 3 x {PACK_CYCLES} cycles",
                    f"{os.cpu_count()} cpu(s)", "", ""])
    _record(
        "Simspeed - cross-job shard packing of a 3-job campaign",
        format_table(["workers", "planning", "shards", "wall (s)",
                      "speedup"], rows))


def _measure_packing():
    import tempfile

    fu = build_functional_unit("int_mul")
    streams = []
    for k in range(3):
        s = stream_for_unit("int_mul", PACK_CYCLES, seed=50 + k)
        s.name = f"bench_pack_{k}"
        streams.append(s)
    conditions = SCALING_CORNER_SETS[3]

    def jobs():
        return [CampaignJob(fu, s, conditions) for s in streams]

    rows = []
    reference = None
    base_wall = None
    configs = [("per-job", dict(n_workers=1)),
               ("per-job", dict(n_workers=2, pack_jobs=False)),
               ("packed", dict(n_workers=2))]
    for label, kwargs in configs:
        with tempfile.TemporaryDirectory() as tmp:
            with CampaignRunner(store=tmp, **kwargs) as runner:
                # prime: records throughput history (what the packed
                # planner feeds on) and warms the pool, then evict the
                # traces so the timed run re-simulates
                runner.run(jobs())
                runner.store.gc(max_bytes=0)
                start = time.perf_counter()
                traces = runner.run(jobs())
                wall = time.perf_counter() - start
                stats = runner.stats
        blobs = [t.delays.tobytes() for t in traces]
        if reference is None:
            reference, base_wall = blobs, wall
        assert blobs == reference  # packing never affects results
        if label == "packed":
            assert stats.packed, "history present, batch must pack"
        rows.append([f"{kwargs['n_workers']}", label,
                     f"{stats.total_shards}", f"{wall:.2f}",
                     f"{base_wall / wall:.2f}x"])
    return rows
