"""Fig. 3: average dynamic delay vs operating condition and dataset.

For each FU, computes the mean dynamic delay over each test dataset at
the 9 plotted corners and checks the paper's three observations:

1. delay falls as voltage rises,
2. inverse temperature dependence at 0.81 V, normal dependence at 1.00 V,
3. random data sensitizes longer paths than application data (the
   paper reports ~30 % for INT ADD).
"""

import numpy as np
import pytest

from conftest import (bench_cycles, characterize_one, format_table,
                      record_report)
from repro.circuits import PAPER_UNITS, build_functional_unit
from repro.timing import OperatingCondition, fig3_corner_subset

FIG3_CONDS = fig3_corner_subset()


def _average_delays(fu_name, datasets, runner):
    fu = build_functional_unit(fu_name)
    streams = datasets(fu_name)
    means = {}
    for key in ("random", "sobel", "gauss"):
        trace = characterize_one(runner, fu, streams[key], FIG3_CONDS)
        means[key] = trace.average_delay()
    return means


@pytest.mark.benchmark(group="fig3")
@pytest.mark.parametrize("fu_name", PAPER_UNITS)
def test_fig3_average_delay(benchmark, fu_name, datasets, campaign_runner):
    means = benchmark.pedantic(_average_delays,
                               args=(fu_name, datasets, campaign_runner),
                               rounds=1, iterations=1)

    labels = [c.label for c in FIG3_CONDS]
    rows = []
    for key in ("random", "sobel", "gauss"):
        rows.append([f"{key}_data"] + [f"{v:.0f}" for v in means[key]])
    record_report(f"Fig 3 - average dynamic delay (ps) - {fu_name}",
                  format_table(["dataset"] + labels, rows))

    idx = {c: i for i, c in enumerate(FIG3_CONDS)}
    for key in ("random", "sobel", "gauss"):
        m = means[key]
        # observation 1: lower voltage -> longer delay (at fixed T)
        for t in (0.0, 50.0, 100.0):
            lo = m[idx[OperatingCondition(0.81, t)]]
            hi = m[idx[OperatingCondition(1.00, t)]]
            assert lo > hi, (fu_name, key, t)
        # observation 2a: ITD at 0.81 V — hotter is FASTER
        assert (m[idx[OperatingCondition(0.81, 100.0)]]
                < m[idx[OperatingCondition(0.81, 0.0)]]), (fu_name, key)
        # observation 2b: normal dependence at 1.00 V — hotter is slower
        assert (m[idx[OperatingCondition(1.00, 100.0)]]
                > m[idx[OperatingCondition(1.00, 0.0)]]), (fu_name, key)

    # observation 3: workload changes the average dynamic delay
    # substantially.  The paper reports random > application for its
    # GPU-profiled traces; in our MAC kernels the *direction* depends on
    # the FU (signed accumulator operands toggle sign-extension bits and
    # ripple long carries, making app adds slower than random adds — see
    # EXPERIMENTS.md), but the magnitude of the workload effect is the
    # claim that matters for TEVoT's thesis.
    app_mean = (np.mean(means["sobel"]) + np.mean(means["gauss"])) / 2
    random_mean = np.mean(means["random"])
    assert abs(random_mean - app_mean) / random_mean > 0.04, fu_name
    if fu_name in ("int_mul", "fp_add"):
        # paper's direction holds structurally for these units
        assert random_mean > app_mean, fu_name
