"""Shared fixtures and reporting for the reproduction benches.

Each bench regenerates one table or figure of the paper at a reduced
default scale (documented in EXPERIMENTS.md).  Scale knobs:

* ``REPRO_BENCH_FULL_GRID=1`` — use all 100 Table-I corners instead of
  the 9-corner Fig.-3 subset.
* ``REPRO_BENCH_CYCLES`` — characterization cycles per stream
  (default 1500).
* ``REPRO_BENCH_BACKEND`` — simulation backend for every
  characterization (default: the campaign layer's default, the
  compiled level-parallel engine).
* ``REPRO_BENCH_WORKERS`` — campaign process-pool width (default 1).
* ``REPRO_BENCH_SHARD_CYCLES`` / ``REPRO_BENCH_SHARD_CORNERS`` —
  cycle- / corner-axis shard pitch for single jobs (default:
  auto-sized from the worker count and any persisted throughput
  history).
* ``REPRO_BENCH_SMOKE=1`` — shrink the simspeed bench to an
  import/parity smoke test (skips throughput-floor assertions).

Rendered tables are printed in the pytest terminal summary and written
to ``benchmarks/results/``.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Dict, List

import numpy as np
import pytest

from repro.apps import app_stream, image_corpus, split_corpus
from repro.circuits import build_functional_unit
from repro.core.pipeline import train_models
from repro.flow import DEFAULT_BACKEND, CampaignJob, CampaignRunner
from repro.timing import fig3_corner_subset, paper_corner_grid
from repro.workloads import OperandStream, stream_for_unit

RESULTS_DIR = Path(__file__).parent / "results"
_REPORTS: List[str] = []


def record_report(title: str, lines) -> None:
    """Queue a rendered table for the terminal summary + results file."""
    text = f"\n=== {title} ===\n" + "\n".join(lines)
    _REPORTS.append(text)
    RESULTS_DIR.mkdir(exist_ok=True)
    safe = title.lower().replace(" ", "_").replace("/", "-")
    (RESULTS_DIR / f"{safe}.txt").write_text(text + "\n")


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    for report in _REPORTS:
        terminalreporter.write_line(report)


def bench_cycles(default: int = 1500) -> int:
    return int(os.environ.get("REPRO_BENCH_CYCLES", default))


def characterize_one(runner: CampaignRunner, fu, stream,
                     conditions):
    """Single-job characterization via the batch API.

    (``CampaignRunner.characterize`` is a deprecated shim now; the
    benches go through ``run()`` like the rest of the pipeline.)
    """
    return runner.run([CampaignJob(fu, stream, list(conditions))])[0]


@pytest.fixture(scope="session")
def conditions():
    """Operating-condition set for the benches."""
    if os.environ.get("REPRO_BENCH_FULL_GRID") == "1":
        return paper_corner_grid()
    return fig3_corner_subset()


@pytest.fixture(scope="session")
def campaign_runner():
    """Shared campaign runner for every bench characterization."""
    shard = os.environ.get("REPRO_BENCH_SHARD_CYCLES")
    shard_corners = os.environ.get("REPRO_BENCH_SHARD_CORNERS")
    return CampaignRunner(
        backend=os.environ.get("REPRO_BENCH_BACKEND", DEFAULT_BACKEND),
        n_workers=int(os.environ.get("REPRO_BENCH_WORKERS", "1")),
        shard_cycles=int(shard) if shard else None,
        shard_corners=int(shard_corners) if shard_corners else None)


@pytest.fixture(scope="session")
def corpus_split():
    """Synthetic image corpus split per the paper (5 % -> train)."""
    corpus = image_corpus(8, size=20, seed=0)
    return split_corpus(corpus, train_fraction=0.125, seed=0)


def concat_streams(name: str, streams) -> OperandStream:
    a = np.concatenate([s.a for s in streams])
    b = np.concatenate([s.b for s in streams])
    return OperandStream(name, a, b)


@pytest.fixture(scope="session")
def datasets(corpus_split):
    """Per-FU train stream (random + app sample) and 3 test streams."""
    train_images, test_images = corpus_split
    n = bench_cycles()

    def build(fu_name: str) -> Dict[str, OperandStream]:
        rand_train = stream_for_unit(fu_name, n, seed=10)
        rand_train.name = "random_train"
        sobel_sample = app_stream(fu_name, "sobel", train_images,
                                  max_cycles=n // 4)
        gauss_sample = app_stream(fu_name, "gauss", train_images,
                                  max_cycles=n // 4)
        train = concat_streams(
            f"train_mix_{fu_name}", [rand_train, sobel_sample, gauss_sample])

        rand_test = stream_for_unit(fu_name, n, seed=11)
        rand_test.name = "random_data"
        sobel_test = app_stream(fu_name, "sobel", test_images, max_cycles=n)
        sobel_test.name = "sobel_data"
        gauss_test = app_stream(fu_name, "gauss", test_images, max_cycles=n)
        gauss_test.name = "gauss_data"
        return {"train": train, "random": rand_test,
                "sobel": sobel_test, "gauss": gauss_test}

    cache: Dict[str, Dict[str, OperandStream]] = {}

    def get(fu_name: str) -> Dict[str, OperandStream]:
        if fu_name not in cache:
            cache[fu_name] = build(fu_name)
        return cache[fu_name]

    return get


@pytest.fixture(scope="session")
def trained_models(datasets, conditions, campaign_runner):
    """Session cache: fitted TEVoT/NH/baselines + clocks per FU."""
    cache = {}

    def get(fu_name: str):
        if fu_name not in cache:
            fu = build_functional_unit(fu_name)
            streams = datasets(fu_name)
            tevot, nh, delay_based, ter_based, train_trace, clocks = \
                train_models(fu, streams["train"], conditions,
                             max_train_rows=60_000, seed=0,
                             runner=campaign_runner)
            cache[fu_name] = {
                "fu": fu,
                "tevot": tevot,
                "tevot_nh": nh,
                "delay_based": delay_based,
                "ter_based": ter_based,
                "train_trace": train_trace,
                "clocks": clocks,
            }
        return cache[fu_name]

    return get


def format_table(headers, rows) -> List[str]:
    """Plain-text table renderer used by every bench report."""
    widths = [len(h) for h in headers]
    str_rows = []
    for row in rows:
        cells = [str(c) for c in row]
        str_rows.append(cells)
        widths = [max(w, len(c)) for w, c in zip(widths, cells)]
    fmt = "  ".join(f"{{:<{w}}}" for w in widths)
    lines = [fmt.format(*headers), fmt.format(*["-" * w for w in widths])]
    lines += [fmt.format(*cells) for cells in str_rows]
    return lines
