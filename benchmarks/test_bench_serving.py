"""Serving throughput: micro-batched vs single-request-loop inference.

The point of the serving subsystem: a request that arrives alone pays
feature-build + forest-pass overhead by itself, while a micro-batch
amortizes one vectorized pass over every queued request.  This bench
publishes a TEVoT model for a paper FU, replays the same request slab
through ``PredictionEngine`` both ways, and requires the batched path
to clear 5x the single-request-loop throughput (the PR's acceptance
floor — in practice it is far higher).
"""

import time

import numpy as np
import pytest

from conftest import characterize_one, format_table, record_report
from repro.circuits import build_functional_unit
from repro.core import TEVoT, build_training_set
from repro.serve import ModelRegistry, PredictionEngine, PredictRequest
from repro.timing import OperatingCondition
from repro.workloads import stream_for_unit

FU_NAME = "int_add"  # paper FU, full 32-bit operand width
N_REQUESTS = 256
MIN_SPEEDUP = 5.0


def _publish_model(tmp_path, campaign_runner):
    fu = build_functional_unit(FU_NAME)
    stream = stream_for_unit(FU_NAME, 300, seed=50)
    stream.name = "bench_serve_train"
    conditions = [OperatingCondition(0.90, 25.0)]
    trace = characterize_one(campaign_runner, fu, stream, conditions)
    model = TEVoT(operand_width=fu.operand_width)
    X, y = build_training_set(stream, conditions, trace.delays,
                              spec=model.spec)
    model.fit(X, y)
    registry = ModelRegistry(tmp_path)
    registry.publish(model, fu=fu, conditions=conditions,
                     train_stream=stream)
    return registry


def _request_slab(seed=51):
    stream = stream_for_unit(FU_NAME, N_REQUESTS, seed=seed)
    return [PredictRequest(fu=FU_NAME, a=int(stream.a[t]),
                           b=int(stream.b[t]), voltage=0.90,
                           temperature=25.0, stream_id="bench")
            for t in range(1, N_REQUESTS + 1)]


@pytest.mark.benchmark(group="serving")
def test_micro_batching_throughput(benchmark, tmp_path, campaign_runner):
    registry = _publish_model(tmp_path, campaign_runner)
    engine = PredictionEngine(registry=registry, sim_fallback=False)
    requests = _request_slab()

    def measure():
        # warm the hot-model cache out of the measured region
        engine.reset_stream()
        engine.predict_batch(requests[:2])

        engine.reset_stream()
        t0 = time.perf_counter()
        batched = engine.predict_batch(requests)
        batched_s = time.perf_counter() - t0

        engine.reset_stream()
        t0 = time.perf_counter()
        looped = [engine.predict_one(r) for r in requests]
        loop_s = time.perf_counter() - t0
        return batched, looped, batched_s, loop_s

    batched, looped, batched_s, loop_s = benchmark.pedantic(
        measure, rounds=1, iterations=1)

    # identical answers either way (same history chaining, same model)
    np.testing.assert_array_equal(
        np.array([p.delay_ps for p in batched]),
        np.array([p.delay_ps for p in looped]))

    speedup = loop_s / batched_s
    batched_rps = N_REQUESTS / batched_s
    loop_rps = N_REQUESTS / loop_s
    record_report(
        "Serving - micro-batched vs single-request throughput",
        format_table(
            ["path", "wall (s)", "requests/s"],
            [["single-request loop", f"{loop_s:.3f}", f"{loop_rps:,.0f}"],
             ["micro-batched", f"{batched_s:.3f}", f"{batched_rps:,.0f}"],
             ["speedup", f"{speedup:.1f}x", ""]]))
    assert speedup >= MIN_SPEEDUP, (
        f"micro-batching speedup {speedup:.1f}x below the {MIN_SPEEDUP}x "
        f"acceptance floor")


@pytest.mark.benchmark(group="serving")
def test_cluster_worker_count_throughput(benchmark, tmp_path,
                                         campaign_runner):
    """Requests/s vs cluster worker count, plus bit-exact parity.

    This box is single-core, so the cluster cannot beat the in-process
    engine on raw throughput — the acceptance criterion is *parity*
    (byte-identical answers at every worker count), and the recorded
    table documents the fan-out overhead honestly.
    """
    from repro.serve import ClusterEngine

    registry = _publish_model(tmp_path, campaign_runner)
    requests = _request_slab()
    chunk = 64  # micro-batch-sized dispatch units

    def run_batches(engine):
        engine.reset_stream()
        t0 = time.perf_counter()
        out = []
        for lo in range(0, N_REQUESTS, chunk):
            out.extend(engine.predict_batch(requests[lo:lo + chunk]))
        return out, time.perf_counter() - t0

    def measure():
        single = PredictionEngine(registry=registry, sim_fallback=False)
        run_batches(single)  # warm the hot-model cache
        base, base_s = run_batches(single)
        per_workers = {}
        for workers in (1, 2, 4):
            with ClusterEngine(registry=registry, workers=workers,
                               sim_fallback=False) as cluster:
                run_batches(cluster)  # warm dispatch path
                per_workers[workers] = run_batches(cluster)
        return base, base_s, per_workers

    base, base_s, per_workers = benchmark.pedantic(
        measure, rounds=1, iterations=1)

    rows = [["single-process", f"{base_s:.3f}",
             f"{N_REQUESTS / base_s:,.0f}"]]
    for workers, (preds, wall_s) in sorted(per_workers.items()):
        # parity is the floor: answers must be byte-identical
        np.testing.assert_array_equal(
            np.array([p.delay_ps for p in preds]),
            np.array([p.delay_ps for p in base]))
        assert all(p.ok for p in preds)
        rows.append([f"cluster workers={workers}", f"{wall_s:.3f}",
                     f"{N_REQUESTS / wall_s:,.0f}"])
    record_report(
        "Serving - requests-s vs cluster worker count",
        format_table(["path", "wall (s)", "requests/s"], rows))
