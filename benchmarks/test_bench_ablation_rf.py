"""Ablation: random-forest hyperparameters (Table II's RFC rationale).

Sweeps tree count and feature-subsetting around the paper's stated
configuration (10 trees, all features per split) and reports the
feature-importance split between current-input, history, and condition
features — the interpretability argument of Sec. IV-B.
"""

import numpy as np
import pytest

from conftest import characterize_one, format_table, record_report
from repro.core.features import build_feature_matrix, build_training_set
from repro.ml import RandomForestRegressor, mean_absolute_error
from repro.timing import sped_up_clock

FU_NAME = "fp_add"


def _sweep(trained_models, datasets, conditions, runner):
    bundle = trained_models(FU_NAME)
    train_stream = datasets(FU_NAME)["train"]
    test_stream = datasets(FU_NAME)["random"]
    train_trace = bundle["train_trace"]
    test_trace = characterize_one(runner, bundle["fu"], test_stream,
                                  conditions)
    X_train, y_train = build_training_set(
        train_stream, train_trace.conditions, train_trace.delays,
        max_rows=20_000, seed=0)

    configs = [
        ("1 tree, all feats", dict(n_estimators=1, max_features=None)),
        ("5 trees, all feats", dict(n_estimators=5, max_features=None)),
        ("10 trees, all feats (paper)", dict(n_estimators=10,
                                             max_features=None)),
        ("10 trees, sqrt feats", dict(n_estimators=10,
                                      max_features="sqrt")),
    ]
    rows = []
    importances = None
    for label, params in configs:
        model = RandomForestRegressor(min_samples_leaf=4, random_state=0,
                                      **params)
        model.fit(X_train, y_train)
        maes = []
        for k, condition in enumerate(test_trace.conditions):
            X_c = build_feature_matrix(test_stream, condition,
                                       bundle["tevot"].spec)
            maes.append(mean_absolute_error(test_trace.delays[k],
                                            model.predict(X_c)))
        rows.append((label, float(np.mean(maes))))
        if label.endswith("(paper)"):
            importances = model.feature_importances()
    return rows, importances


@pytest.mark.benchmark(group="ablation-rf")
def test_rf_hyperparameter_sweep(benchmark, trained_models, datasets,
                                 conditions, campaign_runner):
    rows, importances = benchmark.pedantic(
        _sweep, args=(trained_models, datasets, conditions, campaign_runner),
        rounds=1, iterations=1)
    mae = dict(rows)
    record_report(
        f"Ablation - RF hyperparameters ({FU_NAME}, delay MAE ps)",
        format_table(["config", "MAE"],
                     [[l, f"{v:.1f}"] for l, v in rows]))
    # more trees help (or at least do not hurt)
    assert mae["10 trees, all feats (paper)"] <= mae["1 tree, all feats"]

    # interpretability: importance mass split by feature group
    current = float(importances[:64].sum())
    history = float(importances[64:128].sum())
    condition_mass = float(importances[128:].sum())
    record_report(
        f"Ablation - RF feature-importance mass ({FU_NAME})",
        format_table(["group", "importance"],
                     [["x[t] bits", f"{current:.2f}"],
                      ["x[t-1] bits", f"{history:.2f}"],
                      ["V, T", f"{condition_mass:.2f}"]]))
    # every group carries signal; condition features matter
    assert current > 0.05 and history > 0.05 and condition_mass > 0.05
