"""Table IV: application quality estimation accuracy (Sobel, Gauss).

Protocol (Sec. V-D): at each (condition, clock-speedup) operating
point, each model derives per-FU timing error rates for the
application's own operand streams; errors are injected into the filter
at those rates (erroneous FU ops return a random value); the output is
classed acceptable (PSNR >= 30 dB) or not.  Estimation accuracy (Eq. 5)
counts the operating points where a model's verdict matches the
gate-level-simulation verdict.
"""

import numpy as np
import pytest

from conftest import characterize_one, format_table, record_report
from repro.apps import estimation_accuracy, quality_for_ters
from repro.core.features import build_feature_matrix
from repro.timing import CLOCK_SPEEDUPS, sped_up_clock

APP_FUS = ("int_mul", "int_add")
MODELS = ("TEVoT", "Delay-based", "TER-based", "TEVoT-NH")
_ROWS = {}


def _model_ters(bundle, stream, trace, condition, k, tclk):
    """TER of one FU stream at one operating point, per model."""
    ters = {}
    X = build_feature_matrix(stream, condition, bundle["tevot"].spec)
    ters["TEVoT"] = float(
        (bundle["tevot"].predict_delay(X) > tclk).mean())
    X_nh = build_feature_matrix(stream, condition, bundle["tevot_nh"].spec)
    ters["TEVoT-NH"] = float(
        (bundle["tevot_nh"].predict_delay(X_nh) > tclk).mean())
    ters["Delay-based"] = bundle["delay_based"].timing_error_rate(
        condition, tclk)
    ters["TER-based"] = bundle["ter_based"].timing_error_rate(condition, tclk)
    ters["truth"] = float((trace.delays[k] > tclk).mean())
    return ters


def _run_filter_case(filter_name, trained_models, datasets, conditions,
                     corpus_split, runner):
    _, test_images = corpus_split
    images = test_images[:2]

    bundles = {fu: trained_models(fu) for fu in APP_FUS}
    streams = {fu: datasets(fu)[filter_name] for fu in APP_FUS}
    traces = {fu: characterize_one(runner, bundles[fu]["fu"],
                                   streams[fu], conditions)
              for fu in APP_FUS}

    verdicts = {name: [] for name in MODELS}
    truth_verdicts = []
    for ci, condition in enumerate(conditions):
        for speedup in CLOCK_SPEEDUPS:
            per_model_ters = {name: {} for name in
                              list(MODELS) + ["truth"]}
            for fu in APP_FUS:
                bundle = bundles[fu]
                tclk = sped_up_clock(bundle["clocks"][condition], speedup)
                ters = _model_ters(bundle, streams[fu], traces[fu],
                                   condition, ci, tclk)
                for name, value in ters.items():
                    per_model_ters[name][fu] = value
            seed = ci * 100 + int(speedup * 100)
            truth_q = quality_for_ters(filter_name, images,
                                       per_model_ters["truth"], seed=seed)
            truth_verdicts.append(truth_q["acceptable"])
            for name in MODELS:
                q = quality_for_ters(filter_name, images,
                                     per_model_ters[name], seed=seed + 7)
                verdicts[name].append(q["acceptable"])

    return {name: estimation_accuracy(truth_verdicts, verdicts[name])
            for name in MODELS}


@pytest.mark.benchmark(group="table4")
@pytest.mark.parametrize("filter_name", ["sobel", "gauss"])
def test_table4_quality_estimation(benchmark, filter_name, trained_models,
                                   datasets, conditions, corpus_split,
                                   campaign_runner):
    accuracies = benchmark.pedantic(
        _run_filter_case,
        args=(filter_name, trained_models, datasets, conditions,
              corpus_split, campaign_runner),
        rounds=1, iterations=1)
    _ROWS[filter_name] = accuracies

    # shape: TEVoT estimates application quality at least as well as
    # every baseline, and well above chance
    assert accuracies["TEVoT"] >= max(
        accuracies[m] for m in MODELS if m != "TEVoT") - 0.05
    assert accuracies["TEVoT"] > 0.6

    if len(_ROWS) == 2:
        rows = [[f.capitalize()] + [f"{_ROWS[f][m]*100:.1f}%"
                                    for m in MODELS]
                for f in ("sobel", "gauss")]
        record_report("Table IV - application quality estimation accuracy",
                      format_table(["Application"] + list(MODELS), rows))
