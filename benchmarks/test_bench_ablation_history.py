"""Ablation: the history feature x[t-1] (Sec. IV-B's core design choice).

Two parts:

1. The paper's determinism experiment: fixing (x[t-1], x[t]) fixes
   D[t]; varying x[t-1] with x[t] fixed changes D[t] irregularly —
   evidence that path sensitization depends on the previous input.
2. Delay-model quality with and without history: the full model's
   delay-prediction error on application data is no worse than the
   no-history model's (it is usually substantially better, because app
   operands are temporally correlated).
"""

import numpy as np
import pytest

from conftest import characterize_one, format_table, record_report
from repro.core.features import build_feature_matrix
from repro.ml import mean_absolute_error
from repro.sim.levelized import LevelizedSimulator
from repro.timing import DEFAULT_LIBRARY, OperatingCondition


def _determinism_experiment(trained_models):
    """Part 1 on the real netlist (100 repeated pairs vs 100 varied)."""
    fu = trained_models("int_add")["fu"]
    sim = LevelizedSimulator(fu.netlist)
    delays = DEFAULT_LIBRARY.gate_delays(fu.netlist,
                                         OperatingCondition(0.81, 0))
    rng = np.random.default_rng(5)
    curr = np.array(fu.encode_inputs(0xDEADBEEF, 0x01234567),
                    dtype=np.uint8)

    fixed_prev = np.array(fu.encode_inputs(0x0F0F0F0F, 0x33CC33CC),
                          dtype=np.uint8)
    fixed_rows = np.stack([fixed_prev, curr] * 50)
    fixed = sim.run(fixed_rows, delays).delays[0, ::2]

    varied = []
    for _ in range(50):
        a, b = rng.integers(0, 2**32, 2, dtype=np.uint64)
        prev = np.array(fu.encode_inputs(int(a), int(b)), dtype=np.uint8)
        varied.append(float(sim.run(np.stack([prev, curr]),
                                    delays).delays[0, 0]))
    return fixed, np.array(varied)


@pytest.mark.benchmark(group="ablation-history")
def test_history_determines_delay(benchmark, trained_models):
    fixed, varied = benchmark.pedantic(
        _determinism_experiment, args=(trained_models,),
        rounds=1, iterations=1)
    # fixed (x[t-1], x[t]) -> one delay value, always
    assert np.allclose(fixed, fixed[0])
    # varying x[t-1] alone spreads the delay widely
    assert np.unique(np.round(varied, 3)).size > 10
    record_report("Ablation - history determinism (Sec IV-B)", [
        f"fixed-pair delay spread: {fixed.max() - fixed.min():.3f} ps",
        f"varied-history delay range: [{varied.min():.0f}, "
        f"{varied.max():.0f}] ps over 50 samples",
        f"distinct varied-history delays: "
        f"{np.unique(np.round(varied, 3)).size}/50",
    ])


@pytest.mark.benchmark(group="ablation-history")
@pytest.mark.parametrize("fu_name", ["int_mul", "fp_mul"])
def test_history_improves_app_delay_prediction(benchmark, fu_name,
                                               trained_models, datasets,
                                               conditions, campaign_runner):
    def run():
        bundle = trained_models(fu_name)
        stream = datasets(fu_name)["sobel"]
        trace = characterize_one(campaign_runner, bundle["fu"], stream,
                                 conditions)
        maes = {"TEVoT": [], "TEVoT-NH": []}
        for k, condition in enumerate(conditions):
            X = build_feature_matrix(stream, condition,
                                     bundle["tevot"].spec)
            X_nh = build_feature_matrix(stream, condition,
                                        bundle["tevot_nh"].spec)
            maes["TEVoT"].append(mean_absolute_error(
                trace.delays[k], bundle["tevot"].predict_delay(X)))
            maes["TEVoT-NH"].append(mean_absolute_error(
                trace.delays[k], bundle["tevot_nh"].predict_delay(X_nh)))
        return {m: float(np.mean(v)) for m, v in maes.items()}

    maes = benchmark.pedantic(run, rounds=1, iterations=1)
    record_report(
        f"Ablation - delay MAE with/without history ({fu_name}, sobel)",
        format_table(["model", "MAE (ps)"],
                     [[m, f"{v:.1f}"] for m, v in maes.items()]))
    # history never hurts, usually helps substantially
    assert maes["TEVoT"] <= maes["TEVoT-NH"] * 1.05
