"""Ablation: delay regression (Eq. 2) vs direct error classification
(Eq. 1).

The paper argues for learning ``fd`` (delay) instead of ``fe`` (the
error bit): a single delay model serves every clock speed, while a
direct classifier must be retrained per clock.  This bench quantifies
both sides: accuracy parity (the classifier is allowed to win at its
own training clock) and the 3x model-count cost.
"""

import numpy as np
import pytest

from conftest import characterize_one, format_table, record_report
from repro.core.features import build_training_set
from repro.ml import RandomForestClassifier, accuracy_score
from repro.timing import CLOCK_SPEEDUPS, sped_up_clock
from repro.workloads import stream_for_unit

FU_NAME = "int_mul"


def _run(trained_models, datasets, conditions, runner):
    bundle = trained_models(FU_NAME)
    tevot = bundle["tevot"]
    clocks = bundle["clocks"]
    train_stream = datasets(FU_NAME)["train"]
    test_stream = datasets(FU_NAME)["random"]
    train_trace = bundle["train_trace"]
    test_trace = characterize_one(runner, bundle["fu"], test_stream,
                                  conditions)

    X_train, y_train_delay = build_training_set(
        train_stream, train_trace.conditions, train_trace.delays,
        max_rows=30_000, seed=0)
    X_test, y_test_delay = build_training_set(
        test_stream, test_trace.conditions, test_trace.delays, seed=0)

    from repro.core.features import build_feature_matrix

    rows = []
    for speedup in CLOCK_SPEEDUPS:
        reg_acc, clf_acc = [], []
        for k, condition in enumerate(test_trace.conditions):
            tclk = sped_up_clock(clocks[condition], speedup)
            truth = (test_trace.delays[k] > tclk).astype(int)
            X_c = build_feature_matrix(test_stream, condition, tevot.spec)
            reg_acc.append(accuracy_score(
                truth, (tevot.predict_delay(X_c) > tclk).astype(int)))
        # one classifier per speedup, trained on all conditions' labels
        y_cls = []
        for k, condition in enumerate(train_trace.conditions):
            tclk = sped_up_clock(clocks[condition], speedup)
            y_cls.append((train_trace.delays[k] > tclk).astype(int))
        X_full, _ = build_training_set(
            train_stream, train_trace.conditions, train_trace.delays,
            seed=0)
        y_full = np.concatenate(y_cls)
        rng = np.random.default_rng(0)
        pick = rng.choice(len(y_full), min(30_000, len(y_full)),
                          replace=False)
        clf = RandomForestClassifier(n_estimators=10, min_samples_leaf=4,
                                     random_state=0)
        clf.fit(X_full[pick], y_full[pick])
        for k, condition in enumerate(test_trace.conditions):
            tclk = sped_up_clock(clocks[condition], speedup)
            truth = (test_trace.delays[k] > tclk).astype(int)
            X_c = build_feature_matrix(test_stream, condition, tevot.spec)
            clf_acc.append(accuracy_score(truth, clf.predict(X_c)))
        rows.append([f"+{speedup:.0%}", f"{np.mean(reg_acc)*100:.1f}%",
                     f"{np.mean(clf_acc)*100:.1f}%"])
    return rows


@pytest.mark.benchmark(group="ablation-target")
def test_delay_regression_vs_direct_classification(benchmark,
                                                   trained_models,
                                                   datasets, conditions,
                                                   campaign_runner):
    rows = benchmark.pedantic(_run, args=(trained_models, datasets,
                                          conditions, campaign_runner),
                              rounds=1, iterations=1)
    record_report(
        "Ablation - Eq.2 delay regression vs Eq.1 direct classification "
        f"({FU_NAME}; 1 regressor serves all clocks, classifiers retrain "
        "per clock)",
        format_table(["speedup", "delay-regression acc",
                      "per-clock classifier acc"], rows))
    # the single regression model stays within a few points of the
    # per-clock classifiers at every speedup
    for row in rows:
        reg = float(row[1][:-1])
        clf = float(row[2][:-1])
        assert reg >= clf - 5.0
