"""Ablation: datapath architecture sensitivity.

The paper's FUs come from FloPoCo without disclosed architecture; this
bench shows how adder/multiplier architecture changes the static and
dynamic timing picture our substrate produces — area/depth trade-offs
and the dynamic-vs-static delay gap that motivates TEVoT.
"""

import numpy as np
import pytest

from conftest import (bench_cycles, characterize_one, format_table,
                      record_report)
from repro.circuits.adders import ADDER_ARCHITECTURES, build_int_adder
from repro.circuits.multipliers import (
    MULTIPLIER_ARCHITECTURES,
    build_int_multiplier,
)
from repro.circuits.functional_units import FunctionalUnit
from repro.circuits import refmodels
from repro.timing import OperatingCondition, static_delay
from repro.workloads import random_stream

COND = OperatingCondition(1.00, 25.0)


def _adder_rows(runner):
    rows = []
    stream = random_stream(min(bench_cycles(), 800), seed=40)
    for arch in sorted(ADDER_ARCHITECTURES):
        nl = build_int_adder(32, arch)
        fu = FunctionalUnit(
            name="int_add", netlist=nl, operand_width=32, result_width=32,
            reference=lambda a, b: refmodels.int_add_ref(a, b, 32)[0])
        static = static_delay(nl, COND)
        trace = characterize_one(runner, fu, stream, [COND])
        dynamic = float(trace.delays.mean())
        rows.append([arch, nl.n_gates, nl.depth(), f"{static:.0f}",
                     f"{dynamic:.0f}", f"{dynamic / static:.2f}"])
    return rows


def _multiplier_rows(runner):
    rows = []
    stream = random_stream(min(bench_cycles(), 500), seed=41)
    for arch in sorted(MULTIPLIER_ARCHITECTURES):
        nl = build_int_multiplier(32, arch)
        fu = FunctionalUnit(
            name="int_mul", netlist=nl, operand_width=32, result_width=32,
            reference=lambda a, b: refmodels.int_mul_ref(a, b, 32))
        static = static_delay(nl, COND)
        trace = characterize_one(runner, fu, stream, [COND])
        dynamic = float(trace.delays.mean())
        rows.append([arch, nl.n_gates, nl.depth(), f"{static:.0f}",
                     f"{dynamic:.0f}", f"{dynamic / static:.2f}"])
    return rows


HEADERS = ["arch", "gates", "depth", "static ps", "avg dynamic ps",
           "dyn/static"]


@pytest.mark.benchmark(group="ablation-arch")
def test_adder_architectures(benchmark, campaign_runner):
    rows = benchmark.pedantic(_adder_rows, args=(campaign_runner,),
                              rounds=1, iterations=1)
    record_report("Ablation - 32-bit adder architectures",
                  format_table(HEADERS, rows))
    by_arch = {r[0]: r for r in rows}
    # lookahead shortens logic depth vs ripple
    assert by_arch["cla"][2] < by_arch["ripple"][2]
    # the dynamic average is well below static for every adder — the
    # guardband waste TEVoT exploits
    for row in rows:
        assert float(row[5]) < 0.8


@pytest.mark.benchmark(group="ablation-arch")
def test_multiplier_architectures(benchmark, campaign_runner):
    rows = benchmark.pedantic(_multiplier_rows, args=(campaign_runner,),
                              rounds=1, iterations=1)
    record_report("Ablation - 32-bit multiplier architectures",
                  format_table(HEADERS, rows))
    by_arch = {r[0]: r for r in rows}
    assert by_arch["wallace"][2] < by_arch["array"][2]
