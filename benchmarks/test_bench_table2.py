"""Table II: accuracy / training time / testing time of LR, kNN, SVM, RFC.

Trains the four method families as timing-error classifiers on one FU's
characterization data and measures wall-clock fit/predict time.  The
paper's shape: the random forest has the best accuracy by a wide
margin, and kNN's *testing* time is by far the worst.  (Our SVM is a
linear SGD machine rather than libsvm's kernel solver, so its absolute
training time does not blow up the way the paper's does — recorded as a
documented divergence in EXPERIMENTS.md.)
"""

import time

import numpy as np
import pytest

from conftest import (bench_cycles, characterize_one, format_table,
                      record_report)
from repro.circuits import build_functional_unit
from repro.core.features import build_training_set
from repro.ml import (
    KNeighborsClassifier,
    LinearSVC,
    LogisticRegression,
    RandomForestClassifier,
    accuracy_score,
)
from repro.timing import sped_up_clock
from repro.workloads import stream_for_unit

FU_NAME = "fp_add"  # moderate error rates -> discriminative labels


def _make_classification_data(conditions, runner):
    """Error labels across the corner grid.

    The comparison clock sits at the 70th percentile of each corner's
    training delays rather than the paper's 5-15 % speedups: at those
    speedups errors are so rare on this FU that every method ties at
    the all-correct base rate, which would make the method comparison
    meaningless.  A mid-distribution clock keeps the classes mixed so
    the methods' inductive biases actually show (divergence documented
    in EXPERIMENTS.md).
    """
    fu = build_functional_unit(FU_NAME)
    n = bench_cycles()
    train = stream_for_unit(FU_NAME, n, seed=20)
    train.name = "t2_train"
    test = stream_for_unit(FU_NAME, n, seed=21)
    test.name = "t2_test"
    train_trace = characterize_one(runner, fu, train, conditions)
    test_trace = characterize_one(runner, fu, test, conditions)
    clocks = {cond: float(np.percentile(train_trace.delays[k], 70))
              for k, cond in enumerate(train_trace.conditions)}

    def label(trace):
        rows = []
        for k, cond in enumerate(trace.conditions):
            rows.append((trace.delays[k] > clocks[cond]).astype(np.int64))
        return np.concatenate(rows)

    X_train, _ = build_training_set(train, train_trace.conditions,
                                    train_trace.delays)
    X_test, _ = build_training_set(test, test_trace.conditions,
                                   test_trace.delays)
    return X_train, label(train_trace), X_test, label(test_trace)


METHODS = {
    "LR": lambda: LogisticRegression(n_iter=200),
    "KNN": lambda: KNeighborsClassifier(n_neighbors=5),
    "SVM": lambda: LinearSVC(n_epochs=5, random_state=0),
    "RFC": lambda: RandomForestClassifier(n_estimators=10, random_state=0,
                                          min_samples_leaf=4),
}

_ROWS = {}


@pytest.mark.benchmark(group="table2")
@pytest.mark.parametrize("method", list(METHODS))
def test_table2_method_comparison(benchmark, method, conditions,
                                  campaign_runner):
    X_train, y_train, X_test, y_test = _cached_data(conditions,
                                                    campaign_runner)

    def run():
        model = METHODS[method]()
        t0 = time.perf_counter()
        model.fit(X_train, y_train)
        fit_time = time.perf_counter() - t0
        t0 = time.perf_counter()
        pred = model.predict(X_test)
        test_time = time.perf_counter() - t0
        return accuracy_score(y_test, pred), fit_time, test_time

    acc, fit_time, test_time = benchmark.pedantic(run, rounds=1,
                                                  iterations=1)
    _ROWS[method] = (acc, fit_time, test_time)
    assert acc > 0.5  # every method must beat coin-flipping

    if len(_ROWS) == len(METHODS):
        rows = [[m, f"{a*100:.1f}%", f"{ft:.2f}s", f"{tt:.2f}s"]
                for m, (a, ft, tt) in _ROWS.items()]
        record_report("Table II - method accuracy and train/test time",
                      format_table(["method", "Accuracy", "Training Time",
                                    "Testing Time"], rows))
        # shapes that transfer to this substrate: the forest is
        # competitive with the best method, and kNN's testing time
        # dominates everything else by a wide margin (the paper's
        # 3548 s).  The paper's large RFC-over-LR accuracy gap does NOT
        # fully reproduce here (see EXPERIMENTS.md): our levelized
        # delays are more linearly separable in the operand bits than
        # the authors' glitch-rich ModelSim delays.
        best = max(r[0] for r in _ROWS.values())
        assert _ROWS["RFC"][0] >= best - 0.08
        assert _ROWS["KNN"][2] == max(r[2] for r in _ROWS.values())
        assert _ROWS["KNN"][2] > 10 * _ROWS["RFC"][2]


_DATA_CACHE = {}


def _cached_data(conditions, runner):
    key = id(conditions)
    if key not in _DATA_CACHE:
        _DATA_CACHE[key] = _make_classification_data(conditions, runner)
    return _DATA_CACHE[key]
