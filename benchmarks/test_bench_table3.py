"""Table III: timing-error prediction accuracy of TEVoT vs baselines.

For every FU and every dataset (random / sobel / gauss), trains on the
paper's mix (random data + the training slice of the image corpus) and
evaluates all four models over the corner grid x 3 clock speedups.

Shape assertions (the reproduction target):
* TEVoT's average accuracy is the highest of the four models,
* Delay-based collapses (its accuracy equals the mean test TER, i.e.
  it is wrong on every error-free cycle),
* the history ablation (TEVoT-NH) never beats full TEVoT on
  application data, where consecutive operands correlate.
"""

import numpy as np
import pytest

from conftest import characterize_one, format_table, record_report
from repro.circuits import PAPER_UNITS, build_functional_unit
from repro.core.evaluation import evaluate_models

_RESULTS = {}


def _evaluate(fu_name, dataset_key, trained_models, datasets, conditions,
              runner):
    bundle = trained_models(fu_name)
    streams = datasets(fu_name)
    stream = streams[dataset_key]
    test_trace = characterize_one(runner, bundle["fu"], stream,
                                  conditions)
    sweep = evaluate_models(
        bundle["tevot"], bundle["tevot_nh"], bundle["delay_based"],
        bundle["ter_based"], stream, test_trace, bundle["clocks"])
    return sweep.averages().as_dict()


@pytest.mark.benchmark(group="table3")
@pytest.mark.parametrize("fu_name", PAPER_UNITS)
@pytest.mark.parametrize("dataset_key", ["random", "sobel", "gauss"])
def test_table3_prediction_accuracy(benchmark, fu_name, dataset_key,
                                    trained_models, datasets, conditions,
                                    campaign_runner):
    summary = benchmark.pedantic(
        _evaluate, args=(fu_name, dataset_key, trained_models, datasets,
                         conditions, campaign_runner),
        rounds=1, iterations=1)
    _RESULTS[(fu_name, dataset_key)] = summary

    # TEVoT wins (ties allowed within 1 percentage point of noise)
    assert summary["TEVoT"] >= summary["Delay-based"] - 0.01
    assert summary["TEVoT"] >= summary["TER-based"] - 0.01
    assert summary["TEVoT"] >= summary["TEVoT-NH"] - 0.01
    assert summary["TEVoT"] > 0.80

    if dataset_key in ("sobel", "gauss"):
        # history features matter most on correlated app operands
        assert summary["TEVoT"] >= summary["TEVoT-NH"] - 0.005

    if len(_RESULTS) == len(PAPER_UNITS) * 3:
        _emit_report()


def _emit_report():
    headers = ["FU", "dataset", "TEVoT", "Delay-based", "TER-based",
               "TEVoT-NH"]
    rows = []
    for fu_name in PAPER_UNITS:
        for dataset_key in ("random", "sobel", "gauss"):
            s = _RESULTS.get((fu_name, dataset_key))
            if s is None:
                continue
            rows.append([fu_name, dataset_key] +
                        [f"{s[m]*100:.1f}%" for m in
                         ("TEVoT", "Delay-based", "TER-based", "TEVoT-NH")])
    all_vals = {m: np.mean([s[m] for s in _RESULTS.values()])
                for m in ("TEVoT", "Delay-based", "TER-based", "TEVoT-NH")}
    rows.append(["average", "-"] +
                [f"{all_vals[m]*100:.1f}%" for m in
                 ("TEVoT", "Delay-based", "TER-based", "TEVoT-NH")])
    record_report("Table III - timing error prediction accuracy",
                  format_table(headers, rows))
