"""Fig. 4: Sobel output quality under the four models at one aggressive
operating point.

The paper shows one unacceptable ground-truth output (27 dB) where
TEVoT's estimate lands close (25 dB) while TEVoT-NH (56 dB) and
TER-based (48 dB) wrongly call it acceptable, and Delay-based always
produces a fully corrupted image.  We reproduce the *relations*: at an
operating point where the true TER is nonzero, TEVoT's injected PSNR
is closest to the ground-truth PSNR, and Delay-based's TER=1 output is
garbage.
"""

import numpy as np
import pytest

from conftest import characterize_one, format_table, record_report
from repro.apps import quality_for_ters
from repro.core.features import build_feature_matrix
from repro.timing import sped_up_clock

APP_FUS = ("int_mul", "int_add")


def _pick_operating_point(bundles, streams, traces, conditions):
    """Find a (condition, speedup) where the true TER is small but
    nonzero — the regime where models genuinely disagree."""
    for ci, condition in enumerate(conditions):
        for speedup in (0.15, 0.10, 0.05):
            ters = {}
            for fu in APP_FUS:
                tclk = sped_up_clock(bundles[fu]["clocks"][condition],
                                     speedup)
                ters[fu] = float((traces[fu].delays[ci] > tclk).mean())
            total = sum(ters.values())
            if 0.0005 < total < 0.2:
                return ci, condition, speedup
    # fall back to the most aggressive point
    return 0, conditions[0], 0.15


def _run(trained_models, datasets, conditions, corpus_split, runner):
    _, test_images = corpus_split
    image = test_images[0]
    bundles = {fu: trained_models(fu) for fu in APP_FUS}
    streams = {fu: datasets(fu)["sobel"] for fu in APP_FUS}
    traces = {fu: characterize_one(runner, bundles[fu]["fu"],
                                   streams[fu], conditions)
              for fu in APP_FUS}
    ci, condition, speedup = _pick_operating_point(
        bundles, streams, traces, conditions)

    ters = {"truth": {}, "TEVoT": {}, "TEVoT-NH": {},
            "TER-based": {}, "Delay-based": {}}
    for fu in APP_FUS:
        bundle = bundles[fu]
        tclk = sped_up_clock(bundle["clocks"][condition], speedup)
        ters["truth"][fu] = float((traces[fu].delays[ci] > tclk).mean())
        X = build_feature_matrix(streams[fu], condition,
                                 bundle["tevot"].spec)
        ters["TEVoT"][fu] = float(
            (bundle["tevot"].predict_delay(X) > tclk).mean())
        X_nh = build_feature_matrix(streams[fu], condition,
                                    bundle["tevot_nh"].spec)
        ters["TEVoT-NH"][fu] = float(
            (bundle["tevot_nh"].predict_delay(X_nh) > tclk).mean())
        ters["TER-based"][fu] = bundle["ter_based"].timing_error_rate(
            condition, tclk)
        ters["Delay-based"][fu] = bundle["delay_based"].timing_error_rate(
            condition, tclk)

    results = {name: quality_for_ters("sobel", [image], t, seed=3)
               for name, t in ters.items()}
    return condition, speedup, ters, results


@pytest.mark.benchmark(group="fig4")
def test_fig4_sobel_output_quality(benchmark, trained_models, datasets,
                                   conditions, corpus_split,
                                   campaign_runner):
    condition, speedup, ters, results = benchmark.pedantic(
        _run, args=(trained_models, datasets, conditions, corpus_split,
                    campaign_runner),
        rounds=1, iterations=1)

    rows = []
    for name, q in results.items():
        ter_str = "/".join(f"{ters[name][fu]:.4f}" for fu in APP_FUS)
        rows.append([name, ter_str, f"{q['psnr']:.1f}dB",
                     "yes" if q["acceptable"] else "no"])
    record_report(
        f"Fig 4 - Sobel output quality at {condition.label}, "
        f"+{speedup:.0%} clock",
        format_table(["model", "TER (mul/add)", "PSNR", "acceptable"],
                     rows))

    # Delay-based injects TER=1 -> fully corrupted output
    assert results["Delay-based"]["psnr"] < 20.0
    # TEVoT's PSNR estimate is the closest to the ground truth's
    truth_psnr = results["truth"]["psnr"]
    gaps = {name: abs(results[name]["psnr"] - truth_psnr)
            for name in ("TEVoT", "TEVoT-NH", "TER-based")}
    assert gaps["TEVoT"] <= min(gaps["TEVoT-NH"], gaps["TER-based"]) + 3.0
