"""The "TEVoT is 100X faster than gate-level simulation" claim.

Compares per-cycle wall-clock cost of (a) SDF-annotated event-driven
gate-level simulation — the ModelSim stand-in — against (b) TEVoT
inference (feature build + forest prediction) on the same stream.
Also verifies the paper's scaling argument: simulation slows down with
circuit complexity while TEVoT's per-cycle inference cost stays flat.
"""

import time

import numpy as np
import pytest

from conftest import characterize_one, format_table, record_report
from repro.circuits import build_functional_unit
from repro.core import TEVoT, build_training_set
from repro.core.features import build_feature_matrix
from repro.sim.eventsim import EventDrivenSimulator
from repro.timing import DEFAULT_LIBRARY, OperatingCondition
from repro.workloads import stream_for_unit

COND = OperatingCondition(0.81, 0.0)
_ROWS = []


def _measure(fu_name, runner):
    fu = build_functional_unit(fu_name)
    n_sim_cycles = 60
    n_pred_cycles = 4000
    stream = stream_for_unit(fu_name, n_pred_cycles, seed=30)
    stream.name = f"speedup_{fu_name}"

    # train a small TEVoT so inference is realistic
    small = stream.head(400)
    trace = characterize_one(runner, fu, small, [COND])
    X, y = build_training_set(small, [COND], trace.delays)
    model = TEVoT().fit(X, y)

    # gate-level simulation cost
    delays = DEFAULT_LIBRARY.gate_delays(fu.netlist, COND)
    sim = EventDrivenSimulator(fu.netlist, delays)
    bits = stream.head(n_sim_cycles).bit_matrix(fu)
    t0 = time.perf_counter()
    sim.run_trace(bits)
    sim_per_cycle = (time.perf_counter() - t0) / n_sim_cycles

    # TEVoT inference cost (features + forest)
    t0 = time.perf_counter()
    features = build_feature_matrix(stream, COND, model.spec)
    model.predict_errors(features, clock_period=1000.0)
    tevot_per_cycle = (time.perf_counter() - t0) / n_pred_cycles

    return sim_per_cycle, tevot_per_cycle, fu.netlist.n_gates


@pytest.mark.benchmark(group="speedup")
@pytest.mark.parametrize("fu_name", ["int_add", "fp_mul"])
def test_speedup_vs_gate_level_sim(benchmark, fu_name, campaign_runner):
    sim_pc, tevot_pc, n_gates = benchmark.pedantic(
        _measure, args=(fu_name, campaign_runner), rounds=1, iterations=1)
    speedup = sim_pc / tevot_pc
    _ROWS.append([fu_name, n_gates, f"{sim_pc*1e3:.3f}ms",
                  f"{tevot_pc*1e6:.1f}us", f"{speedup:.0f}x"])
    # the paper claims ~100X on average; require a conservative floor
    assert speedup > 10.0, (fu_name, speedup)

    if len(_ROWS) == 2:
        record_report("Speedup - TEVoT inference vs gate-level simulation",
                      format_table(["FU", "gates", "sim/cycle",
                                    "TEVoT/cycle", "speedup"], _ROWS))
        # simulation cost grows with circuit size; TEVoT cost does not
        sim_costs = [float(r[2][:-2]) for r in _ROWS]
        assert sim_costs[1] > sim_costs[0]
