"""Table I: operating-condition parameters.

Asserts the corner grid matches the paper exactly and times its
construction (trivially cheap; included for completeness of the
per-table index).
"""

import pytest

from conftest import format_table, record_report
from repro.timing import (
    CLOCK_SPEEDUPS,
    paper_corner_grid,
    temperature_points,
    voltage_points,
)


@pytest.mark.benchmark(group="table1")
def test_table1_corner_grid(benchmark):
    grid = benchmark.pedantic(paper_corner_grid, rounds=1, iterations=1)

    volts = voltage_points()
    temps = temperature_points()
    assert len(grid) == 100
    assert len(volts) == 20 and volts[0] == 0.81 and volts[-1] == 1.00
    assert temps == [0.0, 25.0, 50.0, 75.0, 100.0]
    assert CLOCK_SPEEDUPS == (0.05, 0.10, 0.15)

    rows = [
        ["Voltage", "0.81V", "1.00V", "0.01V", len(volts)],
        ["Temperature", "0C", "100C", "25C", len(temps)],
        ["Clock speedups", "5%", "15%", "5%", len(CLOCK_SPEEDUPS)],
    ]
    record_report("Table I - operating condition parameters",
                  format_table(["Param", "Start", "End", "Step", "Points"],
                               rows))
