"""Tests for image generation, filters, profiling, injection, quality."""

import numpy as np
import pytest

from repro.apps import (
    FUHooks,
    app_stream,
    estimation_accuracy,
    gaussian_filter,
    image_corpus,
    is_acceptable,
    profile_filter,
    psnr,
    quality_for_ters,
    run_filter,
    run_filter_with_errors,
    sobel_filter,
    split_corpus,
    synthetic_image,
)
from repro.apps.inject import InjectingHooks


@pytest.fixture(scope="module")
def corpus():
    return image_corpus(4, size=16, seed=2)


class TestImages:
    def test_shape_dtype(self):
        img = synthetic_image(20, seed=0)
        assert img.shape == (20, 20)
        assert img.dtype == np.uint8

    def test_reproducible(self):
        np.testing.assert_array_equal(synthetic_image(16, 5),
                                      synthetic_image(16, 5))

    def test_images_are_structured_not_noise(self):
        """Neighbouring pixels correlate (unlike uniform noise)."""
        img = synthetic_image(32, seed=1).astype(float)
        horizontal_diff = np.abs(np.diff(img, axis=1)).mean()
        assert horizontal_diff < 30  # uniform noise would be ~85

    def test_split_corpus(self, corpus):
        train, test = split_corpus(corpus, train_fraction=0.25, seed=0)
        assert len(train) == 1
        assert len(test) == 3

    def test_split_validation(self, corpus):
        with pytest.raises(ValueError):
            split_corpus(corpus, train_fraction=1.5)

    def test_tiny_size_rejected(self):
        with pytest.raises(ValueError):
            synthetic_image(2)


class TestFilters:
    def test_sobel_flat_image_is_zero(self):
        flat = np.full((10, 10), 128, dtype=np.uint8)
        assert sobel_filter(flat).max() == 0

    def test_sobel_detects_vertical_edge(self):
        img = np.zeros((10, 10), dtype=np.uint8)
        img[:, 5:] = 255
        edges = sobel_filter(img)
        assert edges[5, 5] == 255      # on the edge
        assert edges[5, 2] == 0        # far from the edge

    def test_gaussian_smooths(self, corpus):
        img = corpus[0]
        blurred = gaussian_filter(img)
        rough_in = np.abs(np.diff(img.astype(int), axis=1)).mean()
        rough_out = np.abs(np.diff(blurred.astype(int), axis=1)).mean()
        assert rough_out <= rough_in

    def test_gaussian_matches_numpy_reference(self, corpus):
        from scipy.signal import convolve2d

        img = corpus[1].astype(np.int64)
        kernel = np.array([[1, 2, 1], [2, 4, 2], [1, 2, 1]])
        want = convolve2d(img, kernel, mode="same") >> 4
        got = gaussian_filter(corpus[1])
        inner = np.s_[1:-1, 1:-1]
        np.testing.assert_array_equal(
            got[inner], np.clip(want, 0, 255).astype(np.uint8)[inner])

    def test_unknown_filter_raises(self, corpus):
        with pytest.raises(ValueError):
            run_filter("median", corpus[0])


class TestProfiling:
    def test_profiled_streams_replay_filter(self, corpus):
        streams = profile_filter("sobel", corpus[:1])
        assert set(streams) == {"int_mul", "int_add"}
        # every mul operand pair must multiply to a consistent result
        s = streams["int_mul"]
        assert s.n_cycles > 100

    def test_mul_operands_are_coeff_pixel(self, corpus):
        streams = profile_filter("gauss", corpus[:1])
        coeffs = {1, 2, 4}
        a_vals = set(int(v) for v in streams["int_mul"].a[:50])
        assert a_vals <= coeffs

    def test_fp_stream_valid(self, corpus):
        s = app_stream("fp_add", "sobel", corpus[:1], max_cycles=200)
        assert s.n_cycles <= 200
        assert s.name == "sobel_fp_add"

    def test_app_stream_int_dispatch(self, corpus):
        s = app_stream("int_add", "sobel", corpus[:1])
        assert s.name == "sobel_int_add"


class TestInjection:
    def test_zero_ter_is_exact(self, corpus):
        clean = run_filter("sobel", corpus[0])
        noisy = run_filter_with_errors("sobel", corpus[0],
                                       {"int_add": 0.0, "int_mul": 0.0})
        np.testing.assert_array_equal(clean, noisy)

    def test_full_ter_destroys_output(self, corpus):
        clean = run_filter("sobel", corpus[0])
        noisy = run_filter_with_errors("sobel", corpus[0],
                                       {"int_add": 1.0, "int_mul": 1.0},
                                       seed=0)
        assert psnr(clean, noisy) < 15.0

    def test_injection_counters(self, corpus):
        hooks = InjectingHooks({"int_add": 1.0, "int_mul": 0.0}, seed=0)
        run_filter("gauss", corpus[0], hooks)
        assert hooks.injected["int_add"] == hooks.executed["int_add"]
        assert hooks.injected["int_mul"] == 0

    def test_invalid_ter_rejected(self):
        with pytest.raises(ValueError):
            InjectingHooks({"int_add": 1.5})

    def test_quality_for_ters_monotone(self, corpus):
        clean = quality_for_ters("sobel", corpus[:2],
                                 {"int_add": 0.0, "int_mul": 0.0})
        dirty = quality_for_ters("sobel", corpus[:2],
                                 {"int_add": 0.05, "int_mul": 0.05}, seed=0)
        assert clean["psnr"] > dirty["psnr"]
        assert clean["acceptable"] == 1.0
        assert dirty["acceptable"] == 0.0


class TestQualityMetrics:
    def test_psnr_identical_is_inf(self):
        img = synthetic_image(8, 0)
        assert psnr(img, img) == float("inf")

    def test_psnr_known_value(self):
        a = np.zeros((4, 4))
        b = np.full((4, 4), 255.0)
        assert psnr(a, b) == pytest.approx(0.0, abs=1e-9)

    def test_psnr_shape_mismatch(self):
        with pytest.raises(ValueError):
            psnr(np.zeros((2, 2)), np.zeros((3, 3)))

    def test_acceptability_threshold(self):
        assert is_acceptable(30.0)
        assert not is_acceptable(29.9)

    def test_estimation_accuracy_eq5(self):
        assert estimation_accuracy([1, 0, 1], [1, 1, 1]) == pytest.approx(2 / 3)
        with pytest.raises(ValueError):
            estimation_accuracy([], [])
