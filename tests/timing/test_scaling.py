"""Tests for the alpha-power V/T scaling model (ITD calibration)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.timing.scaling import DEFAULT_SCALING, ScalingParameters, delay_scale


class TestBasicProperties:
    def test_nominal_is_unity(self):
        assert delay_scale(1.0, 25.0) == pytest.approx(1.0)

    @given(v=st.floats(0.75, 1.1), t=st.floats(0.0, 100.0))
    @settings(max_examples=100, deadline=None)
    def test_positive(self, v, t):
        assert delay_scale(v, t) > 0

    @given(t=st.floats(0.0, 100.0))
    @settings(max_examples=50, deadline=None)
    def test_monotone_in_voltage(self, t):
        voltages = np.linspace(0.75, 1.1, 15)
        scales = [delay_scale(v, t) for v in voltages]
        assert all(a > b for a, b in zip(scales, scales[1:]))

    def test_low_voltage_is_much_slower(self):
        assert delay_scale(0.81, 25.0) > 1.3

    def test_below_threshold_raises(self):
        with pytest.raises(ValueError):
            delay_scale(0.4, 25.0)


class TestInverseTemperatureDependence:
    """Fig. 3's observation: at 0.81 V higher temperature *reduces*
    delay; at 0.90 V and 1.00 V it increases delay."""

    def test_itd_at_low_voltage(self):
        assert delay_scale(0.81, 100.0) < delay_scale(0.81, 0.0)

    def test_normal_dependence_at_090(self):
        assert delay_scale(0.90, 100.0) > delay_scale(0.90, 0.0)

    def test_normal_dependence_at_nominal(self):
        assert delay_scale(1.00, 100.0) > delay_scale(1.00, 0.0)

    def test_crossover_voltage_between_081_and_090(self):
        vstar = DEFAULT_SCALING.itd_crossover_voltage(50.0)
        assert 0.81 < vstar < 0.90

    def test_crossover_matches_numerical_sensitivity(self):
        """The analytic crossover is where d(delay)/dT flips sign."""
        vstar = DEFAULT_SCALING.itd_crossover_voltage(50.0)
        eps = 0.5
        below = delay_scale(vstar - 0.03, 50.0 + eps) - \
            delay_scale(vstar - 0.03, 50.0 - eps)
        above = delay_scale(vstar + 0.03, 50.0 + eps) - \
            delay_scale(vstar + 0.03, 50.0 - eps)
        assert below < 0 < above


class TestThreshold:
    def test_threshold_falls_with_temperature(self):
        p = DEFAULT_SCALING
        assert p.threshold(100.0) < p.threshold(0.0)

    def test_vth_offset_shifts_threshold(self):
        p = DEFAULT_SCALING
        assert p.threshold(25.0, 0.03) == pytest.approx(
            p.threshold(25.0) + 0.03)

    def test_offset_cells_derate_more_at_low_voltage(self):
        """Stacked (higher-Vth) cells slow down more when V drops."""
        p = DEFAULT_SCALING
        plain = p.delay_scale(0.81, 25.0, 0.0)
        stacked = p.delay_scale(0.81, 25.0, 0.03)
        assert stacked > plain

    def test_custom_parameters(self):
        p = ScalingParameters(vth_nominal=0.3, alpha=2.0)
        assert p.delay_scale(1.0, 25.0) == pytest.approx(1.0)
        assert p.delay_scale(0.8, 25.0) > 1.0
