"""Tests for operating conditions and the Table I grid."""

import pytest

from repro.timing.corners import (
    CLOCK_SPEEDUPS,
    OperatingCondition,
    fig3_corner_subset,
    nominal_condition,
    paper_corner_grid,
    sped_up_clock,
    temperature_points,
    voltage_points,
)


class TestTableIGrid:
    def test_exactly_100_conditions(self):
        assert len(paper_corner_grid()) == 100

    def test_20_voltage_points(self):
        v = voltage_points()
        assert len(v) == 20
        assert v[0] == pytest.approx(0.81)
        assert v[-1] == pytest.approx(1.00)
        steps = {round(b - a, 10) for a, b in zip(v, v[1:])}
        assert steps == {0.01}

    def test_5_temperature_points(self):
        t = temperature_points()
        assert t == [0.0, 25.0, 50.0, 75.0, 100.0]

    def test_three_speedups(self):
        assert CLOCK_SPEEDUPS == (0.05, 0.10, 0.15)

    def test_grid_is_unique(self):
        grid = paper_corner_grid()
        assert len(set(grid)) == 100

    def test_fig3_subset(self):
        subset = fig3_corner_subset()
        assert len(subset) == 9
        assert OperatingCondition(0.81, 0.0) in subset
        assert OperatingCondition(1.00, 100.0) in subset


class TestOperatingCondition:
    def test_label(self):
        assert OperatingCondition(0.81, 50.0).label == "(0.81,50)"

    def test_as_tuple(self):
        assert OperatingCondition(0.9, 25.0).as_tuple() == (0.9, 25.0)

    def test_nonpositive_voltage_rejected(self):
        with pytest.raises(ValueError):
            OperatingCondition(0.0, 25.0)

    def test_insane_temperature_rejected(self):
        with pytest.raises(ValueError):
            OperatingCondition(1.0, 400.0)

    def test_ordering_and_hash(self):
        a = OperatingCondition(0.81, 0.0)
        b = OperatingCondition(0.81, 25.0)
        assert a < b
        assert len({a, b, OperatingCondition(0.81, 0.0)}) == 2

    def test_nominal(self):
        assert nominal_condition() == OperatingCondition(1.00, 25.0)


class TestSpedUpClock:
    def test_reduces_period(self):
        assert sped_up_clock(1000.0, 0.10) == pytest.approx(1000.0 / 1.1)

    def test_zero_speedup_is_identity(self):
        assert sped_up_clock(800.0, 0.0) == 800.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            sped_up_clock(1000.0, -0.1)
