"""Tests for the cell library, STA, and SDF round-trip."""

import numpy as np
import pytest

from repro.circuits.adders import build_int_adder
from repro.circuits.builder import CircuitBuilder
from repro.circuits.netlist import GateType
from repro.timing.cells import DEFAULT_LIBRARY, CellLibrary, CellTiming
from repro.timing.corners import OperatingCondition
from repro.timing.sdf import instance_name, read_sdf, write_sdf
from repro.timing.sta import run_sta, static_delay


@pytest.fixture(scope="module")
def adder():
    return build_int_adder(8)


class TestCellLibrary:
    def test_every_gate_type_has_timing(self):
        for gtype in GateType:
            assert gtype in DEFAULT_LIBRARY.timings

    def test_cell_delay_nominal(self):
        d = DEFAULT_LIBRARY.cell_delay(GateType.NAND2, fanout=1)
        timing = DEFAULT_LIBRARY.timings[GateType.NAND2]
        assert d == pytest.approx(timing.intrinsic + timing.load)

    def test_fanout_increases_delay(self):
        lib = DEFAULT_LIBRARY
        assert lib.cell_delay(GateType.NAND2, 4) > lib.cell_delay(GateType.NAND2, 1)

    def test_condition_derates(self):
        lib = DEFAULT_LIBRARY
        slow = lib.cell_delay(GateType.NAND2, 1, OperatingCondition(0.81, 0))
        assert slow > lib.cell_delay(GateType.NAND2, 1)

    def test_gate_delays_vector(self, adder):
        delays = DEFAULT_LIBRARY.gate_delays(adder)
        assert delays.shape == (len(adder.gates),)
        assert np.all(delays >= 0)

    def test_scaling_not_uniform_across_cell_types(self):
        """Per-cell Vth offsets: XOR derates more than NOT at low V."""
        lib = DEFAULT_LIBRARY
        cond = OperatingCondition(0.81, 0)
        xor_ratio = (lib.cell_delay(GateType.XOR2, 1, cond)
                     / lib.cell_delay(GateType.XOR2, 1))
        not_ratio = (lib.cell_delay(GateType.NOT, 1, cond)
                     / lib.cell_delay(GateType.NOT, 1))
        assert xor_ratio > not_ratio * 1.01

    def test_delay_matrix_shape(self, adder):
        conds = [OperatingCondition(0.81, 0), OperatingCondition(1.0, 25)]
        m = DEFAULT_LIBRARY.delay_matrix(adder, conds)
        assert m.shape == (2, len(adder.gates))

    def test_missing_cell_type_raises(self, adder):
        lib = CellLibrary(timings={GateType.CONST0: CellTiming(0, 0)})
        with pytest.raises(KeyError):
            lib.gate_delays(adder)


class TestSTA:
    def test_critical_delay_positive(self, adder):
        assert static_delay(adder) > 0

    def test_critical_path_is_connected(self, adder):
        result = run_sta(adder)
        path = result.critical_path
        assert len(path) >= 2
        driver = adder.driver_of()
        for upstream, downstream in zip(path, path[1:]):
            gate = driver[downstream]
            assert upstream in gate.inputs

    def test_critical_path_starts_at_input_or_const(self, adder):
        result = run_sta(adder)
        first = result.critical_path[0]
        driver = adder.driver_of()
        assert first in adder.primary_inputs or not driver[first].inputs

    def test_arrival_monotone_along_path(self, adder):
        result = run_sta(adder)
        arr = [result.arrival[n] for n in result.critical_path]
        assert all(b >= a for a, b in zip(arr, arr[1:]))

    def test_low_voltage_increases_static_delay(self, adder):
        slow = static_delay(adder, OperatingCondition(0.81, 0))
        fast = static_delay(adder, OperatingCondition(1.00, 25))
        assert slow > fast * 1.2

    def test_error_free_clock_alias(self, adder):
        result = run_sta(adder)
        assert result.error_free_clock == result.critical_delay

    def test_precomputed_delays_override(self, adder):
        ones = np.ones(len(adder.gates))
        result = run_sta(adder, gate_delays=ones)
        assert result.critical_delay == pytest.approx(adder.depth(), abs=1e-9)

    def test_wrong_delay_count_raises(self, adder):
        with pytest.raises(ValueError):
            run_sta(adder, gate_delays=np.ones(3))

    def test_empty_netlist(self):
        from repro.circuits.netlist import Netlist

        result = run_sta(Netlist())
        assert result.critical_delay == 0.0


class TestSDFRoundtrip:
    def test_write_and_read_back(self, adder, tmp_path):
        cond = OperatingCondition(0.85, 75)
        delays = DEFAULT_LIBRARY.gate_delays(adder, cond)
        path = write_sdf(adder, delays, tmp_path / "a.sdf", cond)
        sdf = read_sdf(path)
        assert sdf.design == adder.name
        assert sdf.voltage == pytest.approx(0.85)
        assert sdf.temperature == pytest.approx(75)
        np.testing.assert_allclose(sdf.delay_vector(adder), delays, atol=1e-3)

    def test_condition_property(self, adder, tmp_path):
        cond = OperatingCondition(0.9, 25)
        delays = DEFAULT_LIBRARY.gate_delays(adder, cond)
        sdf = read_sdf(write_sdf(adder, delays, tmp_path / "b.sdf", cond))
        assert sdf.condition == cond

    def test_sta_from_sdf_matches_direct(self, adder, tmp_path):
        cond = OperatingCondition(0.81, 100)
        delays = DEFAULT_LIBRARY.gate_delays(adder, cond)
        sdf = read_sdf(write_sdf(adder, delays, tmp_path / "c.sdf", cond))
        via_sdf = run_sta(adder, gate_delays=sdf.delay_vector(adder))
        direct = run_sta(adder, cond)
        assert via_sdf.critical_delay == pytest.approx(
            direct.critical_delay, rel=1e-5)

    def test_wrong_vector_length_raises(self, adder, tmp_path):
        with pytest.raises(ValueError):
            write_sdf(adder, np.ones(2), tmp_path / "d.sdf")

    def test_missing_instance_raises(self, adder, tmp_path):
        delays = DEFAULT_LIBRARY.gate_delays(adder)
        path = write_sdf(adder, delays, tmp_path / "e.sdf")
        text = path.read_text().replace(f"(INSTANCE {instance_name(0)})",
                                        "(INSTANCE zz)")
        path.write_text(text)
        sdf = read_sdf(path)
        with pytest.raises(KeyError):
            sdf.delay_vector(adder)

    def test_non_sdf_file_raises(self, tmp_path):
        bad = tmp_path / "bad.sdf"
        bad.write_text("hello world")
        with pytest.raises(ValueError):
            read_sdf(bad)
