"""Tests for the deterministic fault-injection harness."""

import os
import subprocess
import sys
from pathlib import Path

import pytest

import repro
from repro.testing import faults

SRC = str(Path(next(iter(repro.__path__))).resolve().parent)


@pytest.fixture(autouse=True)
def clean_fault_state(monkeypatch):
    monkeypatch.delenv(faults.PLAN_ENV, raising=False)
    monkeypatch.delenv(faults.STATE_ENV, raising=False)
    faults.reset()
    yield
    faults.reset()


class TestParsePlan:
    def test_single_rule(self):
        (rule,) = faults.parse_plan("a.site:raise:3")
        assert rule == faults.FaultRule("a.site", "raise", 3)
        assert rule.tag == "a.site:raise:3"

    def test_nth_defaults_to_one(self):
        (rule,) = faults.parse_plan("a.site:exit")
        assert rule.nth == 1

    def test_multiple_rules_and_whitespace(self):
        rules = faults.parse_plan("a:raise:1, b:exit:2 ,")
        assert [(r.site, r.action, r.nth) for r in rules] == [
            ("a", "raise", 1), ("b", "exit", 2)]

    def test_bad_action_rejected(self):
        with pytest.raises(faults.FaultPlanError, match="bad fault action"):
            faults.parse_plan("a:explode:1")

    def test_bad_count_rejected(self):
        with pytest.raises(faults.FaultPlanError, match="bad fault count"):
            faults.parse_plan("a:raise:soon")
        with pytest.raises(faults.FaultPlanError, match=">= 1"):
            faults.parse_plan("a:raise:0")

    def test_malformed_rule_rejected(self):
        with pytest.raises(faults.FaultPlanError, match="site:action:nth"):
            faults.parse_plan("a:raise:1:extra")


class TestRegistry:
    def test_register_and_enumerate(self):
        site = faults.register_site("test.registry.site")
        assert site in faults.registered_sites()
        assert site not in faults.persistence_sites()

    def test_persistence_flag_is_sticky(self):
        site = "test.registry.sticky"
        faults.register_site(site, persistence=True)
        faults.register_site(site)  # re-registering cannot demote it
        assert site in faults.persistence_sites()

    def test_production_persistence_sites_registered(self):
        # importing the persistence layers must register their sites —
        # the chaos suite enumerates exactly these
        import repro.flow.tracestore  # noqa: F401
        import repro.serve.registry  # noqa: F401
        import repro.serve.requestlog  # noqa: F401

        assert {"tracestore.manifest.replace", "tracestore.blob.write",
                "campaign.journal.replace", "registry.manifest.replace",
                "registry.artifact.write", "requestlog.append"} \
            <= set(faults.persistence_sites())


class TestTrigger:
    def test_unarmed_is_noop(self):
        assert faults.trigger("test.trig.a") is None
        assert faults.trigger(None) is None

    def test_fires_on_nth_hit_only_once(self, monkeypatch):
        monkeypatch.setenv(faults.PLAN_ENV, "test.trig.b:raise:2")
        assert faults.trigger("test.trig.b") is None
        assert faults.trigger("test.trig.b") == "raise"
        assert faults.trigger("test.trig.b") is None  # already fired

    def test_other_sites_unaffected(self, monkeypatch):
        monkeypatch.setenv(faults.PLAN_ENV, "test.trig.c:raise:1")
        assert faults.trigger("test.trig.other") is None
        assert faults.trigger("test.trig.c") == "raise"

    def test_reset_forgets_hits(self, monkeypatch):
        monkeypatch.setenv(faults.PLAN_ENV, "test.trig.d:raise:1")
        assert faults.trigger("test.trig.d") == "raise"
        faults.reset()
        assert faults.trigger("test.trig.d") == "raise"

    def test_state_dir_makes_firing_global(self, monkeypatch, tmp_path):
        monkeypatch.setenv(faults.PLAN_ENV, "test.trig.e:raise:1")
        monkeypatch.setenv(faults.STATE_ENV, str(tmp_path))
        assert faults.trigger("test.trig.e") == "raise"
        markers = list(tmp_path.glob("fired-*"))
        assert len(markers) == 1
        faults.reset()  # a "new process" must still honor the marker
        assert faults.trigger("test.trig.e") is None


class TestFaultPoint:
    def test_raise_action(self, monkeypatch):
        monkeypatch.setenv(faults.PLAN_ENV, "test.fp.a:raise:1")
        with pytest.raises(faults.FaultInjected, match="test.fp.a"):
            faults.fault_point("test.fp.a")

    def test_torn_write_unsupported_at_plain_point(self, monkeypatch):
        monkeypatch.setenv(faults.PLAN_ENV, "test.fp.b:torn-write:1")
        with pytest.raises(faults.FaultPlanError, match="torn-write"):
            faults.fault_point("test.fp.b")

    def test_exit_action_kills_process(self):
        code = ("from repro.testing import faults\n"
                "faults.fault_point('test.fp.exit')\n")
        env = dict(os.environ, PYTHONPATH=SRC)
        env[faults.PLAN_ENV] = "test.fp.exit:exit:1"
        proc = subprocess.run([sys.executable, "-c", code], env=env)
        assert proc.returncode == faults.EXIT_CODE


class TestHangAction:
    def test_hang_parses(self):
        (rule,) = faults.parse_plan("a.site:hang:2")
        assert rule.action == "hang"

    def test_hang_seconds_env_and_fallback(self, monkeypatch):
        monkeypatch.delenv(faults.HANG_ENV, raising=False)
        assert faults.hang_seconds() == faults.DEFAULT_HANG_SECONDS
        monkeypatch.setenv(faults.HANG_ENV, "2.5")
        assert faults.hang_seconds() == 2.5
        monkeypatch.setenv(faults.HANG_ENV, "soon")
        assert faults.hang_seconds() == faults.DEFAULT_HANG_SECONDS

    def test_trigger_sleeps_then_proceeds(self, monkeypatch):
        """``hang`` wedges inside trigger() and then returns None — to
        the caller the hit looks clean; only wall-clock (and a
        watchdog) can tell the difference."""
        import time

        monkeypatch.setenv(faults.PLAN_ENV, "test.hang.a:hang:1")
        monkeypatch.setenv(faults.HANG_ENV, "0.2")
        t0 = time.monotonic()
        assert faults.trigger("test.hang.a") is None
        assert time.monotonic() - t0 >= 0.2
        # fired once: the next hit is instantaneous
        t0 = time.monotonic()
        assert faults.trigger("test.hang.a") is None
        assert time.monotonic() - t0 < 0.1

    def test_hang_respects_global_state_marker(self, monkeypatch,
                                               tmp_path):
        import time

        monkeypatch.setenv(faults.PLAN_ENV, "test.hang.b:hang:1")
        monkeypatch.setenv(faults.STATE_ENV, str(tmp_path))
        monkeypatch.setenv(faults.HANG_ENV, "0.2")
        assert faults.trigger("test.hang.b") is None
        faults.reset()  # a "respawned worker" honors the marker
        t0 = time.monotonic()
        assert faults.trigger("test.hang.b") is None
        assert time.monotonic() - t0 < 0.1


class TestCrashTokens:
    def test_tokens_decrement_then_unlink(self, tmp_path):
        token = tmp_path / "crash"
        token.write_text("2")
        assert faults.consume_crash_token(str(token)) is True
        assert token.read_text() == "1"
        assert faults.consume_crash_token(str(token)) is True
        assert not token.exists()
        assert faults.consume_crash_token(str(token)) is False

    def test_non_numeric_body_is_one_token(self, tmp_path):
        token = tmp_path / "crash"
        token.write_text("boom")
        assert faults.consume_crash_token(str(token)) is True
        assert not token.exists()

    def test_missing_or_empty_path(self, tmp_path):
        assert faults.consume_crash_token("") is False
        assert faults.consume_crash_token(str(tmp_path / "nope")) is False
