"""Remote Workspace flow tests: parity with local roots + resilience.

``Workspace("http://host:port")`` must produce byte-identical trace
keys, model keys, and predictions to ``Workspace(local_dir)`` — and a
campaign that loses the store service mid-run must fail with a typed
error whose journaled progress survives a service restart.
"""

import numpy as np
import pytest

from repro.api import CampaignSpec, TrainSpec, Workspace
from repro.circuits import build_functional_unit
from repro.flow import CampaignJob, CampaignRunner
from repro.remote import RemoteStoreError, RemoteTraceStore, StoreService
from repro.timing import DEFAULT_LIBRARY, OperatingCondition
from repro.workloads import random_stream

CYCLES = 120


@pytest.fixture()
def service(tmp_path):
    svc = StoreService(tmp_path / "svc", port=0)
    svc.start_background()
    yield svc
    svc.close()


def _campaign_spec():
    spec = CampaignSpec(fus=["int_add"])
    return spec.replace(stream=spec.stream.replace(cycles=CYCLES))


def _train_spec():
    spec = TrainSpec(fu="int_add", publish=True)
    return spec.replace(stream=spec.stream.replace(cycles=CYCLES))


class TestRemoteWorkspaceParity:
    def test_flow_is_byte_identical_to_local(self, service, tmp_path):
        """characterize → train → publish → predict through the URL
        workspace lands the same keys and numbers as a local root."""
        local = Workspace(tmp_path / "local")
        remote = Workspace(service.url)
        assert remote.url == service.url and remote.root is None

        r_local = local.characterize(_campaign_spec())
        r_remote = remote.characterize(_campaign_spec())
        assert sorted(local.store.entries()) \
            == sorted(remote.store.entries())
        np.testing.assert_array_equal(r_remote.traces[0].delays,
                                      r_local.traces[0].delays)

        t_local = local.train(_train_spec())
        t_remote = remote.train(_train_spec())
        assert t_remote.record.key == t_local.record.key
        assert t_remote.record.model_id == t_local.record.model_id

        # second characterize is a pure remote cache hit
        again = remote.characterize(_campaign_spec())
        assert again.stats.hits == 1 and again.stats.misses == 0
        np.testing.assert_array_equal(again.traces[0].delays,
                                      r_local.traces[0].delays)

    def test_resolve_roundtrips_predictions(self, service, tmp_path):
        local = Workspace(tmp_path / "local")
        remote = Workspace(service.url)
        t_local = local.train(_train_spec())
        remote.train(_train_spec())
        model, record = remote.registry.resolve("int_add")
        assert record.key == t_local.record.key
        stream = random_stream(32, operand_width=8, seed=3)
        cond = OperatingCondition(0.90, 25.0)
        np.testing.assert_array_equal(
            model.predict_stream_delays(stream, cond),
            t_local.model.predict_stream_delays(stream, cond))


class TestCampaignOutage:
    def test_service_down_mid_campaign_is_typed(self, service):
        """The store service dying mid-campaign surfaces as a
        RemoteStoreError, not a bare socket error."""
        store = RemoteTraceStore(service.url, retries=0, timeout=2.0)
        store.entries()  # complete the handshake while it's up
        service.close()
        fu = build_functional_unit("int_add", width=8)
        stream = random_stream(CYCLES, operand_width=8, seed=0)
        runner = CampaignRunner(store=store, use_cache=True)
        with pytest.raises(RemoteStoreError, match="cannot reach"):
            runner.run([CampaignJob(
                fu, stream, [OperatingCondition(0.90, 25.0)],
                DEFAULT_LIBRARY)])

    def test_journal_resumes_after_service_restart(self, service):
        """Shards journaled before the service dies are replayed from
        the restarted service: the rerun resumes instead of restarting
        from cycle zero."""
        fu = build_functional_unit("int_add", width=8)
        stream = random_stream(400, operand_width=8, seed=0)
        stream.name = "outage"
        conds = [OperatingCondition(0.90, 25.0)]
        job = CampaignJob(fu, stream, conds, DEFAULT_LIBRARY)

        store = RemoteTraceStore(service.url, retries=0)
        # die on the final trace put: every shard is already journaled
        store.put = _raise_gone
        runner = CampaignRunner(store=store, use_cache=True,
                                shard_cycles=100)
        with pytest.raises(RemoteStoreError, match="gone away"):
            runner.run([job])

        root, _ = service.root, service.close()
        svc2 = StoreService(root, port=0)
        svc2.start_background()
        try:
            store2 = RemoteTraceStore(svc2.url, retries=0)
            runner2 = CampaignRunner(store=store2, use_cache=True,
                                     shard_cycles=100)
            (trace,) = runner2.run([job])
            assert runner2.stats.resumed_shards == 4
            # resumed result equals an uncached reference run
            (ref,) = CampaignRunner(use_cache=False).run([job])
            np.testing.assert_array_equal(trace.delays, ref.delays)
            # the journal is consumed once the final trace lands
            assert "outage" in " ".join(
                e["stream"] for e in store2.entries().values())
        finally:
            svc2.close()


def _raise_gone(*args, **kwargs):
    raise RemoteStoreError("store service gone away")
