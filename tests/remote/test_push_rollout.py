"""Push-based model rollout tests.

A serving engine backed by a remote registry subscribes to the store
service's event feed; a publish reaches every replica without anyone
calling ``POST /models/refresh``.  These tests cover the subscriber
thread (reconnect, reset, fault injection) and the engine/cluster/
server integration, including the zero-refresh-polls guarantee.
"""

import time

import numpy as np
import pytest

from repro.circuits import build_functional_unit
from repro.core import TEVoT, build_training_set
from repro.flow import CampaignJob, CampaignRunner
from repro.remote import RemoteModelRegistry, StoreService
from repro.serve import (
    ClusterEngine,
    ModelRegistry,
    PredictionEngine,
    PredictRequest,
    PredictionServer,
    ServeClient,
)
from repro.testing import faults
from repro.timing import OperatingCondition
from repro.workloads import random_stream

COND = OperatingCondition(0.90, 25.0)


@pytest.fixture()
def service(tmp_path):
    svc = StoreService(tmp_path / "svc", port=0)
    svc.start_background()
    yield svc
    svc.close()


@pytest.fixture()
def registry(service):
    return RemoteModelRegistry(service.url, retries=0)


@pytest.fixture(autouse=True)
def _clean_faults(monkeypatch):
    monkeypatch.delenv(faults.PLAN_ENV, raising=False)
    monkeypatch.delenv(faults.STATE_ENV, raising=False)
    faults.reset()
    yield
    faults.reset()


def _train_and_publish(registry, fu, stream):
    trace = CampaignRunner(use_cache=False).run(
        [CampaignJob(fu, stream, [COND])])[0]
    model = TEVoT(operand_width=fu.operand_width)
    X, y = build_training_set(stream, [COND], trace.delays, spec=model.spec)
    model.fit(X, y)
    return registry.publish(model, fu=fu, conditions=[COND],
                            train_stream=stream)


def _requests(n, seed=11):
    stream = random_stream(n, operand_width=8, seed=seed)
    return [PredictRequest(fu="int_add", a=int(stream.a[i]),
                           b=int(stream.b[i]), voltage=COND.voltage,
                           temperature=COND.temperature, stream_id="s0")
            for i in range(n)]


def _wait_for(predicate, timeout_s=10.0, interval_s=0.05):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval_s)
    return predicate()


class TestEventSubscriber:
    def test_publish_triggers_callback(self, registry):
        hits = []
        sub = registry.subscribe_events(lambda: hits.append(1),
                                        poll_timeout_s=0.5)
        try:
            assert _wait_for(lambda: sub.stats()["since"] is not None)
            registry.publish({"w": 1}, fu="int_add")
            assert _wait_for(lambda: len(hits) >= 1)
            stats = sub.stats()
            assert stats["refreshes"] >= 1
            assert stats["events_seen"] >= 1
        finally:
            sub.close()
        assert not sub.alive

    def test_survives_injected_poll_fault(self, registry, monkeypatch):
        """An exception inside the poll loop is survived with backoff;
        the subscriber reconnects and still catches the next publish."""
        monkeypatch.setenv(faults.PLAN_ENV, "remote.events.poll:raise:1")
        faults.reset()
        hits = []
        sub = registry.subscribe_events(lambda: hits.append(1),
                                        poll_timeout_s=0.5,
                                        backoff_s=0.05)
        try:
            assert _wait_for(lambda: sub.stats()["reconnects"] >= 1)
            assert _wait_for(lambda: sub.stats()["since"] is not None)
            registry.publish({"w": 1}, fu="int_add")
            assert _wait_for(lambda: len(hits) >= 1)
            assert sub.stats()["errors"] >= 1
        finally:
            sub.close()

    def test_service_restart_resyncs_via_reset(self, service, registry):
        """Kill + restart the service on the same port: the subscriber
        rides out the outage, detects the renumbered feed (reset), and
        refreshes defensively."""
        hits = []
        sub = registry.subscribe_events(lambda: hits.append(1),
                                        poll_timeout_s=0.3,
                                        backoff_s=0.05)
        try:
            assert _wait_for(lambda: sub.stats()["since"] is not None)
            # grow the feed past the restarted service's seq=0 so the
            # old cursor is in its future → reset
            for i in range(3):
                registry.publish({"w": i}, fu="int_add")
            assert _wait_for(lambda: len(hits) >= 1)
            host, port = service.address
            service.close()
            assert _wait_for(lambda: sub.stats()["errors"] >= 1)
            svc2 = StoreService(service.root, host=host, port=port)
            svc2.start_background()
            try:
                assert _wait_for(lambda: sub.stats()["resets"] >= 1)
                assert sub.stats()["refreshes"] >= 2
            finally:
                svc2.close()
        finally:
            sub.close()

    def test_callback_error_counted_not_fatal(self, registry):
        def boom():
            raise RuntimeError("callback exploded")

        sub = registry.subscribe_events(boom, poll_timeout_s=0.5)
        try:
            assert _wait_for(lambda: sub.stats()["since"] is not None)
            registry.publish({"w": 1}, fu="int_add")
            assert _wait_for(lambda: sub.stats()["callback_errors"] >= 1)
            assert sub.alive
        finally:
            sub.close()


class TestEnginePush:
    def test_remote_registry_auto_subscribes(self, service):
        engine = PredictionEngine(registry=service.url, sim_fallback=True)
        try:
            assert engine._push is not None
            assert "push" in engine.stats_dict()
        finally:
            engine.close()

    def test_push_rollout_false_opts_out(self, service):
        engine = PredictionEngine(registry=service.url, sim_fallback=True,
                                  push_rollout=False)
        try:
            assert engine._push is None
        finally:
            engine.close()

    def test_local_registry_never_subscribes(self, tmp_path):
        engine = PredictionEngine(registry=tmp_path / "reg",
                                  sim_fallback=True)
        try:
            assert engine._push is None
        finally:
            engine.close()

    def test_publish_rolls_out_without_refresh(self, registry):
        fu = build_functional_unit("int_add", width=8)
        stream = random_stream(60, operand_width=8, seed=0)
        stream.name = "push_v1"
        _train_and_publish(registry, fu, stream)
        engine = PredictionEngine(registry=registry, sim_fallback=False)
        try:
            (pred,) = engine.predict_batch(_requests(1))
            assert pred.model_id == "int_add/tevot/v1"
            stream2 = random_stream(60, operand_width=8, seed=5)
            stream2.name = "push_v2"
            _train_and_publish(registry, fu, stream2)
            # nobody calls engine.refresh(); the push subscriber does
            assert _wait_for(
                lambda: engine.stats_dict()["push"]["refreshes"] >= 1)
            (pred,) = engine.predict_batch(_requests(1))
            assert pred.model_id == "int_add/tevot/v2"
        finally:
            engine.close()


class TestClusterPush:
    def test_v2_reaches_every_worker_by_push(self, registry):
        fu = build_functional_unit("int_add", width=8)
        stream = random_stream(60, operand_width=8, seed=0)
        stream.name = "clp_v1"
        _train_and_publish(registry, fu, stream)
        with ClusterEngine(registry=registry, workers=2,
                           sim_fallback=False) as cluster:
            assert cluster._push is not None
            (pred,) = cluster.predict_batch(_requests(1))
            assert pred.model_id == "int_add/tevot/v1"

            stream2 = random_stream(60, operand_width=8, seed=5)
            stream2.name = "clp_v2"
            _train_and_publish(registry, fu, stream2)
            assert _wait_for(
                lambda: cluster.stats_dict()["push"]["refreshes"] >= 1)
            manifests = {r["manifest"] for r in cluster.workers_dict()}
            assert manifests == {registry.manifest_fingerprint()}
            (pred,) = cluster.predict_batch(_requests(1))
            assert pred.model_id == "int_add/tevot/v2"

    def test_remote_cluster_bit_exact_with_local_engine(self, registry,
                                                        service):
        """Worker replicas dialing the service are bit-exact with a
        single-process engine on the service's own directory."""
        fu = build_functional_unit("int_add", width=8)
        stream = random_stream(60, operand_width=8, seed=0)
        stream.name = "clx_v1"
        _train_and_publish(registry, fu, stream)
        single = PredictionEngine(registry=service.root / "registry",
                                  sim_fallback=False)
        reqs = _requests(16)
        want = [p.delay_ps for p in single.predict_batch(reqs)]
        with ClusterEngine(registry=registry, workers=2,
                           sim_fallback=False) as cluster:
            got = [p.delay_ps for p in cluster.predict_batch(reqs)]
        np.testing.assert_array_equal(got, want)


class TestServerCounters:
    def test_refresh_calls_counts_manual_polls(self, tmp_path):
        engine = PredictionEngine(registry=tmp_path / "reg",
                                  sim_fallback=True)
        server = PredictionServer(engine, port=0)
        server.start_background()
        try:
            host, port = server.address
            client = ServeClient(host, port)
            assert server.stats()["refresh_calls"] == 0
            client._call("/models/refresh", {})
            assert server.stats()["refresh_calls"] == 1
        finally:
            server.close()
