"""Remote store service + client tests.

The bar for :mod:`repro.remote` is drop-in equivalence: every key,
fingerprint, and resolved model that crosses the wire must be
byte-identical to what the same flow produces against a local root —
and every failure mode (service down, torn blob stream, version skew,
service restart) must surface as a loud typed error or heal cleanly.
"""

import numpy as np
import pytest

from repro.flow import StoreLockTimeout, TraceStore, open_trace_store
from repro.remote import (
    RemoteChecksumError,
    RemoteModelRegistry,
    RemoteProtocolError,
    RemoteStoreError,
    RemoteTraceStore,
    StoreService,
)
from repro.serve import ModelRegistry, open_model_registry
from repro.sim.dta import DelayTrace
from repro.testing import faults
from repro.timing import DEFAULT_LIBRARY, OperatingCondition

CONDS = [OperatingCondition(0.81, 0.0), OperatingCondition(1.00, 100.0)]


@pytest.fixture()
def service(tmp_path):
    svc = StoreService(tmp_path / "svc", port=0)
    svc.start_background()
    yield svc
    svc.close()


@pytest.fixture()
def store(service):
    return RemoteTraceStore(service.url, retries=0)


@pytest.fixture()
def registry(service):
    return RemoteModelRegistry(service.url, retries=0)


@pytest.fixture(autouse=True)
def _clean_faults(monkeypatch):
    monkeypatch.delenv(faults.PLAN_ENV, raising=False)
    monkeypatch.delenv(faults.STATE_ENV, raising=False)
    faults.reset()
    yield
    faults.reset()


def _trace(value=1.0, corners=2, cycles=8):
    delays = np.full((corners, cycles), float(value), dtype=np.float32)
    return DelayTrace(delays, CONDS[:corners])


class TestTraceRoundTrip:
    def test_put_get_contains(self, store):
        assert store.get("k0", CONDS) is None
        assert "k0" not in store
        store.put("k0", _trace(3.5), fu_name="int_add", stream_name="s0",
                  library=DEFAULT_LIBRARY, backend="bitpacked")
        assert "k0" in store
        back = store.get("k0", CONDS)
        np.testing.assert_array_equal(back.delays, _trace(3.5).delays)
        assert back.conditions == CONDS

    def test_entry_matches_local_put(self, store, service):
        """A remote put writes the exact manifest entry a local put
        against the service's own root would have written."""
        store.put("k1", _trace(), fu_name="fp_mul", stream_name="s1",
                  library=DEFAULT_LIBRARY, backend="compiled")
        local = TraceStore(service.root / "traces")
        entry = local.entries()["k1"]
        remote_entry = store.entries()["k1"]
        for field in ("fu", "stream", "library", "backend", "n_conditions",
                      "n_cycles"):
            assert entry[field] == remote_entry[field], field

    def test_throughput_history(self, store):
        assert store.get_throughput("int_add", "bitpacked", 2) is None
        store.record_throughput("int_add", "bitpacked", 2, 1000.0)
        assert store.get_throughput("int_add", "bitpacked", 2) \
            == pytest.approx(1000.0)
        assert store.get_throughput_many(
            [("int_add", "bitpacked", 2), ("fp_mul", "bitpacked", 2)]) \
            == [pytest.approx(1000.0), None]
        assert len(store.throughput_history()) == 1
        assert store.clear_throughput() == 1
        assert store.throughput_history() == {}

    def test_journal_roundtrip(self, store):
        kw = dict(backend="bitpacked", n_corners=2, n_cycles=8)
        assert store.load_journal("j0", **kw) is None
        plan = [(0, 2, 0, 4), (0, 2, 4, 8)]
        part = np.arange(8, dtype=np.float32).reshape(2, 4)
        store.record_journal_shard("j0", plan=plan, shard=(0, 2, 0, 4),
                                   delays=part, **kw)
        got_plan, done = store.load_journal("j0", **kw)
        assert got_plan == plan
        assert done[0][0] == (0, 2, 0, 4)
        np.testing.assert_array_equal(done[0][1], part)
        store.clear_journal("j0")
        assert store.load_journal("j0", **kw) is None

    def test_gc_and_stats(self, store):
        store.put("g0", _trace(), fu_name="int_add", stream_name="s",
                  library=DEFAULT_LIBRARY)
        assert store.size_bytes() > 0
        report = store.gc(max_bytes=0)
        assert len(report.removed_blobs) == 1
        assert store.entries() == {}


class TestRemoteRegistry:
    def test_publish_resolve_key_parity(self, registry, tmp_path):
        """Remote and local publishes of the same model derive the
        same key and model_id (byte-identical identity)."""
        model = {"weights": [1, 2, 3]}
        local = ModelRegistry(tmp_path / "local")
        r_local = local.publish(model, fu="int_add")
        r_remote = registry.publish(model, fu="int_add")
        assert r_remote.key == r_local.key
        assert r_remote.model_id == r_local.model_id == "int_add/tevot/v1"
        loaded, found = registry.resolve("int_add")
        assert loaded == model
        assert found.key == r_remote.key

    def test_manifest_fingerprint_matches_service_root(self, registry,
                                                       service):
        registry.publish({"w": 1}, fu="int_add")
        local = ModelRegistry(service.root / "registry")
        assert registry.manifest_fingerprint() \
            == local.manifest_fingerprint()
        assert len(registry) == len(local) == 1

    def test_resolve_missing_raises_lookup_error(self, registry):
        with pytest.raises(LookupError, match="fu='fp_div'"):
            registry.resolve("fp_div")

    def test_unknown_kind_rejected_client_side(self, registry):
        with pytest.raises(ValueError, match="kind"):
            registry.publish({"w": 1}, fu="int_add", kind="nonsense")

    def test_gc_keeps_newest(self, registry):
        for i in range(3):
            registry.publish({"w": i}, fu="int_add")
        report = registry.gc(keep=1)
        assert len(report.removed_files) == 2
        _, found = registry.resolve("int_add")
        assert found.version == 3

    def test_restart_loses_no_model(self, service, registry):
        """Kill the service after a publish; a fresh service on the
        same root still resolves the model (durability)."""
        record = registry.publish({"w": 42}, fu="int_add")
        root, _ = service.root, service.close()
        svc2 = StoreService(root, port=0)
        svc2.start_background()
        try:
            reg2 = RemoteModelRegistry(svc2.url, retries=0)
            model, found = reg2.resolve("int_add")
            assert model == {"w": 42}
            assert found.key == record.key
        finally:
            svc2.close()


class TestFailureModes:
    def test_service_down_typed_error(self, service):
        service.close()
        store = RemoteTraceStore(service.url, retries=0, timeout=2.0)
        with pytest.raises(RemoteStoreError, match="cannot reach"):
            store.entries()

    def test_http_error_carries_status(self, registry):
        with pytest.raises(RemoteStoreError) as err:
            registry._call("/no/such/path")
        assert err.value.status == 404

    def test_torn_stream_retried_once_then_ok(self, store, monkeypatch):
        store.put("t0", _trace(2.0), fu_name="int_add", stream_name="s",
                  library=DEFAULT_LIBRARY)
        monkeypatch.setenv(faults.PLAN_ENV,
                           "remote.service.stream:torn-write:1")
        faults.reset()
        back = store.get("t0", CONDS)  # first stream torn, retry clean
        np.testing.assert_array_equal(back.delays, _trace(2.0).delays)

    def test_torn_stream_twice_is_loud(self, store, monkeypatch):
        store.put("t1", _trace(), fu_name="int_add", stream_name="s",
                  library=DEFAULT_LIBRARY)
        monkeypatch.setenv(
            faults.PLAN_ENV,
            "remote.service.stream:torn-write:1,"
            "remote.service.stream:torn-write:2")
        faults.reset()
        with pytest.raises(RemoteChecksumError, match="torn blob stream"):
            store.get("t1", CONDS)

    def test_version_skew_typed_error(self, service, monkeypatch):
        monkeypatch.setattr("repro.remote.client.PROTOCOL_VERSION", 999)
        store = RemoteTraceStore(service.url, retries=0)
        with pytest.raises(RemoteProtocolError, match="version skew"):
            store.entries()

    def test_not_a_store_service(self, monkeypatch):
        """Pointing the client at a non-store HTTP server (here: the
        prediction server) fails the handshake loudly."""
        from repro.serve import PredictionServer
        from repro.serve.engine import PredictionEngine

        server = PredictionServer(PredictionEngine(sim_fallback=True),
                                  port=0)
        server.start_background()
        try:
            host, port = server.address
            store = RemoteTraceStore(f"http://{host}:{port}", retries=0)
            with pytest.raises(RemoteProtocolError,
                               match="not a repro store service"):
                store.entries()
        finally:
            server.close()

    def test_client_request_fault_site(self, store, monkeypatch):
        monkeypatch.setenv(faults.PLAN_ENV, "remote.store.request:raise:1")
        faults.reset()
        with pytest.raises(faults.FaultInjected):
            store.entries()

    def test_lock_timeout_maps_to_503_retry_after(self, service, store):
        """A held store lock answers 503 + Retry-After, which the
        transport's retry loop rides out transparently."""
        with service.store.lock():
            # service handler threads share this process, so the lock
            # is reentrant for them; simulate contention directly
            pass
        store.put("l0", _trace(), fu_name="int_add", stream_name="s",
                  library=DEFAULT_LIBRARY)
        assert "l0" in store


class TestEventFeed:
    def test_baseline_then_publish(self, registry):
        base = registry.poll_events(-1, timeout_s=0.0)
        assert base["events"] == []
        registry.publish({"w": 1}, fu="int_add")
        body = registry.poll_events(base["seq"], timeout_s=5.0)
        kinds = [e["kind"] for e in body["events"]]
        assert "publish" in kinds
        assert body["seq"] > base["seq"]

    def test_since_replays_missed_publishes(self, registry):
        """A subscriber that was away reconnects with its last seq and
        receives every publish it missed, in order."""
        base = registry.poll_events(-1)["seq"]
        for i in range(3):
            registry.publish({"w": i}, fu="int_add")
        body = registry.poll_events(base, timeout_s=1.0)
        published = [e["model_id"] for e in body["events"]
                     if e["kind"] == "publish"]
        assert published == [f"int_add/tevot/v{v}" for v in (1, 2, 3)]
        assert not body.get("gap") and not body.get("reset")

    def test_future_since_flags_reset(self, registry):
        body = registry.poll_events(10_000, timeout_s=0.0)
        assert body["reset"] is True

    def test_gc_announced(self, registry):
        base = registry.poll_events(-1)["seq"]
        registry.publish({"w": 1}, fu="int_add")
        registry.publish({"w": 2}, fu="int_add")
        registry.gc(keep=1)
        kinds = [e["kind"] for e in
                 registry.poll_events(base, timeout_s=1.0)["events"]]
        assert "registry-gc" in kinds


class TestDispatchHelpers:
    def test_open_helpers_dispatch_on_url(self, service, tmp_path):
        assert isinstance(open_trace_store(service.url), RemoteTraceStore)
        assert isinstance(open_trace_store(tmp_path / "t"), TraceStore)
        assert isinstance(open_model_registry(service.url),
                          RemoteModelRegistry)
        assert isinstance(open_model_registry(tmp_path / "r"),
                          ModelRegistry)

    def test_remote_root_roundtrips(self, service):
        """str(root) of a remote client re-opens a remote client —
        the contract forked cluster workers rely on."""
        store = open_trace_store(service.url)
        again = open_trace_store(str(store.root))
        assert isinstance(again, RemoteTraceStore)
        assert again.url == store.url


def test_store_lock_timeout_import():
    # regression guard: the 503 mapping imports this name
    assert issubclass(StoreLockTimeout, Exception)
