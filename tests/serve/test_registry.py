"""Tests for the serving model registry."""

import pickle

import numpy as np
import pytest

from repro.circuits import build_functional_unit
from repro.core import TEVoT, build_training_set
from repro.flow import CampaignJob, CampaignRunner
from repro.serve import ModelRegistry, model_key, stream_fingerprint
from repro.timing import OperatingCondition
from repro.workloads import random_stream

CONDS = [OperatingCondition(0.81, 0.0), OperatingCondition(1.00, 100.0)]


@pytest.fixture(scope="module")
def trained():
    fu = build_functional_unit("int_add", width=8)
    stream = random_stream(60, operand_width=8, seed=0)
    stream.name = "reg_train"
    trace = CampaignRunner(use_cache=False).run(
        [CampaignJob(fu, stream, CONDS)])[0]
    model = TEVoT(operand_width=8)
    X, y = build_training_set(stream, CONDS, trace.delays, spec=model.spec)
    model.fit(X, y)
    return fu, stream, model


class TestPublishResolve:
    def test_roundtrip_preserves_predictions(self, tmp_path, trained):
        fu, stream, model = trained
        registry = ModelRegistry(tmp_path)
        record = registry.publish(model, fu=fu, conditions=CONDS,
                                  train_stream=stream)
        assert record.model_id == "int_add/tevot/v1"
        loaded, found = registry.resolve("int_add")
        assert found.model_id == record.model_id
        ref = model.predict_stream_delays(stream, CONDS[0])
        np.testing.assert_array_equal(
            loaded.predict_stream_delays(stream, CONDS[0]), ref)

    def test_versions_increment_and_resolve_newest(self, tmp_path, trained):
        fu, stream, model = trained
        registry = ModelRegistry(tmp_path)
        r1 = registry.publish(model, fu=fu)
        r2 = registry.publish(model, fu=fu)
        assert (r1.version, r2.version) == (1, 2)
        _, found = registry.resolve("int_add")
        assert found.version == 2
        _, pinned = registry.resolve("int_add", version=1)
        assert pinned.version == 1

    def test_missing_model_raises_lookup_error(self, tmp_path):
        registry = ModelRegistry(tmp_path)
        with pytest.raises(LookupError):
            registry.resolve("int_mul")

    def test_unknown_kind_rejected(self, tmp_path, trained):
        _, _, model = trained
        with pytest.raises(ValueError, match="kind"):
            ModelRegistry(tmp_path).publish(model, fu="int_add",
                                            kind="nonsense")

    def test_record_carries_fingerprints(self, tmp_path, trained):
        fu, stream, model = trained
        registry = ModelRegistry(tmp_path)
        record = registry.publish(model, fu=fu, conditions=CONDS,
                                  train_stream=stream)
        assert record.train_stream == stream_fingerprint(stream)
        assert record.feature_spec["operand_width"] == 8
        assert record.feature_spec["include_history"] is True
        assert record.key == model_key(fu, "tevot", CONDS, stream,
                                       model.spec.version_tag())

    def test_key_sensitive_to_stream_and_corners(self, trained):
        fu, stream, model = trained
        tag = model.spec.version_tag()
        base = model_key(fu, "tevot", CONDS, stream, tag)
        other_stream = random_stream(60, operand_width=8, seed=9)
        assert base != model_key(fu, "tevot", CONDS, other_stream, tag)
        assert base != model_key(fu, "tevot", CONDS[:1], stream, tag)
        assert base != model_key(fu, "tevot", CONDS, stream, "fs2:w8:h1")

    def test_list_models_filters(self, tmp_path, trained):
        fu, _, model = trained
        registry = ModelRegistry(tmp_path)
        registry.publish(model, fu=fu, kind="tevot")
        registry.publish(model, fu=fu, kind="tevot_nh")
        assert len(registry.list_models()) == 2
        assert len(registry.list_models(kind="tevot")) == 1
        assert len(registry.list_models(fu="fp_add")) == 0
        assert len(registry) == 2


class TestGC:
    def test_gc_keeps_latest_versions(self, tmp_path, trained):
        fu, _, model = trained
        registry = ModelRegistry(tmp_path)
        for _ in range(3):
            registry.publish(model, fu=fu)
        report = registry.gc(keep=1)
        assert len(report.dropped_entries) == 2
        (record,) = registry.list_models()
        assert record.version == 3
        # artifact files for old versions are gone
        assert len(list(tmp_path.glob("*.pkl"))) == 1

    def test_gc_removes_orphan_artifacts(self, tmp_path, trained):
        fu, _, model = trained
        registry = ModelRegistry(tmp_path)
        registry.publish(model, fu=fu)
        orphan = tmp_path / "stray_artifact.pkl"
        with orphan.open("wb") as fh:
            pickle.dump({"junk": 1}, fh)
        report = registry.gc()
        assert "stray_artifact.pkl" in report.removed_files
        assert not orphan.exists()

    def test_gc_drops_entries_with_missing_files(self, tmp_path, trained):
        fu, _, model = trained
        registry = ModelRegistry(tmp_path)
        record = registry.publish(model, fu=fu)
        (tmp_path / record.file).unlink()
        report = registry.gc()
        assert record.model_id in report.dropped_entries
        assert registry.list_models() == []

    def test_gc_dry_run_touches_nothing(self, tmp_path, trained):
        fu, _, model = trained
        registry = ModelRegistry(tmp_path)
        for _ in range(2):
            registry.publish(model, fu=fu)
        report = registry.gc(keep=1, dry_run=True)
        assert report.dropped_entries
        assert len(registry.list_models()) == 2
        assert len(list(tmp_path.glob("*.pkl"))) == 2

    def test_gc_keep_validated(self, tmp_path):
        with pytest.raises(ValueError):
            ModelRegistry(tmp_path).gc(keep=0)


class TestPipelinePublish:
    def test_run_experiment_publishes_all_kinds(self, tmp_path, monkeypatch):
        from repro.core import run_experiment

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        registry = ModelRegistry(tmp_path / "registry")
        # the deprecated shim must still run end to end (with a warning)
        with pytest.warns(DeprecationWarning, match="Workspace.experiment"):
            result = run_experiment("int_add", conditions=CONDS,
                                    n_train_cycles=100, n_test_cycles=60,
                                    width=8, registry=registry)
        records = registry.list_models(fu="int_add")
        assert {r.kind for r in records} == {"tevot", "tevot_nh",
                                             "delay_based", "ter_based"}
        # the registry's resolved TEVoT predicts exactly like the
        # in-memory result of the experiment
        loaded, _ = registry.resolve("int_add")
        probe = random_stream(20, operand_width=8, seed=2)
        np.testing.assert_array_equal(
            loaded.predict_stream_delays(probe, CONDS[0]),
            result.tevot.predict_stream_delays(probe, CONDS[0]))
        # train-stream fingerprint recorded from the train trace inputs
        (tevot_rec,) = [r for r in records if r.kind == "tevot"]
        assert tevot_rec.train_stream != "-"
        assert tevot_rec.corners != "-"
