"""Tests for the replayable serving request log."""

import json

import pytest

from repro.circuits import build_functional_unit
from repro.core import TEVoT, build_training_set
from repro.flow import CampaignJob, CampaignRunner
from repro.serve import (
    ClusterEngine,
    ModelRegistry,
    PredictionEngine,
    PredictRequest,
    RequestLog,
    read_request_log,
    replay_log,
)
from repro.timing import OperatingCondition
from repro.workloads import random_stream

COND = OperatingCondition(0.90, 25.0)


@pytest.fixture(scope="module")
def registry(tmp_path_factory):
    reg = ModelRegistry(tmp_path_factory.mktemp("log_registry"))
    fu = build_functional_unit("int_add", width=8)
    stream = random_stream(60, operand_width=8, seed=0)
    stream.name = "log_train"
    trace = CampaignRunner(use_cache=False).run(
        [CampaignJob(fu, stream, [COND])])[0]
    model = TEVoT(operand_width=8)
    X, y = build_training_set(stream, [COND], trace.delays, spec=model.spec)
    model.fit(X, y)
    reg.publish(model, fu=fu, conditions=[COND], train_stream=stream)
    return reg


def _requests(n, seed=21):
    stream = random_stream(n, operand_width=8, seed=seed)
    return [PredictRequest(
        fu="int_add", a=int(stream.a[i]), b=int(stream.b[i]),
        voltage=COND.voltage, temperature=COND.temperature,
        stream_id=f"s{i % 2}",
        clock_period=520.0 if i % 3 == 0 else None) for i in range(n)]


def _record(registry, path, n=24, batch=8):
    """Drive a fresh engine and log every executed batch."""
    engine = PredictionEngine(registry=registry, sim_fallback=False)
    reqs = _requests(n)
    with RequestLog(path, config={"workers": 1}) as log:
        for lo in range(0, n, batch):
            chunk = reqs[lo:lo + batch]
            log.append_batch(chunk, engine.predict_batch(list(chunk)))
    return reqs


class TestRoundTrip:
    def test_log_preserves_batches_and_requests(self, registry, tmp_path):
        path = tmp_path / "req.jsonl"
        reqs = _record(registry, path, n=24, batch=8)
        records = list(read_request_log(path))
        assert records[0]["kind"] == "header"
        assert records[0]["config"] == {"workers": 1}
        batches = [r for r in records if r["kind"] == "batch"]
        assert [len(b["requests"]) for b in batches] == [8, 8, 8]
        rebuilt = [PredictRequest.from_dict(r)
                   for b in batches for r in b["requests"]]
        assert rebuilt == reqs

    def test_corrupt_line_fails_loudly(self, registry, tmp_path):
        path = tmp_path / "req.jsonl"
        _record(registry, path)
        lines = path.read_text().splitlines()
        doc = json.loads(lines[1])
        doc["predictions"][0]["delay_ps"] = 1.0  # tamper under the seal
        lines[1] = json.dumps(doc, sort_keys=True, separators=(",", ":"))
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(ValueError, match="fingerprint"):
            list(read_request_log(path))

    def test_unparsable_line_names_position(self, registry, tmp_path):
        path = tmp_path / "req.jsonl"
        _record(registry, path)
        with open(path, "a") as fh:
            fh.write("{truncated\n")
        with pytest.raises(ValueError, match=r"req\.jsonl:5"):
            list(read_request_log(path))


class TestReplay:
    def test_single_process_replay_is_bit_exact(self, registry, tmp_path):
        path = tmp_path / "req.jsonl"
        _record(registry, path)
        fresh = PredictionEngine(registry=registry, sim_fallback=False)
        report = replay_log(path, fresh.predict_batch)
        assert report.ok
        assert (report.batches, report.requests) == (3, 24)
        assert "bit-exact" in report.summary()

    def test_cluster_replay_is_bit_exact(self, registry, tmp_path):
        """A 2-worker cluster replays a single-process recording
        byte-identically (and vice versa would hold by parity)."""
        path = tmp_path / "req.jsonl"
        _record(registry, path)
        with ClusterEngine(registry=registry, workers=2,
                           sim_fallback=False) as cluster:
            report = replay_log(path, cluster.predict_batch)
        assert report.ok
        assert report.requests == 24

    def test_tampered_prediction_is_reported(self, registry, tmp_path):
        path = tmp_path / "req.jsonl"
        _record(registry, path)
        lines = path.read_text().splitlines()
        # re-seal a falsified record so only replay (not the seal
        # check) can catch it — models a recording made by a buggy or
        # differently-configured server
        from repro.flow.manifest import check_record, seal_record
        from repro.serve.requestlog import LOG_TAG
        doc = check_record(json.loads(lines[2]), tag=LOG_TAG)
        doc["predictions"][1]["delay_ps"] += 1.5
        lines[2] = json.dumps(seal_record(doc, tag=LOG_TAG),
                              sort_keys=True, separators=(",", ":"))
        path.write_text("\n".join(lines) + "\n")
        fresh = PredictionEngine(registry=registry, sim_fallback=False)
        report = replay_log(path, fresh.predict_batch)
        assert not report.ok
        (mismatch,) = report.mismatches
        assert (mismatch.batch, mismatch.index) == (2, 1)
        assert "recorded" in mismatch.describe()

    def test_multi_session_log_is_rejected(self, registry, tmp_path):
        path = tmp_path / "req.jsonl"
        _record(registry, path)
        _record(registry, path)  # append mode: second header
        fresh = PredictionEngine(registry=registry, sim_fallback=False)
        with pytest.raises(ValueError, match="2 recording sessions"):
            replay_log(path, fresh.predict_batch)
