"""Tests for the replayable serving request log."""

import json

import pytest

from repro.circuits import build_functional_unit
from repro.core import TEVoT, build_training_set
from repro.flow import CampaignJob, CampaignRunner
from repro.serve import (
    ClusterEngine,
    ModelRegistry,
    PredictionEngine,
    PredictRequest,
    RequestLog,
    read_request_log,
    replay_log,
)
from repro.timing import OperatingCondition
from repro.workloads import random_stream

COND = OperatingCondition(0.90, 25.0)


@pytest.fixture(scope="module")
def registry(tmp_path_factory):
    reg = ModelRegistry(tmp_path_factory.mktemp("log_registry"))
    fu = build_functional_unit("int_add", width=8)
    stream = random_stream(60, operand_width=8, seed=0)
    stream.name = "log_train"
    trace = CampaignRunner(use_cache=False).run(
        [CampaignJob(fu, stream, [COND])])[0]
    model = TEVoT(operand_width=8)
    X, y = build_training_set(stream, [COND], trace.delays, spec=model.spec)
    model.fit(X, y)
    reg.publish(model, fu=fu, conditions=[COND], train_stream=stream)
    return reg


def _requests(n, seed=21):
    stream = random_stream(n, operand_width=8, seed=seed)
    return [PredictRequest(
        fu="int_add", a=int(stream.a[i]), b=int(stream.b[i]),
        voltage=COND.voltage, temperature=COND.temperature,
        stream_id=f"s{i % 2}",
        clock_period=520.0 if i % 3 == 0 else None) for i in range(n)]


def _record(registry, path, n=24, batch=8):
    """Drive a fresh engine and log every executed batch."""
    engine = PredictionEngine(registry=registry, sim_fallback=False)
    reqs = _requests(n)
    with RequestLog(path, config={"workers": 1}) as log:
        for lo in range(0, n, batch):
            chunk = reqs[lo:lo + batch]
            log.append_batch(chunk, engine.predict_batch(list(chunk)))
    return reqs


class TestRoundTrip:
    def test_log_preserves_batches_and_requests(self, registry, tmp_path):
        path = tmp_path / "req.jsonl"
        reqs = _record(registry, path, n=24, batch=8)
        records = list(read_request_log(path))
        assert records[0]["kind"] == "header"
        assert records[0]["config"] == {"workers": 1}
        batches = [r for r in records if r["kind"] == "batch"]
        assert [len(b["requests"]) for b in batches] == [8, 8, 8]
        rebuilt = [PredictRequest.from_dict(r)
                   for b in batches for r in b["requests"]]
        assert rebuilt == reqs

    def test_corrupt_line_fails_loudly(self, registry, tmp_path):
        path = tmp_path / "req.jsonl"
        _record(registry, path)
        lines = path.read_text().splitlines()
        doc = json.loads(lines[1])
        doc["predictions"][0]["delay_ps"] = 1.0  # tamper under the seal
        lines[1] = json.dumps(doc, sort_keys=True, separators=(",", ":"))
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(ValueError, match="fingerprint"):
            list(read_request_log(path))

    def test_unparsable_line_names_position(self, registry, tmp_path):
        path = tmp_path / "req.jsonl"
        _record(registry, path)
        with open(path, "a") as fh:
            fh.write("{truncated\n")
        with pytest.raises(ValueError, match=r"req\.jsonl:5"):
            list(read_request_log(path))


class TestTornFinalLine:
    def _tear_last_line(self, path):
        """Truncate the file mid last record — what a crash during the
        buffered line+newline write leaves behind."""
        data = path.read_bytes()
        assert data.endswith(b"\n")
        start = data[:-1].rfind(b"\n") + 1
        cut = start + (len(data) - start) // 2
        path.write_bytes(data[:cut])

    def test_torn_tail_skipped_with_warning(self, registry, tmp_path):
        path = tmp_path / "req.jsonl"
        _record(registry, path, n=24, batch=8)
        self._tear_last_line(path)
        with pytest.warns(RuntimeWarning, match="torn final log line"):
            records = list(read_request_log(path))
        # the sealed prefix survives: header + first two batches
        assert [r["kind"] for r in records] == ["header", "batch", "batch"]

    def test_sealed_prefix_still_replays(self, registry, tmp_path):
        path = tmp_path / "req.jsonl"
        _record(registry, path, n=24, batch=8)
        self._tear_last_line(path)
        fresh = PredictionEngine(registry=registry, sim_fallback=False)
        with pytest.warns(RuntimeWarning, match="torn final"):
            report = replay_log(path, fresh.predict_batch)
        assert report.ok
        assert (report.batches, report.requests) == (2, 16)

    def test_complete_final_line_still_fails_loudly(self, registry,
                                                    tmp_path):
        # a newline-terminated final line that fails its seal is
        # hand-editing or bit-rot, not a crash artifact: must raise
        path = tmp_path / "req.jsonl"
        _record(registry, path)
        lines = path.read_text().splitlines()
        doc = json.loads(lines[-1])
        doc["predictions"][0]["delay_ps"] = -1.0  # tamper under the seal
        lines[-1] = json.dumps(doc, sort_keys=True, separators=(",", ":"))
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(ValueError, match="fingerprint"):
            list(read_request_log(path))

    def test_torn_interior_line_still_fails_loudly(self, registry,
                                                   tmp_path):
        path = tmp_path / "req.jsonl"
        _record(registry, path, n=24, batch=8)
        lines = path.read_text().splitlines()
        lines[2] = lines[2][: len(lines[2]) // 2]  # tear a middle record
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(ValueError, match=r"req\.jsonl:3"):
            list(read_request_log(path))

    def test_crashed_writer_leaves_replayable_log(self, registry,
                                                  tmp_path, monkeypatch):
        # end-to-end: the log's own torn-write fault (crash mid-append)
        # produces exactly the artifact the reader tolerates
        import os
        import subprocess
        import sys
        from pathlib import Path

        import repro
        from repro.testing import faults

        src = str(Path(next(iter(repro.__path__))).resolve().parent)
        path = tmp_path / "req.jsonl"
        code = (
            "from repro.serve import PredictRequest, RequestLog\n"
            "from repro.serve.engine import Prediction\n"
            "reqs = [PredictRequest(fu='int_add', a=i, b=i, voltage=0.9,"
            " temperature=25.0) for i in range(4)]\n"
            "preds = [Prediction(ok=True, delay_ps=1.0) for _ in range(4)]\n"
            f"with RequestLog({str(path)!r}) as log:\n"
            "    log.append_batch(reqs[:2], preds[:2])\n"
            "    log.append_batch(reqs[2:], preds[2:])\n")
        env = dict(os.environ, PYTHONPATH=src)
        env[faults.PLAN_ENV] = "requestlog.append:torn-write:3"
        proc = subprocess.run([sys.executable, "-c", code], env=env,
                              capture_output=True, text=True)
        assert proc.returncode == faults.TORN_EXIT_CODE, proc.stderr
        assert not path.read_bytes().endswith(b"\n")  # torn tail on disk
        with pytest.warns(RuntimeWarning, match="torn final log line"):
            records = list(read_request_log(path))
        assert [r["kind"] for r in records] == ["header", "batch"]
        assert [q["a"] for q in records[1]["requests"]] == [0, 1]


class TestReplay:
    def test_single_process_replay_is_bit_exact(self, registry, tmp_path):
        path = tmp_path / "req.jsonl"
        _record(registry, path)
        fresh = PredictionEngine(registry=registry, sim_fallback=False)
        report = replay_log(path, fresh.predict_batch)
        assert report.ok
        assert (report.batches, report.requests) == (3, 24)
        assert "bit-exact" in report.summary()

    def test_cluster_replay_is_bit_exact(self, registry, tmp_path):
        """A 2-worker cluster replays a single-process recording
        byte-identically (and vice versa would hold by parity)."""
        path = tmp_path / "req.jsonl"
        _record(registry, path)
        with ClusterEngine(registry=registry, workers=2,
                           sim_fallback=False) as cluster:
            report = replay_log(path, cluster.predict_batch)
        assert report.ok
        assert report.requests == 24

    def test_tampered_prediction_is_reported(self, registry, tmp_path):
        path = tmp_path / "req.jsonl"
        _record(registry, path)
        lines = path.read_text().splitlines()
        # re-seal a falsified record so only replay (not the seal
        # check) can catch it — models a recording made by a buggy or
        # differently-configured server
        from repro.flow.manifest import check_record, seal_record
        from repro.serve.requestlog import LOG_TAG
        doc = check_record(json.loads(lines[2]), tag=LOG_TAG)
        doc["predictions"][1]["delay_ps"] += 1.5
        lines[2] = json.dumps(seal_record(doc, tag=LOG_TAG),
                              sort_keys=True, separators=(",", ":"))
        path.write_text("\n".join(lines) + "\n")
        fresh = PredictionEngine(registry=registry, sim_fallback=False)
        report = replay_log(path, fresh.predict_batch)
        assert not report.ok
        (mismatch,) = report.mismatches
        assert (mismatch.batch, mismatch.index) == (2, 1)
        assert "recorded" in mismatch.describe()

    def test_dropped_records_are_skipped_and_replay_stays_bit_exact(
            self, registry, tmp_path):
        """Shed/expired requests are logged as ``dropped`` records that
        replay skips: they never advanced per-stream history live, so
        re-driving only the executed batches reproduces the recording
        bit-exactly even with drops interleaved mid-stream."""
        path = tmp_path / "req.jsonl"
        engine = PredictionEngine(registry=registry, sim_fallback=False)
        reqs = _requests(24)
        with RequestLog(path, config={"workers": 1}) as log:
            chunk = reqs[:8]
            log.append_batch(chunk, engine.predict_batch(list(chunk)))
            # overload strikes: same streams, but these never execute
            log.append_dropped(reqs[8:12], "shed")
            log.append_dropped(reqs[12:14], "expired")
            chunk = reqs[14:]
            log.append_batch(chunk, engine.predict_batch(list(chunk)))

        records = list(read_request_log(path))
        dropped = [r for r in records if r["kind"] == "dropped"]
        assert [(d["reason"], len(d["requests"])) for d in dropped] == \
            [("shed", 4), ("expired", 2)]

        fresh = PredictionEngine(registry=registry, sim_fallback=False)
        report = replay_log(path, fresh.predict_batch)
        assert report.ok
        assert (report.batches, report.requests) == (2, 18)
        assert report.dropped == 6
        assert "skipped 6 dropped" in report.summary()

    def test_append_dropped_empty_is_a_noop(self, registry, tmp_path):
        path = tmp_path / "req.jsonl"
        with RequestLog(path, config={}) as log:
            log.append_dropped([], "shed")
        records = list(read_request_log(path))
        assert [r["kind"] for r in records] == ["header"]

    def test_multi_session_log_is_rejected(self, registry, tmp_path):
        path = tmp_path / "req.jsonl"
        _record(registry, path)
        _record(registry, path)  # append mode: second header
        fresh = PredictionEngine(registry=registry, sim_fallback=False)
        with pytest.raises(ValueError, match="2 recording sessions"):
            replay_log(path, fresh.predict_batch)
