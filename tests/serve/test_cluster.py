"""Tests for the distributed serving cluster (front end + workers)."""

import threading

import pytest

from repro.circuits import build_functional_unit
from repro.core import TEVoT, build_training_set
from repro.flow import CampaignJob, CampaignRunner
from repro.serve import (
    ClusterEngine,
    ModelRegistry,
    PredictionEngine,
    PredictRequest,
)
from repro.flow.watchdog import Deadline
from repro.serve.cluster import CRASH_FILE_ENV
from repro.testing import faults
from repro.timing import OperatingCondition
from repro.workloads import random_stream

COND = OperatingCondition(0.90, 25.0)


def _train_and_publish(registry, fu, stream):
    trace = CampaignRunner(use_cache=False).run(
        [CampaignJob(fu, stream, [COND])])[0]
    model = TEVoT(operand_width=fu.operand_width)
    X, y = build_training_set(stream, [COND], trace.delays, spec=model.spec)
    model.fit(X, y)
    return registry.publish(model, fu=fu, conditions=[COND],
                            train_stream=stream)


@pytest.fixture(scope="module")
def registry(tmp_path_factory):
    """A registry with one published int_add model."""
    reg = ModelRegistry(tmp_path_factory.mktemp("cluster_registry"))
    fu = build_functional_unit("int_add", width=8)
    stream = random_stream(60, operand_width=8, seed=0)
    stream.name = "cl_train"
    _train_and_publish(reg, fu, stream)
    return reg


def _requests(n, seed=11, streams=3, clock_every=0):
    stream = random_stream(n, operand_width=8, seed=seed)
    out = []
    for i in range(n):
        out.append(PredictRequest(
            fu="int_add", a=int(stream.a[i]), b=int(stream.b[i]),
            voltage=COND.voltage, temperature=COND.temperature,
            stream_id=f"s{i % streams}",
            clock_period=(520.0 if clock_every and i % clock_every == 0
                          else None)))
    return out


class TestParity:
    def test_bit_exact_with_single_process_across_batches(self, registry):
        """Implicit history chains identically on both paths."""
        reqs = _requests(48, clock_every=5)
        single = PredictionEngine(registry=registry, sim_fallback=False)
        base = [p.as_dict() for p in single.predict_batch(list(reqs))]
        with ClusterEngine(registry=registry, workers=2,
                           sim_fallback=False) as cluster:
            got = []
            for lo in range(0, len(reqs), 16):
                got.extend(p.as_dict() for p in
                           cluster.predict_batch(reqs[lo:lo + 16]))
        assert got == base
        assert all(g["ok"] and g["source"] == "model" for g in got)

    def test_sim_fallback_parity(self, registry):
        """Unpublished FUs fall back to simulation on every worker,
        bit-exact with the in-process fallback."""
        reqs = [PredictRequest(fu="int_mul", a=3 + i, b=5 + i,
                               voltage=COND.voltage,
                               temperature=COND.temperature,
                               clock_period=2600.0, stream_id="mul")
                for i in range(6)]
        single = PredictionEngine(registry=registry, sim_fallback=True)
        base = [p.as_dict() for p in single.predict_batch(list(reqs))]
        with ClusterEngine(registry=registry, workers=2,
                           sim_fallback=True) as cluster:
            got = [p.as_dict() for p in cluster.predict_batch(list(reqs))]
        assert got == base
        assert all(g["source"] == "sim" for g in got)

    def test_invalid_requests_fail_identically_and_skip_history(
            self, registry):
        reqs = _requests(6)
        reqs[2] = PredictRequest(fu="no_such_fu", a=1, b=2,
                                 voltage=COND.voltage,
                                 temperature=COND.temperature)
        reqs[4] = PredictRequest(fu="int_add", a=1, b=2, voltage=0.9,
                                 temperature=25.0, clock_period=-5.0)
        single = PredictionEngine(registry=registry, sim_fallback=False)
        base = [p.as_dict() for p in single.predict_batch(list(reqs))]
        with ClusterEngine(registry=registry, workers=2,
                           sim_fallback=False) as cluster:
            got = [p.as_dict() for p in cluster.predict_batch(list(reqs))]
        assert got == base
        assert not got[2]["ok"] and not got[4]["ok"]


class TestRouting:
    def test_affinity_is_sticky_and_balanced(self, registry):
        with ClusterEngine(registry=registry, workers=2,
                           sim_fallback=True) as cluster:
            for fu in ("int_add", "int_sub", "int_mul", "int_add"):
                cluster._worker_for(fu)
            affinity = cluster.stats_dict()["affinity"]
            assert set(affinity) == {"int_add", "int_sub", "int_mul"}
            # least-loaded first sight: 3 FUs over 2 slots -> 2 + 1
            slots = sorted(affinity.values())
            assert slots in ([0, 0, 1], [0, 1, 1])
            # sticky: repeated lookups never move an FU
            assert cluster._worker_for("int_add") == affinity["int_add"]

    def test_workers_report_identical_manifests(self, registry):
        with ClusterEngine(registry=registry, workers=2,
                           sim_fallback=False) as cluster:
            rows = cluster.workers_dict()
            assert len(rows) == 2
            assert all(r["alive"] for r in rows)
            manifests = {r["manifest"] for r in rows}
            assert manifests == {registry.manifest_fingerprint()}
            assert all(r["hot_models"] == 1 for r in rows)


class TestRespawn:
    def test_killed_worker_respawns_and_loses_no_requests(
            self, registry, tmp_path, monkeypatch):
        crash = tmp_path / "crash"
        monkeypatch.setenv(CRASH_FILE_ENV, str(crash))
        # one stream per thread: batch interleaving across threads is
        # nondeterministic, but per-stream history order stays fixed,
        # so every answer is still bit-exact with the sequential run
        stream = random_stream(64, operand_width=8, seed=11)
        reqs = [PredictRequest(
            fu="int_add", a=int(stream.a[i]), b=int(stream.b[i]),
            voltage=COND.voltage, temperature=COND.temperature,
            stream_id=f"t{i // 16}") for i in range(64)]
        single = PredictionEngine(registry=registry, sim_fallback=False)
        base = [p.as_dict() for p in single.predict_batch(list(reqs))]
        with ClusterEngine(registry=registry, workers=2,
                           sim_fallback=False) as cluster:
            crash.write_text("2")  # next two batch receipts hard-kill
            results = [None] * 4
            errors = []

            def drive(t):
                try:
                    chunk = reqs[t * 16:(t + 1) * 16]
                    results[t] = [p.as_dict() for p in
                                  cluster.predict_batch(chunk)]
                except Exception as exc:  # pragma: no cover - diagnostics
                    errors.append(exc)

            threads = [threading.Thread(target=drive, args=(t,))
                       for t in range(4)]
            for th in threads:
                th.start()
            for th in threads:
                th.join()
            assert not errors
            stats = cluster.stats_dict()
            assert stats["respawns"] >= 1
            assert stats["reissues"] >= 1
            assert cluster.n_alive() == 2
        flat = [r for chunk in results for r in chunk]
        assert all(r["ok"] for r in flat), "requests were lost"
        assert flat == base

    def test_persistent_crasher_fails_loudly(self, registry, tmp_path,
                                             monkeypatch):
        crash = tmp_path / "crash"
        monkeypatch.setenv(CRASH_FILE_ENV, str(crash))
        with ClusterEngine(registry=registry, workers=1,
                           sim_fallback=False) as cluster:
            crash.write_text("99")  # every receipt dies
            (pred,) = cluster.predict_batch(_requests(1))
            assert not pred.ok
            assert "died" in pred.message
            crash.unlink()
            # the slot recovered: next batch serves normally
            (pred,) = cluster.predict_batch(_requests(1))
            assert pred.ok


class TestRefresh:
    def test_refresh_rolls_out_new_version(self, tmp_path):
        reg = ModelRegistry(tmp_path / "reg")
        fu = build_functional_unit("int_add", width=8)
        stream = random_stream(60, operand_width=8, seed=0)
        stream.name = "v1_train"
        _train_and_publish(reg, fu, stream)
        with ClusterEngine(registry=reg, workers=2,
                           sim_fallback=False) as cluster:
            (pred,) = cluster.predict_batch(_requests(1))
            assert pred.model_id == "int_add/tevot/v1"
            before = {r["manifest"] for r in cluster.workers_dict()}

            stream2 = random_stream(60, operand_width=8, seed=5)
            stream2.name = "v2_train"
            _train_and_publish(reg, fu, stream2)
            cluster.refresh()

            after = {r["manifest"] for r in cluster.workers_dict()}
            assert after == {reg.manifest_fingerprint()} != before
            (pred,) = cluster.predict_batch(_requests(1))
            assert pred.model_id == "int_add/tevot/v2"
            assert cluster.stats_dict()["refreshes"] == 1


class TestLifecycle:
    def test_close_reaps_all_workers(self, registry):
        cluster = ClusterEngine(registry=registry, workers=2,
                                sim_fallback=False)
        procs = [w.process for w in cluster._workers]
        assert cluster.n_alive() == 2
        cluster.close()
        assert cluster.closed
        assert all(not p.is_alive() for p in procs)
        with pytest.raises(RuntimeError, match="closed"):
            cluster.predict_batch(_requests(1))

    def test_workers_must_be_positive(self, registry):
        with pytest.raises(ValueError, match="workers"):
            ClusterEngine(registry=registry, workers=0)


class TestWatchdog:
    def test_hung_worker_is_killed_and_batch_reissued(
            self, registry, tmp_path, monkeypatch):
        """A worker wedged mid-batch (hang fault) is detected by the
        watchdog, SIGKILLed, respawned, and the batch reissued — the
        caller still gets every answer, bit-exact."""
        monkeypatch.setenv(faults.PLAN_ENV, "cluster.worker.batch:hang:1")
        # fire once *globally* so the respawned worker serves normally
        monkeypatch.setenv(faults.STATE_ENV, str(tmp_path / "fstate"))
        monkeypatch.setenv(faults.HANG_ENV, "60")
        faults.reset()
        reqs = _requests(8)
        single = PredictionEngine(registry=registry, sim_fallback=False)
        base = [p.as_dict() for p in single.predict_batch(list(reqs))]
        with ClusterEngine(registry=registry, workers=2,
                           sim_fallback=False,
                           hang_timeout_s=1.0) as cluster:
            got = [p.as_dict() for p in cluster.predict_batch(list(reqs))]
            stats = cluster.stats_dict()
            assert stats["watchdog_kills"] >= 1
            assert stats["respawns"] >= 1
            assert stats["reissues"] >= 1
            assert cluster.n_alive() == 2
        assert got == base
        assert all(g["ok"] for g in got)
        faults.reset()

    def test_deadline_expiry_rolls_back_history(
            self, registry, tmp_path, monkeypatch):
        """A batch that cannot finish inside its deadline expires to
        ``deadline exceeded`` predictions and must NOT advance
        per-stream history — re-running the same requests afterwards
        matches a fresh single-process engine bit-exactly."""
        # no REPRO_FAULT_STATE: every fresh worker hangs on its first
        # batch, so the deadline is guaranteed to run out
        monkeypatch.setenv(faults.PLAN_ENV, "cluster.worker.batch:hang:1")
        monkeypatch.setenv(faults.HANG_ENV, "1.0")
        faults.reset()
        reqs = _requests(6, streams=2)
        with ClusterEngine(registry=registry, workers=2,
                           sim_fallback=False,
                           hang_timeout_s=5.0) as cluster:
            expired = cluster.predict_batch(
                list(reqs), deadline=Deadline.after_ms(150))
            assert all(p.expired for p in expired)
            assert all(not p.ok and p.message == "deadline exceeded"
                       for p in expired)
            assert cluster.stats_dict()["expired"] >= len(reqs)
            # let the wedged worker wake up and emit its stale reply
            import time
            time.sleep(1.2)
            monkeypatch.delenv(faults.PLAN_ENV)
            faults.reset()
            got = [p.as_dict() for p in cluster.predict_batch(list(reqs))]
        single = PredictionEngine(registry=registry, sim_fallback=False)
        base = [p.as_dict() for p in single.predict_batch(list(reqs))]
        assert got == base, "expired batch leaked into stream history"
        faults.reset()


class TestQuarantine:
    def test_crash_loop_quarantines_slot_and_degrades(
            self, registry, tmp_path, monkeypatch):
        """A slot that crashes ``quarantine_respawns`` times inside the
        window is quarantined: traffic rehomes to survivors, results
        stay bit-exact, /health-style state reports degraded, and
        refresh() revives the slot."""
        crash = tmp_path / "crash"
        monkeypatch.setenv(CRASH_FILE_ENV, str(crash))
        reqs = _requests(6, streams=2)
        single = PredictionEngine(registry=registry, sim_fallback=False)
        base = [p.as_dict() for p in single.predict_batch(list(reqs))]
        with ClusterEngine(registry=registry, workers=2,
                           sim_fallback=False,
                           quarantine_respawns=2,
                           quarantine_window_s=30.0) as cluster:
            assert cluster.health_state() == "healthy"
            crash.write_text("2")  # same slot dies twice -> quarantine
            got = [p.as_dict() for p in cluster.predict_batch(list(reqs))]
            stats = cluster.stats_dict()
            assert stats["quarantines"] == 1
            assert len(stats["quarantined_slots"]) == 1
            assert cluster.health_state() == "degraded"
            assert sum(1 for r in cluster.workers_dict()
                       if r["quarantined"]) == 1
            assert got == base, "rerouted batch must stay bit-exact"

            # refresh retries the quarantined slot; the crash file is
            # spent, so the respawn sticks and the cluster heals
            cluster.refresh()
            assert cluster.health_state() == "healthy"
            assert cluster.stats_dict()["quarantined_slots"] == []
            assert cluster.n_alive() == 2
            (pred,) = cluster.predict_batch(_requests(1, seed=99))
            assert pred.ok

    def test_last_live_slot_is_never_quarantined(
            self, registry, tmp_path, monkeypatch):
        """With one worker there is no survivor to rehome onto — the
        slot keeps respawning instead of quarantining."""
        crash = tmp_path / "crash"
        monkeypatch.setenv(CRASH_FILE_ENV, str(crash))
        with ClusterEngine(registry=registry, workers=1,
                           sim_fallback=False,
                           quarantine_respawns=1,
                           quarantine_window_s=30.0) as cluster:
            crash.write_text("2")
            (pred,) = cluster.predict_batch(_requests(1))
            assert pred.ok
            stats = cluster.stats_dict()
            assert stats["quarantines"] == 0
            assert stats["quarantined_slots"] == []
            assert cluster.health_state() == "healthy"


class TestClusterBehindHTTP:
    def test_served_cluster_is_bit_exact_and_replayable(self, registry,
                                                        tmp_path):
        """Acceptance: 2-worker cluster behind the HTTP server answers
        bit-exactly like the single-process engine, every batch lands
        in the request log, and replaying the log reproduces the
        identical response stream."""
        from repro.serve import (
            PredictionServer,
            RequestLog,
            ServeClient,
            replay_log,
        )

        log_path = tmp_path / "requests.jsonl"
        cluster = ClusterEngine(registry=registry, workers=2,
                                sim_fallback=False)
        server = PredictionServer(
            cluster, port=0, batch_window_ms=1.0,
            request_log=RequestLog(log_path, config={"workers": 2}))
        server.start_background()
        host, port = server.address
        client = ServeClient(host, port)
        assert client.health()["workers"] == 2

        reqs = [r.as_dict() for r in _requests(30)]
        served = []
        for lo in range(0, len(reqs), 10):
            served.extend(client.predict_many(reqs[lo:lo + 10]))
        server.close()
        assert cluster.closed, "server close must reap cluster workers"

        single = PredictionEngine(registry=registry, sim_fallback=False)
        base = [p.as_dict() for p in single.predict_batch(
            [PredictRequest.from_dict(r) for r in reqs])]
        assert served == base

        fresh = PredictionEngine(registry=registry, sim_fallback=False)
        report = replay_log(log_path, fresh.predict_batch)
        assert report.ok and report.requests == 30
