"""End-to-end tests for the HTTP serving layer (server + client)."""

import threading

import numpy as np
import pytest

from repro.circuits import build_functional_unit
from repro.core import TEVoT, build_training_set
from repro.flow import CampaignJob, CampaignRunner
from repro.serve import (
    ModelRegistry,
    PredictionEngine,
    PredictionServer,
    ServeClient,
    ServeError,
)
from repro.timing import OperatingCondition
from repro.workloads import random_stream

COND = OperatingCondition(0.90, 25.0)


@pytest.fixture(scope="module")
def serving(tmp_path_factory):
    """A live server over one published int_add model."""
    fu = build_functional_unit("int_add", width=8)
    stream = random_stream(60, operand_width=8, seed=0)
    stream.name = "srv_train"
    trace = CampaignRunner(use_cache=False).run(
        [CampaignJob(fu, stream, [COND])])[0]
    model = TEVoT(operand_width=8)
    X, y = build_training_set(stream, [COND], trace.delays, spec=model.spec)
    model.fit(X, y)
    registry = ModelRegistry(tmp_path_factory.mktemp("srv_registry"))
    registry.publish(model, fu=fu, conditions=[COND], train_stream=stream)
    engine = PredictionEngine(registry=registry, sim_fallback=False)
    server = PredictionServer(engine, port=0, batch_window_ms=1.0)
    server.start_background()
    host, port = server.address
    yield ServeClient(host, port), model, engine
    server.shutdown()
    server.server_close()


class TestEndpoints:
    def test_health(self, serving):
        client, _, _ = serving
        payload = client.health()
        assert payload["status"] == "healthy"
        assert payload["models_published"] == 1

    def test_models_listing(self, serving):
        client, _, _ = serving
        (record,) = client.models()
        assert record["model_id"] == "int_add/tevot/v1"
        assert record["feature_spec"]["operand_width"] == 8

    def test_stats_reflect_traffic(self, serving):
        client, _, _ = serving
        client.predict(fu="int_add", a=5, b=6, voltage=COND.voltage,
                       temperature=COND.temperature)
        stats = client.stats()
        assert stats["engine"]["requests"] >= 1
        assert stats["batching"]["requests"] >= 1

    def test_unknown_path_404(self, serving):
        client, _, _ = serving
        with pytest.raises(ServeError) as err:
            client._call("/nope")
        assert err.value.status == 404

    def test_config_roundtrip_and_validation(self, serving):
        client, _, _ = serving
        out = client.configure(batch_window_ms=3.5, max_batch=32)
        assert out["config"]["batch_window_ms"] == 3.5
        assert out["config"]["max_batch"] == 32
        with pytest.raises(ServeError):
            client.configure(max_batch=0)
        with pytest.raises(ServeError):
            client.configure(batch_window_ms=-1)


class TestServedParity:
    def test_stream_replay_matches_offline(self, serving):
        client, model, engine = serving
        engine.reset_stream()
        stream = random_stream(30, operand_width=8, seed=2)
        ref = model.predict_stream_delays(stream, COND)
        preds = client.predict_many([
            {"fu": "int_add", "a": int(stream.a[t]), "b": int(stream.b[t]),
             "voltage": COND.voltage, "temperature": COND.temperature,
             "stream_id": "parity"}
            for t in range(len(stream.a))])
        served = np.array([p["delay_ps"] for p in preds[1:]])
        np.testing.assert_array_equal(served, ref)

    def test_concurrent_clients_all_correct(self, serving):
        """Stateless requests from many threads: batching must never
        mix up results."""
        client, model, _ = serving
        from repro.core.features import build_feature_matrix
        from repro.workloads import OperandStream

        def expected(a, b):
            s = OperandStream("x", np.array([a, a]), np.array([b, b]))
            X = build_feature_matrix(s, COND, model.spec)
            return model.predict_delay(X)[0]

        failures = []

        def worker(k):
            local = ServeClient(*client.base_url.replace(
                "http://", "").split(":"))
            for i in range(5):
                a, b = (k * 17 + i) % 256, (k * 31 + 2 * i) % 256
                got = local.predict(fu="int_add", a=a, b=b,
                                    voltage=COND.voltage,
                                    temperature=COND.temperature,
                                    prev_a=a, prev_b=b)["delay_ps"]
                if got != expected(a, b):
                    failures.append((k, i, got))

        threads = [threading.Thread(target=worker, args=(k,))
                   for k in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert failures == []


class TestErrors:
    def test_bad_json_is_400(self, serving):
        client, _, _ = serving
        import urllib.error
        import urllib.request
        request = urllib.request.Request(
            client.base_url + "/predict", data=b"not json",
            headers={"Content-Type": "application/json"})
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(request, timeout=10)
        assert err.value.code == 400

    def test_missing_field_is_400(self, serving):
        client, _, _ = serving
        with pytest.raises(ServeError) as err:
            client.predict_many([{"fu": "int_add"}])
        assert err.value.status == 400

    def test_unserveable_fu_reports_per_request(self, serving):
        """No model + fallback off -> per-request failure, 422."""
        client, _, _ = serving
        preds = client.predict_many([
            {"fu": "int_mul", "a": 1, "b": 2, "voltage": COND.voltage,
             "temperature": COND.temperature}])
        assert preds[0]["ok"] is False
        with pytest.raises(ServeError):
            client.predict(fu="int_mul", a=1, b=2, voltage=COND.voltage,
                           temperature=COND.temperature)


class TestConfigAtomicity:
    def test_rejected_config_applies_nothing(self, serving):
        client, _, _ = serving
        before = client.stats()["batching"]
        with pytest.raises(ServeError):
            client.configure(batch_window_ms=99.0, max_batch=0)
        after = client.stats()["batching"]
        assert after["batch_window_ms"] == before["batch_window_ms"]
        assert after["max_batch"] == before["max_batch"]


class TestConfigValidation:
    """POST /config rejects bad values with a 400 naming the field."""

    @pytest.mark.parametrize("payload, field", [
        ({"max_batch": 0}, "max_batch"),
        ({"max_batch": -3}, "max_batch"),
        ({"max_batch": "many"}, "max_batch"),
        ({"max_batch": True}, "max_batch"),
        ({"max_batch": 2.5}, "max_batch"),
        ({"batch_window_ms": -1}, "batch_window_ms"),
        ({"batch_window_ms": "fast"}, "batch_window_ms"),
        ({"batch_window_ms": False}, "batch_window_ms"),
    ])
    def test_bad_value_is_400_naming_field(self, serving, payload, field):
        client, _, _ = serving
        with pytest.raises(ServeError) as err:
            client._call("/config", payload)
        assert err.value.status == 400
        assert err.value.payload["field"] == field
        assert field in str(err.value)


class TestRefreshEndpoint:
    def test_models_refresh_rewarns_engine(self, serving):
        client, _, engine = serving
        out = client._call("/models/refresh", {})
        assert out == {"ok": True}
        # refresh drops hot models; next request faults the model back in
        before = engine.stats.model_cache_misses
        client.predict(fu="int_add", a=1, b=2, voltage=COND.voltage,
                       temperature=COND.temperature)
        assert engine.stats.model_cache_misses == before + 1


class _GatedEngine:
    """Engine stub whose first batch blocks until the test releases it,
    so a known number of requests pile up in the micro-batch queue."""

    registry = None
    sim_fallback = False
    kind = "tevot"

    def __init__(self):
        self.served = 0
        self.release = threading.Event()
        self._first = True

    def predict_batch(self, requests):
        from repro.serve import Prediction
        if self._first:
            self._first = False
            assert self.release.wait(timeout=30.0)
        self.served += len(requests)
        return [Prediction(ok=True, delay_ps=float(r.a + r.b),
                           source="stub") for r in requests]


class TestGracefulShutdown:
    def test_close_answers_everything_already_queued(self):
        """close() drains the micro-batch queue: every request accepted
        before shutdown gets its real answer, none get a reset."""
        from repro.serve import PredictionServer

        import time

        engine = _GatedEngine()
        server = PredictionServer(engine, port=0, batch_window_ms=0.0,
                                  max_batch=1)
        server.start_background()
        host, port = server.address
        n = 8
        results, errors = [], []

        def drive(k):
            try:
                local = ServeClient(host, port, retries=0)
                results.append(local.predict(
                    fu="int_add", a=k, b=100, voltage=0.9,
                    temperature=25.0))
            except Exception as exc:
                errors.append(exc)

        threads = [threading.Thread(target=drive, args=(k,))
                   for k in range(n)]
        for t in threads:
            t.start()
        # the first batch is gated inside the engine, so the other
        # n - 1 requests must all be sitting in the micro-batch queue
        # before close() runs — the drain then has real work to do
        deadline = time.monotonic() + 10.0
        while time.monotonic() < deadline \
                and len(server.batcher._queue) < n - 1:
            time.sleep(0.002)
        assert len(server.batcher._queue) == n - 1
        engine.release.set()
        server.close()
        for t in threads:
            t.join()
        assert errors == []
        assert len(results) == n
        assert sorted(r["delay_ps"] for r in results) == \
            [100.0 + k for k in range(n)]
        assert engine.served == n

    def test_close_is_idempotent_and_refuses_new_work(self):
        from repro.serve import PredictionServer

        engine = _GatedEngine()
        engine.release.set()
        server = PredictionServer(engine, port=0)
        server.start_background()
        host, port = server.address
        server.close()
        server.close()  # second close is a no-op
        with pytest.raises(ServeError):
            ServeClient(host, port, retries=0, timeout=2.0).health()

    def test_health_reports_worker_count(self, serving):
        client, _, _ = serving
        assert client.health()["workers"] == 1
