"""Tests for the micro-batching prediction engine.

The acceptance bar: served predictions are bit-identical to the offline
path (feature build + ``predict_delay``) for the same model and
operands, whatever the batching, corner mix, or stream interleaving.
"""

import numpy as np
import pytest

from repro.circuits import build_functional_unit
from repro.core import TEVoT, build_training_set, make_tevot_nh
from repro.flow import CampaignJob, CampaignRunner
from repro.serve import (
    ModelRegistry,
    PredictionEngine,
    PredictRequest,
)
from repro.timing import OperatingCondition
from repro.workloads import random_stream

CONDS = [OperatingCondition(0.81, 0.0), OperatingCondition(1.00, 100.0)]
FU_KW = dict(width=8)


def _requests(stream, condition, stream_id="s", clock=None):
    """The serving replay of a stream: row 0 primes the history."""
    return [PredictRequest(fu="int_add", a=int(stream.a[t]),
                           b=int(stream.b[t]), voltage=condition.voltage,
                           temperature=condition.temperature,
                           stream_id=stream_id, clock_period=clock)
            for t in range(len(stream.a))]


@pytest.fixture(scope="module")
def published(tmp_path_factory):
    fu = build_functional_unit("int_add", **FU_KW)
    stream = random_stream(70, operand_width=8, seed=0)
    stream.name = "eng_train"
    trace = CampaignRunner(use_cache=False).run(
        [CampaignJob(fu, stream, CONDS)])[0]
    tevot = TEVoT(operand_width=8)
    X, y = build_training_set(stream, CONDS, trace.delays, spec=tevot.spec)
    tevot.fit(X, y)
    nh = make_tevot_nh(operand_width=8)
    X_nh, y_nh = build_training_set(stream, CONDS, trace.delays,
                                    spec=nh.spec)
    nh.fit(X_nh, y_nh)
    root = tmp_path_factory.mktemp("registry")
    registry = ModelRegistry(root)
    registry.publish(tevot, fu=fu, conditions=CONDS, train_stream=stream)
    registry.publish(nh, fu=fu, kind="tevot_nh", conditions=CONDS,
                     train_stream=stream)
    return registry, tevot, nh


class TestModelParity:
    def test_stream_replay_bit_identical(self, published):
        registry, tevot, _ = published
        engine = PredictionEngine(registry=registry)
        stream = random_stream(40, operand_width=8, seed=3)
        for cond in CONDS:
            engine.reset_stream()
            ref = tevot.predict_stream_delays(stream, cond)
            out = engine.predict_batch(_requests(stream, cond))
            served = np.array([p.delay_ps for p in out[1:]])
            np.testing.assert_array_equal(served, ref)
            assert all(p.source == "model" for p in out)

    def test_parity_across_single_request_calls(self, published):
        """History chains across separate predict calls, not just
        within one batch."""
        registry, tevot, _ = published
        engine = PredictionEngine(registry=registry)
        stream = random_stream(15, operand_width=8, seed=4)
        ref = tevot.predict_stream_delays(stream, CONDS[0])
        served = []
        for req in _requests(stream, CONDS[0]):
            served.append(engine.predict_one(req).delay_ps)
        np.testing.assert_array_equal(np.array(served[1:]), ref)

    def test_mixed_corner_batch_parity(self, published):
        """One vectorized pass serves interleaved corners correctly."""
        registry, tevot, _ = published
        engine = PredictionEngine(registry=registry)
        stream = random_stream(20, operand_width=8, seed=5)
        refs = {c: tevot.predict_stream_delays(stream, c) for c in CONDS}
        # interleave: per cycle, one request per corner on its own stream
        reqs, owners = [], []
        for t in range(len(stream.a)):
            for c in CONDS:
                reqs.append(PredictRequest(
                    fu="int_add", a=int(stream.a[t]), b=int(stream.b[t]),
                    voltage=c.voltage, temperature=c.temperature,
                    stream_id=f"corner{c.label}"))
                owners.append(c)
        out = engine.predict_batch(reqs)
        per_corner = {c: [] for c in CONDS}
        for pred, c in zip(out, owners):
            per_corner[c].append(pred.delay_ps)
        for c in CONDS:
            np.testing.assert_array_equal(np.array(per_corner[c][1:]),
                                          refs[c])

    def test_nh_kind_served_without_history_features(self, published):
        registry, _, nh = published
        engine = PredictionEngine(registry=registry, kind="tevot_nh")
        stream = random_stream(10, operand_width=8, seed=6)
        ref = nh.predict_stream_delays(stream, CONDS[0])
        out = engine.predict_batch(_requests(stream, CONDS[0]))
        np.testing.assert_array_equal(
            np.array([p.delay_ps for p in out[1:]]), ref)

    def test_explicit_prev_overrides_state(self, published):
        registry, tevot, _ = published
        engine = PredictionEngine(registry=registry)
        # same request twice with different explicit histories must
        # differ from each other only via the history features
        base = dict(fu="int_add", a=170, b=85, voltage=0.81,
                    temperature=0.0)
        p1 = engine.predict_one(PredictRequest(prev_a=0, prev_b=0, **base))
        p2 = engine.predict_one(PredictRequest(prev_a=255, prev_b=255,
                                               **base))
        from repro.core.features import build_feature_matrix
        from repro.workloads import OperandStream
        s1 = OperandStream("x", np.array([0, 170]), np.array([0, 85]))
        s2 = OperandStream("x", np.array([255, 170]), np.array([255, 85]))
        r1 = tevot.predict_delay(build_feature_matrix(s1, CONDS[0],
                                                      tevot.spec))[0]
        r2 = tevot.predict_delay(build_feature_matrix(s2, CONDS[0],
                                                      tevot.spec))[0]
        assert p1.delay_ps == r1
        assert p2.delay_ps == r2


class TestClockClassification:
    def test_timing_error_flag_matches_threshold(self, published):
        registry, tevot, _ = published
        engine = PredictionEngine(registry=registry)
        stream = random_stream(25, operand_width=8, seed=7)
        ref = tevot.predict_stream_delays(stream, CONDS[0])
        clock = float(np.median(ref))
        out = engine.predict_batch(_requests(stream, CONDS[0], clock=clock))
        flags = np.array([p.timing_error for p in out[1:]])
        np.testing.assert_array_equal(flags, ref > clock)

    def test_nonpositive_clock_fails_cleanly(self, published):
        registry, _, _ = published
        engine = PredictionEngine(registry=registry)
        out = engine.predict_batch([PredictRequest(
            fu="int_add", a=1, b=2, voltage=0.9, temperature=25.0,
            clock_period=0.0)])
        assert not out[0].ok
        assert "clock_period" in out[0].message


class TestFallbackAndErrors:
    def test_sim_fallback_matches_gate_level(self):
        """With no registry every prediction is ground-truth DTA."""
        engine = PredictionEngine(registry=None)
        fu = build_functional_unit("int_add")
        stream = random_stream(12, seed=8)
        stream.name = "fb"
        trace = CampaignRunner(use_cache=False).run(
            [CampaignJob(fu, stream, CONDS[:1])])[0]
        out = engine.predict_batch(_requests(stream, CONDS[0]))
        served = np.array([p.delay_ps for p in out[1:]], dtype=np.float32)
        np.testing.assert_array_equal(served, trace.delays[0])
        assert all(p.source == "sim" for p in out)
        assert engine.stats.served_by_sim == len(out)

    def test_fallback_disabled_reports_failure(self, tmp_path):
        engine = PredictionEngine(registry=tmp_path, sim_fallback=False)
        out = engine.predict_batch([PredictRequest(
            fu="int_add", a=1, b=2, voltage=0.9, temperature=25.0)])
        assert not out[0].ok
        assert "fallback" in out[0].message
        assert engine.stats.failed == 1

    def test_unknown_fu_fails_that_request_only(self, published):
        registry, _, _ = published
        engine = PredictionEngine(registry=registry)
        out = engine.predict_batch([
            PredictRequest(fu="int_add", a=1, b=2, voltage=0.9,
                           temperature=25.0),
            PredictRequest(fu="not_a_unit", a=1, b=2, voltage=0.9,
                           temperature=25.0),
        ])
        assert out[0].ok
        assert not out[1].ok and "unknown FU" in out[1].message

    def test_invalid_condition_rejected(self, published):
        registry, _, _ = published
        engine = PredictionEngine(registry=registry)
        out = engine.predict_batch([PredictRequest(
            fu="int_add", a=1, b=2, voltage=-1.0, temperature=25.0)])
        assert not out[0].ok

    def test_predict_one_raises_on_failure(self, published):
        registry, _, _ = published
        engine = PredictionEngine(registry=registry)
        with pytest.raises(ValueError):
            engine.predict_one(PredictRequest(
                fu="no_such", a=0, b=0, voltage=0.9, temperature=25.0))


class TestHotCacheAndStats:
    def test_model_cache_hits_after_first_batch(self, published):
        registry, _, _ = published
        engine = PredictionEngine(registry=registry)
        req = PredictRequest(fu="int_add", a=1, b=2, voltage=0.9,
                             temperature=25.0)
        engine.predict_batch([req])
        engine.predict_batch([req])
        assert engine.stats.model_cache_hits == 1
        assert engine.stats.model_cache_misses == 1

    def test_refresh_picks_up_new_publish(self, published, tmp_path):
        registry, tevot, _ = published
        engine = PredictionEngine(registry=registry)
        req = PredictRequest(fu="int_add", a=1, b=2, voltage=0.9,
                             temperature=25.0)
        first = engine.predict_batch([req])[0]
        assert first.model_id.endswith("/v1")
        registry.publish(tevot, fu="int_add")
        engine.refresh()
        # fresh engine state so the request is identical
        engine.reset_stream()
        second = engine.predict_batch([req])[0]
        assert second.model_id.split("/v")[-1] > "1"


class TestResourceBounds:
    def test_history_state_is_lru_bounded(self, published):
        registry, _, _ = published
        engine = PredictionEngine(registry=registry, max_streams=4)
        for k in range(10):
            engine.predict_one(PredictRequest(
                fu="int_add", a=k, b=k, voltage=0.9, temperature=25.0,
                stream_id=f"s{k}"))
        assert len(engine._history) == 4
        # the newest streams survive
        assert ("int_add", "s9") in engine._history
        assert ("int_add", "s0") not in engine._history

    def test_unpublished_fu_negatively_cached(self, tmp_path):
        engine = PredictionEngine(registry=tmp_path, sim_fallback=True)
        req = PredictRequest(fu="int_add", a=1, b=2, voltage=0.9,
                             temperature=25.0, prev_a=1, prev_b=2)
        engine.predict_batch([req])
        engine.predict_batch([req])
        # second batch answers from the negative cache, no manifest read
        assert engine.stats.model_cache_misses == 1
        assert engine.stats.model_cache_hits == 1
        engine.refresh()
        engine.predict_batch([req])
        assert engine.stats.model_cache_misses == 2

    def test_rejected_clock_does_not_advance_history(self, published):
        registry, tevot, _ = published
        engine = PredictionEngine(registry=registry)
        bad = PredictRequest(fu="int_add", a=200, b=100, voltage=0.81,
                             temperature=0.0, clock_period=-1.0,
                             stream_id="guard")
        assert not engine.predict_batch([bad])[0].ok
        assert engine.stats.failed == 1
        assert ("int_add", "guard") not in engine._history
