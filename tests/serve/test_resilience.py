"""Overload + deadline resilience tests for the serving layer.

The acceptance story of the resilience work: flood a bounded-queue
server past ``max_queue`` from many threads and every request gets
exactly one of {result, 429-shed, 504-expired} — none hang, none are
lost, and the server-side counters reconcile with the client-side
tally.  Plus unit coverage for the new knobs (``max_queue``,
``default_deadline_ms``), the client's Retry-After/jitter hardening,
and the shared deadline vocabulary in :mod:`repro.flow.watchdog`.
"""

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

import pytest

from repro.flow.watchdog import Deadline
from repro.serve import (
    MicroBatcher,
    Prediction,
    PredictionServer,
    PredictRequest,
    QueueFullError,
    ServeClient,
    ServeError,
)

COND = dict(voltage=0.90, temperature=25.0)


class _GatedEngine:
    """Engine stub whose first batch blocks until released, so a known
    number of requests pile up behind the bounded queue."""

    registry = None
    sim_fallback = False
    kind = "tevot"

    def __init__(self):
        self.served = 0
        self.held = 0
        self.release = threading.Event()
        self._first = True

    def predict_batch(self, requests):
        if self._first:
            self._first = False
            self.held = len(requests)
            assert self.release.wait(timeout=30.0)
        self.served += len(requests)
        return [Prediction(ok=True, delay_ps=float(r.a + r.b),
                           source="stub") for r in requests]

    def refresh(self):
        pass

    def stats_dict(self):
        return {"served": self.served}


def _flood(host, port, n, deadline_ms=0, timeout=20.0):
    """Drive ``n`` single-request threads; tally outcome per thread."""
    outcomes = []
    lock = threading.Lock()

    def drive(k):
        local = ServeClient(host, port, retries=0, timeout=timeout,
                            deadline_ms=deadline_ms)
        try:
            got = local.predict(fu="int_add", a=k, b=1000, **COND)
            outcome = ("result", got["delay_ps"])
        except ServeError as exc:
            outcome = (str(exc.status), exc.retry_after)
        with lock:
            outcomes.append((k, outcome))

    threads = [threading.Thread(target=drive, args=(k,)) for k in range(n)]
    for t in threads:
        t.start()
    return threads, outcomes


class TestLoadShedding:
    def test_flood_past_max_queue_sheds_and_loses_nothing(self):
        """Every flooded request gets exactly one of {result, 429};
        counters reconcile with the client-side tally."""
        engine = _GatedEngine()
        server = PredictionServer(engine, port=0, batch_window_ms=0.0,
                                  max_batch=2, max_queue=4)
        server.start_background()
        host, port = server.address
        n = 24
        threads, outcomes = _flood(host, port, n)
        # wait until every request is accounted for: held in the gated
        # batch, sitting in the bounded queue, or already shed
        deadline = time.monotonic() + 10.0
        while time.monotonic() < deadline:
            with server.batcher._cond:
                queued = len(server.batcher._queue)
                shed = server.batcher.n_shed
            if engine.held + queued + shed == n:
                break
            time.sleep(0.002)
        assert engine.held + queued + shed == n
        assert queued <= 4, "bounded queue grew past max_queue"
        assert shed >= n - 4 - server.batcher.max_batch > 0
        engine.release.set()
        for t in threads:
            t.join(timeout=20.0)
        assert not any(t.is_alive() for t in threads), "a request hung"

        tally = {"result": 0, "429": 0}
        for _, (kind, detail) in outcomes:
            assert kind in tally, f"unexpected outcome {kind}"
            tally[kind] += 1
            if kind == "429":
                # every shed response advertises an honest Retry-After
                assert detail is not None and detail > 0
        assert tally["result"] + tally["429"] == n
        stats = server.batcher.stats_dict()
        assert stats["shed"] == tally["429"]
        assert stats["requests"] == tally["result"] == engine.served
        assert stats["queue_depth"] == 0
        server.close()

    def test_queue_full_error_is_immediate_and_all_or_nothing(self):
        engine = _GatedEngine()
        batcher = server = None
        try:
            batcher = MicroBatcher(engine, batch_window_ms=0.0,
                                   max_batch=1, max_queue=2)
            first = threading.Thread(target=batcher.submit_many, args=(
                [PredictRequest(fu="int_add", a=1, b=2, **COND)],))
            first.start()
            while engine.held == 0:  # gated batch in flight
                time.sleep(0.002)
            two = [PredictRequest(fu="int_add", a=i, b=2, **COND)
                   for i in range(2)]
            done = threading.Thread(target=batcher.submit_many, args=(two,))
            done.start()  # exactly fills the queue
            while batcher.queue_depth() < 2:
                time.sleep(0.002)
            start = time.monotonic()
            with pytest.raises(QueueFullError) as err:
                batcher.submit_many(
                    [PredictRequest(fu="int_add", a=9, b=9, **COND)])
            assert time.monotonic() - start < 1.0, "shed must not block"
            assert err.value.n_shed == 1
            assert err.value.retry_after_s > 0
            # all-or-nothing: a 2-request body cannot half-fit the
            # single remaining slot after one drains
            assert batcher.n_shed == 1
        finally:
            engine.release.set()
            if batcher is not None:
                batcher.stop()
            assert server is None


class TestDeadlines:
    def test_queued_requests_past_deadline_answer_504(self):
        """Requests that expire while queued are answered ``deadline
        exceeded`` at dequeue, never executed."""
        engine = _GatedEngine()
        server = PredictionServer(engine, port=0, batch_window_ms=0.0,
                                  max_batch=1, max_queue=64)
        server.start_background()
        host, port = server.address
        n = 6
        threads, outcomes = _flood(host, port, n, deadline_ms=200)
        deadline = time.monotonic() + 10.0
        while time.monotonic() < deadline:
            with server.batcher._cond:
                queued = len(server.batcher._queue)
            if engine.held + queued == n:
                break
            time.sleep(0.002)
        assert engine.held + queued == n
        time.sleep(0.4)  # let every queued deadline lapse
        engine.release.set()
        for t in threads:
            t.join(timeout=20.0)
        assert not any(t.is_alive() for t in threads)

        tally = {"result": 0, "504": 0}
        for _, (kind, _) in outcomes:
            assert kind in tally, f"unexpected outcome {kind}"
            tally[kind] += 1
        # the gated batch executed (dispatched before its deadline);
        # everything still queued expired
        assert tally["result"] == engine.held == engine.served
        assert tally["504"] == n - engine.held > 0
        stats = server.batcher.stats_dict()
        assert stats["expired"] == tally["504"]
        assert stats["requests"] == tally["result"]
        server.close()

    def test_server_default_deadline_applies_when_client_sends_none(self):
        engine = _GatedEngine()
        batcher = MicroBatcher(engine, batch_window_ms=0.0, max_batch=1,
                               default_deadline_ms=150.0)
        try:
            results = []
            first = threading.Thread(target=lambda: results.extend(
                batcher.submit_many(
                    [PredictRequest(fu="int_add", a=1, b=2, **COND)])))
            first.start()
            while engine.held == 0:
                time.sleep(0.002)
            queued = threading.Thread(target=lambda: results.extend(
                batcher.submit_many(
                    [PredictRequest(fu="int_add", a=3, b=4, **COND)])))
            queued.start()
            time.sleep(0.3)  # the queued request's default budget lapses
            engine.release.set()
            first.join(timeout=10.0)
            queued.join(timeout=10.0)
            assert len(results) == 2
            expired = [r for r in results if r.expired]
            assert len(expired) == 1
            assert not expired[0].ok
            assert expired[0].message == "deadline exceeded"
            assert batcher.n_expired == 1
        finally:
            engine.release.set()
            batcher.stop()

    def test_rejects_nonpositive_deadline(self):
        from repro.circuits import build_functional_unit
        from repro.serve import validate_request

        req = PredictRequest(fu="int_add", a=1, b=2, deadline_ms=-5.0,
                             **COND)
        failure = validate_request(req, build_functional_unit)
        assert failure is not None and "deadline_ms" in failure


class TestConfigKnobs:
    def test_runtime_tuning_of_max_queue_and_default_deadline(self):
        engine = _GatedEngine()
        engine.release.set()
        server = PredictionServer(engine, port=0)
        server.start_background()
        host, port = server.address
        client = ServeClient(host, port)
        out = client.configure(max_queue=7, default_deadline_ms=123.0)
        assert out["config"]["max_queue"] == 7
        assert out["config"]["default_deadline_ms"] == 123.0
        stats = client.stats()["batching"]
        assert stats["max_queue"] == 7
        assert stats["default_deadline_ms"] == 123.0
        server.close()

    @pytest.mark.parametrize("payload, field", [
        ({"max_queue": 0}, "max_queue"),
        ({"max_queue": -1}, "max_queue"),
        ({"max_queue": 2.5}, "max_queue"),
        ({"max_queue": True}, "max_queue"),
        ({"default_deadline_ms": -1}, "default_deadline_ms"),
        ({"default_deadline_ms": "soon"}, "default_deadline_ms"),
    ])
    def test_bad_knob_is_400_naming_field(self, payload, field):
        engine = _GatedEngine()
        engine.release.set()
        server = PredictionServer(engine, port=0)
        server.start_background()
        host, port = server.address
        client = ServeClient(host, port)
        with pytest.raises(ServeError) as err:
            client._call("/config", payload)
        assert err.value.status == 400
        assert err.value.payload["field"] == field
        server.close()


class _SheddingHandler(BaseHTTPRequestHandler):
    """Stub server: first ``shed_first`` predicts answer 429 with a
    Retry-After, the rest succeed."""

    hits = []
    shed_first = 1
    retry_after_s = 0.08

    def _send(self, status, payload, headers=()):
        body = json.dumps(payload).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in headers:
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def do_POST(self):
        length = int(self.headers.get("Content-Length") or 0)
        self.rfile.read(length)
        type(self).hits.append(time.monotonic())
        if len(type(self).hits) <= self.shed_first:
            self._send(429, {"error": "queue full",
                             "retry_after_s": self.retry_after_s},
                       [("Retry-After", f"{self.retry_after_s:.3f}")])
        else:
            self._send(200, {"predictions": [
                {"ok": True, "delay_ps": 1.0, "source": "stub"}]})

    def log_message(self, *args):
        pass


@pytest.fixture
def shedding_server():
    _SheddingHandler.hits = []
    httpd = ThreadingHTTPServer(("127.0.0.1", 0), _SheddingHandler)
    thread = threading.Thread(target=httpd.serve_forever, daemon=True)
    thread.start()
    yield httpd.server_address
    httpd.shutdown()
    httpd.server_close()


class TestClientHardening:
    def test_client_honors_retry_after_on_429(self, shedding_server):
        host, port = shedding_server
        client = ServeClient(host, port, retries=2, backoff_s=0.0)
        (pred,) = client.predict_many([dict(fu="int_add", a=1, b=2, **COND)])
        assert pred["ok"]
        hits = _SheddingHandler.hits
        assert len(hits) == 2
        # the retry waited at least the advertised delay
        assert hits[1] - hits[0] >= _SheddingHandler.retry_after_s * 0.9

    def test_exhausted_retries_surface_the_429(self, shedding_server):
        host, port = shedding_server
        _SheddingHandler.shed_first = 99
        try:
            client = ServeClient(host, port, retries=1, backoff_s=0.0)
            with pytest.raises(ServeError) as err:
                client.predict_many([dict(fu="int_add", a=1, b=2, **COND)])
            assert err.value.status == 429
            assert err.value.retry_after == pytest.approx(
                _SheddingHandler.retry_after_s)
            assert len(_SheddingHandler.hits) == 2  # retried, then gave up
        finally:
            _SheddingHandler.shed_first = 1

    def test_backoff_is_jittered(self):
        client = ServeClient(backoff_s=0.1, jitter=0.5)
        delays = {client._retry_delay_s(1, None) for _ in range(32)}
        assert all(0.1 <= d <= 0.15 for d in delays)
        assert len(delays) > 1, "jitter must decorrelate retries"
        flat = ServeClient(backoff_s=0.1, jitter=0.0)
        assert flat._retry_delay_s(2, None) == pytest.approx(0.2)

    def test_honored_retry_after_is_capped(self):
        client = ServeClient(backoff_s=0.0)
        hostile = ServeError("shed", status=429, retry_after=3600.0)
        assert client._retry_delay_s(1, hostile) == pytest.approx(5.0)

    def test_deadline_rides_every_predict_request(self, monkeypatch):
        captured = {}
        client = ServeClient(timeout=2.5)

        def fake_call(path, payload=None):
            captured.update(payload)
            return {"predictions": [{"ok": True}] * len(payload["requests"])}

        monkeypatch.setattr(client, "_call", fake_call)
        client.predict_many([dict(fu="int_add", a=1, b=2, **COND),
                             dict(fu="int_add", a=3, b=4,
                                  deadline_ms=99.0, **COND)])
        sent = captured["requests"]
        assert sent[0]["deadline_ms"] == 2500.0  # derived from timeout
        assert sent[1]["deadline_ms"] == 99.0    # explicit wins
        off = ServeClient(timeout=2.5, deadline_ms=0)
        monkeypatch.setattr(off, "_call", fake_call)
        off.predict_many([dict(fu="int_add", a=1, b=2, **COND)])
        assert "deadline_ms" not in captured["requests"][0]

    def test_ctor_validation(self):
        with pytest.raises(ValueError, match="jitter"):
            ServeClient(jitter=1.5)
        with pytest.raises(ValueError, match="deadline_ms"):
            ServeClient(deadline_ms=-1)


class TestHealthStates:
    def test_draining_server_reports_non_200(self):
        engine = _GatedEngine()
        engine.release.set()
        server = PredictionServer(engine, port=0)
        assert server.health()["status"] == "healthy"
        server._draining = True
        assert server.health()["status"] == "draining"

    def test_degraded_engine_surfaces_in_health(self):
        engine = _GatedEngine()
        engine.release.set()
        engine.health_state = lambda: "degraded"
        server = PredictionServer(engine, port=0)
        server.start_background()
        host, port = server.address
        client = ServeClient(host, port)
        payload = client.health()  # 503, but the body still reports
        assert payload["status"] == "degraded"
        with pytest.raises(ServeError) as err:
            client._call("/health")
        assert err.value.status == 503
        server.close()


class TestDeadlineVocabulary:
    def test_after_ms_and_expiry(self):
        d = Deadline.after_ms(10_000)
        assert not d.expired()
        assert 9.0 < d.remaining_s() <= 10.0
        past = Deadline.after_ms(-1)
        assert past.expired()

    def test_earliest_picks_tightest_and_ignores_none(self):
        loose = Deadline.after_s(10)
        tight = Deadline.after_s(1)
        assert Deadline.earliest([None, loose, tight, None]) is tight
        assert Deadline.earliest([None, None]) is None
        assert Deadline.earliest([]) is None
