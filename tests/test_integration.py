"""Cross-module integration tests: the full Fig.-2 pipeline end to end
for each functional unit at a tiny scale."""

import numpy as np
import pytest

from repro.api import CornerSpec, ExperimentSpec, StreamSpec, Workspace
from repro.circuits import PAPER_UNITS, build_functional_unit
from repro.flow import CampaignJob, CampaignRunner
from repro.timing import OperatingCondition, run_sta
from repro.workloads import stream_for_unit

CONDS = [OperatingCondition(0.81, 0.0), OperatingCondition(1.00, 100.0)]


@pytest.mark.parametrize("fu_name", PAPER_UNITS)
def test_full_pipeline_per_unit(fu_name, tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    spec = ExperimentSpec(
        fu=fu_name,
        train_stream=StreamSpec(cycles=120, seed=0, name="random_train"),
        test_stream=StreamSpec(cycles=80, seed=1, name="random_test"),
        corners=CornerSpec.from_conditions(CONDS))
    res = Workspace().experiment(spec)
    summary = res.summary()
    assert set(summary) == {"TEVoT", "Delay-based", "TER-based", "TEVoT-NH"}
    for model, acc in summary.items():
        assert 0.0 <= acc <= 1.0, model
    # dimension sanity: sweep covers conditions x 3 speedups
    assert res.sweep.per_cell["TEVoT"].shape == (2, 3)
    # error-free clocks are positive and corner-ordered: the low-voltage
    # corner is slower
    assert res.clocks[CONDS[0]] > res.clocks[CONDS[1]] > 0


@pytest.mark.parametrize("fu_name", PAPER_UNITS)
def test_dynamic_delay_never_exceeds_static(fu_name, tmp_path):
    fu = build_functional_unit(fu_name)
    stream = stream_for_unit(fu_name, 60, seed=5)
    stream.name = f"integ_{fu_name}"
    trace = CampaignRunner(store=tmp_path).run(
        [CampaignJob(fu, stream, CONDS)])[0]
    for k, cond in enumerate(CONDS):
        static = run_sta(fu.netlist, cond).critical_delay
        assert np.all(trace.delays[k] <= static + 1e-2), (fu_name, cond)
        assert np.all(trace.delays[k] >= 0.0)


def test_functional_consistency_through_sim_stack():
    """The levelized simulator's output values equal the reference
    model's results on a real stream — values and timing come from the
    same pass."""
    from repro.sim.levelized import LevelizedSimulator

    fu = build_functional_unit("fp_add")
    stream = stream_for_unit("fp_add", 30, seed=6)
    sim = LevelizedSimulator(fu.netlist)
    values = sim.run_values(stream.bit_matrix(fu))
    for row in range(1, 10):
        got = fu.decode_result(values[row])
        want = fu.compute(int(stream.a[row]), int(stream.b[row]))
        assert got == want
