"""Model persistence: the registry's artifact format must round-trip
every model kind with bit-identical predictions.

Guards the serving registry against silent drift in the pickle layout:
TEVoT, TEVoT-NH, and both baselines go through ``save_model`` /
``load_model`` (and the legacy ``TEVoT.save``/``load`` front end) and
must predict exactly what the in-memory model predicts.
"""

import pickle

import numpy as np
import pytest

from repro.circuits import build_functional_unit
from repro.core import (
    DelayBasedModel,
    TERBasedModel,
    TEVoT,
    build_training_set,
    load_model,
    make_tevot_nh,
    save_model,
)
from repro.flow import CampaignJob, CampaignRunner, error_free_clocks
from repro.timing import OperatingCondition, sped_up_clock
from repro.workloads import random_stream

CONDS = [OperatingCondition(0.81, 0.0), OperatingCondition(1.00, 100.0)]


@pytest.fixture(scope="module")
def fitted():
    """All four paper models fitted on one tiny characterization."""
    fu = build_functional_unit("int_add", width=8)
    stream = random_stream(60, operand_width=8, seed=0)
    stream.name = "persist_train"
    trace = CampaignRunner(use_cache=False).run(
        [CampaignJob(fu, stream, CONDS)])[0]

    tevot = TEVoT(operand_width=8)
    X, y = build_training_set(stream, CONDS, trace.delays, spec=tevot.spec)
    tevot.fit(X, y)
    nh = make_tevot_nh(operand_width=8)
    X_nh, y_nh = build_training_set(stream, CONDS, trace.delays,
                                    spec=nh.spec)
    nh.fit(X_nh, y_nh)
    delay_based = DelayBasedModel().fit(CONDS, trace.delays)
    clocks = error_free_clocks(trace)
    clock_table = {c: [sped_up_clock(clocks[c], s)
                       for s in (0.05, 0.10, 0.15)] for c in CONDS}
    ter_based = TERBasedModel(seed=0).fit(CONDS, trace.delays, clock_table)
    probe = random_stream(25, operand_width=8, seed=1)
    return tevot, nh, delay_based, ter_based, clock_table, probe


class TestRoundTrips:
    def test_tevot_roundtrip_bit_identical(self, fitted, tmp_path):
        tevot, _, _, _, _, probe = fitted
        path = tmp_path / "tevot.pkl"
        tevot.save(path, metadata={"fu": "int_add"})
        loaded, metadata = TEVoT.load_with_metadata(path)
        assert metadata["fu"] == "int_add"
        assert loaded.include_history is True
        for cond in CONDS:
            np.testing.assert_array_equal(
                loaded.predict_stream_delays(probe, cond),
                tevot.predict_stream_delays(probe, cond))

    def test_tevot_nh_roundtrip_bit_identical(self, fitted, tmp_path):
        _, nh, _, _, _, probe = fitted
        path = tmp_path / "nh.pkl"
        nh.save(path)
        loaded = TEVoT.load(path)
        assert loaded.include_history is False
        for cond in CONDS:
            np.testing.assert_array_equal(
                loaded.predict_stream_delays(probe, cond),
                nh.predict_stream_delays(probe, cond))

    def test_delay_based_roundtrip_bit_identical(self, fitted, tmp_path):
        _, _, delay_based, _, clock_table, _ = fitted
        path = tmp_path / "delay_based.pkl"
        save_model(delay_based, path)
        loaded, _ = load_model(path)
        for cond in CONDS:
            assert loaded.max_delay(cond) == delay_based.max_delay(cond)
            for tclk in clock_table[cond]:
                np.testing.assert_array_equal(
                    loaded.predict_errors(cond, tclk, 40),
                    delay_based.predict_errors(cond, tclk, 40))

    def test_ter_based_roundtrip_bit_identical(self, fitted, tmp_path):
        _, _, _, ter_based, clock_table, _ = fitted
        path = tmp_path / "ter_based.pkl"
        save_model(ter_based, path)
        loaded, _ = load_model(path)
        for cond in CONDS:
            for tclk in clock_table[cond]:
                assert (loaded.timing_error_rate(cond, tclk)
                        == ter_based.timing_error_rate(cond, tclk))
                np.testing.assert_array_equal(
                    loaded.predict_errors(cond, tclk, 40),
                    ter_based.predict_errors(cond, tclk, 40))


class TestFormatCompatibility:
    def test_v1_bare_pickle_still_loads(self, fitted, tmp_path):
        """Pre-registry artifacts were a bare pickled model object."""
        tevot, _, _, _, _, probe = fitted
        path = tmp_path / "legacy.pkl"
        with path.open("wb") as fh:
            pickle.dump(tevot, fh)
        loaded, metadata = TEVoT.load_with_metadata(path)
        assert metadata == {}
        np.testing.assert_array_equal(
            loaded.predict_stream_delays(probe, CONDS[0]),
            tevot.predict_stream_delays(probe, CONDS[0]))

    def test_wrong_class_rejected(self, fitted, tmp_path):
        _, _, delay_based, _, _, _ = fitted
        path = tmp_path / "wrong.pkl"
        save_model(delay_based, path)
        with pytest.raises(TypeError):
            TEVoT.load(path)

    def test_newer_format_version_rejected(self, tmp_path):
        path = tmp_path / "future.pkl"
        with path.open("wb") as fh:
            pickle.dump({"format": "repro-model", "format_version": 99,
                         "model": None, "metadata": {}}, fh)
        with pytest.raises(ValueError, match="newer"):
            load_model(path)

    def test_artifact_payload_is_self_describing(self, fitted, tmp_path):
        tevot, _, _, _, _, _ = fitted
        path = tmp_path / "meta.pkl"
        save_model(tevot, path, metadata={"note": "x"})
        with path.open("rb") as fh:
            payload = pickle.load(fh)
        assert payload["class"] == "TEVoT"
        assert payload["feature_spec"] == {"operand_width": 8,
                                           "include_history": True}
        assert payload["metadata"]["note"] == "x"
