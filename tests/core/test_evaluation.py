"""Tests for the Table III evaluation protocol."""

import numpy as np
import pytest

from repro.core import (
    DelayBasedModel,
    TERBasedModel,
    TEVoT,
    evaluate_models,
    make_tevot_nh,
)
from repro.core.features import build_training_set
from repro.ml import LinearRegression
from repro.sim.dta import DelayTrace
from repro.timing import OperatingCondition, sped_up_clock
from repro.workloads import random_stream

CONDS = [OperatingCondition(0.85, 25.0), OperatingCondition(1.00, 75.0)]


@pytest.fixture
def setup():
    """Tiny synthetic world where delays are a simple known function."""
    rng = np.random.default_rng(0)
    stream = random_stream(80, seed=0)
    # synthetic "true" delays: depends on condition index + noise-free
    delays = np.stack([
        100.0 + 5.0 * (np.arange(80) % 7),
        60.0 + 3.0 * (np.arange(80) % 5),
    ]).astype(np.float32)
    trace = DelayTrace(delays, CONDS)
    clocks = {c: float(delays[k].max()) for k, c in enumerate(CONDS)}

    tevot = TEVoT(regressor=LinearRegression())
    X, y = build_training_set(stream, CONDS, delays)
    tevot.fit(X, y)
    nh = make_tevot_nh(regressor=LinearRegression())
    Xn, yn = build_training_set(stream, CONDS, delays, spec=nh.spec)
    nh.fit(Xn, yn)
    delay_based = DelayBasedModel().fit(CONDS, delays)
    clock_table = {c: [sped_up_clock(clocks[c], s) for s in (0.05, 0.10, 0.15)]
                   for c in CONDS}
    ter_based = TERBasedModel(seed=0).fit(CONDS, delays, clock_table)
    return stream, trace, clocks, tevot, nh, delay_based, ter_based


class TestEvaluateModels:
    def test_sweep_structure(self, setup):
        stream, trace, clocks, tevot, nh, db, tb = setup
        sweep = evaluate_models(tevot, nh, db, tb, stream, trace, clocks)
        assert sweep.per_cell["TEVoT"].shape == (2, 3)
        for model, cells in sweep.per_cell.items():
            assert np.all(cells >= 0) and np.all(cells <= 1), model

    def test_averages_match_cells(self, setup):
        stream, trace, clocks, tevot, nh, db, tb = setup
        sweep = evaluate_models(tevot, nh, db, tb, stream, trace, clocks)
        avg = sweep.averages()
        assert avg.tevot == pytest.approx(sweep.per_cell["TEVoT"].mean())
        assert set(avg.as_dict()) == {"TEVoT", "Delay-based", "TER-based",
                                      "TEVoT-NH"}

    def test_delay_based_accuracy_equals_ter(self, setup):
        """Delay-based predicts all-error at sped-up clocks, so its
        accuracy per cell equals that cell's true TER."""
        stream, trace, clocks, tevot, nh, db, tb = setup
        sweep = evaluate_models(tevot, nh, db, tb, stream, trace, clocks)
        for ci, cond in enumerate(trace.conditions):
            for si, s in enumerate(sweep.speedups):
                tclk = sped_up_clock(clocks[cond], s)
                ter = float((trace.delays[ci] > tclk).mean())
                assert sweep.per_cell["Delay-based"][ci, si] == \
                    pytest.approx(ter)
