"""Tests for the TEVoT model and baseline error models."""

import numpy as np
import pytest

from repro.core import (
    DelayBasedModel,
    TERBasedModel,
    TEVoT,
    make_tevot_nh,
    prediction_accuracy,
)
from repro.core.features import build_feature_matrix
from repro.ml import LinearRegression
from repro.timing import OperatingCondition
from repro.workloads import random_stream

COND = OperatingCondition(0.85, 25.0)
COND2 = OperatingCondition(0.95, 75.0)


def synthetic_training(n=300, seed=0, include_history=True):
    """Features with a known linear delay structure for fast tests."""
    spec_dim = 130 if include_history else 66
    rng = np.random.default_rng(seed)
    X = rng.integers(0, 2, (n, spec_dim)).astype(np.float64)
    X[:, -2] = rng.choice([0.81, 0.9, 1.0], n)
    X[:, -1] = rng.choice([0.0, 50.0, 100.0], n)
    y = 100 + 50 * X[:, 0] + 30 * X[:, 1] + 200 * (1.0 - X[:, -2])
    return X, y


class TestTEVoT:
    def test_fit_predict_roundtrip(self):
        X, y = synthetic_training()
        model = TEVoT(regressor=LinearRegression())
        model.fit(X, y)
        pred = model.predict_delay(X)
        assert np.allclose(pred, y, atol=1e-6)

    def test_predict_errors_thresholds_delay(self):
        X, y = synthetic_training()
        model = TEVoT(regressor=LinearRegression()).fit(X, y)
        errors = model.predict_errors(X, clock_period=205.0)
        np.testing.assert_array_equal(errors, (y > 205.0).astype(np.uint8))

    def test_same_model_serves_multiple_clocks(self):
        X, y = synthetic_training()
        model = TEVoT(regressor=LinearRegression()).fit(X, y)
        e_fast = model.predict_errors(X, 150.0)
        e_slow = model.predict_errors(X, 400.0)
        assert e_fast.sum() > e_slow.sum()

    def test_wrong_feature_count_rejected(self):
        model = TEVoT(regressor=LinearRegression())
        with pytest.raises(ValueError):
            model.fit(np.zeros((5, 7)), np.zeros(5))

    def test_unfitted_predict_raises(self):
        with pytest.raises(RuntimeError):
            TEVoT().predict_delay(np.zeros((1, 130)))

    def test_invalid_clock_rejected(self):
        X, y = synthetic_training()
        model = TEVoT(regressor=LinearRegression()).fit(X, y)
        with pytest.raises(ValueError):
            model.predict_errors(X, 0.0)

    def test_stream_prediction_shapes(self):
        stream = random_stream(20, seed=1)
        X_rows = build_feature_matrix(stream, COND)
        model = TEVoT(regressor=LinearRegression())
        model.fit(X_rows, np.linspace(100, 200, 20))
        assert model.predict_stream_delays(stream, COND).shape == (20,)
        assert model.predict_stream_errors(stream, COND, 150.0).shape == (20,)
        assert 0.0 <= model.timing_error_rate(stream, COND, 150.0) <= 1.0

    def test_save_load_roundtrip(self, tmp_path):
        X, y = synthetic_training()
        model = TEVoT(regressor=LinearRegression()).fit(X, y)
        path = tmp_path / "tevot.pkl"
        model.save(path)
        loaded = TEVoT.load(path)
        np.testing.assert_allclose(loaded.predict_delay(X[:5]),
                                   model.predict_delay(X[:5]))

    def test_nh_variant_has_no_history(self):
        nh = make_tevot_nh(regressor=LinearRegression())
        assert not nh.include_history
        assert nh.spec.n_features == 66


class TestDelayBased:
    def test_pessimistic_prediction(self):
        conds = [COND, COND2]
        delays = np.array([[100.0, 300.0, 200.0], [80.0, 90.0, 70.0]])
        model = DelayBasedModel().fit(conds, delays)
        assert model.max_delay(COND) == 300.0
        # clock below max -> every cycle flagged
        np.testing.assert_array_equal(
            model.predict_errors(COND, 250.0, 4), [1, 1, 1, 1])
        # clock above max -> no errors
        np.testing.assert_array_equal(
            model.predict_errors(COND, 350.0, 4), [0, 0, 0, 0])

    def test_ter_is_binary(self):
        model = DelayBasedModel().fit([COND], np.array([[100.0, 200.0]]))
        assert model.timing_error_rate(COND, 150.0) == 1.0
        assert model.timing_error_rate(COND, 250.0) == 0.0

    def test_unknown_condition_raises(self):
        model = DelayBasedModel().fit([COND], np.array([[1.0]]))
        with pytest.raises(KeyError):
            model.predict_errors(COND2, 1.0, 1)

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            DelayBasedModel().predict_errors(COND, 1.0, 1)


class TestTERBased:
    def test_measured_rate_matches_training(self):
        delays = np.array([[100.0, 300.0, 200.0, 250.0]])
        clocks = {COND: [220.0]}
        model = TERBasedModel(seed=0).fit([COND], delays, clocks)
        assert model.timing_error_rate(COND, 220.0) == 0.5

    def test_stochastic_prediction_rate(self):
        delays = np.array([[100.0] * 70 + [300.0] * 30])
        model = TERBasedModel(seed=1).fit([COND], delays, {COND: [200.0]})
        preds = model.predict_errors(COND, 200.0, 20_000)
        assert preds.mean() == pytest.approx(0.3, abs=0.02)

    def test_unknown_clock_raises(self):
        model = TERBasedModel().fit([COND], np.array([[1.0]]), {COND: [2.0]})
        with pytest.raises(KeyError):
            model.timing_error_rate(COND, 99.0)


class TestPredictionAccuracy:
    def test_eq4(self):
        assert prediction_accuracy([0, 1, 1, 0], [0, 1, 0, 0]) == 0.75

    def test_validation(self):
        with pytest.raises(ValueError):
            prediction_accuracy([0, 1], [0])
        with pytest.raises(ValueError):
            prediction_accuracy([], [])
