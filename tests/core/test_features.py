"""Tests for TEVoT feature generation (Eq. 3)."""

import numpy as np
import pytest

from repro.core.features import (
    FeatureSpec,
    build_feature_matrix,
    build_training_set,
    stream_bits,
)
from repro.timing import OperatingCondition
from repro.workloads import OperandStream, random_stream


@pytest.fixture
def stream():
    return random_stream(10, seed=0)


COND = OperatingCondition(0.85, 50.0)


class TestFeatureSpec:
    def test_dimension_with_history_matches_eq3(self):
        spec = FeatureSpec(operand_width=32, include_history=True)
        assert spec.n_features == 130  # 64 + 64 + V + T

    def test_dimension_without_history(self):
        spec = FeatureSpec(operand_width=32, include_history=False)
        assert spec.n_features == 66

    def test_column_names_length(self):
        spec = FeatureSpec()
        assert len(spec.column_names()) == spec.n_features
        assert spec.column_names()[-2:] == ["V", "T"]


class TestStreamBits:
    def test_bit_expansion_roundtrip(self, stream):
        bits = stream_bits(stream)
        assert bits.shape == (11, 64)
        word = int(stream.a[3])
        got = sum(int(bits[3, i]) << i for i in range(32))
        assert got == word

    def test_b_operand_in_upper_half(self, stream):
        bits = stream_bits(stream)
        word = int(stream.b[5])
        got = sum(int(bits[5, 32 + i]) << i for i in range(32))
        assert got == word


class TestBuildFeatureMatrix:
    def test_shape(self, stream):
        X = build_feature_matrix(stream, COND)
        assert X.shape == (10, 130)

    def test_history_columns_are_previous_cycle(self, stream):
        X = build_feature_matrix(stream, COND)
        bits = stream_bits(stream)
        np.testing.assert_array_equal(X[:, :64], bits[1:])
        np.testing.assert_array_equal(X[:, 64:128], bits[:-1])

    def test_condition_columns(self, stream):
        X = build_feature_matrix(stream, COND)
        assert np.all(X[:, 128] == np.float32(0.85))
        assert np.all(X[:, 129] == np.float32(50.0))

    def test_no_history_spec(self, stream):
        X = build_feature_matrix(stream, COND,
                                 FeatureSpec(include_history=False))
        assert X.shape == (10, 66)


class TestBuildTrainingSet:
    def test_stacks_conditions(self, stream):
        conds = [OperatingCondition(0.81, 0), OperatingCondition(1.0, 100)]
        delays = np.arange(20, dtype=np.float32).reshape(2, 10)
        X, y = build_training_set(stream, conds, delays)
        assert X.shape == (20, 130)
        assert y.shape == (20,)
        np.testing.assert_array_equal(y[:10], delays[0])
        assert np.all(X[:10, 128] == np.float32(0.81))
        assert np.all(X[10:, 128] == np.float32(1.0))

    def test_max_rows_subsamples(self, stream):
        conds = [OperatingCondition(0.81, 0)]
        delays = np.zeros((1, 10))
        X, y = build_training_set(stream, conds, delays, max_rows=4, seed=0)
        assert X.shape[0] == 4

    def test_shape_validation(self, stream):
        with pytest.raises(ValueError):
            build_training_set(stream, [COND], np.zeros((2, 10)))
        with pytest.raises(ValueError):
            build_training_set(stream, [COND], np.zeros((1, 7)))
