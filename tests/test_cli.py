"""Tests for the command-line interface."""

import pytest

from repro.cli import (
    build_parser,
    campaign_spec,
    main,
    predict_spec,
    serve_spec,
    train_spec,
)


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_fu_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sta", "--fu", "div"])


class TestCommands:
    def test_stats_all_units(self, capsys):
        assert main(["stats"]) == 0
        out = capsys.readouterr().out
        for name in ("int_add", "int_mul", "fp_add", "fp_mul"):
            assert name in out

    def test_sta_single_corner(self, capsys):
        rc = main(["sta", "--fu", "int_add",
                   "--voltages", "1.0", "--temperatures", "25"])
        assert rc == 0
        assert "(1.00,25)" in capsys.readouterr().out

    def test_characterize(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        rc = main(["characterize", "--fu", "int_add", "--cycles", "50",
                   "--voltages", "0.9", "--temperatures", "25"])
        assert rc == 0
        assert "mean" in capsys.readouterr().out

    def test_campaign_reports_shards_and_sim_time(self, capsys, tmp_path,
                                                  monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        rc = main(["campaign", "--fu", "int_add", "--cycles", "90",
                   "--shard-cycles", "30", "--voltages", "0.9",
                   "--temperatures", "25"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "1 simulated" in out
        assert "across 3 shard(s)" in out
        assert "[3 shard(s)," in out
        assert "cyc/s" in out  # effective per-job throughput
        # rerun is fully cached: no shard/timing detail
        rc = main(["campaign", "--fu", "int_add", "--cycles", "90",
                   "--shard-cycles", "30", "--voltages", "0.9",
                   "--temperatures", "25"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "1 cached, 0 simulated]" in out
        assert "[cached]" in out

    def test_train_and_predict_roundtrip(self, capsys, tmp_path,
                                         monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        model_path = tmp_path / "m.pkl"
        rc = main(["train", "--fu", "int_add", "--cycles", "80",
                   "--voltages", "0.85", "--temperatures", "25",
                   "-o", str(model_path)])
        assert rc == 0
        assert model_path.exists()
        rc = main(["predict", "-m", str(model_path), "--fu", "int_add",
                   "--cycles", "40", "--speedup", "0.15",
                   "--voltages", "0.85", "--temperatures", "25"])
        assert rc == 0
        assert "TER" in capsys.readouterr().out


class TestValidation:
    @pytest.mark.parametrize("argv", [
        ["characterize", "--fu", "int_add", "--cycles", "0"],
        ["campaign", "--fu", "int_add", "--cycles", "-5"],
        ["train", "--fu", "int_add", "--cycles", "0", "-o", "m.pkl"],
        ["train", "--fu", "int_add", "--max-rows", "0", "-o", "m.pkl"],
        ["predict", "-m", "m.pkl", "--fu", "int_add", "--cycles", "-1"],
        ["predict", "-m", "m.pkl", "--fu", "int_add", "--speedup", "-0.1"],
        ["campaign", "--workers", "0"],
        ["campaign", "--shard-cycles", "0"],
        ["campaign", "--shard-corners", "0"],
        ["serve", "--max-batch", "0"],
        ["serve", "--batch-window-ms", "-1"],
    ])
    def test_nonpositive_values_rejected(self, argv):
        with pytest.raises(SystemExit):
            build_parser().parse_args(argv)

    def test_backend_error_lists_available_names(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["characterize", "--fu", "int_add",
                                       "--backend", "quantum"])
        err = capsys.readouterr().err
        for name in ("bitpacked", "levelized", "event"):
            assert name in err


class TestStoreCommands:
    def test_store_gc_and_list(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        assert main(["characterize", "--fu", "int_add", "--cycles", "30",
                     "--voltages", "0.9", "--temperatures", "25"]) == 0
        assert main(["store", "list"]) == 0
        assert "1 entr" in capsys.readouterr().out
        # zero budget evicts everything
        assert main(["store", "gc", "--max-mb", "0"]) == 0
        assert "removed 1 blob" in capsys.readouterr().out
        assert list(tmp_path.glob("dta_*.npz")) == []

    def test_store_gc_dry_run(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        main(["characterize", "--fu", "int_add", "--cycles", "30",
              "--voltages", "0.9", "--temperatures", "25"])
        capsys.readouterr()
        assert main(["store", "gc", "--max-mb", "0", "--dry-run"]) == 0
        assert "would have" in capsys.readouterr().out
        assert len(list(tmp_path.glob("dta_*.npz"))) == 1

    def test_store_list_and_reset_throughput_history(self, capsys,
                                                     tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        # a campaign miss records adaptive-planner history
        main(["campaign", "--fu", "int_add", "--cycles", "40",
              "--voltages", "0.9", "--temperatures", "25"])
        capsys.readouterr()
        assert main(["store", "list"]) == 0
        out = capsys.readouterr().out
        assert "throughput history" in out
        assert "int_add|compiled|1" in out
        # dry run previews, real run drops
        assert main(["store", "gc", "--drop-history", "--dry-run"]) == 0
        assert "would have dropped 1" in capsys.readouterr().out
        assert main(["store", "gc", "--drop-history"]) == 0
        assert "dropped 1 throughput-history" in capsys.readouterr().out
        from repro.flow import TraceStore
        assert TraceStore(tmp_path).throughput_history() == {}


CONFIG_TOML = """
[corners]
voltages = [0.9]
temperatures = [25.0]

[campaign]
fus = ["int_add"]

[campaign.stream]
cycles = 90
seed = 0

[campaign.shards]
shard_cycles = 30

[train]
fu = "int_add"
max_rows = 500

[train.stream]
cycles = 60
seed = 0

[predict]
fu = "int_add"
speedup = 0.15

[predict.stream]
cycles = 40
seed = 1

[serve]
port = 0
max_batch = 16
"""


class TestConfigParity:
    """--config and the equivalent flags must resolve identically."""

    @pytest.fixture()
    def config(self, tmp_path):
        path = tmp_path / "run.toml"
        path.write_text(CONFIG_TOML)
        return str(path)

    def _spec(self, resolver, argv):
        return resolver(build_parser().parse_args(argv))

    def test_campaign_spec_and_cache_key_parity(self, config):
        from repro.api import Workspace

        from_config = self._spec(campaign_spec,
                                 ["campaign", "--config", config])
        from_flags = self._spec(campaign_spec, [
            "campaign", "--fu", "int_add", "--cycles", "90", "--seed", "0",
            "--shard-cycles", "30", "--voltages", "0.9",
            "--temperatures", "25"])
        assert from_config == from_flags
        assert from_config.fingerprint() == from_flags.fingerprint()
        # and the TraceStore key — the acceptance criterion — matches
        ws = Workspace()
        (job_a,) = ws.jobs(from_config)
        (job_b,) = ws.jobs(from_flags)
        assert job_a.key() == job_b.key()

    def test_train_and_predict_spec_parity(self, config):
        t_config = self._spec(train_spec, ["train", "--config", config])
        t_flags = self._spec(train_spec, [
            "train", "--fu", "int_add", "--cycles", "60", "--seed", "0",
            "--max-rows", "500", "--voltages", "0.9",
            "--temperatures", "25"])
        assert t_config == t_flags
        p_config = self._spec(predict_spec,
                              ["predict", "--config", config])
        p_flags = self._spec(predict_spec, [
            "predict", "--fu", "int_add", "--speedup", "0.15",
            "--cycles", "40", "--seed", "1", "--voltages", "0.9",
            "--temperatures", "25"])
        assert p_config == p_flags

    def test_serve_spec_parity(self, config):
        s_config = self._spec(serve_spec, ["serve", "--config", config])
        s_flags = self._spec(serve_spec, ["serve", "--port", "0",
                                          "--max-batch", "16"])
        assert s_config == s_flags

    def test_flags_override_config_fields(self, config):
        spec = self._spec(campaign_spec, [
            "campaign", "--config", config, "--cycles", "123"])
        assert spec.stream.cycles == 123
        assert spec.stream.seed == 0          # untouched config value
        assert spec.shards.shard_cycles == 30  # untouched config value

    def test_campaign_runs_from_config(self, config, capsys, tmp_path,
                                       monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        assert main(["campaign", "--config", config]) == 0
        out = capsys.readouterr().out
        assert "spec[campaign]" in out      # effective spec echoed
        assert "across 3 shard(s)" in out   # config shard pitch honored
        # flag-equivalent rerun is a cache hit: byte-identical store key
        assert main(["campaign", "--fu", "int_add", "--cycles", "90",
                     "--shard-cycles", "30", "--voltages", "0.9",
                     "--temperatures", "25"]) == 0
        assert "1 cached, 0 simulated]" in capsys.readouterr().out

    def test_bad_config_is_a_clean_error(self, tmp_path, capsys):
        path = tmp_path / "run.toml"
        path.write_text("[compaign]\nfus = ['int_add']\n")
        assert main(["campaign", "--config", str(path)]) == 2
        assert "unknown config section" in capsys.readouterr().err

    def test_train_and_predict_require_explicit_fu(self, tmp_path, capsys):
        # a forgotten --fu must never silently fall back to a default FU
        assert main(["train", "-o", str(tmp_path / "m.pkl")]) == 2
        assert "--fu" in capsys.readouterr().err
        assert main(["predict", "-m", str(tmp_path / "m.pkl")]) == 2
        assert "--fu" in capsys.readouterr().err

    def test_config_driven_publish(self, tmp_path, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        registry = tmp_path / "registry"
        path = tmp_path / "run.toml"
        path.write_text(f"""
[corners]
voltages = [0.9]
temperatures = [25.0]

[train]
fu = "int_add"
publish = true
registry = "{registry}"

[train.stream]
cycles = 40
seed = 0
""")
        assert main(["train", "--config", str(path),
                     "-o", str(tmp_path / "m.pkl")]) == 0
        assert "published int_add/tevot/v1" in capsys.readouterr().out
        assert main(["models", "list", "--registry", str(registry)]) == 0
        assert "int_add/tevot/v1" in capsys.readouterr().out

    def test_pairs_config_rejects_single_axis_override(self, tmp_path,
                                                       capsys):
        path = tmp_path / "run.toml"
        path.write_text("""
[corners]
voltages = []
temperatures = []
pairs = [[0.81, 0.0], [1.0, 100.0]]

[campaign]
fus = ["int_add"]
""")
        assert main(["campaign", "--config", str(path),
                     "--temperatures", "25"]) == 2
        err = capsys.readouterr().err
        assert "both --voltages and --temperatures" in err


class TestModelRegistryCommands:
    def test_train_publish_list_gc(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        model_path = tmp_path / "m.pkl"
        registry = tmp_path / "registry"
        rc = main(["train", "--fu", "int_add", "--cycles", "60",
                   "--voltages", "0.9", "--temperatures", "25",
                   "-o", str(model_path), "--publish", str(registry)])
        assert rc == 0
        assert "published int_add/tevot/v1" in capsys.readouterr().out

        # publish the saved artifact again -> v2
        rc = main(["models", "publish", "--registry", str(registry),
                   "-m", str(model_path), "--fu", "int_add"])
        assert rc == 0
        assert "int_add/tevot/v2" in capsys.readouterr().out

        assert main(["models", "list", "--registry", str(registry)]) == 0
        out = capsys.readouterr().out
        assert "int_add/tevot/v1" in out and "int_add/tevot/v2" in out

        assert main(["models", "gc", "--registry", str(registry),
                     "--keep", "1"]) == 0
        capsys.readouterr()
        main(["models", "list", "--registry", str(registry)])
        out = capsys.readouterr().out
        assert "int_add/tevot/v2" in out and "v1" not in out

    def test_models_publish_requires_model_and_fu(self, tmp_path, capsys):
        assert main(["models", "publish", "--registry",
                     str(tmp_path)]) == 2
        assert main(["models", "publish", "--registry", str(tmp_path),
                     "-m", "x.pkl"]) == 2
