"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_fu_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sta", "--fu", "div"])


class TestCommands:
    def test_stats_all_units(self, capsys):
        assert main(["stats"]) == 0
        out = capsys.readouterr().out
        for name in ("int_add", "int_mul", "fp_add", "fp_mul"):
            assert name in out

    def test_sta_single_corner(self, capsys):
        rc = main(["sta", "--fu", "int_add",
                   "--voltages", "1.0", "--temperatures", "25"])
        assert rc == 0
        assert "(1.00,25)" in capsys.readouterr().out

    def test_characterize(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        rc = main(["characterize", "--fu", "int_add", "--cycles", "50",
                   "--voltages", "0.9", "--temperatures", "25"])
        assert rc == 0
        assert "mean" in capsys.readouterr().out

    def test_campaign_reports_shards_and_sim_time(self, capsys, tmp_path,
                                                  monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        rc = main(["campaign", "--fu", "int_add", "--cycles", "90",
                   "--shard-cycles", "30", "--voltages", "0.9",
                   "--temperatures", "25"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "1 simulated" in out
        assert "across 3 shard(s)" in out
        assert "[3 shard(s)," in out
        assert "cyc/s" in out  # effective per-job throughput
        # rerun is fully cached: no shard/timing detail
        rc = main(["campaign", "--fu", "int_add", "--cycles", "90",
                   "--shard-cycles", "30", "--voltages", "0.9",
                   "--temperatures", "25"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "1 cached, 0 simulated]" in out
        assert "[cached]" in out

    def test_train_and_predict_roundtrip(self, capsys, tmp_path,
                                         monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        model_path = tmp_path / "m.pkl"
        rc = main(["train", "--fu", "int_add", "--cycles", "80",
                   "--voltages", "0.85", "--temperatures", "25",
                   "-o", str(model_path)])
        assert rc == 0
        assert model_path.exists()
        rc = main(["predict", "-m", str(model_path), "--fu", "int_add",
                   "--cycles", "40", "--speedup", "0.15",
                   "--voltages", "0.85", "--temperatures", "25"])
        assert rc == 0
        assert "TER" in capsys.readouterr().out


class TestValidation:
    @pytest.mark.parametrize("argv", [
        ["characterize", "--fu", "int_add", "--cycles", "0"],
        ["campaign", "--fu", "int_add", "--cycles", "-5"],
        ["train", "--fu", "int_add", "--cycles", "0", "-o", "m.pkl"],
        ["train", "--fu", "int_add", "--max-rows", "0", "-o", "m.pkl"],
        ["predict", "-m", "m.pkl", "--fu", "int_add", "--cycles", "-1"],
        ["predict", "-m", "m.pkl", "--fu", "int_add", "--speedup", "-0.1"],
        ["campaign", "--workers", "0"],
        ["campaign", "--shard-cycles", "0"],
        ["campaign", "--shard-corners", "0"],
        ["serve", "--max-batch", "0"],
        ["serve", "--batch-window-ms", "-1"],
    ])
    def test_nonpositive_values_rejected(self, argv):
        with pytest.raises(SystemExit):
            build_parser().parse_args(argv)

    def test_backend_error_lists_available_names(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["characterize", "--fu", "int_add",
                                       "--backend", "quantum"])
        err = capsys.readouterr().err
        for name in ("bitpacked", "levelized", "event"):
            assert name in err


class TestStoreCommands:
    def test_store_gc_and_list(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        assert main(["characterize", "--fu", "int_add", "--cycles", "30",
                     "--voltages", "0.9", "--temperatures", "25"]) == 0
        assert main(["store", "list"]) == 0
        assert "1 entr" in capsys.readouterr().out
        # zero budget evicts everything
        assert main(["store", "gc", "--max-mb", "0"]) == 0
        assert "removed 1 blob" in capsys.readouterr().out
        assert list(tmp_path.glob("dta_*.npz")) == []

    def test_store_gc_dry_run(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        main(["characterize", "--fu", "int_add", "--cycles", "30",
              "--voltages", "0.9", "--temperatures", "25"])
        capsys.readouterr()
        assert main(["store", "gc", "--max-mb", "0", "--dry-run"]) == 0
        assert "would have" in capsys.readouterr().out
        assert len(list(tmp_path.glob("dta_*.npz"))) == 1

    def test_store_list_and_reset_throughput_history(self, capsys,
                                                     tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        # a campaign miss records adaptive-planner history
        main(["campaign", "--fu", "int_add", "--cycles", "40",
              "--voltages", "0.9", "--temperatures", "25"])
        capsys.readouterr()
        assert main(["store", "list"]) == 0
        out = capsys.readouterr().out
        assert "throughput history" in out
        assert "int_add|compiled|1" in out
        # dry run previews, real run drops
        assert main(["store", "gc", "--drop-history", "--dry-run"]) == 0
        assert "would have dropped 1" in capsys.readouterr().out
        assert main(["store", "gc", "--drop-history"]) == 0
        assert "dropped 1 throughput-history" in capsys.readouterr().out
        from repro.flow import TraceStore
        assert TraceStore(tmp_path).throughput_history() == {}


class TestModelRegistryCommands:
    def test_train_publish_list_gc(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        model_path = tmp_path / "m.pkl"
        registry = tmp_path / "registry"
        rc = main(["train", "--fu", "int_add", "--cycles", "60",
                   "--voltages", "0.9", "--temperatures", "25",
                   "-o", str(model_path), "--publish", str(registry)])
        assert rc == 0
        assert "published int_add/tevot/v1" in capsys.readouterr().out

        # publish the saved artifact again -> v2
        rc = main(["models", "publish", "--registry", str(registry),
                   "-m", str(model_path), "--fu", "int_add"])
        assert rc == 0
        assert "int_add/tevot/v2" in capsys.readouterr().out

        assert main(["models", "list", "--registry", str(registry)]) == 0
        out = capsys.readouterr().out
        assert "int_add/tevot/v1" in out and "int_add/tevot/v2" in out

        assert main(["models", "gc", "--registry", str(registry),
                     "--keep", "1"]) == 0
        capsys.readouterr()
        main(["models", "list", "--registry", str(registry)])
        out = capsys.readouterr().out
        assert "int_add/tevot/v2" in out and "v1" not in out

    def test_models_publish_requires_model_and_fu(self, tmp_path, capsys):
        assert main(["models", "publish", "--registry",
                     str(tmp_path)]) == 2
        assert main(["models", "publish", "--registry", str(tmp_path),
                     "-m", "x.pkl"]) == 2
