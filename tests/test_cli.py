"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_fu_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sta", "--fu", "div"])


class TestCommands:
    def test_stats_all_units(self, capsys):
        assert main(["stats"]) == 0
        out = capsys.readouterr().out
        for name in ("int_add", "int_mul", "fp_add", "fp_mul"):
            assert name in out

    def test_sta_single_corner(self, capsys):
        rc = main(["sta", "--fu", "int_add",
                   "--voltages", "1.0", "--temperatures", "25"])
        assert rc == 0
        assert "(1.00,25)" in capsys.readouterr().out

    def test_characterize(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        rc = main(["characterize", "--fu", "int_add", "--cycles", "50",
                   "--voltages", "0.9", "--temperatures", "25"])
        assert rc == 0
        assert "mean" in capsys.readouterr().out

    def test_train_and_predict_roundtrip(self, capsys, tmp_path,
                                         monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        model_path = tmp_path / "m.pkl"
        rc = main(["train", "--fu", "int_add", "--cycles", "80",
                   "--voltages", "0.85", "--temperatures", "25",
                   "-o", str(model_path)])
        assert rc == 0
        assert model_path.exists()
        rc = main(["predict", "-m", str(model_path), "--fu", "int_add",
                   "--cycles", "40", "--speedup", "0.15",
                   "--voltages", "0.85", "--temperatures", "25"])
        assert rc == 0
        assert "TER" in capsys.readouterr().out
