"""Tests for the pluggable simulation-engine layer.

Covers the registry/capability surface, the bit-packing primitives,
and — the load-bearing guarantee — backend parity: all engines agree
on settled output values, and the DTA engines (levelized, bitpacked)
produce bit-identical delays for every paper FU.
"""

import numpy as np
import pytest

from repro.circuits import PAPER_UNITS, build_functional_unit
from repro.sim import (
    BitPackedBackend,
    DelayTraceResult,
    LevelizedSimulator,
    SimBackend,
    available_backends,
    get_backend,
    register_backend,
)
from repro.sim.bitpacked import (
    BitPackedSimulator,
    pack_columns,
    toggle_words,
    unpack_words,
)
from repro.timing import DEFAULT_LIBRARY, OperatingCondition
from repro.workloads import stream_for_unit

CONDS = [OperatingCondition(0.81, 0.0), OperatingCondition(1.00, 100.0)]


def _fu_inputs(fu_name, n_cycles, seed=0, **fu_kwargs):
    fu = build_functional_unit(fu_name, **fu_kwargs)
    stream = stream_for_unit(fu_name, n_cycles, seed=seed)
    return fu, stream.bit_matrix(fu)


class TestRegistry:
    def test_builtins_registered(self):
        assert {"levelized", "event", "bitpacked", "compiled"} <= set(
            available_backends())

    def test_get_backend_returns_singleton(self):
        assert get_backend("bitpacked") is get_backend("bitpacked")

    def test_unknown_backend_raises_with_listing(self):
        with pytest.raises(ValueError, match="bitpacked"):
            get_backend("modelsim")

    def test_capability_flags(self):
        lev = get_backend("levelized")
        bp = get_backend("bitpacked")
        comp = get_backend("compiled")
        ev = get_backend("event")
        assert (lev.supports_multi_corner and bp.supports_multi_corner
                and comp.supports_multi_corner)
        assert not ev.supports_multi_corner
        assert ev.models_glitches
        assert not (lev.models_glitches or bp.models_glitches
                    or comp.models_glitches)
        assert lev.delay_model == bp.delay_model == comp.delay_model == "dta"
        assert ev.delay_model == "glitch"

    def test_cycle_sharding_capability(self):
        # the DTA engines compute cycle t from input rows t and t+1
        # only, so campaigns may shard their cycle axis; the event
        # engine never advertises it
        for name in ("levelized", "bitpacked", "compiled"):
            assert get_backend(name).supports_cycle_sharding, name
        assert not get_backend("event").supports_cycle_sharding

    def test_corner_sharding_capability(self):
        # every built-in computes corner rows independently — including
        # the event engine, which loops corner by corner
        for name in ("levelized", "bitpacked", "compiled", "event"):
            assert get_backend(name).supports_corner_sharding, name

    def test_chunking_capability(self):
        # the kernel-based engines honor an explicit chunk_cycles; the
        # cycle-by-cycle event engine must refuse it loudly
        for name in ("levelized", "bitpacked", "compiled",
                     "levelized_ref", "bitpacked_ref"):
            assert get_backend(name).supports_chunking, name
        assert not get_backend("event").supports_chunking
        fu, inputs = _fu_inputs("int_add", 4, width=8)
        delays = DEFAULT_LIBRARY.delay_matrix(fu.netlist, CONDS[:1])
        with pytest.raises(ValueError, match="chunk_cycles"):
            get_backend("event").run_delays(fu.netlist, inputs, delays[0],
                                            chunk_cycles=2)

    def test_threads_capability(self):
        # the level-parallel kernels can fan independent L2 sub-blocks
        # of a level across threads; the serial event queue and the
        # per-gate reference loops must refuse threads > 1 loudly
        for name in ("levelized", "bitpacked", "compiled"):
            assert get_backend(name).supports_threads, name
        for name in ("event", "levelized_ref", "bitpacked_ref"):
            assert not get_backend(name).supports_threads, name
            fu, inputs = _fu_inputs("int_add", 4, width=8)
            delays = DEFAULT_LIBRARY.delay_matrix(fu.netlist, CONDS[:1])
            with pytest.raises(ValueError, match="supports_threads"):
                get_backend(name).run_delays(fu.netlist, inputs,
                                             delays, threads=2)

    def test_threads_bit_identical(self):
        fu, inputs = _fu_inputs("int_add", 40, width=8)
        delays = DEFAULT_LIBRARY.delay_matrix(fu.netlist, CONDS)
        for name in ("levelized", "bitpacked", "compiled"):
            ref = get_backend(name).run_delays(fu.netlist, inputs,
                                               delays).delays
            for threads in (2, 4):
                got = get_backend(name).run_delays(
                    fu.netlist, inputs, delays, threads=threads).delays
                assert got.tobytes() == ref.tobytes(), (name, threads)

    def test_reference_backends_bit_identical(self):
        # the *_ref registrations run the retained per-gate paths and
        # must agree with the compiled kernels delay for delay
        fu, inputs = _fu_inputs("int_add", 30, width=8)
        delays = DEFAULT_LIBRARY.delay_matrix(fu.netlist, CONDS)
        ref = get_backend("compiled").run_delays(fu.netlist, inputs,
                                                 delays).delays
        for name in ("levelized_ref", "bitpacked_ref"):
            got = get_backend(name).run_delays(fu.netlist, inputs,
                                               delays).delays
            assert got.tobytes() == ref.tobytes(), name

    def test_event_backend_declares_all_flags_explicitly(self):
        # satellite regression: absent attrs used to be probed with
        # getattr defaults, so a typo'd flag silently disabled sharding
        from repro.sim.eventsim import EventBackend

        for flag in SimBackend.CAPABILITY_FLAGS:
            assert flag in vars(EventBackend), flag

    def test_registry_rejects_non_bool_capabilities(self):
        class BrokenFlags(SimBackend):
            name = "brokenflags"
            supports_cycle_sharding = None  # type: ignore[assignment]

            def run_delays(self, *a, **k):  # pragma: no cover
                raise NotImplementedError

            def run_values(self, *a, **k):  # pragma: no cover
                raise NotImplementedError

        register_backend("brokenflags", BrokenFlags)
        try:
            with pytest.raises(ValueError, match="capability"):
                get_backend("brokenflags")
        finally:
            import repro.sim.engine as engine
            engine._REGISTRY.pop("brokenflags", None)
            engine._INSTANCES.pop("brokenflags", None)

    def test_default_backend_consistent(self):
        import inspect

        from repro.flow.campaign import DEFAULT_BACKEND as flow_default
        from repro.sim.dta import dynamic_delay_trace
        from repro.sim.engine import DEFAULT_BACKEND as sim_default

        # satellite regression: dynamic_delay_trace defaulted to
        # "levelized" while campaigns defaulted to "bitpacked"
        assert flow_default is sim_default
        sig = inspect.signature(dynamic_delay_trace)
        assert sig.parameters["engine"].default == sim_default
        assert sim_default in available_backends()

    def test_register_custom_backend(self):
        class DummyBackend(SimBackend):
            name = "dummy"

            def run_delays(self, netlist, input_matrix, gate_delays,
                           collect_outputs=False):
                return DelayTraceResult(np.zeros((1, 1), np.float32))

            def run_values(self, netlist, input_matrix):
                return np.zeros((1, 1), np.uint8)

        register_backend("dummy", DummyBackend)
        try:
            assert isinstance(get_backend("dummy"), DummyBackend)
            assert "dummy" in available_backends()
        finally:
            import repro.sim.engine as engine
            engine._REGISTRY.pop("dummy", None)
            engine._INSTANCES.pop("dummy", None)

    def test_registered_name_must_match_class(self):
        class Misnamed(SimBackend):
            name = "other"

            def run_delays(self, *a, **k):  # pragma: no cover
                raise NotImplementedError

            def run_values(self, *a, **k):  # pragma: no cover
                raise NotImplementedError

        register_backend("wrong", Misnamed)
        try:
            with pytest.raises(ValueError, match="declares name"):
                get_backend("wrong")
        finally:
            import repro.sim.engine as engine
            engine._REGISTRY.pop("wrong", None)


class TestBitPackingPrimitives:
    def test_pack_unpack_roundtrip(self):
        rng = np.random.default_rng(0)
        m = rng.integers(0, 2, (130, 5), dtype=np.uint8)
        packed = pack_columns(m)
        assert packed.shape == (5, 3)  # ceil(130/64) words per column
        for c in range(5):
            np.testing.assert_array_equal(
                unpack_words(packed[c], 130), m[:, c])

    def test_toggle_words_match_elementwise(self):
        rng = np.random.default_rng(1)
        col = rng.integers(0, 2, 200, dtype=np.uint8)
        words = pack_columns(col[:, None])[0]
        tog = unpack_words(toggle_words(words, 199), 199)
        np.testing.assert_array_equal(tog, (col[1:] != col[:-1]))

    def test_toggle_words_mask_tail(self):
        # all-ones column: no toggles anywhere, including the tail word
        words = pack_columns(np.ones((70, 1), np.uint8))[0]
        assert not toggle_words(words, 69).any()


class TestBackendParity:
    @pytest.mark.parametrize("fu_name", PAPER_UNITS)
    def test_settled_values_agree_across_all_backends(self, fu_name):
        fu, inputs = _fu_inputs(fu_name, 10, seed=5)
        reference = get_backend("levelized").run_values(fu.netlist, inputs)
        for name in ("bitpacked", "compiled", "event"):
            got = get_backend(name).run_values(fu.netlist, inputs)
            np.testing.assert_array_equal(got, reference, err_msg=name)

    @pytest.mark.parametrize("fu_name", PAPER_UNITS)
    def test_dta_backends_delay_bit_identical(self, fu_name):
        # 130 cycles: spans three 64-cycle words with a ragged tail
        fu, inputs = _fu_inputs(fu_name, 130, seed=6)
        dm = DEFAULT_LIBRARY.delay_matrix(fu.netlist, CONDS)
        lev = get_backend("levelized").run_delays(
            fu.netlist, inputs, dm, collect_outputs=True)
        for name in ("bitpacked", "compiled"):
            got = get_backend(name).run_delays(
                fu.netlist, inputs, dm, collect_outputs=True)
            assert got.delays.tobytes() == lev.delays.tobytes(), name
            np.testing.assert_array_equal(got.outputs, lev.outputs,
                                          err_msg=name)

    @pytest.mark.parametrize("fu_name", PAPER_UNITS)
    def test_compiled_backends_match_per_gate_reference(self, fu_name):
        # the tentpole guarantee: the level-parallel kernels reproduce
        # the original per-gate engines bit for bit
        fu, inputs = _fu_inputs(fu_name, 130, seed=6)
        dm = DEFAULT_LIBRARY.delay_matrix(fu.netlist, CONDS)
        reference = LevelizedSimulator(fu.netlist, compiled=False).run(
            inputs, dm, collect_outputs=True)
        for name in ("levelized", "bitpacked", "compiled"):
            got = get_backend(name).run_delays(
                fu.netlist, inputs, dm, collect_outputs=True)
            assert got.delays.tobytes() == reference.delays.tobytes(), name
            np.testing.assert_array_equal(got.outputs, reference.outputs,
                                          err_msg=name)

    def test_event_values_on_wide_unit(self):
        fu, inputs = _fu_inputs("int_add", 15, seed=7, width=8)
        ref = get_backend("levelized").run_values(fu.netlist, inputs)
        got = get_backend("event").run_values(fu.netlist, inputs)
        np.testing.assert_array_equal(got, ref)


class TestBitPackedSimulator:
    def test_chunking_does_not_change_results(self):
        fu, inputs = _fu_inputs("int_add", 200, seed=8, width=8)
        dm = DEFAULT_LIBRARY.delay_matrix(fu.netlist, CONDS)
        sim = BitPackedSimulator(fu.netlist)
        whole = sim.run(inputs, dm)
        chunked = sim.run(inputs, dm, chunk_cycles=64)
        np.testing.assert_array_equal(whole.delays, chunked.delays)

    def test_one_dim_delays_yield_single_corner(self):
        fu, inputs = _fu_inputs("int_add", 20, seed=9, width=8)
        delays = DEFAULT_LIBRARY.gate_delays(fu.netlist, CONDS[0])
        res = BitPackedBackend().run_delays(fu.netlist, inputs, delays)
        assert res.delays.shape == (1, 20)

    def test_run_values_matches_reference_model(self):
        fu, inputs = _fu_inputs("int_add", 40, seed=10, width=8)
        vals = BitPackedSimulator(fu.netlist).run_values(inputs)
        ref = LevelizedSimulator(fu.netlist).run_values(inputs)
        np.testing.assert_array_equal(vals, ref)

    def test_input_validation(self):
        fu = build_functional_unit("int_add", width=8)
        sim = BitPackedSimulator(fu.netlist)
        with pytest.raises(ValueError):
            sim.run(np.zeros((5, 3), np.uint8), np.zeros(161))
        with pytest.raises(ValueError):
            sim.run_values(np.zeros((5, 3), np.uint8))


class TestLevelizedResultShape:
    def test_one_dim_delays_not_squeezed(self):
        # documented invariant: delays are always (n_corners, n_cycles)
        fu, inputs = _fu_inputs("int_add", 12, seed=11, width=8)
        delays = DEFAULT_LIBRARY.gate_delays(fu.netlist, CONDS[0])
        res = LevelizedSimulator(fu.netlist).run(inputs, delays)
        assert res.delays.shape == (1, 12)
        assert res.n_corners == 1
