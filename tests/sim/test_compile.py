"""Tests for the compiled netlist programs (repro.sim.compile).

The lowering pass and the level-parallel kernels carry the PR's
load-bearing guarantee: whatever the substrate (uint8 arrays or packed
uint64 words), whatever the chunking, delays and collected outputs are
bit-identical to the per-gate reference engines.
"""

import gc

import numpy as np
import pytest

from repro.circuits import PAPER_UNITS, build_functional_unit
from repro.circuits.netlist import GATE_ARITY, GateType, Netlist
from repro.sim import compile_netlist, get_backend
from repro.sim.bitpacked import BitPackedSimulator
from repro.sim.compile import CompiledNetlist, _PROGRAM_CACHE
from repro.sim.levelized import LevelizedSimulator
from repro.timing import DEFAULT_LIBRARY, OperatingCondition
from repro.workloads import stream_for_unit

CONDS = [OperatingCondition(0.81, 0.0), OperatingCondition(1.00, 100.0)]
DTA_BACKENDS = ("levelized", "bitpacked", "compiled")


def _fu_inputs(fu_name, n_cycles, seed=0, **fu_kwargs):
    fu = build_functional_unit(fu_name, **fu_kwargs)
    stream = stream_for_unit(fu_name, n_cycles, seed=seed)
    return fu, stream.bit_matrix(fu)


class TestLowering:
    def test_every_gate_in_exactly_one_group(self):
        fu = build_functional_unit("int_mul", width=8)
        prog = compile_netlist(fu.netlist)
        seen = np.concatenate([g.gate_idx for g in prog.groups])
        assert sorted(seen) == list(range(fu.netlist.n_gates))

    def test_rows_partition_and_groups_are_contiguous(self):
        fu = build_functional_unit("fp_add")
        prog = compile_netlist(fu.netlist)
        # program rows: PIs first, then each group's outputs back-to-back
        cursor = prog.n_inputs
        for g in prog.groups:
            assert (g.start, g.stop) == (cursor, cursor + len(g.gate_idx))
            cursor = g.stop
        assert cursor == prog.n_nets
        assert sorted(prog.net_row) == list(range(prog.n_nets))

    def test_fanins_come_from_lower_rows(self):
        # a fanin row must be settled before its group runs
        fu = build_functional_unit("int_add", width=8)
        prog = compile_netlist(fu.netlist)
        for g in prog.groups:
            assert g.fanin.size == 0 or g.fanin.max() < g.start

    def test_arrival_blocks_cover_live_non_const_gates(self):
        # dead-cone gates (no structural path to a PO) are excluded
        # from the arrival pass — they cannot influence any delay
        fu = build_functional_unit("fp_mul")
        prog = compile_netlist(fu.netlist)
        covered = np.concatenate(
            [b.gate_idx for b in prog.arrival_blocks])
        live = {idx for g in prog.groups if g.live for idx in g.gate_idx}
        n_live_consts = sum(
            1 for g in prog.groups if g.live and g.arity == 0
            for _ in g.gate_idx)
        assert len(covered) == len(live) - n_live_consts
        assert prog.n_arrival_gates == len(covered)
        assert set(covered.tolist()) <= live
        assert len(set(covered.tolist())) == len(covered)
        for b in prog.arrival_blocks:
            assert b.fanin.shape == (b.width, b.stop - b.start)

    def test_levelize_order_respected(self):
        # live groups first (levels ascending), then the dead cone
        # (levels ascending again) — rows below n_live_rows are live
        fu = build_functional_unit("int_mul", width=8)
        prog = compile_netlist(fu.netlist)
        live_flags = [g.live for g in prog.groups]
        assert live_flags == sorted(live_flags, reverse=True)
        n_live = prog.n_live_groups
        live_levels = [g.level for g in prog.groups[:n_live]]
        dead_levels = [g.level for g in prog.groups[n_live:]]
        assert live_levels == sorted(live_levels)
        assert dead_levels == sorted(dead_levels)
        assert prog.n_live_rows == prog.groups[n_live - 1].stop

    def test_live_gates_never_read_dead_rows(self):
        fu = build_functional_unit("int_mul")
        prog = compile_netlist(fu.netlist)
        for g in prog.groups[:prog.n_live_groups]:
            assert g.fanin.size == 0 or g.fanin.max() < prog.n_live_rows
        for b in prog.arrival_blocks:
            assert b.fanin.max() < prog.n_live_rows
            assert b.start >= prog.n_inputs and b.stop <= prog.n_live_rows

    def test_dead_cone_detected_on_int_mul(self):
        # the 32-bit array multiplier carries unused carry/sign cells;
        # they must be segregated, and delays must not change (covered
        # bit-exactly by the parity tests)
        fu = build_functional_unit("int_mul")
        prog = compile_netlist(fu.netlist)
        n_dead = sum(len(g.gate_idx) for g in prog.groups if not g.live)
        assert n_dead > 0
        assert prog.n_live_rows < prog.n_nets


class TestProgramCache:
    def test_same_netlist_same_program(self):
        fu = build_functional_unit("int_add", width=8)
        assert compile_netlist(fu.netlist) is compile_netlist(fu.netlist)

    def test_different_netlists_different_programs(self):
        a = build_functional_unit("int_add", width=8).netlist
        b = build_functional_unit("int_add", width=8).netlist
        assert compile_netlist(a) is not compile_netlist(b)

    def test_cache_evicts_with_netlist(self):
        fu = build_functional_unit("int_add", width=8)
        nl = fu.netlist
        compile_netlist(nl)
        key = id(nl)
        assert key in _PROGRAM_CACHE
        del fu, nl
        gc.collect()
        assert key not in _PROGRAM_CACHE

    def test_backends_share_one_lowering(self):
        # satellite regression: run_delays used to re-validate and
        # re-lower the netlist on every invocation
        fu, inputs = _fu_inputs("int_add", 10, seed=1, width=8)
        delays = DEFAULT_LIBRARY.delay_matrix(fu.netlist, CONDS)
        get_backend("bitpacked").run_delays(fu.netlist, inputs, delays)
        prog = compile_netlist(fu.netlist)
        get_backend("compiled").run_delays(fu.netlist, inputs, delays)
        get_backend("levelized").run_values(fu.netlist, inputs)
        assert compile_netlist(fu.netlist) is prog


class TestKernelParity:
    @pytest.mark.parametrize("fu_name", PAPER_UNITS)
    def test_delays_and_outputs_bit_identical_to_per_gate(self, fu_name):
        # 130 cycles: three packed words with a ragged tail
        fu, inputs = _fu_inputs(fu_name, 130, seed=6)
        delays = DEFAULT_LIBRARY.delay_matrix(fu.netlist, CONDS)
        ref = LevelizedSimulator(fu.netlist, compiled=False).run(
            inputs, delays, collect_outputs=True)
        ref_bp = BitPackedSimulator(fu.netlist, compiled=False).run(
            inputs, delays, collect_outputs=True)
        assert ref.delays.tobytes() == ref_bp.delays.tobytes()
        for name in DTA_BACKENDS:
            got = get_backend(name).run_delays(
                fu.netlist, inputs, delays, collect_outputs=True)
            assert got.delays.tobytes() == ref.delays.tobytes(), name
            np.testing.assert_array_equal(got.outputs, ref.outputs,
                                          err_msg=name)

    @pytest.mark.parametrize("packed", [False, True])
    def test_chunking_invariance(self, packed):
        fu, inputs = _fu_inputs("int_add", 200, seed=8, width=8)
        delays = DEFAULT_LIBRARY.delay_matrix(fu.netlist, CONDS)
        prog = compile_netlist(fu.netlist)
        whole = prog.run(inputs, delays, collect_outputs=True,
                         packed=packed)
        for chunk in (1, 37, 64, 100, 1000):
            part = prog.run(inputs, delays, collect_outputs=True,
                            chunk_cycles=chunk, packed=packed)
            assert part.delays.tobytes() == whole.delays.tobytes(), chunk
            np.testing.assert_array_equal(part.outputs, whole.outputs)

    def test_run_values_matches_reference_model(self):
        fu, inputs = _fu_inputs("int_mul", 40, seed=9, width=4)
        prog = compile_netlist(fu.netlist)
        ref = LevelizedSimulator(fu.netlist,
                                 compiled=False).run_values(inputs)
        for packed in (False, True):
            np.testing.assert_array_equal(
                prog.run_values(inputs, packed=packed), ref)

    def test_single_corner_one_dim_delays(self):
        fu, inputs = _fu_inputs("int_add", 20, seed=10, width=8)
        delays = DEFAULT_LIBRARY.gate_delays(fu.netlist, CONDS[0])
        res = get_backend("compiled").run_delays(fu.netlist, inputs,
                                                 delays)
        assert res.delays.shape == (1, 20)

    def test_input_validation(self):
        fu = build_functional_unit("int_add", width=8)
        prog = compile_netlist(fu.netlist)
        with pytest.raises(ValueError):
            prog.run(np.zeros((5, 3), np.uint8), np.zeros(161))
        with pytest.raises(ValueError):
            prog.run(np.zeros((1, 64), np.uint8), np.zeros(161))
        with pytest.raises(ValueError):
            prog.run(np.zeros((5, 64), np.uint8), np.zeros(7))
        with pytest.raises(ValueError):
            prog.run_values(np.zeros((5, 3), np.uint8))

    def test_invalid_netlist_rejected_at_compile(self):
        nl = Netlist(name="broken")
        a = nl.add_input("a")
        nl.add_gate(GateType.NOT, [a])
        nl.primary_outputs.append(99)  # undriven
        with pytest.raises(Exception):
            compile_netlist(nl)


class TestArrivalFastPaths:
    """The multi-corner fast paths — dead-cone exclusion, the level-1
    corner-independent max, quiet-sub-block skipping — must all be
    invisible in the delays: bit-identical to the per-gate reference.
    """

    CONDS9 = [OperatingCondition(v, t)
              for v in (0.81, 0.90, 1.00) for t in (0.0, 50.0, 100.0)]

    def _parity(self, netlist, inputs, conds):
        delays = DEFAULT_LIBRARY.delay_matrix(netlist, conds)
        ref = LevelizedSimulator(netlist, compiled=False).run(
            inputs, delays, collect_outputs=True)
        got = compile_netlist(netlist).run(inputs, delays,
                                           collect_outputs=True)
        assert got.delays.tobytes() == ref.delays.tobytes()
        np.testing.assert_array_equal(got.outputs, ref.outputs)

    def test_dangling_gate_netlist_parity(self):
        # a gate driving nothing (classic dead cone) plus a dead chain
        nl = Netlist(name="dangling")
        a, b = nl.add_input("a"), nl.add_input("b")
        x = nl.add_gate(GateType.XOR2, [a, b])
        dead1 = nl.add_gate(GateType.AND2, [a, b])
        nl.add_gate(GateType.NOT, [dead1])  # dead chain, never read
        nl.primary_outputs.append(x)
        prog = compile_netlist(nl)
        assert prog.n_arrival_gates == 1  # only the XOR is simulated
        rng = np.random.default_rng(3)
        inputs = rng.integers(0, 2, size=(130, 2)).astype(np.uint8)
        self._parity(nl, inputs, self.CONDS9[:3])

    def test_const_feeding_level1_gate_parity(self):
        # the fused level-1 path reads constant arrivals as the quiet
        # sentinel where the main path holds -inf; both must lose every
        # max and leave delays bit-identical
        nl = Netlist(name="const_lvl1")
        a = nl.add_input("a")
        one = nl.add_gate(GateType.CONST1, [])
        x = nl.add_gate(GateType.XOR2, [a, one])   # level 1, const fanin
        y = nl.add_gate(GateType.AND2, [x, a])
        nl.primary_outputs.extend([x, y])
        rng = np.random.default_rng(4)
        inputs = rng.integers(0, 2, size=(70, 1)).astype(np.uint8)
        self._parity(nl, inputs, self.CONDS9)

    def test_quiet_chunks_skip_but_stay_exact(self):
        # long constant stretches make whole chunks (and sub-blocks)
        # quiet — the sparsity skip must not change a single bit
        fu = build_functional_unit("int_mul", width=8)
        stream = stream_for_unit("int_mul", 400, seed=15)
        inputs = stream.bit_matrix(fu)
        inputs[50:260] = inputs[50]  # 210 frozen cycles
        self._parity(fu.netlist, inputs, self.CONDS9)

    def test_plan_cache_distinguishes_delay_matrices(self):
        # the single-slot plan cache must never serve another delay
        # matrix's tiles: same netlist, same shape, different values
        fu, inputs = _fu_inputs("int_add", 80, seed=16, width=8)
        prog = compile_netlist(fu.netlist)
        dm_a = DEFAULT_LIBRARY.delay_matrix(fu.netlist, self.CONDS9)
        dm_b = np.asarray(dm_a, np.float32) * np.float32(2.0)
        ref_b = LevelizedSimulator(fu.netlist, compiled=False).run(
            inputs, dm_b)
        prog.run(inputs, dm_a)  # warm the cache with matrix A
        got_b = prog.run(inputs, dm_b)
        assert got_b.delays.tobytes() == ref_b.delays.tobytes()

    def test_multi_corner_equals_corner_by_corner(self):
        # corner rows are computed independently: slicing the delay
        # matrix row-wise reproduces the same bits (the property the
        # campaign layer's corner sharding relies on)
        fu, inputs = _fu_inputs("int_add", 90, seed=14, width=8)
        delays = DEFAULT_LIBRARY.delay_matrix(fu.netlist, self.CONDS9)
        prog = compile_netlist(fu.netlist)
        whole = prog.run(inputs, delays).delays
        for lo, hi in ((0, 1), (1, 4), (4, 9)):
            part = prog.run(inputs, delays[lo:hi]).delays
            assert part.tobytes() == whole[lo:hi].tobytes(), (lo, hi)


class TestSimulatorFrontEnds:
    def test_compiled_flag_default_on(self):
        fu = build_functional_unit("int_add", width=8)
        assert LevelizedSimulator(fu.netlist).compiled
        assert BitPackedSimulator(fu.netlist).compiled

    def test_compiled_and_reference_agree_through_simulator_api(self):
        fu, inputs = _fu_inputs("int_add", 75, seed=12, width=8)
        delays = DEFAULT_LIBRARY.delay_matrix(fu.netlist, CONDS)
        for cls in (LevelizedSimulator, BitPackedSimulator):
            fast = cls(fu.netlist).run(inputs, delays)
            slow = cls(fu.netlist, compiled=False).run(inputs, delays)
            assert fast.delays.tobytes() == slow.delays.tobytes(), cls
            np.testing.assert_array_equal(
                cls(fu.netlist).run_values(inputs),
                cls(fu.netlist, compiled=False).run_values(inputs))


class TestCompiledNetlistStandalone:
    def test_direct_construction_matches_cached(self):
        fu, inputs = _fu_inputs("int_add", 30, seed=13, width=8)
        delays = DEFAULT_LIBRARY.delay_matrix(fu.netlist, CONDS)
        direct = CompiledNetlist(fu.netlist)
        cached = compile_netlist(fu.netlist)
        assert (direct.run(inputs, delays).delays.tobytes()
                == cached.run(inputs, delays).delays.tobytes())

    def test_stats_preserved(self):
        fu = build_functional_unit("fp_add")
        prog = compile_netlist(fu.netlist)
        assert prog.n_gates == fu.netlist.n_gates
        assert prog.n_inputs == len(fu.netlist.primary_inputs)
        assert prog.n_outputs == len(fu.netlist.primary_outputs)
        level = fu.netlist.levelize()
        assert prog.n_levels == 1 + max(
            level[g.output] for g in fu.netlist.gates)
