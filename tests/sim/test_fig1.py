"""Reproduce Fig. 1: dynamic delay depends on which input changes.

The paper's motivating example: the same circuit shows a 2 ns delay for
one input transition and 1.5 ns for the next, because different paths
are sensitized.  We build a circuit with the same delay structure (an
AND gate fed by a slow 1 ns buffer on ``x`` and a fast 0.5 ns buffer on
``y``, followed by a 1 ns output stage) and check both simulators
report the paper's numbers.
"""

import numpy as np
import pytest

from repro.circuits.builder import CircuitBuilder
from repro.sim.eventsim import EventDrivenSimulator
from repro.sim.levelized import LevelizedSimulator


@pytest.fixture(scope="module")
def fig1():
    b = CircuitBuilder(name="fig1")
    x = b.input_bit("x")
    y = b.input_bit("y")
    slow_x = b.buf(x)        # 1 ns input buffer on x
    fast_y = b.buf(y)        # 0.5 ns input buffer on y
    anded = b.and_(slow_x, fast_y)
    out = b.buf(anded)       # 1 ns output stage
    b.netlist.mark_output(out, "out")
    nl = b.build()
    # delays in ps, per gate in insertion order: bufx, bufy, and, bufout
    delays = [1000.0, 500.0, 0.0, 1000.0]
    return nl, delays


#: x,y vectors: start (0,1); x rises (paper (b): delay 2ns);
#: then y falls while x holds (paper (c): delay 1.5ns).
STIMULUS = np.array([
    [0, 1],
    [1, 1],   # x: 0->1 propagates through 1ns buf + and + 1ns buf = 2ns
    [1, 0],   # y: 1->0 propagates through 0.5ns buf + and + 1ns buf = 1.5ns
], dtype=np.uint8)


def test_event_sim_matches_paper_delays(fig1):
    nl, delays = fig1
    sim = EventDrivenSimulator(nl, delays)
    result = sim.run_trace(STIMULUS)
    assert result.delays[0] == pytest.approx(2000.0)
    assert result.delays[1] == pytest.approx(1500.0)


def test_levelized_matches_paper_delays(fig1):
    nl, delays = fig1
    sim = LevelizedSimulator(nl)
    result = sim.run(STIMULUS, np.asarray(delays))
    assert result.delays[0, 0] == pytest.approx(2000.0)
    assert result.delays[0, 1] == pytest.approx(1500.0)


def test_engines_agree_on_glitch_free_example(fig1):
    nl, delays = fig1
    ev = EventDrivenSimulator(nl, delays).run_trace(STIMULUS)
    lv = LevelizedSimulator(nl).run(STIMULUS, np.asarray(delays))
    np.testing.assert_allclose(lv.delays[0], ev.delays, rtol=1e-6)
