"""Exhaustive tests for the vectorized gate evaluator: it must agree
with the scalar reference semantics on every input combination."""

import itertools

import numpy as np
import pytest

from repro.circuits.netlist import GATE_ARITY, GateType, evaluate_gate
from repro.sim.logic import eval_gate_array


@pytest.mark.parametrize("gtype", sorted(GateType, key=str))
def test_vectorized_matches_scalar_exhaustively(gtype):
    arity = GATE_ARITY[gtype]
    combos = list(itertools.product([0, 1], repeat=arity))
    columns = list(zip(*combos)) if combos and arity else []
    inputs = [np.array(col, dtype=np.uint8) for col in columns]
    n = len(combos) if combos else 4
    got = eval_gate_array(gtype, inputs, n)
    assert got.dtype == np.uint8
    assert got.shape == (n,)
    for row, combo in enumerate(combos):
        assert got[row] == evaluate_gate(gtype, list(combo)), (gtype, combo)


def test_constants_fill_requested_length():
    assert np.all(eval_gate_array(GateType.CONST1, [], 7) == 1)
    assert np.all(eval_gate_array(GateType.CONST0, [], 7) == 0)
    assert eval_gate_array(GateType.CONST0, [], 7).shape == (7,)


def test_unknown_type_raises():
    with pytest.raises(ValueError):
        eval_gate_array("NAND9", [], 1)
