"""Unit tests for the event-driven simulator and cross-validation
against the levelized engine."""

import numpy as np
import pytest

from repro.circuits.adders import build_int_adder
from repro.circuits.builder import CircuitBuilder
from repro.sim.eventsim import EventDrivenSimulator
from repro.sim.levelized import LevelizedSimulator
from repro.timing import DEFAULT_LIBRARY, run_sta


@pytest.fixture(scope="module")
def adder8():
    nl = build_int_adder(8)
    delays = DEFAULT_LIBRARY.gate_delays(nl)
    return nl, EventDrivenSimulator(nl, delays), delays


def encode(a, b, width=8):
    return [(a >> i) & 1 for i in range(width)] + \
           [(b >> i) & 1 for i in range(width)]


class TestSingleCycle:
    def test_settle_matches_zero_delay_eval(self, adder8):
        nl, sim, _ = adder8
        state = sim.settle(encode(100, 55))
        want = nl.evaluate(dict(zip(nl.primary_inputs, encode(100, 55))))
        for net, value in want.items():
            assert state[net] == value

    def test_functional_result_after_cycle(self, adder8):
        nl, sim, _ = adder8
        state = sim.settle(encode(0, 0))
        state, _, __ = sim.run_cycle(state, encode(77, 88))
        got = sum(state[nl.primary_outputs[i]] << i for i in range(8))
        assert got == (77 + 88) & 0xFF

    def test_no_input_change_no_events(self, adder8):
        _, sim, __ = adder8
        state = sim.settle(encode(5, 6))
        _, delay, n_events = sim.run_cycle(state, encode(5, 6))
        assert delay == 0.0
        assert n_events == 0

    def test_delay_bounded_by_static_path(self, adder8):
        nl, sim, delays = adder8
        static = run_sta(nl, gate_delays=delays).critical_delay
        rng = np.random.default_rng(0)
        state = sim.settle(encode(0, 0))
        for _ in range(50):
            a, b = rng.integers(0, 256, 2)
            state, delay, _ = sim.run_cycle(state, encode(int(a), int(b)))
            assert 0.0 <= delay <= static + 1e-6


class TestTrace:
    def test_trace_outputs_match_functional(self, adder8):
        nl, sim, _ = adder8
        rng = np.random.default_rng(1)
        ops = rng.integers(0, 256, size=(21, 2))
        rows = np.array([encode(int(a), int(b)) for a, b in ops],
                        dtype=np.uint8)
        res = sim.run_trace(rows)
        for t in range(20):
            a, b = int(ops[t + 1, 0]), int(ops[t + 1, 1])
            got = sum(int(res.outputs[t, i]) << i for i in range(8))
            assert got == (a + b) & 0xFF

    def test_event_counts_positive_when_inputs_change(self, adder8):
        _, sim, __ = adder8
        rows = np.array([encode(0, 0), encode(255, 255)], dtype=np.uint8)
        res = sim.run_trace(rows)
        assert res.event_counts[0] > 0


class TestCrossValidation:
    """On fanout-free logic every toggling input produces exactly one
    transition per downstream net, so the engines must agree exactly;
    on reconvergent logic (adders) the event engine additionally sees
    glitch trains, so agreement is statistical."""

    def test_xor_chain_agrees_exactly(self):
        b = CircuitBuilder(name="parity_chain")
        bits = b.input_bus(12)
        acc = bits[0]
        for bit in bits[1:]:
            acc = b.xor_(acc, bit)
        b.netlist.mark_output(acc, "parity")
        nl = b.build()
        delays = DEFAULT_LIBRARY.gate_delays(nl)
        rng = np.random.default_rng(2)
        rows = [rng.integers(0, 2, 12).astype(np.uint8)]
        for _ in range(40):
            nxt = rows[-1].copy()
            nxt[rng.integers(0, 12)] ^= 1  # one flip -> no reconvergence
            rows.append(nxt)
        rows = np.stack(rows)
        ev = EventDrivenSimulator(nl, delays).run_trace(rows)
        lv = LevelizedSimulator(nl).run(rows, delays)
        np.testing.assert_allclose(lv.delays[0], ev.delays, rtol=1e-5)

    def test_adder_engines_strongly_correlated(self, adder8):
        nl, event_sim, delays = adder8
        lev = LevelizedSimulator(nl)
        rng = np.random.default_rng(9)
        rows = rng.integers(0, 2, size=(200, 16)).astype(np.uint8)
        ev = event_sim.run_trace(rows).delays
        lv = lev.run(rows, delays).delays[0]
        # random vectors toggle most inputs, so the event engine sees
        # glitch trains the graph-based engine ignores: expect positive
        # but imperfect correlation, and glitches only ADD delay on
        # average.
        corr = np.corrcoef(ev, lv)[0, 1]
        assert corr > 0.2
        assert lv.mean() <= ev.mean() * 1.1

    def test_random_vectors_levelized_is_glitch_blind(self, adder8):
        """With arbitrary input changes the event engine sees glitch
        trains the levelized engine ignores, so event >= levelized is
        NOT guaranteed either way; but both must stay within the static
        bound and agree on which cycles are completely quiet."""
        nl, event_sim, delays = adder8
        lev = LevelizedSimulator(nl)
        rng = np.random.default_rng(3)
        rows = rng.integers(0, 2, size=(60, 16)).astype(np.uint8)
        ev = event_sim.run_trace(rows)
        lv = lev.run(rows, delays)
        static = run_sta(nl, gate_delays=delays).critical_delay
        assert np.all(ev.delays <= static + 1e-6)
        assert np.all(lv.delays[0] <= static + 1e-3)
        quiet_ev = ev.delays == 0.0
        quiet_lv = lv.delays[0] == 0.0
        # a quiet cycle for the event engine is quiet for levelized too
        assert np.all(~quiet_ev | quiet_lv)


class TestValidation:
    def test_wrong_delay_count_raises(self):
        nl = build_int_adder(4)
        with pytest.raises(ValueError):
            EventDrivenSimulator(nl, [1.0, 2.0])

    def test_vcd_requires_clock(self, adder8, tmp_path):
        _, sim, __ = adder8
        rows = np.zeros((3, 16), dtype=np.uint8)
        with pytest.raises(ValueError):
            sim.run_trace(rows, vcd_path=tmp_path / "x.vcd")
