"""Tests for VCD writing/parsing and the VCD-based DTA pipeline."""

import numpy as np
import pytest

from repro.circuits.adders import build_int_adder
from repro.sim.dta import delays_via_vcd, dynamic_delay_trace
from repro.sim.vcd import (
    VCDWriter,
    delays_from_vcd,
    identifier_code,
    read_vcd,
)
from repro.timing import OperatingCondition


class TestIdentifierCodes:
    def test_unique_for_many_indices(self):
        codes = {identifier_code(i) for i in range(5000)}
        assert len(codes) == 5000

    def test_no_whitespace(self):
        for i in (0, 93, 94, 1000):
            assert " " not in identifier_code(i)


class TestWriteReadRoundtrip:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "t.vcd"
        writer = VCDWriter(path, ["a", "b"])
        writer.write_header([0, 1])
        writer.change(100, 0, 1)
        writer.change(100, 1, 0)
        writer.change(250, 0, 0)
        writer.close()

        vcd = read_vcd(path)
        assert vcd.timescale == "1ps"
        assert set(vcd.var_names) == {"a", "b"}
        assert vcd.changes_for("a") == [(0, 0), (100, 1), (250, 0)]
        assert vcd.changes_for("b") == [(0, 1), (100, 0)]
        assert vcd.all_change_times() == [100, 250]

    def test_unknown_variable_raises(self, tmp_path):
        path = tmp_path / "t.vcd"
        writer = VCDWriter(path, ["a"])
        writer.write_header([0])
        writer.close()
        vcd = read_vcd(path)
        with pytest.raises(KeyError):
            vcd.changes_for("nope")

    def test_change_before_header_raises(self, tmp_path):
        writer = VCDWriter(tmp_path / "x.vcd", ["a"])
        with pytest.raises(RuntimeError):
            writer.change(1, 0, 1)


class TestDelayExtraction:
    def test_delays_from_vcd_windows(self, tmp_path):
        path = tmp_path / "t.vcd"
        writer = VCDWriter(path, ["o"])
        writer.write_header([0])
        writer.change(120, 0, 1)    # cycle 0 (clock 1000): delay 120
        writer.change(1750, 0, 0)   # cycle 1: delay 750
        writer.change(3000, 0, 1)   # boundary: belongs to cycle 2, delay 1000
        writer.close()
        vcd = read_vcd(path)
        delays = delays_from_vcd(vcd, clock_period=1000, n_cycles=4)
        assert delays == [120.0, 750.0, 1000.0, 0.0]

    def test_bad_clock_raises(self, tmp_path):
        path = tmp_path / "t.vcd"
        VCDWriter(path, ["o"]).write_header([0])
        vcd = read_vcd(path)
        with pytest.raises(ValueError):
            delays_from_vcd(vcd, 0, 1)


class TestVcdPipelineMatchesInMemory:
    def test_paper_pipeline_agrees_with_event_engine(self, tmp_path):
        """simulate -> dump VCD -> parse VCD == in-memory event delays."""
        nl = build_int_adder(8)
        rng = np.random.default_rng(5)
        rows = rng.integers(0, 2, size=(25, 16)).astype(np.uint8)
        cond = OperatingCondition(0.85, 50)
        via_vcd = delays_via_vcd(nl, rows, cond, tmp_path / "dta.vcd")
        in_memory = dynamic_delay_trace(nl, rows, cond, engine="event")
        np.testing.assert_allclose(via_vcd, in_memory.delays[0], atol=0.51)
