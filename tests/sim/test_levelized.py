"""Unit + property tests for the levelized DTA simulator."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits import build_functional_unit
from repro.circuits.adders import build_int_adder
from repro.sim.levelized import LevelizedSimulator
from repro.timing import DEFAULT_LIBRARY, OperatingCondition, run_sta


@pytest.fixture(scope="module")
def adder8():
    nl = build_int_adder(8)
    return nl, LevelizedSimulator(nl), DEFAULT_LIBRARY.gate_delays(nl)


def encode(a, b, width=8):
    return [(a >> i) & 1 for i in range(width)] + \
           [(b >> i) & 1 for i in range(width)]


class TestValues:
    def test_run_values_matches_scalar_eval(self, adder8):
        nl, sim, _ = adder8
        rng = np.random.default_rng(0)
        rows = rng.integers(0, 2, size=(20, 16)).astype(np.uint8)
        got = sim.run_values(rows)
        for r in range(rows.shape[0]):
            want = nl.evaluate_outputs(list(rows[r]))
            assert list(got[r]) == want

    def test_outputs_collected_match_values(self, adder8):
        nl, sim, delays = adder8
        rng = np.random.default_rng(1)
        rows = rng.integers(0, 2, size=(10, 16)).astype(np.uint8)
        res = sim.run(rows, delays, collect_outputs=True)
        vals = sim.run_values(rows)
        np.testing.assert_array_equal(res.outputs, vals[1:])


class TestDelays:
    def test_identical_consecutive_inputs_give_zero_delay(self, adder8):
        _, sim, delays = adder8
        row = np.array(encode(123, 45), dtype=np.uint8)
        rows = np.stack([row, row, row])
        res = sim.run(rows, delays)
        assert np.all(res.delays == 0.0)

    def test_delays_nonnegative_and_bounded_by_sta(self, adder8):
        nl, sim, delays = adder8
        rng = np.random.default_rng(2)
        rows = rng.integers(0, 2, size=(100, 16)).astype(np.uint8)
        res = sim.run(rows, delays)
        static = run_sta(nl, gate_delays=delays).critical_delay
        assert np.all(res.delays >= 0.0)
        assert np.all(res.delays <= static + 1e-3)

    def test_some_cycle_sensitizes_long_path(self, adder8):
        """The full carry chain: 0xFF + 0x01 after 0xFF + 0x00."""
        nl, sim, delays = adder8
        rows = np.array([encode(0xFF, 0), encode(0xFF, 1)], dtype=np.uint8)
        res = sim.run(rows, delays)
        static = run_sta(nl, gate_delays=delays).critical_delay
        # carry ripples the entire width: delay close to the static path
        assert res.delays[0, 0] > 0.6 * static

    def test_multi_corner_rows_match_single_corner_runs(self, adder8):
        nl, sim, _ = adder8
        rng = np.random.default_rng(3)
        rows = rng.integers(0, 2, size=(30, 16)).astype(np.uint8)
        conds = [OperatingCondition(0.81, 0), OperatingCondition(1.0, 100)]
        matrix = DEFAULT_LIBRARY.delay_matrix(nl, conds)
        multi = sim.run(rows, matrix)
        for k, cond in enumerate(conds):
            single = sim.run(rows, DEFAULT_LIBRARY.gate_delays(nl, cond))
            np.testing.assert_allclose(multi.delays[k], single.delays[0],
                                       rtol=1e-5)

    def test_chunking_invariant(self, adder8):
        _, sim, delays = adder8
        rng = np.random.default_rng(4)
        rows = rng.integers(0, 2, size=(50, 16)).astype(np.uint8)
        full = sim.run(rows, delays, chunk_cycles=1000)
        small = sim.run(rows, delays, chunk_cycles=7)
        np.testing.assert_allclose(full.delays, small.delays, rtol=1e-6)

    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=20, deadline=None)
    def test_lower_voltage_never_speeds_up(self, adder8, seed):
        nl, sim, _ = adder8
        rng = np.random.default_rng(seed)
        rows = rng.integers(0, 2, size=(10, 16)).astype(np.uint8)
        slow = OperatingCondition(0.81, 25)
        fast = OperatingCondition(1.00, 25)
        matrix = DEFAULT_LIBRARY.delay_matrix(nl, [slow, fast])
        res = sim.run(rows, matrix)
        assert np.all(res.delays[0] >= res.delays[1] - 1e-4)


class TestValidation:
    def test_bad_input_width_raises(self, adder8):
        _, sim, delays = adder8
        with pytest.raises(ValueError):
            sim.run(np.zeros((5, 3), dtype=np.uint8), delays)

    def test_single_row_raises(self, adder8):
        _, sim, delays = adder8
        with pytest.raises(ValueError):
            sim.run(np.zeros((1, 16), dtype=np.uint8), delays)

    def test_bad_delay_length_raises(self, adder8):
        _, sim, _ = adder8
        with pytest.raises(ValueError):
            sim.run(np.zeros((3, 16), dtype=np.uint8), np.ones(3))


class TestHistorySensitivity:
    """The paper's Sec. IV-B experiment: D[t] is a function of
    (x[t-1], x[t]) — fixing both fixes the delay; varying the
    *previous* input alone changes the delay."""

    def test_fixed_pair_fixes_delay(self):
        fu = build_functional_unit("int_add", width=16)
        sim = LevelizedSimulator(fu.netlist)
        delays = DEFAULT_LIBRARY.gate_delays(fu.netlist)
        prev = np.array(fu.encode_inputs(0x1234, 0x9876), dtype=np.uint8)
        curr = np.array(fu.encode_inputs(0xFFFF, 0x0001), dtype=np.uint8)
        # repeat the same (prev, curr) pair many times
        rows = np.stack([prev, curr] * 5)
        res = sim.run(rows, delays)
        d = res.delays[0, ::2]  # every prev->curr transition
        assert np.allclose(d, d[0])

    def test_varying_history_changes_delay(self):
        fu = build_functional_unit("int_add", width=16)
        sim = LevelizedSimulator(fu.netlist)
        delays = DEFAULT_LIBRARY.gate_delays(fu.netlist)
        rng = np.random.default_rng(7)
        curr = np.array(fu.encode_inputs(0xFFFF, 0x0001), dtype=np.uint8)
        observed = set()
        for _ in range(12):
            a, b = rng.integers(0, 2**16, 2)
            prev = np.array(fu.encode_inputs(int(a), int(b)), dtype=np.uint8)
            res = sim.run(np.stack([prev, curr]), delays)
            observed.add(round(float(res.delays[0, 0]), 3))
        # same current input, different histories -> different delays
        assert len(observed) > 3
