"""Tests for operand streams."""

import numpy as np
import pytest

from repro.circuits import build_functional_unit
from repro.workloads import (
    OperandStream,
    float_random_stream,
    random_stream,
    stream_for_unit,
)


class TestOperandStream:
    def test_cycle_count(self):
        s = OperandStream("t", np.arange(11, dtype=np.uint64),
                          np.arange(11, dtype=np.uint64))
        assert s.n_cycles == 10

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ValueError):
            OperandStream("t", np.zeros(3, dtype=np.uint64),
                          np.zeros(4, dtype=np.uint64))

    def test_rejects_too_short(self):
        with pytest.raises(ValueError):
            OperandStream("t", np.zeros(1, dtype=np.uint64),
                          np.zeros(1, dtype=np.uint64))

    def test_head(self):
        s = random_stream(50, seed=0)
        h = s.head(10)
        assert h.n_cycles == 10
        np.testing.assert_array_equal(h.a, s.a[:11])

    def test_bit_matrix_shape(self):
        fu = build_functional_unit("int_add")
        s = random_stream(5, seed=0)
        m = s.bit_matrix(fu)
        assert m.shape == (6, 64)

    def test_save_load_roundtrip(self, tmp_path):
        s = random_stream(20, seed=3, name="roundtrip")
        path = tmp_path / "s.npz"
        s.save(path)
        loaded = OperandStream.load(path)
        assert loaded.name == "roundtrip"
        np.testing.assert_array_equal(loaded.a, s.a)
        np.testing.assert_array_equal(loaded.b, s.b)


class TestGenerators:
    def test_random_stream_reproducible(self):
        a = random_stream(10, seed=7)
        b = random_stream(10, seed=7)
        np.testing.assert_array_equal(a.a, b.a)

    def test_random_stream_covers_range(self):
        s = random_stream(2000, seed=0)
        assert s.a.max() > (1 << 31)
        assert s.a.min() < (1 << 28)

    def test_random_stream_respects_width(self):
        s = random_stream(100, operand_width=8, seed=0)
        assert s.a.max() < 256

    def test_float_stream_is_valid_float32(self):
        from repro.circuits.refmodels import bits_to_float

        s = float_random_stream(100, seed=1, low=-10, high=10)
        values = [bits_to_float(int(w)) for w in s.a[:20]]
        assert all(-10 <= v <= 10 for v in values)

    def test_stream_for_unit_dispatch(self):
        ints = stream_for_unit("int_add", 10, seed=0)
        floats = stream_for_unit("fp_add", 10, seed=0)
        assert ints.a.max() != floats.a.max()

    def test_invalid_cycle_counts(self):
        with pytest.raises(ValueError):
            random_stream(0)
        with pytest.raises(ValueError):
            float_random_stream(0)
