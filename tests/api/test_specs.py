"""Tests for the typed spec layer: validation, round-trips, files."""

import json

import pytest

from repro.api import (
    CampaignSpec,
    CornerSpec,
    ExperimentSpec,
    PredictSpec,
    ServeSpec,
    ShardSpec,
    SimSpec,
    SpecError,
    StreamSpec,
    TrainSpec,
    load_config,
)
from repro.timing import OperatingCondition

ALL_SPECS = [CornerSpec, StreamSpec, SimSpec, ShardSpec, CampaignSpec,
             TrainSpec, PredictSpec, ServeSpec, ExperimentSpec]

NON_DEFAULT = {
    CornerSpec: dict(voltages=(0.85, 0.95), temperatures=(25.0,)),
    StreamSpec: dict(cycles=77, seed=3, source="random", name="x"),
    SimSpec: dict(backend="bitpacked", compiled=False, chunk_cycles=128),
    ShardSpec: dict(workers=3, shard_cycles=64, shard_corners=2,
                    adaptive_history=False),
    CampaignSpec: dict(fus=("int_add", "fp_mul"),
                       stream=StreamSpec(cycles=50),
                       corners=CornerSpec(voltages=(0.9,),
                                          temperatures=(25.0,)),
                       sim=SimSpec(backend="levelized"),
                       shards=ShardSpec(workers=2),
                       cache=False, store="/tmp/s"),
    TrainSpec: dict(fu="fp_add", stream=StreamSpec(cycles=60, seed=4),
                    max_rows=500, output="m.pkl", publish=True),
    PredictSpec: dict(fu="int_mul", model="m.pkl", speedup=0.15,
                      stream=StreamSpec(cycles=30, seed=9)),
    ServeSpec: dict(registry="r/", host="0.0.0.0", port=9000,
                    kind="tevot_nh", batch_window_ms=5.0, max_batch=16,
                    max_queue=32, default_deadline_ms=2000.0,
                    workers=3, request_log="serve/requests.jsonl",
                    fallback=False, verbose=True),
    ExperimentSpec: dict(fu="fp_mul", max_rows=1000,
                         speedups=(0.05, 0.2), seed=7, publish=True,
                         corners=CornerSpec(voltages=(0.81,),
                                            temperatures=(0.0,))),
}


class TestRoundTrip:
    @pytest.mark.parametrize("cls", ALL_SPECS)
    def test_default_dict_roundtrip_byte_identical(self, cls):
        spec = cls()
        payload = spec.to_dict()
        again = cls.from_dict(payload)
        assert again == spec
        assert json.dumps(again.to_dict(), sort_keys=True) == \
            json.dumps(payload, sort_keys=True)

    @pytest.mark.parametrize("cls", ALL_SPECS)
    def test_nondefault_dict_roundtrip_byte_identical(self, cls):
        spec = cls(**NON_DEFAULT[cls])
        payload = spec.to_dict()
        # through real JSON bytes, like a config file would
        wire = json.loads(json.dumps(payload))
        again = cls.from_dict(wire)
        assert again == spec
        assert json.dumps(again.to_dict(), sort_keys=True) == \
            json.dumps(payload, sort_keys=True)

    @pytest.mark.parametrize("cls", ALL_SPECS)
    def test_unknown_keys_rejected_loudly(self, cls):
        with pytest.raises(SpecError, match="unknown.*definitely_bogus"):
            cls.from_dict({"definitely_bogus": 1})

    def test_nested_unknown_keys_rejected(self):
        with pytest.raises(SpecError, match="unknown StreamSpec"):
            CampaignSpec.from_dict({"stream": {"cycles": 10, "nope": 2}})

    @pytest.mark.parametrize("cls", ALL_SPECS)
    def test_fingerprint_stable_and_sensitive(self, cls):
        a, b = cls(), cls()
        assert a.fingerprint() == b.fingerprint()
        changed = cls(**NON_DEFAULT[cls])
        assert changed.fingerprint() != a.fingerprint()

    def test_fingerprints_namespaced_by_class(self):
        # equal payload shapes in different spec classes never collide
        assert SimSpec().fingerprint() != ShardSpec().fingerprint()


class TestValidation:
    def test_unknown_backend(self):
        with pytest.raises(SpecError, match="available"):
            SimSpec(backend="quantum")

    def test_compiled_false_needs_reference_twin(self):
        with pytest.raises(SpecError, match="reference twin"):
            SimSpec(backend="compiled", compiled=False)
        with pytest.raises(SpecError, match="reference twin"):
            SimSpec(backend="event", compiled=False)

    def test_compiled_flag_resolves_reference_backend(self):
        assert SimSpec(backend="levelized").backend_name() == "levelized"
        assert SimSpec(backend="levelized",
                       compiled=False).backend_name() == "levelized_ref"
        assert SimSpec(backend="bitpacked",
                       compiled=False).backend_name() == "bitpacked_ref"

    @pytest.mark.parametrize("kwargs", [
        dict(cycles=0), dict(cycles=-5), dict(source="weird"),
        dict(seed="abc"),
    ])
    def test_stream_rejects(self, kwargs):
        with pytest.raises(SpecError):
            StreamSpec(**kwargs)

    @pytest.mark.parametrize("kwargs", [
        dict(workers=0), dict(shard_cycles=0), dict(shard_corners=-1),
        dict(adaptive_history="yes"),
    ])
    def test_shards_reject(self, kwargs):
        with pytest.raises(SpecError):
            ShardSpec(**kwargs)

    def test_corners_pairs_xor_grid(self):
        with pytest.raises(SpecError, match="not both"):
            CornerSpec(pairs=((0.9, 25.0),))
        with pytest.raises(SpecError, match="voltages and temperatures"):
            CornerSpec(voltages=(), temperatures=())

    def test_corner_range_validation_is_loud_at_build(self):
        with pytest.raises(SpecError, match="temperature"):
            CornerSpec(voltages=(0.9,), temperatures=(400.0,))

    def test_corners_from_conditions_roundtrip(self):
        conds = [OperatingCondition(0.81, 0.0),
                 OperatingCondition(1.00, 100.0)]
        spec = CornerSpec.from_conditions(conds)
        assert spec.conditions() == conds
        assert spec.n_corners == 2
        again = CornerSpec.from_dict(spec.to_dict())
        assert again.conditions() == conds

    def test_paper_grid(self):
        assert CornerSpec.paper().n_corners == 100

    def test_unknown_fu_rejected(self):
        with pytest.raises(SpecError, match="unknown FU"):
            CampaignSpec(fus=("int_div",))
        with pytest.raises(SpecError, match="unknown FU"):
            TrainSpec(fu="nope")

    def test_campaign_defaults_to_paper_units(self):
        assert CampaignSpec().resolved_fus() == ("int_add", "fp_add",
                                                 "int_mul", "fp_mul")

    def test_serve_port_range(self):
        with pytest.raises(SpecError, match="port"):
            ServeSpec(port=70000)

    def test_serve_workers_positive(self):
        with pytest.raises(SpecError, match="workers"):
            ServeSpec(workers=0)
        with pytest.raises(SpecError, match="workers"):
            ServeSpec(workers=True)

    def test_serve_max_queue_positive(self):
        with pytest.raises(SpecError, match="max_queue"):
            ServeSpec(max_queue=0)
        with pytest.raises(SpecError, match="max_queue"):
            ServeSpec(max_queue=2.5)

    def test_serve_default_deadline_nonnegative(self):
        with pytest.raises(SpecError, match="default_deadline_ms"):
            ServeSpec(default_deadline_ms=-1.0)
        assert ServeSpec(default_deadline_ms=0).default_deadline_ms == 0.0

    def test_serve_request_log_is_a_path(self):
        with pytest.raises(SpecError, match="request_log"):
            ServeSpec(request_log=7)

    def test_replace_revalidates(self):
        spec = StreamSpec(cycles=10)
        with pytest.raises(SpecError):
            spec.replace(cycles=0)


TOML_DOC = """
[corners]
voltages = [0.9]
temperatures = [25.0]

[sim]
backend = "bitpacked"

[shards]
workers = 2

[campaign]
fus = ["int_add"]
cache = false

[campaign.stream]
cycles = 40
seed = 5

[train]
fu = "int_add"
max_rows = 111

[train.stream]
cycles = 60
seed = 1
"""

JSON_DOC = json.dumps({
    "corners": {"voltages": [0.9], "temperatures": [25.0]},
    "sim": {"backend": "bitpacked"},
    "shards": {"workers": 2},
    "campaign": {"fus": ["int_add"], "cache": False,
                 "stream": {"cycles": 40, "seed": 5}},
    "train": {"fu": "int_add", "max_rows": 111,
              "stream": {"cycles": 60, "seed": 1}},
})

EXPECTED_CAMPAIGN = CampaignSpec(
    fus=("int_add",), cache=False,
    stream=StreamSpec(cycles=40, seed=5),
    corners=CornerSpec(voltages=(0.9,), temperatures=(25.0,)),
    sim=SimSpec(backend="bitpacked"),
    shards=ShardSpec(workers=2))


class TestFileLoading:
    def test_toml_equals_in_memory(self, tmp_path):
        path = tmp_path / "run.toml"
        path.write_text(TOML_DOC)
        assert CampaignSpec.from_file(path) == EXPECTED_CAMPAIGN

    def test_json_equals_in_memory(self, tmp_path):
        path = tmp_path / "run.json"
        path.write_text(JSON_DOC)
        assert CampaignSpec.from_file(path) == EXPECTED_CAMPAIGN

    def test_toml_and_json_agree(self, tmp_path):
        t = tmp_path / "run.toml"
        t.write_text(TOML_DOC)
        j = tmp_path / "run.json"
        j.write_text(JSON_DOC)
        for cls in (CampaignSpec, TrainSpec):
            assert cls.from_file(t) == cls.from_file(j)
            assert cls.from_file(t).fingerprint() == \
                cls.from_file(j).fingerprint()

    def test_shared_sections_fill_every_command(self, tmp_path):
        path = tmp_path / "run.toml"
        path.write_text(TOML_DOC)
        train = TrainSpec.from_file(path)
        # shared [corners]/[sim]/[shards] applied...
        assert train.corners == CornerSpec(voltages=(0.9,),
                                           temperatures=(25.0,))
        assert train.sim.backend == "bitpacked"
        assert train.shards.workers == 2
        # ...but the section-local [train.stream] wins over [stream]
        assert train.stream == StreamSpec(cycles=60, seed=1)

    def test_section_local_nested_overrides_shared(self, tmp_path):
        path = tmp_path / "run.toml"
        path.write_text("""
[stream]
cycles = 999

[campaign.stream]
cycles = 10
""")
        assert CampaignSpec.from_file(path).stream.cycles == 10
        # a section without its own stream takes the shared one
        assert TrainSpec.from_file(path).stream.cycles == 999

    def test_unknown_section_rejected(self, tmp_path):
        path = tmp_path / "run.toml"
        path.write_text("[compaign]\nfus = ['int_add']\n")
        with pytest.raises(SpecError, match="unknown config section"):
            load_config(path)

    def test_unknown_key_in_section_rejected(self, tmp_path):
        path = tmp_path / "run.toml"
        path.write_text("[campaign]\nfoos = ['int_add']\n")
        with pytest.raises(SpecError, match="unknown CampaignSpec"):
            CampaignSpec.from_file(path)

    def test_bad_suffix_rejected(self, tmp_path):
        path = tmp_path / "run.yaml"
        path.write_text("campaign: {}")
        with pytest.raises(SpecError, match="toml or .json"):
            load_config(path)

    def test_invalid_toml_rejected(self, tmp_path):
        path = tmp_path / "run.toml"
        path.write_text("[campaign\n")
        with pytest.raises(SpecError, match="invalid TOML"):
            load_config(path)
