"""Tests for the Workspace facade and the deprecated shims over it."""

import re
import warnings

import numpy as np
import pytest

from repro.api import (
    CampaignSpec,
    CornerSpec,
    ExperimentSpec,
    PredictSpec,
    ServeSpec,
    ShardSpec,
    SimSpec,
    SpecError,
    StreamSpec,
    TrainSpec,
    Workspace,
)
from repro.circuits import build_functional_unit
from repro.flow import CampaignJob, CampaignRunner, TraceStore, characterize
from repro.serve.registry import model_key
from repro.timing import OperatingCondition
from repro.workloads import random_stream, stream_for_unit

CORNERS = CornerSpec(voltages=(0.9,), temperatures=(25.0,))
CONDS = CORNERS.conditions()


def small_campaign(**kw):
    base = dict(fus=("int_add",), stream=StreamSpec(cycles=40, seed=0),
                corners=CORNERS)
    base.update(kw)
    return CampaignSpec(**base)


class TestWorkspaceLayout:
    def test_root_owns_store_and_registry(self, tmp_path):
        ws = Workspace(tmp_path / "ws")
        assert ws.store.root == tmp_path / "ws" / "traces"
        assert ws.registry.root == tmp_path / "ws" / "registry"

    def test_rootless_workspace_has_no_registry(self, tmp_path,
                                                monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        ws = Workspace()
        assert ws.registry is None
        assert ws.store.root == tmp_path

    def test_explicit_overrides_beat_root(self, tmp_path):
        ws = Workspace(tmp_path / "ws", store=tmp_path / "elsewhere")
        assert ws.store.root == tmp_path / "elsewhere"
        assert ws.registry.root == tmp_path / "ws" / "registry"


class TestCharacterize:
    def test_spec_run_matches_handbuilt_runner(self, tmp_path):
        spec = small_campaign(store=str(tmp_path / "a"))
        result = Workspace().characterize(spec)
        # the exact legacy construction, by hand
        fu = build_functional_unit("int_add")
        stream = stream_for_unit("int_add", 40, seed=0)
        ref = CampaignRunner(store=tmp_path / "b").run(
            [CampaignJob(fu, stream, CONDS)])[0]
        assert result.traces[0].delays.tobytes() == ref.delays.tobytes()

    def test_cache_key_byte_identical_to_legacy_path(self, tmp_path):
        """The acceptance criterion: spec-driven runs key the store
        exactly like the flag/kwarg paths they replace."""
        spec = small_campaign()
        ws_jobs = Workspace(tmp_path).jobs(spec)
        fu = build_functional_unit("int_add")
        stream = stream_for_unit("int_add", 40, seed=0)
        legacy_key = CampaignJob(fu, stream, CONDS).key()
        assert ws_jobs[0].key() == legacy_key

    def test_characterize_populates_and_hits_store(self, tmp_path):
        ws = Workspace(tmp_path)
        spec = small_campaign()
        first = ws.characterize(spec)
        assert (first.stats.hits, first.stats.misses) == (0, 1)
        second = ws.characterize(spec)
        assert (second.stats.hits, second.stats.misses) == (1, 0)
        assert second.traces[0].delays.tobytes() == \
            first.traces[0].delays.tobytes()

    def test_simulate_never_touches_store(self, tmp_path):
        ws = Workspace(tmp_path)
        sim = ws.simulate(small_campaign())
        assert sim.stats.misses == 1
        assert TraceStore(tmp_path / "traces").entries() == {}

    def test_compiled_false_is_bit_identical(self, tmp_path):
        ws = Workspace(tmp_path)
        fast = ws.simulate(small_campaign(
            stream=StreamSpec(cycles=20, seed=2)))
        ref = ws.simulate(small_campaign(
            stream=StreamSpec(cycles=20, seed=2),
            sim=SimSpec(backend="levelized", compiled=False)))
        assert fast.traces[0].delays.tobytes() == \
            ref.traces[0].delays.tobytes()

    def test_compiled_false_audit_never_reads_the_cache(self, tmp_path):
        """A ref-backend run satisfied from a compiled-produced cache
        entry would 'audit' nothing — it must simulate fresh."""
        ws = Workspace(tmp_path)
        spec = small_campaign(stream=StreamSpec(cycles=20, seed=3))
        ws.characterize(spec)  # populate the cache (compiled)
        audit = ws.characterize(spec.replace(
            sim=SimSpec(backend="levelized", compiled=False)))
        assert (audit.stats.hits, audit.stats.misses) == (0, 1)

    def test_chunk_cycles_never_affects_results(self, tmp_path):
        ws = Workspace(tmp_path)
        base = ws.simulate(small_campaign())
        chunked = ws.simulate(small_campaign(
            sim=SimSpec(chunk_cycles=7)))
        assert chunked.traces[0].delays.tobytes() == \
            base.traces[0].delays.tobytes()

    def test_adaptive_history_toggle(self, tmp_path):
        ws = Workspace(tmp_path)
        off = small_campaign(shards=ShardSpec(adaptive_history=False))
        ws.characterize(off)
        assert ws.store.throughput_history() == {}
        ws.characterize(small_campaign(
            stream=StreamSpec(cycles=40, seed=9)))
        assert ws.store.throughput_history() != {}


class TestTrainPredict:
    def test_train_saves_and_publishes(self, tmp_path):
        ws = Workspace(tmp_path)
        out = tmp_path / "m.pkl"
        spec = TrainSpec(fu="int_add", corners=CORNERS,
                         stream=StreamSpec(cycles=50, seed=0),
                         output=str(out), publish=True)
        result = ws.train(spec)
        assert out.exists()
        assert result.record.model_id == "int_add/tevot/v1"
        assert len(ws.registry) == 1

    def test_publish_without_registry_is_loud(self, tmp_path,
                                              monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        spec = TrainSpec(fu="int_add", corners=CORNERS,
                         stream=StreamSpec(cycles=30), publish=True)
        with pytest.raises(SpecError, match="registry"):
            Workspace().train(spec)

    def test_spec_registry_overrides_workspace(self, tmp_path):
        spec = TrainSpec(fu="int_add", corners=CORNERS,
                         stream=StreamSpec(cycles=30), publish=True,
                         registry=str(tmp_path / "elsewhere"))
        record = Workspace(tmp_path / "ws").train(spec).record
        assert record is not None
        assert (tmp_path / "elsewhere" / record.file).exists()
        assert len(Workspace(tmp_path / "ws").registry) == 0

    def test_unset_fu_is_rejected_at_execution(self, tmp_path):
        with pytest.raises(SpecError, match="fu"):
            Workspace(tmp_path).train(TrainSpec(corners=CORNERS))
        with pytest.raises(SpecError, match="fu"):
            Workspace(tmp_path).predict(PredictSpec(model="m.pkl",
                                                    corners=CORNERS))

    def test_model_key_byte_identical_to_legacy_publish(self, tmp_path):
        """Registry keys must not depend on which front door was used."""
        ws = Workspace(tmp_path)
        spec = TrainSpec(fu="int_add", corners=CORNERS,
                         stream=StreamSpec(cycles=50, seed=0),
                         publish=True)
        record = ws.train(spec).record
        # what the legacy flag path (cmd_train) would have computed
        fu = build_functional_unit("int_add")
        stream = stream_for_unit("int_add", 50, seed=0)
        spec_tag = ws.train(spec).model.spec.version_tag()
        legacy = model_key(fu, "tevot", CONDS, stream, spec_tag)
        assert record.key == legacy

    def test_predict_roundtrip(self, tmp_path):
        ws = Workspace(tmp_path)
        out = tmp_path / "m.pkl"
        ws.train(TrainSpec(fu="int_add", corners=CORNERS,
                           stream=StreamSpec(cycles=50, seed=0),
                           output=str(out)))
        result = ws.predict(PredictSpec(
            fu="int_add", model=str(out), speedup=0.15, corners=CORNERS,
            stream=StreamSpec(cycles=30, seed=1)))
        assert set(result.ters) == set(CONDS)
        for ter in result.ters.values():
            assert 0.0 <= ter <= 1.0
        for clock in result.clocks.values():
            assert clock > 0

    def test_predict_requires_model(self, tmp_path):
        with pytest.raises(SpecError, match="model"):
            Workspace(tmp_path).predict(PredictSpec(fu="int_add",
                                                    corners=CORNERS))


class TestExperiment:
    def test_experiment_publishes_when_asked(self, tmp_path):
        ws = Workspace(tmp_path)
        spec = ExperimentSpec(
            fu="int_add",
            train_stream=StreamSpec(cycles=100, seed=0,
                                    name="random_train"),
            test_stream=StreamSpec(cycles=60, seed=1, name="random_test"),
            corners=CornerSpec.from_conditions(
                [OperatingCondition(0.81, 0.0),
                 OperatingCondition(1.00, 100.0)]),
            publish=True)
        result = ws.experiment(spec)
        assert set(result.summary()) == {"TEVoT", "TEVoT-NH",
                                         "Delay-based", "TER-based"}
        kinds = {r.kind for r in ws.registry.list_models(fu="int_add")}
        assert kinds == {"tevot", "tevot_nh", "delay_based", "ter_based"}


class TestServe:
    def test_serve_spec_builds_live_server(self, tmp_path):
        from repro.serve import ServeClient

        ws = Workspace(tmp_path)
        ws.train(TrainSpec(fu="int_add", corners=CORNERS,
                           stream=StreamSpec(cycles=50, seed=0),
                           publish=True))
        server = ws.serve(ServeSpec(port=0))  # workspace registry
        try:
            server.start_background()
            host, port = server.address
            client = ServeClient(host, port)
            health = client.health()
            assert health["status"] == "healthy"
            assert health["models_published"] == 1
            pred = client.predict(fu="int_add", a=3, b=5,
                                  voltage=0.9, temperature=25.0)
            assert pred["ok"] and pred["source"] == "model"
        finally:
            server.shutdown()
            server.server_close()


class TestDeprecatedShims:
    def test_runner_characterize_warns_and_matches_run(self, tmp_path):
        fu = build_functional_unit("int_add", width=8)
        stream = random_stream(20, operand_width=8, seed=1)
        runner = CampaignRunner(use_cache=False)
        with pytest.warns(DeprecationWarning,
                          match="Workspace.characterize"):
            via_shim = runner.characterize(fu, stream, CONDS)
        via_run = runner.run([CampaignJob(fu, stream, CONDS)])[0]
        assert via_shim.delays.tobytes() == via_run.delays.tobytes()

    @pytest.mark.parametrize("entry_point,kwargs", [
        ("module_characterize", {}),
        ("runner_characterize", {}),
    ])
    def test_warning_text_names_a_live_symbol(self, tmp_path, entry_point,
                                              kwargs):
        """The satellite guarantee: whatever replacement path the
        deprecation message advertises must actually resolve."""
        fu = build_functional_unit("int_add", width=8)
        stream = random_stream(10, operand_width=8, seed=2)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            if entry_point == "module_characterize":
                characterize(fu, stream, CONDS, cache_dir=tmp_path)
            else:
                CampaignRunner(use_cache=False).characterize(
                    fu, stream, CONDS)
        (message,) = [str(w.message) for w in caught
                      if issubclass(w.category, DeprecationWarning)]
        dotted = re.findall(r"repro(?:\.\w+)+", message)
        assert dotted, f"warning names no dotted symbol: {message}"
        for symbol in dotted:
            parts = symbol.split(".")
            obj = __import__(parts[0])
            for part in parts[1:]:
                obj = getattr(obj, part)  # raises if the path went stale
            assert callable(obj) or obj is not None

    def test_run_experiment_warning_names_live_symbol(self, tmp_path,
                                                      monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        from repro.core import run_experiment

        with pytest.warns(DeprecationWarning,
                          match="Workspace.experiment") as caught:
            run_experiment("int_add", conditions=CONDS,
                           n_train_cycles=40, n_test_cycles=30, width=8)
        message = str(caught[0].message)
        for symbol in re.findall(r"repro(?:\.\w+)+", message):
            obj = __import__(symbol.split(".")[0])
            for part in symbol.split(".")[1:]:
                obj = getattr(obj, part)
