"""Tests for the simulated ASIC flow and DTA campaigns."""

import numpy as np
import pytest

from repro.circuits import build_functional_unit
from repro.flow import characterize, error_free_clocks, implement
from repro.timing import OperatingCondition, read_sdf
from repro.workloads import random_stream

CONDS = [OperatingCondition(0.81, 0.0), OperatingCondition(1.00, 100.0)]


class TestImplement:
    def test_signoff_covers_all_corners(self):
        design = implement("int_add", CONDS, width=8)
        assert set(design.corners()) == set(CONDS)
        for cond in CONDS:
            assert design.static_delay(cond) > 0

    def test_low_voltage_corner_is_slower(self):
        design = implement("int_add", CONDS, width=8)
        assert design.static_delay(CONDS[0]) > design.static_delay(CONDS[1])

    def test_unsigned_corner_raises(self):
        design = implement("int_add", CONDS[:1], width=8)
        with pytest.raises(KeyError):
            design.static_delay(CONDS[1])

    def test_emit_sdf_per_corner(self, tmp_path):
        design = implement("int_add", CONDS, width=8)
        paths = design.emit_sdf(tmp_path)
        assert len(paths) == 2
        sdf = read_sdf(paths[0])
        assert sdf.condition == CONDS[0]
        np.testing.assert_allclose(sdf.delay_vector(design.netlist),
                                   design.gate_delays(CONDS[0]), atol=1e-3)

    def test_fu_kwargs_forwarded(self):
        design = implement("int_add", CONDS[:1], width=8,
                           architecture="cla")
        assert "cla" in design.netlist.name


@pytest.mark.filterwarnings("ignore::DeprecationWarning")
class TestCharacterize:
    """The deprecated shim must keep behaving like CampaignRunner."""

    def test_shim_emits_deprecation_warning(self, tmp_path):
        fu = build_functional_unit("int_add", width=8)
        stream = random_stream(10, operand_width=8, seed=9)
        with pytest.warns(DeprecationWarning,
                          match="Workspace.characterize"):
            characterize(fu, stream, CONDS, cache_dir=tmp_path)

    def test_delay_trace_shape(self, tmp_path):
        fu = build_functional_unit("int_add", width=8)
        stream = random_stream(30, operand_width=8, seed=0)
        trace = characterize(fu, stream, CONDS, cache_dir=tmp_path)
        assert trace.delays.shape == (2, 30)
        assert np.all(trace.delays >= 0)

    def test_cache_roundtrip(self, tmp_path):
        fu = build_functional_unit("int_add", width=8)
        stream = random_stream(30, operand_width=8, seed=1)
        first = characterize(fu, stream, CONDS, cache_dir=tmp_path)
        cached = characterize(fu, stream, CONDS, cache_dir=tmp_path)
        np.testing.assert_array_equal(first.delays, cached.delays)
        assert len(list(tmp_path.glob("dta_*.npz"))) == 1

    def test_cache_distinguishes_streams(self, tmp_path):
        fu = build_functional_unit("int_add", width=8)
        s1 = random_stream(30, operand_width=8, seed=2)
        s2 = random_stream(30, operand_width=8, seed=3)
        characterize(fu, s1, CONDS, cache_dir=tmp_path)
        characterize(fu, s2, CONDS, cache_dir=tmp_path)
        assert len(list(tmp_path.glob("dta_*.npz"))) == 2

    def test_error_free_clocks_are_max_delays(self, tmp_path):
        fu = build_functional_unit("int_add", width=8)
        stream = random_stream(50, operand_width=8, seed=4)
        trace = characterize(fu, stream, CONDS, cache_dir=tmp_path)
        clocks = error_free_clocks(trace)
        for k, cond in enumerate(CONDS):
            assert clocks[cond] == trace.delays[k].max()
            # error-free: no training delay exceeds the clock
            assert not np.any(trace.delays[k] > clocks[cond])


class TestEndToEndSmall:
    @pytest.mark.filterwarnings("ignore::DeprecationWarning")
    def test_run_experiment_smoke(self, tmp_path, monkeypatch):
        # the deprecated kwarg entry point, still fully functional
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        from repro.core import run_experiment

        res = run_experiment("int_add", conditions=CONDS,
                             n_train_cycles=150, n_test_cycles=100,
                             width=8)
        summary = res.summary()
        assert set(summary) == {"TEVoT", "Delay-based", "TER-based",
                                "TEVoT-NH"}
        for value in summary.values():
            assert 0.0 <= value <= 1.0
        # the workload-aware model must beat the pessimist
        assert summary["TEVoT"] > summary["Delay-based"]
