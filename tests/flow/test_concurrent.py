"""Concurrent-writer tests: two processes hammer the same store.

The store lock serializes read-modify-write cycles, so parallel writers
must never drop each other's manifest entries, collide on version
numbers, or leave a torn manifest behind.
"""

import os
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

import repro
from repro.flow import TraceStore, read_envelope
from repro.serve import ModelRegistry
from repro.timing import OperatingCondition

SRC = str(Path(next(iter(repro.__path__))).resolve().parent)
CONDS = [OperatingCondition(0.81, 0.0)]

STORE_WRITER = """
import sys
import numpy as np
from repro.flow import TraceStore
from repro.sim.dta import DelayTrace
from repro.timing import DEFAULT_LIBRARY, OperatingCondition
root, tag, n = sys.argv[1], sys.argv[2], int(sys.argv[3])
conds = [OperatingCondition(0.81, 0.0)]
store = TraceStore(root, lock_timeout=60.0)
for i in range(n):
    delays = np.full((1, 8), float(i), dtype=np.float32)
    store.put(f"{tag}{i:03d}", DelayTrace(delays, conds),
              fu_name="int_add", stream_name=f"s_{tag}{i}",
              library=DEFAULT_LIBRARY, backend="bitpacked")
"""

REGISTRY_WRITER = """
import sys
from repro.serve import ModelRegistry
root, n = sys.argv[1], int(sys.argv[2])
registry = ModelRegistry(root, lock_timeout=60.0)
for i in range(n):
    registry.publish({"weights": list(range(i + 1))}, fu="int_add")
"""


def _race(script, argses):
    env = dict(os.environ, PYTHONPATH=SRC)
    procs = [subprocess.Popen(
        [sys.executable, "-c", script] + [str(a) for a in args],
        env=env, stdout=subprocess.PIPE, stderr=subprocess.PIPE,
        text=True) for args in argses]
    for proc in procs:
        _, err = proc.communicate(timeout=180)
        assert proc.returncode == 0, err


class TestConcurrentTraceStore:
    N = 10

    def test_no_lost_entries_and_manifest_intact(self, tmp_path):
        _race(STORE_WRITER, [(tmp_path, "a", self.N),
                             (tmp_path, "b", self.N)])
        store = TraceStore(tmp_path)
        entries = store.entries()
        expected = {f"{tag}{i:03d}" for tag in "ab" for i in range(self.N)}
        assert set(entries) == expected  # neither writer lost a record
        # the surviving manifest is a checksum-clean envelope whose
        # generation counted every locked read-modify-write
        payload, generation = read_envelope(tmp_path / "manifest.json")
        assert set(payload["entries"]) == expected
        assert generation >= 2 * self.N
        # every blob reads back with the bytes its writer stored
        for tag in "ab":
            for i in range(self.N):
                trace = store.get(f"{tag}{i:03d}", CONDS)
                np.testing.assert_array_equal(
                    trace.delays, np.full((1, 8), float(i),
                                          dtype=np.float32))

    def test_no_stray_temp_files_survive(self, tmp_path):
        _race(STORE_WRITER, [(tmp_path, "a", 4), (tmp_path, "b", 4)])
        assert not list(tmp_path.glob(".*.tmp*"))
        assert not list(tmp_path.glob("*.corrupt-*"))


class TestConcurrentRegistry:
    N = 8

    def test_versions_never_collide(self, tmp_path):
        _race(REGISTRY_WRITER, [(tmp_path, self.N), (tmp_path, self.N)])
        registry = ModelRegistry(tmp_path)
        records = registry.list_models(fu="int_add", kind="tevot")
        assert len(records) == 2 * self.N  # no publish was dropped
        # the locked RMW hands out each version exactly once
        assert sorted(r.version for r in records) \
            == list(range(1, 2 * self.N + 1))
        assert len({r.file for r in records}) == 2 * self.N
        model, record = registry.resolve("int_add")
        assert record.version == 2 * self.N
        assert isinstance(model, dict)
        payload, generation = read_envelope(tmp_path / "manifest.json")
        assert len(payload["models"]) == 2 * self.N
        assert generation >= 2 * self.N
