"""Property-style chaos tests for the persistence fault points.

For *every* registered persistence fault point (the harness enumerates
them — a new site without coverage here fails the suite), a child
process is killed mid-operation with the ``exit`` action and, where the
writer can produce one, a ``torn-write`` artifact.  In all cases the
store must reopen without error, lose at most the in-flight record, and
a clean rerun of the same operation must converge to the same bytes.
Campaign checkpoint/resume rides the same journal fault point:
a killed campaign's rerun skips the journaled shards and produces a
bit-identical trace.
"""

import os
import subprocess
import sys
import warnings
from dataclasses import dataclass
from pathlib import Path
from typing import Callable

import numpy as np
import pytest

import repro
import repro.flow.tracestore  # noqa: F401 - registers fault sites
import repro.serve.registry  # noqa: F401
import repro.serve.requestlog  # noqa: F401
from repro.circuits import build_functional_unit
from repro.core import TEVoT, build_training_set, save_model
from repro.flow import DEFAULT_BACKEND, CampaignJob, CampaignRunner, \
    TraceStore
from repro.serve import ModelRegistry, read_request_log
from repro.testing import faults
from repro.timing import DEFAULT_LIBRARY, OperatingCondition
from repro.workloads import random_stream

SRC = str(Path(next(iter(repro.__path__))).resolve().parent)
CONDS = [OperatingCondition(0.81, 0.0), OperatingCondition(1.00, 100.0)]

#: Every persistence fault point the production code registers.  The
#: scenario table below must cover exactly this set — adding a new
#: persistence site without chaos coverage fails
#: test_every_persistence_site_is_covered.
EXPECTED_SITES = {
    "campaign.journal.replace",
    "registry.artifact.write",
    "registry.manifest.replace",
    "requestlog.append",
    "tracestore.blob.write",
    "tracestore.manifest.replace",
}


@pytest.fixture(autouse=True)
def clean_fault_state(monkeypatch):
    monkeypatch.delenv(faults.PLAN_ENV, raising=False)
    monkeypatch.delenv(faults.STATE_ENV, raising=False)
    faults.reset()
    yield
    faults.reset()


@pytest.fixture(scope="module")
def model_artifact(tmp_path_factory):
    """A trained TEVoT saved once, for registry chaos children to load."""
    fu = build_functional_unit("int_add", width=8)
    stream = random_stream(60, operand_width=8, seed=0)
    trace = CampaignRunner(use_cache=False).run(
        [CampaignJob(fu, stream, CONDS)])[0]
    model = TEVoT(operand_width=8)
    X, y = build_training_set(stream, CONDS, trace.delays, spec=model.spec)
    model.fit(X, y)
    path = tmp_path_factory.mktemp("chaos_model") / "model.pkl"
    save_model(model, path)
    return path


def _run_child(code, plan=None):
    env = dict(os.environ, PYTHONPATH=SRC)
    env.pop(faults.PLAN_ENV, None)
    env.pop(faults.STATE_ENV, None)
    if plan is not None:
        env[faults.PLAN_ENV] = plan
    return subprocess.run([sys.executable, "-c", code], env=env,
                          capture_output=True, text=True)


# -- per-site operations (run in a child process) -----------------------------

def _store_put_script(root, model):
    return f"""
import numpy as np
from repro.flow import TraceStore
from repro.sim.dta import DelayTrace
from repro.timing import DEFAULT_LIBRARY, OperatingCondition
conds = [OperatingCondition(0.81, 0.0), OperatingCondition(1.00, 100.0)]
delays = np.arange(80, dtype=np.float32).reshape(2, 40)
TraceStore({str(root)!r}).put("chaoskey0", DelayTrace(delays, conds),
                              fu_name="int_add", stream_name="chaos",
                              library=DEFAULT_LIBRARY, backend="bitpacked")
"""


def _journal_script(root, model):
    return f"""
import numpy as np
from repro.flow import TraceStore
store = TraceStore({str(root)!r})
plan = [(0, 2, 0, 20), (0, 2, 20, 40)]
store.record_journal_shard("jkey", plan=plan, shard=(0, 2, 0, 20),
                           delays=np.ones((2, 20), dtype=np.float32),
                           backend="bitpacked", n_corners=2, n_cycles=40)
"""


def _publish_script(root, model):
    return f"""
from repro.core import load_model
from repro.serve import ModelRegistry
model, _ = load_model({str(model)!r})
ModelRegistry({str(root)!r}).publish(model, fu="int_add")
"""


def _log_script(root, model):
    return f"""
from repro.serve import PredictRequest, RequestLog
from repro.serve.engine import Prediction
reqs = [PredictRequest(fu="int_add", a=i, b=i + 1, voltage=0.9,
                       temperature=25.0) for i in range(4)]
preds = [Prediction(ok=True, delay_ps=100.0 + i, source="model")
         for i in range(4)]
with RequestLog({str(root / 'req.jsonl')!r}, config={{"chaos": 1}}) as log:
    log.append_batch(reqs[:2], preds[:2])
    log.append_batch(reqs[2:], preds[2:])
"""


# -- per-site recovery / convergence checks (run in this process) -------------

def _store_recovered(root):
    store = TraceStore(root)
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)
        store.entries()  # must not raise, whatever landed
        store.get("chaoskey0", CONDS)


def _store_converged(root):
    store = TraceStore(root)
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)
        assert "chaoskey0" in store.entries()
        trace = store.get("chaoskey0", CONDS)
    np.testing.assert_array_equal(
        trace.delays, np.arange(80, dtype=np.float32).reshape(2, 40))
    store.gc()  # crash artifacts (stray tmp files) are collectable
    assert not list(root.glob(".*.tmp*"))


def _journal_recovered(root):
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)
        TraceStore(root).load_journal("jkey", backend="bitpacked",
                                      n_corners=2, n_cycles=40)


def _journal_converged(root):
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)
        state = TraceStore(root).load_journal(
            "jkey", backend="bitpacked", n_corners=2, n_cycles=40)
    assert state is not None
    plan, done = state
    assert plan == [(0, 2, 0, 20), (0, 2, 20, 40)]
    ((shard, part),) = done
    assert shard == (0, 2, 0, 20)
    np.testing.assert_array_equal(part, np.ones((2, 20), dtype=np.float32))


def _registry_recovered(root):
    registry = ModelRegistry(root)
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)
        registry.list_models()  # must not raise
        try:
            registry.resolve("int_add")
        except LookupError:
            pass  # losing the in-flight publish is acceptable


def _registry_converged(root):
    registry = ModelRegistry(root)
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)
        model, record = registry.resolve("int_add")
        records = registry.list_models(fu="int_add")
    # the clean rerun's publish resolved; a torn-manifest recovery may
    # also have salvaged the crashed publish's completed artifact, in
    # which case the rerun lands as a later version — never fewer than
    # one model, never a gap in the version sequence
    assert model is not None
    assert record.version == len(records) >= 1
    assert record.model_id == f"int_add/tevot/v{record.version}"
    assert sorted(r.version for r in records) \
        == list(range(1, len(records) + 1))


def _log_recovered(root):
    path = root / "req.jsonl"
    if not path.exists():
        return
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)
        records = list(read_request_log(path))
    # at most the in-flight batch is lost; whatever is left is sealed
    assert all(r["kind"] in ("header", "batch") for r in records)


def _log_converged(root):
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)
        records = list(read_request_log(root / "req.jsonl"))
    batches = [r for r in records if r["kind"] == "batch"]
    # the clean rerun appended a full session: its two batches are the
    # file's last records and carry the expected request payloads
    assert [[q["a"] for q in b["requests"]] for b in batches[-2:]] \
        == [[0, 1], [2, 3]]


@dataclass
class Scenario:
    script: Callable
    nth: int  # which hit of the site to kill (1-based)
    recovered: Callable
    converged: Callable
    torn: bool  # writer can produce a torn artifact at the final path


SCENARIOS = {
    "tracestore.blob.write": Scenario(
        _store_put_script, 1, _store_recovered, _store_converged, True),
    "tracestore.manifest.replace": Scenario(
        _store_put_script, 1, _store_recovered, _store_converged, True),
    "campaign.journal.replace": Scenario(
        _journal_script, 1, _journal_recovered, _journal_converged, True),
    "registry.artifact.write": Scenario(
        _publish_script, 1, _registry_recovered, _registry_converged, False),
    "registry.manifest.replace": Scenario(
        _publish_script, 1, _registry_recovered, _registry_converged, True),
    "requestlog.append": Scenario(  # hit 1 is the header; kill batch 1
        _log_script, 2, _log_recovered, _log_converged, True),
}

TORN_SITES = sorted(s for s, scn in SCENARIOS.items() if scn.torn)


def test_every_persistence_site_is_covered():
    """The property the suite enforces: a chaos scenario exists for
    every persistence fault point the production code registers."""
    assert set(faults.persistence_sites()) == EXPECTED_SITES
    assert set(SCENARIOS) == EXPECTED_SITES


@pytest.mark.parametrize("site", sorted(SCENARIOS))
def test_exit_mid_write_is_recoverable(site, tmp_path, model_artifact):
    scenario = SCENARIOS[site]
    root = tmp_path / "store"
    root.mkdir()
    code = scenario.script(root, model_artifact)

    crashed = _run_child(code, plan=f"{site}:exit:{scenario.nth}")
    assert crashed.returncode == faults.EXIT_CODE, crashed.stderr
    scenario.recovered(root)

    rerun = _run_child(code)
    assert rerun.returncode == 0, rerun.stderr
    scenario.converged(root)


@pytest.mark.parametrize("site", TORN_SITES)
def test_torn_write_is_quarantined_not_trusted(site, tmp_path,
                                               model_artifact):
    scenario = SCENARIOS[site]
    root = tmp_path / "store"
    root.mkdir()
    code = scenario.script(root, model_artifact)

    crashed = _run_child(code, plan=f"{site}:torn-write:{scenario.nth}")
    assert crashed.returncode == faults.TORN_EXIT_CODE, crashed.stderr
    scenario.recovered(root)

    rerun = _run_child(code)
    assert rerun.returncode == 0, rerun.stderr
    scenario.converged(root)


class TestCampaignResume:
    def _job(self, n_cycles=40, seed=5):
        fu = build_functional_unit("int_add", width=8)
        stream = random_stream(n_cycles, operand_width=8, seed=seed)
        return CampaignJob(fu, stream, CONDS)

    def test_inline_rerun_skips_journaled_shards(self, tmp_path,
                                                 monkeypatch):
        job = self._job()
        reference = CampaignRunner(use_cache=False).run([job])[0]

        # crash the campaign at the 3rd journal write: shards 1 and 2
        # are checkpointed, the run dies mid-shard-3
        monkeypatch.setenv(faults.PLAN_ENV,
                           "campaign.journal.replace:raise:3")
        with CampaignRunner(store=tmp_path, shard_cycles=10) as runner:
            with pytest.raises(faults.FaultInjected):
                runner.run([job])
        assert list(tmp_path.glob("journal_*.json"))

        monkeypatch.delenv(faults.PLAN_ENV)
        faults.reset()
        with CampaignRunner(store=tmp_path, shard_cycles=10) as runner:
            trace = runner.run([job])[0]
            assert runner.stats.resumed_shards == 2
            assert runner.stats.misses == 1
        np.testing.assert_array_equal(trace.delays, reference.delays)
        # journal + parts are cleared once the trace lands in the store
        assert not list(tmp_path.glob("journal_*"))
        assert not list(tmp_path.glob("part_*"))

    def test_pool_rerun_skips_journaled_shards(self, tmp_path,
                                               monkeypatch):
        # big enough to cross the pool's shared-memory threshold, so
        # the journal callback sees live shm shard views
        job = self._job(n_cycles=9000, seed=6)
        reference = CampaignRunner(use_cache=False).run([job])[0]

        monkeypatch.setenv(faults.PLAN_ENV,
                           "campaign.journal.replace:raise:2")
        with CampaignRunner(store=tmp_path, n_workers=2,
                            shard_cycles=3000) as runner:
            with pytest.raises(faults.FaultInjected):
                runner.run([job])

        monkeypatch.delenv(faults.PLAN_ENV)
        faults.reset()
        with CampaignRunner(store=tmp_path, n_workers=2,
                            shard_cycles=3000) as runner:
            trace = runner.run([job])[0]
            assert runner.stats.resumed_shards == 1
        np.testing.assert_array_equal(trace.delays, reference.delays)
        assert not list(tmp_path.glob("journal_*"))
        assert not list(tmp_path.glob("part_*"))

    def test_resumed_campaign_hits_cache_on_next_run(self, tmp_path,
                                                     monkeypatch):
        job = self._job(seed=7)
        monkeypatch.setenv(faults.PLAN_ENV,
                           "campaign.journal.replace:raise:2")
        with CampaignRunner(store=tmp_path, shard_cycles=10) as runner:
            with pytest.raises(faults.FaultInjected):
                runner.run([job])
        monkeypatch.delenv(faults.PLAN_ENV)
        faults.reset()
        with CampaignRunner(store=tmp_path, shard_cycles=10) as runner:
            runner.run([job])
        with CampaignRunner(store=tmp_path, shard_cycles=10) as runner:
            runner.run([job])
            assert runner.stats.hits == 1
            assert runner.stats.resumed_shards == 0

    def test_checkpoint_env_kill_switch(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CAMPAIGN_CHECKPOINT", "0")
        runner = CampaignRunner(store=tmp_path)
        assert runner.checkpoint is False
        monkeypatch.delenv("REPRO_CAMPAIGN_CHECKPOINT")
        assert CampaignRunner(store=tmp_path).checkpoint is True
        assert CampaignRunner(store=tmp_path,
                              checkpoint=False).checkpoint is False

    def test_disabled_checkpoint_writes_no_journal(self, tmp_path):
        job = self._job(seed=8)
        with CampaignRunner(store=tmp_path, shard_cycles=10,
                            checkpoint=False) as runner:
            runner.run([job])
            assert runner.stats.resumed_shards == 0
        # nothing journal-shaped ever touched the store directory
        assert not list(tmp_path.glob("journal_*"))
        assert not list(tmp_path.glob("part_*"))

    def test_stale_journal_for_other_backend_is_ignored(self, tmp_path,
                                                        monkeypatch):
        job = self._job(seed=9)
        monkeypatch.setenv(faults.PLAN_ENV,
                           "campaign.journal.replace:raise:2")
        with CampaignRunner(store=tmp_path, shard_cycles=10) as runner:
            with pytest.raises(faults.FaultInjected):
                runner.run([job])
        monkeypatch.delenv(faults.PLAN_ENV)
        faults.reset()
        # same key space, different backend grid params: the journal
        # must not be resumed against a backend it was not recorded for
        key = job.key("dta")
        store = TraceStore(tmp_path)
        assert store.load_journal(key, backend="event",
                                  n_corners=2, n_cycles=40) is None
        assert store.load_journal(key, backend=DEFAULT_BACKEND,
                                  n_corners=2, n_cycles=40) is not None
