"""Tests for the persistent warm worker pool and its campaign wiring.

Covers the ISSUE-6 acceptance surface: byte-identical results across
the shared-memory and pickle return paths (including 1-cycle streams
and 1-corner grids), pool-lifecycle robustness (mid-task worker death,
respawn + reissue, orphan-free shutdown), capability gating through
the pool, and Workspace pool ownership.
"""

import glob
import hashlib
import multiprocessing
import os
import pickle
import signal
import time

import numpy as np
import pytest

from repro.api import ShardSpec, Workspace
from repro.circuits import build_functional_unit
from repro.flow import CampaignJob, CampaignRunner, JobProgram, WorkerPool
from repro.flow.pool import CRASH_FILE_ENV, MAX_REISSUES, SHM_PREFIX
from repro.sim import get_backend
from repro.timing import DEFAULT_LIBRARY, OperatingCondition
from repro.workloads import random_stream

CONDS = [OperatingCondition(0.81, 0.0), OperatingCondition(1.00, 100.0)]


def _pool_children():
    """Live pool worker processes of this test process."""
    return [p for p in multiprocessing.active_children()
            if p.name.startswith("repro-pool-")]


def _shm_segments():
    return glob.glob(f"/dev/shm/{SHM_PREFIX}*")


@pytest.fixture(autouse=True)
def no_leaks():
    """Every test must leave zero pool workers and zero segments."""
    yield
    assert _pool_children() == []
    assert _shm_segments() == []


def _prog(fu, stream, backend="bitpacked", conds=CONDS, threads=None):
    inputs = stream.bit_matrix(fu)
    delay_matrix = DEFAULT_LIBRARY.delay_matrix(fu.netlist, list(conds))
    blob = pickle.dumps(fu.netlist)
    return JobProgram(netlist=fu.netlist,
                      netlist_key=hashlib.sha1(blob).hexdigest(),
                      inputs=inputs, delay_matrix=delay_matrix,
                      backend=backend, threads=threads,
                      netlist_bytes=blob)


def _reference(prog):
    return get_backend(prog.backend).run_delays(
        prog.netlist, prog.inputs, prog.delay_matrix).delays


def _whole(prog):
    return (0, prog.n_corners, 0, prog.n_cycles)


def _halves(prog):
    mid = prog.n_cycles // 2
    return [(0, prog.n_corners, 0, mid),
            (0, prog.n_corners, mid, prog.n_cycles)]


def _stitch(prog, tasks):
    out = np.empty((prog.n_corners, prog.n_cycles), dtype=np.float32)
    for tr in tasks:
        c0, c1, t0, t1 = tr.shard
        out[c0:c1, t0:t1] = tr.delays
    return out


class TestWorkerPool:
    def test_shm_and_pickle_paths_byte_identical(self):
        # big job crosses SHM_MIN_RESULT_BYTES (2 corners x 9000 cycles
        # x 4 B = 72 KB), small job stays on the pickle return path —
        # both must match the inline reference exactly
        fu = build_functional_unit("int_add", width=8)
        big = _prog(fu, random_stream(9000, operand_width=8, seed=0))
        small = _prog(fu, random_stream(40, operand_width=8, seed=1))
        with WorkerPool(2) as pool:
            tasks = ([("big", s) for s in _halves(big)]
                     + [("small", _whole(small))])
            res = pool.run_tasks({"big": big, "small": small}, tasks)
        if pool.use_shm:
            assert "big" in res.job_delays
            assert all(t.delays is None for t in res.tasks[:2])
            np.testing.assert_array_equal(res.job_delays["big"],
                                          _reference(big))
        else:  # host without usable shm still must be correct
            np.testing.assert_array_equal(_stitch(big, res.tasks[:2]),
                                          _reference(big))
        assert "small" not in res.job_delays
        np.testing.assert_array_equal(res.tasks[2].delays,
                                      _reference(small))

    def test_no_shm_env_forces_pickle(self, monkeypatch):
        monkeypatch.setenv("REPRO_POOL_NO_SHM", "1")
        fu = build_functional_unit("int_add", width=8)
        prog = _prog(fu, random_stream(9000, operand_width=8, seed=2))
        with WorkerPool(2) as pool:
            assert not pool.use_shm
            res = pool.run_tasks({"j": prog},
                                 [("j", s) for s in _halves(prog)])
        assert res.job_delays == {}
        np.testing.assert_array_equal(_stitch(prog, res.tasks),
                                      _reference(prog))

    def test_single_cycle_stream_and_single_corner(self):
        fu = build_functional_unit("int_add", width=8)
        one_cycle = _prog(fu, random_stream(1, operand_width=8, seed=3))
        one_corner = _prog(fu, random_stream(50, operand_width=8, seed=4),
                           conds=CONDS[:1])
        with WorkerPool(2) as pool:
            res = pool.run_tasks(
                {"cyc": one_cycle, "cor": one_corner},
                [("cyc", _whole(one_cycle)), ("cor", _whole(one_corner))])
        np.testing.assert_array_equal(res.tasks[0].delays,
                                      _reference(one_cycle))
        np.testing.assert_array_equal(res.tasks[1].delays,
                                      _reference(one_corner))

    def test_warm_flags_track_program_reuse(self):
        fu = build_functional_unit("int_add", width=8)
        prog = _prog(fu, random_stream(60, operand_width=8, seed=5))
        with WorkerPool(1) as pool:
            first = pool.run_tasks({"j": prog}, [("j", _whole(prog))])
            again = pool.run_tasks({"j": prog}, [("j", _whole(prog))])
        assert [t.warm for t in first.tasks] == [False]
        assert [t.warm for t in again.tasks] == [True]

    def test_close_is_idempotent_and_reaps(self):
        pool = WorkerPool(2)
        assert pool.n_alive() == 2
        assert len(_pool_children()) == 2
        pool.close()
        assert pool.closed
        assert pool.n_alive() == 0
        pool.close()  # second close is a no-op
        with pytest.raises(RuntimeError, match="closed"):
            pool.run_tasks({}, [("j", (0, 1, 0, 1))])

    def test_unknown_job_key_rejected(self):
        with WorkerPool(1) as pool:
            with pytest.raises(KeyError, match="unknown job"):
                pool.run_tasks({}, [("nope", (0, 1, 0, 1))])

    def test_killed_worker_respawned_between_runs(self):
        fu = build_functional_unit("int_add", width=8)
        prog = _prog(fu, random_stream(60, operand_width=8, seed=6))
        with WorkerPool(2) as pool:
            pool.run_tasks({"j": prog}, [("j", _whole(prog))])
            os.kill(pool._workers[0].process.pid, signal.SIGKILL)
            deadline = time.monotonic() + 5.0
            while (pool._workers[0].process.is_alive()
                   and time.monotonic() < deadline):
                time.sleep(0.01)
            res = pool.run_tasks({"j": prog},
                                 [("j", s) for s in _halves(prog)])
            np.testing.assert_array_equal(_stitch(prog, res.tasks),
                                          _reference(prog))
            assert pool.n_alive() == 2  # slot was respawned

    def test_mid_task_crash_reissued_and_completes(self, monkeypatch,
                                                   tmp_path):
        crash = tmp_path / "crash-once"
        crash.write_text("boom")
        monkeypatch.setenv(CRASH_FILE_ENV, str(crash))
        fu = build_functional_unit("int_add", width=8)
        prog = _prog(fu, random_stream(120, operand_width=8, seed=7))
        with WorkerPool(2) as pool:  # workers inherit the env at fork
            res = pool.run_tasks({"j": prog},
                                 [("j", s) for s in _halves(prog)])
            np.testing.assert_array_equal(_stitch(prog, res.tasks),
                                          _reference(prog))
            assert pool.n_alive() == 2
        assert not crash.exists()  # exactly one worker consumed it

    def test_on_result_callback_sees_every_shard(self):
        # both return transports: "big" crosses the shm threshold (the
        # callback gets a live segment view), "small" returns pickled
        fu = build_functional_unit("int_add", width=8)
        big = _prog(fu, random_stream(9000, operand_width=8, seed=14))
        small = _prog(fu, random_stream(40, operand_width=8, seed=15))
        seen = {}

        def on_result(idx, tres, delays):
            seen[idx] = (tres.job_key, tres.shard,
                         np.array(delays, copy=True))

        with WorkerPool(2) as pool:
            tasks = ([("big", s) for s in _halves(big)]
                     + [("small", _whole(small))])
            pool.run_tasks({"big": big, "small": small}, tasks,
                           on_result=on_result)
        assert set(seen) == {0, 1, 2}
        refs = {"big": _reference(big), "small": _reference(small)}
        for idx, (key, shard, delays) in seen.items():
            assert (key, shard) == (tasks[idx][0], tuple(tasks[idx][1]))
            c0, c1, t0, t1 = shard
            np.testing.assert_array_equal(delays, refs[key][c0:c1, t0:t1])

    def test_on_result_exception_aborts_batch(self):
        fu = build_functional_unit("int_add", width=8)
        prog = _prog(fu, random_stream(40, operand_width=8, seed=17))

        def boom(idx, tres, delays):
            raise ValueError("callback boom")

        with WorkerPool(1) as pool:
            with pytest.raises(ValueError, match="callback boom"):
                pool.run_tasks({"j": prog}, [("j", _whole(prog))],
                               on_result=boom)

    def test_hung_worker_is_killed_and_task_reissued(self, monkeypatch,
                                                     tmp_path):
        """A worker wedged mid-task (hang fault) trips the deadline
        watchdog: the pool SIGKILLs it, respawns the slot, reissues the
        shard, and the stitched result is still bit-exact."""
        from repro.testing import faults

        monkeypatch.setenv(faults.PLAN_ENV, "pool.worker.task:hang:1")
        # one global firing: the reissued task must run clean
        monkeypatch.setenv(faults.STATE_ENV, str(tmp_path / "fstate"))
        monkeypatch.setenv(faults.HANG_ENV, "60")
        faults.reset()
        fu = build_functional_unit("int_add", width=8)
        prog = _prog(fu, random_stream(120, operand_width=8, seed=21))
        with WorkerPool(2, task_timeout_s=1.0) as pool:
            res = pool.run_tasks({"j": prog},
                                 [("j", s) for s in _halves(prog)])
            np.testing.assert_array_equal(_stitch(prog, res.tasks),
                                          _reference(prog))
            assert pool.watchdog_kills >= 1
            assert pool.n_alive() == 2
        faults.reset()

    def test_watchdog_disabled_by_default(self):
        pool = WorkerPool(1)
        try:
            assert pool.task_timeout_s == 0.0
        finally:
            pool.close()

    def test_negative_task_timeout_rejected(self):
        with pytest.raises(ValueError, match="task_timeout_s"):
            WorkerPool(1, task_timeout_s=-1.0)

    def test_repeatedly_killed_task_raises(self, monkeypatch, tmp_path):
        # enough crash tokens that every allowed dispatch of the task
        # kills its worker — the pool must give up with a RuntimeError
        # after MAX_REISSUES instead of looping forever
        crash = tmp_path / "crash-always"
        crash.write_text(str(MAX_REISSUES + 1))
        monkeypatch.setenv(CRASH_FILE_ENV, str(crash))
        fu = build_functional_unit("int_add", width=8)
        prog = _prog(fu, random_stream(40, operand_width=8, seed=8))
        with WorkerPool(1) as pool:
            with pytest.raises(RuntimeError, match="worker pool task"):
                pool.run_tasks({"j": prog}, [("j", _whole(prog))])
        assert not crash.exists()  # all tokens consumed


class TestPersistentRunner:
    def _trace(self, **kwargs):
        fu = build_functional_unit("int_add", width=8)
        stream = random_stream(300, operand_width=8, seed=9)
        runner = CampaignRunner(use_cache=False, **kwargs)
        with runner:
            return runner.run([CampaignJob(fu, stream, CONDS)])[0]

    def test_pool_matches_unsharded_and_legacy(self):
        ref = self._trace(n_workers=1)
        pooled = self._trace(n_workers=2, shard_cycles=64)
        legacy = self._trace(n_workers=2, shard_cycles=64,
                             persistent=False)
        np.testing.assert_array_equal(pooled.delays, ref.delays)
        np.testing.assert_array_equal(legacy.delays, ref.delays)

    def test_pool_no_shm_matches(self, monkeypatch):
        ref = self._trace(n_workers=1)
        monkeypatch.setenv("REPRO_POOL_NO_SHM", "1")
        pooled = self._trace(n_workers=2, shard_cycles=64)
        np.testing.assert_array_equal(pooled.delays, ref.delays)

    def test_threads_through_runner_bit_identical(self):
        ref = self._trace(n_workers=1)
        threaded = self._trace(n_workers=2, shard_cycles=64, threads=2)
        inline_threaded = self._trace(n_workers=1, threads=2)
        np.testing.assert_array_equal(threaded.delays, ref.delays)
        np.testing.assert_array_equal(inline_threaded.delays, ref.delays)

    def test_threads_rejected_without_capability(self):
        with pytest.raises(ValueError, match="supports_threads"):
            CampaignRunner(backend="event", threads=2)

    def test_event_backend_corner_shards_through_pool(self):
        fu = build_functional_unit("int_add", width=8)
        stream = random_stream(40, operand_width=8, seed=10)
        ref = CampaignRunner(backend="event", use_cache=False).run(
            [CampaignJob(fu, stream, CONDS)])[0]
        with CampaignRunner(backend="event", use_cache=False,
                            n_workers=2, shard_corners=1) as runner:
            pooled = runner.run([CampaignJob(fu, stream, CONDS)])[0]
            assert runner.stats.job_shards == {0: 2}
        np.testing.assert_array_equal(pooled.delays, ref.delays)

    def test_stats_shard_log_and_grids(self):
        fu = build_functional_unit("int_add", width=8)
        stream = random_stream(100, operand_width=8, seed=11)
        with CampaignRunner(use_cache=False, n_workers=2,
                            shard_cycles=50, shard_corners=1) as runner:
            runner.run([CampaignJob(fu, stream, CONDS)])
            stats = runner.stats
        assert stats.job_grids == {0: (2, 2)}
        assert len(stats.shard_log) == 4
        assert {s.shard for s in stats.shard_log} == {
            (0, 1, 0, 50), (0, 1, 50, 100),
            (1, 2, 0, 50), (1, 2, 50, 100)}
        assert all(s.worker in (0, 1) for s in stats.shard_log)
        assert all(s.warm in (True, False) for s in stats.shard_log)

    def test_runner_reuses_pool_across_runs(self):
        fu = build_functional_unit("int_add", width=8)
        stream = random_stream(200, operand_width=8, seed=12)
        with CampaignRunner(use_cache=False, n_workers=2,
                            shard_cycles=50) as runner:
            runner.run([CampaignJob(fu, stream, CONDS)])
            first_pool = runner._pool
            runner.run([CampaignJob(fu, stream, CONDS)])
            assert runner._pool is first_pool
            # second run reuses warm workers: every shard warm
            assert all(s.warm for s in runner.stats.shard_log)

    def test_external_pool_not_closed_by_runner(self):
        fu = build_functional_unit("int_add", width=8)
        stream = random_stream(100, operand_width=8, seed=13)
        with WorkerPool(2) as pool:
            with CampaignRunner(use_cache=False, n_workers=2,
                                shard_cycles=50, pool=pool) as runner:
                runner.run([CampaignJob(fu, stream, CONDS)])
            assert not pool.closed  # runner.close() left it alone
            assert pool.n_alive() == 2


class TestWorkspacePool:
    def test_workspace_owns_shares_and_reaps(self, tmp_path):
        with Workspace(tmp_path) as ws:
            pool = ws.pool(2)
            assert ws.pool(2) is pool  # shared across calls
            runner = ws.runner(shards=ShardSpec(workers=2))
            assert runner._pool is pool
            assert len(_pool_children()) == 2
        assert pool.closed
        assert _pool_children() == []

    def test_non_persistent_spec_skips_pool(self, tmp_path):
        with Workspace(tmp_path) as ws:
            ws.runner(shards=ShardSpec(workers=2, persistent=False))
            assert ws._pools == {}
