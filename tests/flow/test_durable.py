"""Tests for the durable persistence primitives (repro.flow.durable)."""

import json
import os
import subprocess
import sys
import time
from pathlib import Path

import pytest

import repro
from repro.flow.durable import (
    ManifestCorrupt,
    StoreLock,
    StoreLockTimeout,
    atomic_replace,
    payload_checksum,
    quarantine,
    read_envelope,
    write_envelope,
)

SRC = str(Path(next(iter(repro.__path__))).resolve().parent)


class TestAtomicReplace:
    def test_creates_and_replaces(self, tmp_path):
        path = tmp_path / "f.txt"
        atomic_replace(path, b"one")
        assert path.read_bytes() == b"one"
        atomic_replace(path, "two")  # str accepted, utf-8 encoded
        assert path.read_bytes() == b"two"

    def test_creates_parent_dirs(self, tmp_path):
        path = tmp_path / "a" / "b" / "f.txt"
        atomic_replace(path, b"deep")
        assert path.read_bytes() == b"deep"

    def test_no_temp_files_left_behind(self, tmp_path):
        path = tmp_path / "f.txt"
        for _ in range(3):
            atomic_replace(path, b"data")
        assert [p.name for p in tmp_path.iterdir()] == ["f.txt"]


class TestEnvelopes:
    def test_roundtrip_and_generation_increments(self, tmp_path):
        path = tmp_path / "m.json"
        payload = {"entries": {"k": 1}, "store_version": 1}
        assert write_envelope(path, payload) == 1
        assert read_envelope(path) == (payload, 1)
        assert write_envelope(path, {"entries": {}}) == 2
        _, generation = read_envelope(path)
        assert generation == 2

    def test_legacy_plain_manifest_reads_as_generation_zero(self, tmp_path):
        path = tmp_path / "m.json"
        path.write_text(json.dumps({"store_version": 1, "entries": {}}))
        payload, generation = read_envelope(path)
        assert generation == 0
        assert payload["store_version"] == 1
        # next write upgrades to an envelope at generation 1
        assert write_envelope(path, payload) == 1

    def test_missing_file_raises_file_not_found(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            read_envelope(tmp_path / "absent.json")

    def test_truncated_json_is_corrupt(self, tmp_path):
        path = tmp_path / "m.json"
        write_envelope(path, {"entries": {}})
        text = path.read_text()
        path.write_text(text[: len(text) // 2])
        with pytest.raises(ManifestCorrupt, match="unparsable JSON"):
            read_envelope(path)

    def test_bitflip_under_checksum_is_corrupt(self, tmp_path):
        path = tmp_path / "m.json"
        write_envelope(path, {"entries": {"k": {"fu": "int_add"}}})
        envelope = json.loads(path.read_text())
        envelope["payload"]["entries"]["k"]["fu"] = "int_mul"  # tamper
        path.write_text(json.dumps(envelope))
        with pytest.raises(ManifestCorrupt, match="checksum mismatch"):
            read_envelope(path)

    def test_unknown_envelope_version_is_corrupt(self, tmp_path):
        path = tmp_path / "m.json"
        path.write_text(json.dumps({"envelope_version": 999, "payload": {},
                                    "sha256": payload_checksum({}),
                                    "generation": 1}))
        with pytest.raises(ManifestCorrupt, match="envelope_version"):
            read_envelope(path)

    def test_non_object_payload_is_corrupt(self, tmp_path):
        path = tmp_path / "m.json"
        path.write_text(json.dumps({"envelope_version": 1,
                                    "payload": [1, 2]}))
        with pytest.raises(ManifestCorrupt, match="payload"):
            read_envelope(path)

    def test_write_resets_generation_after_corruption(self, tmp_path):
        path = tmp_path / "m.json"
        write_envelope(path, {"a": 1})
        write_envelope(path, {"a": 2})
        path.write_text("{garbage")
        assert write_envelope(path, {"a": 3}) == 1  # history unreadable


class TestQuarantine:
    def test_moves_file_aside(self, tmp_path):
        path = tmp_path / "m.json"
        path.write_text("bad")
        target = quarantine(path)
        assert not path.exists()
        assert target.name.startswith("m.json.corrupt-")
        assert target.read_text() == "bad"

    def test_vanished_file_returns_none(self, tmp_path):
        assert quarantine(tmp_path / "gone.json") is None

    def test_repeated_quarantines_get_distinct_names(self, tmp_path):
        path = tmp_path / "m.json"
        names = set()
        for i in range(3):
            path.write_text(f"bad{i}")
            names.add(quarantine(path).name)
        assert len(names) == 3
        assert len(list(tmp_path.glob("m.json.corrupt-*"))) == 3


HOLDER_SCRIPT = """
import sys, time
from pathlib import Path
from repro.flow.durable import StoreLock
lock_path, ready = sys.argv[1], sys.argv[2]
with StoreLock(lock_path, timeout=10.0):
    Path(ready).write_text("ok")
    time.sleep(30)
"""


class TestStoreLock:
    def test_acquire_release_roundtrip(self, tmp_path):
        lock = StoreLock(tmp_path / ".lock")
        with lock:
            assert (tmp_path / ".lock").exists()
        # released: a fresh instance acquires instantly
        with StoreLock(tmp_path / ".lock", timeout=0.1):
            pass

    def test_reentrant_within_process(self, tmp_path):
        path = tmp_path / ".lock"
        with StoreLock(path, timeout=1.0):
            with StoreLock(path, timeout=0.05):  # nested: no deadlock
                pass
        with StoreLock(path, timeout=0.1):  # fully released afterwards
            pass

    def test_same_instance_not_reacquirable(self, tmp_path):
        lock = StoreLock(tmp_path / ".lock")
        with lock:
            with pytest.raises(RuntimeError, match="not re-acquirable"):
                lock.acquire()

    def test_lock_file_records_holder(self, tmp_path):
        with StoreLock(tmp_path / ".lock"):
            text = (tmp_path / ".lock").read_text()
        assert f"pid={os.getpid()}" in text
        assert "since=" in text

    def test_timeout_names_holder_pid(self, tmp_path):
        pytest.importorskip("fcntl")
        lock_path = tmp_path / ".lock"
        ready = tmp_path / "ready"
        env = dict(os.environ, PYTHONPATH=SRC)
        child = subprocess.Popen(
            [sys.executable, "-c", HOLDER_SCRIPT, str(lock_path),
             str(ready)], env=env)
        try:
            deadline = time.monotonic() + 10.0
            while not ready.exists():
                assert time.monotonic() < deadline, "holder never started"
                assert child.poll() is None, "holder died early"
                time.sleep(0.01)
            with pytest.raises(StoreLockTimeout,
                               match=rf"held by pid={child.pid}\b"):
                StoreLock(lock_path, timeout=0.2).acquire()
        finally:
            child.kill()
            child.wait()
