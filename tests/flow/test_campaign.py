"""Tests for the campaign runner and the versioned trace store."""

import json

import numpy as np
import pytest

from repro.circuits import build_functional_unit
from repro.flow import (
    MIN_SHARD_CYCLES,
    TARGET_SHARD_SECONDS,
    CampaignJob,
    CampaignRunner,
    TraceStore,
    library_fingerprint,
    plan_campaign,
    plan_cycle_shards,
    plan_shards,
    read_envelope,
    trace_key,
)
from repro.sim import get_backend
from repro.timing import DEFAULT_LIBRARY, OperatingCondition
from repro.timing.cells import CellLibrary, CellTiming
from repro.workloads import random_stream

CONDS = [OperatingCondition(0.81, 0.0), OperatingCondition(1.00, 100.0)]


def _slow_library() -> CellLibrary:
    """A library with every intrinsic delay doubled."""
    timings = {
        gtype: CellTiming(t.intrinsic * 2.0, t.load, t.vth_offset)
        for gtype, t in DEFAULT_LIBRARY.timings.items()
    }
    return CellLibrary(timings=timings)


class TestTraceKey:
    def test_library_changes_key(self):
        # regression: the old cache hash omitted the CellLibrary, so a
        # non-default library silently reused default-library delays
        fu = build_functional_unit("int_add", width=8)
        stream = random_stream(20, operand_width=8, seed=0)
        k_default = trace_key(fu, stream, CONDS, DEFAULT_LIBRARY)
        k_slow = trace_key(fu, stream, CONDS, _slow_library())
        assert k_default != k_slow

    def test_delay_model_changes_key(self):
        fu = build_functional_unit("int_add", width=8)
        stream = random_stream(20, operand_width=8, seed=0)
        assert (trace_key(fu, stream, CONDS, DEFAULT_LIBRARY, "dta")
                != trace_key(fu, stream, CONDS, DEFAULT_LIBRARY, "glitch"))

    def test_fingerprint_stable_and_sensitive(self):
        assert (library_fingerprint(DEFAULT_LIBRARY)
                == library_fingerprint(CellLibrary()))
        assert (library_fingerprint(DEFAULT_LIBRARY)
                != library_fingerprint(_slow_library()))


class TestLibraryCacheRegression:
    def test_non_default_library_not_served_stale(self, tmp_path):
        fu = build_functional_unit("int_add", width=8)
        stream = random_stream(30, operand_width=8, seed=1)
        runner = CampaignRunner(store=tmp_path)
        base = runner.run([CampaignJob(fu, stream, CONDS)])[0]
        slow = runner.run([CampaignJob(fu, stream, CONDS,
                                       library=_slow_library())])[0]
        # doubled intrinsics must show up: strictly slower worst delay
        assert slow.delays.max() > base.delays.max()
        # and both entries coexist in the store
        assert len(TraceStore(tmp_path).entries()) == 2


class TestTraceStore:
    def test_put_get_roundtrip(self, tmp_path):
        fu = build_functional_unit("int_add", width=8)
        stream = random_stream(25, operand_width=8, seed=2)
        store = TraceStore(tmp_path)
        key = trace_key(fu, stream, CONDS, DEFAULT_LIBRARY)
        assert store.get(key, CONDS) is None
        trace = CampaignRunner(use_cache=False).run(
            [CampaignJob(fu, stream, CONDS)])[0]
        store.put(key, trace, fu_name=fu.name, stream_name=stream.name,
                  library=DEFAULT_LIBRARY, backend="bitpacked")
        assert key in store
        loaded = store.get(key, CONDS)
        np.testing.assert_array_equal(loaded.delays, trace.delays)

    def test_manifest_records_metadata(self, tmp_path):
        fu = build_functional_unit("int_add", width=8)
        stream = random_stream(25, operand_width=8, seed=3)
        CampaignRunner(store=tmp_path).run(
            [CampaignJob(fu, stream, CONDS)])
        envelope = json.loads((tmp_path / "manifest.json").read_text())
        assert envelope["envelope_version"] == 1
        assert envelope["generation"] >= 1
        manifest, generation = read_envelope(tmp_path / "manifest.json")
        assert generation == envelope["generation"]
        (entry,) = manifest["entries"].values()
        assert entry["fu"] == "int_add"
        assert entry["n_conditions"] == 2
        assert entry["n_cycles"] == 25
        assert entry["delay_model"] == "dta"
        assert entry["library"] == library_fingerprint(DEFAULT_LIBRARY)

    def test_incompatible_store_version_ignored(self, tmp_path):
        (tmp_path / "manifest.json").write_text(
            json.dumps({"store_version": 999, "entries": {"k": {}}}))
        assert TraceStore(tmp_path).entries() == {}

    def test_lost_manifest_entry_recovers_via_blob(self, tmp_path):
        # key-embedding blob names make the store self-healing when a
        # concurrent writer clobbers the manifest
        fu = build_functional_unit("int_add", width=8)
        stream = random_stream(25, operand_width=8, seed=12)
        first = CampaignRunner(store=tmp_path).run(
            [CampaignJob(fu, stream, CONDS)])[0]
        (tmp_path / "manifest.json").unlink()
        key = trace_key(fu, stream, CONDS, DEFAULT_LIBRARY)
        recovered = TraceStore(tmp_path).get(key, CONDS)
        np.testing.assert_array_equal(recovered.delays, first.delays)

    def test_missing_blob_is_a_miss(self, tmp_path):
        fu = build_functional_unit("int_add", width=8)
        stream = random_stream(25, operand_width=8, seed=4)
        CampaignRunner(store=tmp_path).run(
            [CampaignJob(fu, stream, CONDS)])
        for blob in tmp_path.glob("dta_*.npz"):
            blob.unlink()
        key = trace_key(fu, stream, CONDS, DEFAULT_LIBRARY)
        assert TraceStore(tmp_path).get(key, CONDS) is None


class TestCampaignRunner:
    def _jobs(self, n_cycles=40):
        jobs = []
        for name, width, seed in (("int_add", 8, 5), ("int_add", 8, 6),
                                  ("int_mul", 4, 7)):
            fu = build_functional_unit(name, width=width)
            stream = random_stream(n_cycles, operand_width=width, seed=seed)
            stream.name = f"par_{name}_{seed}"
            jobs.append(CampaignJob(fu, stream, CONDS))
        return jobs

    def test_parallel_matches_serial(self, tmp_path):
        serial = CampaignRunner(n_workers=1,
                                store=tmp_path / "serial").run(self._jobs())
        parallel = CampaignRunner(n_workers=2,
                                  store=tmp_path / "par").run(self._jobs())
        assert len(serial) == len(parallel) == 3
        for s, p in zip(serial, parallel):
            np.testing.assert_array_equal(s.delays, p.delays)

    def test_cache_hits_reported(self, tmp_path):
        runner = CampaignRunner(store=tmp_path)
        jobs = self._jobs()
        runner.run(jobs)
        assert (runner.stats.hits, runner.stats.misses) == (0, 3)
        runner.run(jobs)
        assert (runner.stats.hits, runner.stats.misses) == (3, 0)

    def test_results_aligned_with_jobs(self, tmp_path):
        jobs = self._jobs()
        runner = CampaignRunner(store=tmp_path)
        first = runner.run(jobs)
        # a second run mixing cached and fresh jobs keeps order
        fu = build_functional_unit("int_add", width=8)
        fresh_stream = random_stream(40, operand_width=8, seed=99)
        fresh_stream.name = "par_fresh"
        mixed = [jobs[1], CampaignJob(fu, fresh_stream, CONDS), jobs[0]]
        out = runner.run(mixed)
        np.testing.assert_array_equal(out[0].delays, first[1].delays)
        np.testing.assert_array_equal(out[2].delays, first[0].delays)

    def test_backends_share_dta_cache_but_not_event(self, tmp_path):
        fu = build_functional_unit("int_add", width=8)
        stream = random_stream(20, operand_width=8, seed=8)
        job = [CampaignJob(fu, stream, CONDS[:1])]
        store = TraceStore(tmp_path)
        CampaignRunner(backend="levelized", store=store).run(job)
        bp = CampaignRunner(backend="bitpacked", store=store)
        bp.run(job)
        assert bp.stats.hits == 1  # dta engines interchangeable
        ev = CampaignRunner(backend="event", store=store)
        ev.run(job)
        assert ev.stats.misses == 1  # glitch model never shares

    def test_no_cache_runner_writes_nothing(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        runner = CampaignRunner(use_cache=False)
        runner.run(self._jobs())
        assert list(tmp_path.iterdir()) == []

    def test_invalid_worker_count(self):
        with pytest.raises(ValueError):
            CampaignRunner(n_workers=0)

    def test_invalid_shard_cycles(self):
        with pytest.raises(ValueError):
            CampaignRunner(shard_cycles=0)


class TestShardPlanning:
    def test_explicit_sizes_cover_in_order(self):
        for n_cycles, size in ((330, 1), (330, 37), (330, 330),
                               (330, 1000), (128, 64)):
            bounds = plan_cycle_shards(n_cycles, size)
            assert bounds[0][0] == 0 and bounds[-1][1] == n_cycles
            for (a, b), (c, d) in zip(bounds, bounds[1:]):
                assert b == c and a < b
            assert all(b - a == size for a, b in bounds[:-1])

    def test_auto_never_splits_single_worker(self):
        assert plan_cycle_shards(10 ** 6, None, 1) == [(0, 10 ** 6)]

    def test_auto_respects_minimum(self):
        bounds = plan_cycle_shards(2 * MIN_SHARD_CYCLES, None, 64)
        assert all(b - a >= MIN_SHARD_CYCLES for a, b in bounds[:-1])
        assert len(bounds) >= 2

    def test_auto_small_job_untouched(self):
        assert plan_cycle_shards(MIN_SHARD_CYCLES, None, 8) == [
            (0, MIN_SHARD_CYCLES)]

    def test_auto_targets_two_shards_per_worker(self):
        bounds = plan_cycle_shards(64_000, None, 4)
        assert len(bounds) == 8

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            plan_cycle_shards(0, None)
        with pytest.raises(ValueError):
            plan_cycle_shards(100, 0)


class TestShardGridPlanning:
    """2-D corner × cycle planning: full coverage, disjointness, axis
    preferences, capability gates, and history-driven sizing."""

    def _assert_covers(self, shards, n_corners, n_cycles):
        seen = np.zeros((n_corners, n_cycles), dtype=int)
        for c0, c1, t0, t1 in shards:
            assert 0 <= c0 < c1 <= n_corners
            assert 0 <= t0 < t1 <= n_cycles
            seen[c0:c1, t0:t1] += 1
        assert (seen == 1).all()  # exact partition, no overlap

    def test_explicit_grid_partitions(self):
        for n_corners, n_cycles, sk, sc in ((9, 330, 2, 37), (1, 1, 1, 1),
                                            (3, 100, 5, 1000),
                                            (100, 64, 100, 64)):
            shards = plan_shards(n_cycles, n_corners, shard_corners=sk,
                                 shard_cycles=sc)
            self._assert_covers(shards, n_corners, n_cycles)

    def test_one_cycle_stream_splits_corners_only(self):
        shards = plan_shards(1, 9, n_workers=4)
        self._assert_covers(shards, 9, 1)
        assert len(shards) > 1  # wide grid still feeds the pool
        assert all(t0 == 0 and t1 == 1 for _, _, t0, t1 in shards)

    def test_single_corner_single_worker_never_splits(self):
        assert plan_shards(10 ** 6, 1) == [(0, 1, 0, 10 ** 6)]
        assert plan_shards(1, 1, n_workers=64) == [(0, 1, 0, 1)]

    def test_shard_larger_than_job_is_one_shard(self):
        assert plan_shards(100, 2, shard_cycles=1000,
                           shard_corners=50) == [(0, 2, 0, 100)]

    def test_cycle_wrapper_matches_2d_plan(self):
        for n_cycles, size, workers in ((330, 37, 1), (64_000, None, 4),
                                        (1, 1, 2)):
            flat = plan_cycle_shards(n_cycles, size, workers)
            grid = plan_shards(n_cycles, 1, shard_cycles=size,
                               n_workers=workers)
            assert flat == [(t0, t1) for _, _, t0, t1 in grid]

    def test_capability_gates_pin_axes(self):
        # a backend without cycle sharding must never see cycle cuts,
        # even when the caller asks for them explicitly
        shards = plan_shards(10_000, 9, shard_cycles=100, n_workers=4,
                             cycle_shardable=False)
        assert all(t0 == 0 and t1 == 10_000 for _, _, t0, t1 in shards)
        shards = plan_shards(10_000, 9, shard_corners=2, n_workers=4,
                             corner_shardable=False)
        assert all(c0 == 0 and c1 == 9 for c0, c1, _, _ in shards)

    def test_history_targets_equal_worker_runtimes(self):
        # 9 corners x 60k cycles at 100k corner-cycles/s ~ 5.4s of work:
        # with 4 workers the count lands on a multiple of 4
        shards = plan_shards(60_000, 9, n_workers=4,
                             corner_cycles_per_s=100_000.0)
        self._assert_covers(shards, 9, 60_000)
        assert len(shards) % 4 == 0
        sizes = [(c1 - c0) * (t1 - t0) for c0, c1, t0, t1 in shards]
        assert max(sizes) - min(sizes) <= max(sizes) * 0.5  # near-equal

    def test_history_small_jobs_never_split(self):
        est_fast = 10 ** 9  # corner-cycles/s -> microsecond jobs
        assert plan_shards(5000, 9, n_workers=8,
                           corner_cycles_per_s=est_fast) == [(0, 9, 0, 5000)]

    def test_history_caps_shards_per_worker(self):
        shards = plan_shards(10 ** 6, 1, n_workers=2,
                             corner_cycles_per_s=10.0)  # "weeks" of work
        assert len(shards) <= 4 * 2

    def test_history_cap_holds_on_2d_grids(self):
        # regression: corner_splits used to be re-derived with ceil
        # division after the cap, so a short multi-corner stream could
        # overshoot the shards-per-worker ceiling
        for n_workers in (2, 4):
            shards = plan_shards(1536, 9, n_workers=n_workers,
                                 corner_cycles_per_s=100.0)
            self._assert_covers(shards, 9, 1536)
            assert len(shards) <= 4 * n_workers, (n_workers, len(shards))

    def test_nonsense_history_falls_back_to_static(self):
        static = plan_shards(64_000, 1, n_workers=4)
        for bad in (0.0, -5.0, float("inf"), float("nan")):
            assert plan_shards(64_000, 1, n_workers=4,
                               corner_cycles_per_s=bad) == static

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            plan_shards(0, 1)
        with pytest.raises(ValueError):
            plan_shards(10, 0)
        with pytest.raises(ValueError):
            plan_shards(10, 1, shard_cycles=0)
        with pytest.raises(ValueError):
            plan_shards(10, 1, shard_corners=0)


class TestCampaignPlanning:
    """Cross-job packed planning (:func:`plan_campaign`)."""

    @staticmethod
    def _covers(shards, n_corners, n_cycles):
        seen = np.zeros((n_corners, n_cycles), dtype=int)
        for c0, c1, t0, t1 in shards:
            seen[c0:c1, t0:t1] += 1
        assert (seen == 1).all()

    def test_single_worker_never_splits(self):
        plans = plan_campaign([(4000, 3), (2000, 2)], 1,
                              corner_cycles_per_s=[1e5, 1e5])
        assert plans == [[(0, 3, 0, 4000)], [(0, 2, 0, 2000)]]

    def test_small_batch_uses_job_level_parallelism(self):
        # total estimate under 2 * TARGET_SHARD_SECONDS: the jobs
        # themselves are the parallelism, nothing splits
        plans = plan_campaign([(4000, 3), (4000, 3)], 4,
                              corner_cycles_per_s=[1e7, 1e7])
        assert all(len(p) == 1 for p in plans)

    def test_budget_lands_on_long_jobs(self):
        # an 8:1 estimate ratio: the long job absorbs the splits, the
        # short one stays whole
        plans = plan_campaign([(8000, 3), (1000, 3)], 2,
                              corner_cycles_per_s=[1e3, 1e3])
        assert len(plans[0]) > len(plans[1])
        assert len(plans[1]) == 1
        self._covers(plans[0], 3, 8000)
        self._covers(plans[1], 3, 1000)

    def test_total_budget_capped_per_worker(self):
        plans = plan_campaign([(10 ** 6, 1), (10 ** 6, 1)], 2,
                              corner_cycles_per_s=[10.0, 10.0])
        assert sum(len(p) for p in plans) <= 4 * 2

    def test_any_cold_job_falls_back_to_per_job_plans(self):
        grids = [(60_000, 3), (60_000, 3)]
        packed = plan_campaign(grids, 4,
                               corner_cycles_per_s=[None, 100_000.0])
        per_job = [plan_shards(t, c, n_workers=4, corner_cycles_per_s=v)
                   for (t, c), v in zip(grids, [None, 100_000.0])]
        assert packed == per_job

    def test_capability_gates_pin_axes(self):
        plans = plan_campaign([(20_000, 4)], 4,
                              corner_cycles_per_s=[100.0],
                              cycle_shardable=False)
        assert all(t0 == 0 and t1 == 20_000 for _, _, t0, t1 in plans[0])
        plans = plan_campaign([(20_000, 4)], 4,
                              corner_cycles_per_s=[100.0],
                              corner_shardable=False)
        assert all(c0 == 0 and c1 == 4 for c0, c1, _, _ in plans[0])

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            plan_campaign([(0, 1)], 2, corner_cycles_per_s=[1.0])
        with pytest.raises(ValueError):
            plan_campaign([(10, 0)], 2, corner_cycles_per_s=[1.0])
        with pytest.raises(ValueError):
            plan_campaign([(10, 1)], 0, corner_cycles_per_s=[1.0])
        with pytest.raises(ValueError):
            plan_campaign([(10, 1)], 2, corner_cycles_per_s=[])


class TestCrossJobPacking:
    """End-to-end packed campaigns through the runner."""

    def _jobs(self):
        fu = build_functional_unit("int_add", width=8)
        return [CampaignJob(fu, random_stream(n, operand_width=8, seed=s),
                            CONDS)
                for n, s in ((300, 20), (300, 21), (600, 22))]

    def test_packed_rerun_is_byte_identical(self, tmp_path):
        jobs = self._jobs()
        ref = [t.delays.copy() for t in
               CampaignRunner(store=tmp_path / "ref").run(jobs)]
        with CampaignRunner(store=tmp_path / "s", n_workers=2) as runner:
            runner.run(jobs)  # cold run primes the throughput history
            assert not runner.stats.packed
            store = runner.store
            store.gc(max_bytes=0)  # drop traces, keep history
            traces = runner.run(jobs)
            assert runner.stats.packed
            assert runner.stats.misses == 3
            for a, t in zip(ref, traces):
                np.testing.assert_array_equal(a, t.delays)

    def test_pack_jobs_false_plans_per_job(self, tmp_path):
        jobs = self._jobs()
        with CampaignRunner(store=tmp_path, n_workers=2,
                            pack_jobs=False) as runner:
            runner.run(jobs)
            runner.store.gc(max_bytes=0)
            runner.run(jobs)
            assert not runner.stats.packed

    def test_explicit_pitch_disables_packing(self, tmp_path):
        jobs = self._jobs()
        with CampaignRunner(store=tmp_path, n_workers=2) as warm:
            warm.run(jobs)
        with CampaignRunner(store=tmp_path, n_workers=2,
                            shard_cycles=100) as runner:
            runner.store.gc(max_bytes=0)
            runner.run(jobs)
            assert not runner.stats.packed


class TestRunnerChunking:
    def test_chunk_cycles_validated(self):
        with pytest.raises(ValueError):
            CampaignRunner(chunk_cycles=0)
        # the event engine has no chunked working set; asking for one
        # must fail at construction, not silently no-op per shard
        with pytest.raises(ValueError, match="chunk"):
            CampaignRunner(backend="event", chunk_cycles=64)

    def test_chunk_cycles_bit_identical(self):
        fu = build_functional_unit("int_add", width=8)
        stream = random_stream(50, operand_width=8, seed=31)
        job = CampaignJob(fu, stream, CONDS)
        base = CampaignRunner(use_cache=False).run([job])[0]
        chunked = CampaignRunner(use_cache=False,
                                 chunk_cycles=13).run([job])[0]
        assert chunked.delays.tobytes() == base.delays.tobytes()


class TestAdaptiveThroughputHistory:
    def _run_once(self, tmp_path, seed=55):
        fu = build_functional_unit("int_add", width=8)
        stream = random_stream(60, operand_width=8, seed=seed)
        stream.name = f"hist_{seed}"
        runner = CampaignRunner(store=tmp_path)
        runner.run([CampaignJob(fu, stream, CONDS)])
        return runner

    def test_campaign_records_throughput(self, tmp_path):
        self._run_once(tmp_path)
        store = TraceStore(tmp_path)
        cps = store.get_throughput("int_add", "compiled", len(CONDS))
        assert cps is not None and cps > 0
        (entry,) = store.throughput_history().values()
        assert entry["samples"] == 1

    def test_ewma_update_and_samples(self, tmp_path):
        store = TraceStore(tmp_path)
        store.record_throughput("fu", "compiled", 9, 100.0)
        store.record_throughput("fu", "compiled", 9, 200.0, alpha=0.5)
        assert store.get_throughput("fu", "compiled", 9) == \
            pytest.approx(150.0)
        key = TraceStore._throughput_key("fu", "compiled", 9)
        assert store.throughput_history()[key]["samples"] == 2

    def test_bogus_observations_ignored(self, tmp_path):
        store = TraceStore(tmp_path)
        for bad in (0.0, -1.0, float("nan"), float("inf"), "fast"):
            store.record_throughput("fu", "compiled", 9, bad)
        assert store.get_throughput("fu", "compiled", 9) is None

    def test_missing_history_is_none(self, tmp_path):
        assert TraceStore(tmp_path).get_throughput("fu", "x", 1) is None

    def test_corrupt_history_never_crashes_a_campaign(self, tmp_path):
        # poison the section with every shape of garbage; the planner
        # must fall back to the static heuristic and the run must
        # produce correct delays
        runner = self._run_once(tmp_path, seed=56)
        first = runner.run([self._job_for(56)])[0]
        store = TraceStore(tmp_path)
        manifest = store._read_manifest()
        key = TraceStore._throughput_key("int_add", "compiled", len(CONDS))
        for poison in ("garbage", {"corner_cycles_per_s": "NaN?"},
                       {"corner_cycles_per_s": [1, 2]}, 17,
                       {"samples": "many"}, None):
            manifest["throughput"] = {key: poison}
            store._write_manifest(manifest)
            assert store.get_throughput("int_add", "compiled",
                                        len(CONDS)) is None
            fresh = CampaignRunner(store=tmp_path, n_workers=2)
            got = fresh.run([self._job_for(57)])[0]
            ref = CampaignRunner(use_cache=False).run(
                [self._job_for(57)])[0]
            assert got.delays.tobytes() == ref.delays.tobytes()
        # a whole-manifest corruption degrades the same way
        (tmp_path / "manifest.json").write_text("{not json")
        assert store.get_throughput("int_add", "compiled",
                                    len(CONDS)) is None

    def _job_for(self, seed):
        fu = build_functional_unit("int_add", width=8)
        stream = random_stream(60, operand_width=8, seed=seed)
        stream.name = f"hist_{seed}"
        return CampaignJob(fu, stream, CONDS)

    def test_clear_throughput(self, tmp_path):
        store = TraceStore(tmp_path)
        store.record_throughput("fu", "compiled", 9, 100.0)
        assert store.clear_throughput() == 1
        assert store.get_throughput("fu", "compiled", 9) is None
        assert store.clear_throughput() == 0

    def test_gc_preserves_history(self, tmp_path):
        runner = self._run_once(tmp_path, seed=58)
        store = TraceStore(tmp_path)
        assert store.throughput_history()
        store.gc(max_bytes=0)  # evict every trace blob
        assert store.entries() == {}
        assert store.get_throughput("int_add", "compiled",
                                    len(CONDS)) is not None

    def test_no_cache_runner_keeps_no_history(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        fu = build_functional_unit("int_add", width=8)
        stream = random_stream(40, operand_width=8, seed=59)
        stream.name = "hist_nocache"
        CampaignRunner(use_cache=False).run(
            [CampaignJob(fu, stream, CONDS)])
        assert list(tmp_path.iterdir()) == []


class TestCycleSharding:
    """The delay matrices (and collected outputs) must be bit-identical
    for every worker count and shard size, including shards that are
    not multiples of the engines' 64-cycle packing words and streams
    whose internal chunk boundaries interleave with shard boundaries.
    """

    N_CYCLES = 330  # not a multiple of 64: ragged words everywhere

    def _job(self):
        fu = build_functional_unit("int_add", width=8)
        stream = random_stream(self.N_CYCLES, operand_width=8, seed=77)
        stream.name = "shard_parity"
        return CampaignJob(fu, stream, CONDS)

    @pytest.fixture(scope="class")
    def reference(self):
        return CampaignRunner(use_cache=False).run([self._job()])[0]

    @pytest.mark.parametrize("n_workers", [1, 2, 4])
    @pytest.mark.parametrize("shard_cycles", [1, 37, N_CYCLES, None])
    def test_byte_identical_across_configs(self, reference, n_workers,
                                           shard_cycles):
        runner = CampaignRunner(use_cache=False, n_workers=n_workers,
                                shard_cycles=shard_cycles)
        trace = runner.run([self._job()])[0]
        assert trace.delays.tobytes() == reference.delays.tobytes()
        assert trace.delays.shape == reference.delays.shape
        expected = len(plan_shards(self.N_CYCLES, len(CONDS),
                                   shard_cycles=shard_cycles,
                                   n_workers=n_workers))
        assert runner.stats.job_shards == {0: expected}

    @pytest.mark.parametrize("shard_corners", [1, 2, None])
    @pytest.mark.parametrize("shard_cycles", [37, None])
    def test_corner_grid_stitching_byte_identical(self, reference,
                                                  shard_corners,
                                                  shard_cycles):
        runner = CampaignRunner(use_cache=False, n_workers=2,
                                shard_cycles=shard_cycles,
                                shard_corners=shard_corners)
        trace = runner.run([self._job()])[0]
        assert trace.delays.tobytes() == reference.delays.tobytes()
        expected = len(plan_shards(self.N_CYCLES, len(CONDS),
                                   shard_cycles=shard_cycles,
                                   shard_corners=shard_corners,
                                   n_workers=2))
        assert runner.stats.job_shards == {0: expected}
        if shard_corners == 1:
            assert runner.stats.job_shards[0] >= 2  # split per corner

    def test_shard_chunk_boundary_interaction(self):
        # stitch shards that were themselves chunked internally at 64
        # cycles: shard size 37 guarantees every chunk/shard phase
        fu = build_functional_unit("int_add", width=8)
        stream = random_stream(self.N_CYCLES, operand_width=8, seed=78)
        inputs = stream.bit_matrix(fu)
        dm = DEFAULT_LIBRARY.delay_matrix(fu.netlist, CONDS)
        backend = get_backend("compiled")
        whole = backend.run_delays(fu.netlist, inputs, dm,
                                   collect_outputs=True)
        for shard in (1, 37, 64, self.N_CYCLES):
            parts = [backend.run_delays(fu.netlist,
                                        inputs[start:stop + 1], dm,
                                        collect_outputs=True)
                     for start, stop in plan_cycle_shards(
                         self.N_CYCLES, shard)]
            delays = np.concatenate([p.delays for p in parts], axis=1)
            outputs = np.concatenate([p.outputs for p in parts], axis=0)
            assert delays.tobytes() == whole.delays.tobytes(), shard
            np.testing.assert_array_equal(outputs, whole.outputs,
                                          err_msg=str(shard))

    def test_event_backend_never_cycle_sharded(self):
        fu = build_functional_unit("int_add", width=4)
        stream = random_stream(40, operand_width=4, seed=79)
        stream.name = "shard_event"
        runner = CampaignRunner(backend="event", use_cache=False,
                                n_workers=2, shard_cycles=10)
        runner.run([CampaignJob(fu, stream, CONDS[:1])])
        assert runner.stats.job_shards == {0: 1}

    def test_event_backend_corner_shards_bit_identically(self):
        # the event engine loops corner by corner, so corner rows are
        # independent and the 2-D planner may still split them
        fu = build_functional_unit("int_add", width=4)
        stream = random_stream(30, operand_width=4, seed=83)
        stream.name = "shard_event_corners"
        job = CampaignJob(fu, stream, CONDS)
        ref = CampaignRunner(backend="event", use_cache=False).run([job])[0]
        runner = CampaignRunner(backend="event", use_cache=False,
                                n_workers=2, shard_corners=1)
        got = runner.run([job])[0]
        assert got.delays.tobytes() == ref.delays.tobytes()
        assert runner.stats.job_shards == {0: len(CONDS)}

    def test_stats_record_times_and_shards(self, tmp_path):
        fu = build_functional_unit("int_add", width=8)
        streams = []
        for seed in (80, 81):
            s = random_stream(60, operand_width=8, seed=seed)
            s.name = f"shard_stats_{seed}"
            streams.append(s)
        runner = CampaignRunner(store=tmp_path, shard_cycles=25)
        runner.run([CampaignJob(fu, s, CONDS) for s in streams])
        stats = runner.stats
        assert stats.misses == 2
        assert stats.job_shards == {0: 3, 1: 3}
        assert stats.total_shards == 6
        assert set(stats.job_seconds) == {0, 1}
        assert all(t >= 0 for t in stats.job_seconds.values())
        assert stats.sim_seconds == pytest.approx(
            sum(stats.job_seconds.values()))
        assert stats.wall_seconds > 0
        # second run: all hits, no shard/timing entries
        runner.run([CampaignJob(fu, s, CONDS) for s in streams])
        assert runner.stats.hits == 2
        assert runner.stats.job_shards == {}
        assert runner.stats.sim_seconds == 0.0

    def test_sharded_results_cache_and_reload(self, tmp_path):
        fu = build_functional_unit("int_add", width=8)
        stream = random_stream(90, operand_width=8, seed=82)
        stream.name = "shard_cache"
        job = CampaignJob(fu, stream, CONDS)
        sharded = CampaignRunner(store=tmp_path, shard_cycles=40)
        first = sharded.run([job])[0]
        unsharded = CampaignRunner(store=tmp_path)
        second = unsharded.run([job])[0]
        assert unsharded.stats.hits == 1
        assert second.delays.tobytes() == first.delays.tobytes()


class TestTraceStoreGC:
    def _populate(self, tmp_path, seeds=(20, 21, 22)):
        fu = build_functional_unit("int_add", width=8)
        runner = CampaignRunner(store=tmp_path)
        for seed in seeds:
            stream = random_stream(30, operand_width=8, seed=seed)
            stream.name = f"gc_{seed}"
            runner.run([CampaignJob(fu, stream, CONDS)])
        return TraceStore(tmp_path)

    def test_gc_removes_orphan_blobs(self, tmp_path):
        store = self._populate(tmp_path)
        orphan = tmp_path / "dta_int_add_stray_deadbeef.npz"
        np.savez_compressed(orphan, delays=np.zeros((1, 2)))
        report = store.gc()
        assert orphan.name in report.removed_blobs
        assert not orphan.exists()
        assert len(store.entries()) == 3  # live entries untouched

    def test_gc_drops_stale_manifest_entries(self, tmp_path):
        store = self._populate(tmp_path)
        key, entry = next(iter(store.entries().items()))
        (tmp_path / entry["file"]).unlink()
        report = store.gc()
        assert key in report.dropped_entries
        assert key not in store.entries()

    def test_gc_size_budget_evicts_oldest_first(self, tmp_path):
        store = self._populate(tmp_path)
        entries = store.entries()
        # stamp distinct ages so eviction order is deterministic
        manifest = store._read_manifest()
        for i, key in enumerate(sorted(entries)):
            manifest["entries"][key]["created"] = f"2026-01-0{i + 1}T00:00:00"
        store._write_manifest(manifest)
        sizes = {key: (tmp_path / e["file"]).stat().st_size
                 for key, e in entries.items()}
        ordered = sorted(entries, key=lambda k: store.entries()[k]["created"])
        budget = sizes[ordered[-1]]  # room for exactly the newest blob
        report = store.gc(max_bytes=budget)
        remaining = store.entries()
        assert list(remaining) == [ordered[-1]]
        assert report.kept_bytes <= budget
        # evicted blobs really left the disk
        assert len(list(tmp_path.glob("dta_*.npz"))) == 1

    def test_gc_zero_budget_empties_store(self, tmp_path):
        store = self._populate(tmp_path)
        store.gc(max_bytes=0)
        assert store.entries() == {}
        assert list(tmp_path.glob("dta_*.npz")) == []

    def test_gc_dry_run_touches_nothing(self, tmp_path):
        store = self._populate(tmp_path)
        before = set(p.name for p in tmp_path.glob("dta_*.npz"))
        report = store.gc(max_bytes=0, dry_run=True)
        assert len(report.removed_blobs) == 3
        assert set(p.name for p in tmp_path.glob("dta_*.npz")) == before
        assert len(store.entries()) == 3

    def test_gc_negative_budget_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            TraceStore(tmp_path).gc(max_bytes=-1)

    def test_gc_on_missing_store_is_noop(self, tmp_path):
        report = TraceStore(tmp_path / "nope").gc()
        assert report.removed_blobs == []
        assert report.dropped_entries == []
