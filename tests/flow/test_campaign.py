"""Tests for the campaign runner and the versioned trace store."""

import json

import numpy as np
import pytest

from repro.circuits import build_functional_unit
from repro.flow import (
    MIN_SHARD_CYCLES,
    CampaignJob,
    CampaignRunner,
    TraceStore,
    library_fingerprint,
    plan_cycle_shards,
    trace_key,
)
from repro.sim import get_backend
from repro.timing import DEFAULT_LIBRARY, OperatingCondition
from repro.timing.cells import CellLibrary, CellTiming
from repro.workloads import random_stream

CONDS = [OperatingCondition(0.81, 0.0), OperatingCondition(1.00, 100.0)]


def _slow_library() -> CellLibrary:
    """A library with every intrinsic delay doubled."""
    timings = {
        gtype: CellTiming(t.intrinsic * 2.0, t.load, t.vth_offset)
        for gtype, t in DEFAULT_LIBRARY.timings.items()
    }
    return CellLibrary(timings=timings)


class TestTraceKey:
    def test_library_changes_key(self):
        # regression: the old cache hash omitted the CellLibrary, so a
        # non-default library silently reused default-library delays
        fu = build_functional_unit("int_add", width=8)
        stream = random_stream(20, operand_width=8, seed=0)
        k_default = trace_key(fu, stream, CONDS, DEFAULT_LIBRARY)
        k_slow = trace_key(fu, stream, CONDS, _slow_library())
        assert k_default != k_slow

    def test_delay_model_changes_key(self):
        fu = build_functional_unit("int_add", width=8)
        stream = random_stream(20, operand_width=8, seed=0)
        assert (trace_key(fu, stream, CONDS, DEFAULT_LIBRARY, "dta")
                != trace_key(fu, stream, CONDS, DEFAULT_LIBRARY, "glitch"))

    def test_fingerprint_stable_and_sensitive(self):
        assert (library_fingerprint(DEFAULT_LIBRARY)
                == library_fingerprint(CellLibrary()))
        assert (library_fingerprint(DEFAULT_LIBRARY)
                != library_fingerprint(_slow_library()))


class TestLibraryCacheRegression:
    def test_non_default_library_not_served_stale(self, tmp_path):
        fu = build_functional_unit("int_add", width=8)
        stream = random_stream(30, operand_width=8, seed=1)
        runner = CampaignRunner(store=tmp_path)
        base = runner.characterize(fu, stream, CONDS)
        slow = runner.characterize(fu, stream, CONDS,
                                   library=_slow_library())
        # doubled intrinsics must show up: strictly slower worst delay
        assert slow.delays.max() > base.delays.max()
        # and both entries coexist in the store
        assert len(TraceStore(tmp_path).entries()) == 2


class TestTraceStore:
    def test_put_get_roundtrip(self, tmp_path):
        fu = build_functional_unit("int_add", width=8)
        stream = random_stream(25, operand_width=8, seed=2)
        store = TraceStore(tmp_path)
        key = trace_key(fu, stream, CONDS, DEFAULT_LIBRARY)
        assert store.get(key, CONDS) is None
        trace = CampaignRunner(use_cache=False).characterize(
            fu, stream, CONDS)
        store.put(key, trace, fu_name=fu.name, stream_name=stream.name,
                  library=DEFAULT_LIBRARY, backend="bitpacked")
        assert key in store
        loaded = store.get(key, CONDS)
        np.testing.assert_array_equal(loaded.delays, trace.delays)

    def test_manifest_records_metadata(self, tmp_path):
        fu = build_functional_unit("int_add", width=8)
        stream = random_stream(25, operand_width=8, seed=3)
        CampaignRunner(store=tmp_path).characterize(fu, stream, CONDS)
        manifest = json.loads((tmp_path / "manifest.json").read_text())
        (entry,) = manifest["entries"].values()
        assert entry["fu"] == "int_add"
        assert entry["n_conditions"] == 2
        assert entry["n_cycles"] == 25
        assert entry["delay_model"] == "dta"
        assert entry["library"] == library_fingerprint(DEFAULT_LIBRARY)

    def test_incompatible_store_version_ignored(self, tmp_path):
        (tmp_path / "manifest.json").write_text(
            json.dumps({"store_version": 999, "entries": {"k": {}}}))
        assert TraceStore(tmp_path).entries() == {}

    def test_lost_manifest_entry_recovers_via_blob(self, tmp_path):
        # key-embedding blob names make the store self-healing when a
        # concurrent writer clobbers the manifest
        fu = build_functional_unit("int_add", width=8)
        stream = random_stream(25, operand_width=8, seed=12)
        first = CampaignRunner(store=tmp_path).characterize(fu, stream,
                                                            CONDS)
        (tmp_path / "manifest.json").unlink()
        key = trace_key(fu, stream, CONDS, DEFAULT_LIBRARY)
        recovered = TraceStore(tmp_path).get(key, CONDS)
        np.testing.assert_array_equal(recovered.delays, first.delays)

    def test_missing_blob_is_a_miss(self, tmp_path):
        fu = build_functional_unit("int_add", width=8)
        stream = random_stream(25, operand_width=8, seed=4)
        CampaignRunner(store=tmp_path).characterize(fu, stream, CONDS)
        for blob in tmp_path.glob("dta_*.npz"):
            blob.unlink()
        key = trace_key(fu, stream, CONDS, DEFAULT_LIBRARY)
        assert TraceStore(tmp_path).get(key, CONDS) is None


class TestCampaignRunner:
    def _jobs(self, n_cycles=40):
        jobs = []
        for name, width, seed in (("int_add", 8, 5), ("int_add", 8, 6),
                                  ("int_mul", 4, 7)):
            fu = build_functional_unit(name, width=width)
            stream = random_stream(n_cycles, operand_width=width, seed=seed)
            stream.name = f"par_{name}_{seed}"
            jobs.append(CampaignJob(fu, stream, CONDS))
        return jobs

    def test_parallel_matches_serial(self, tmp_path):
        serial = CampaignRunner(n_workers=1,
                                store=tmp_path / "serial").run(self._jobs())
        parallel = CampaignRunner(n_workers=2,
                                  store=tmp_path / "par").run(self._jobs())
        assert len(serial) == len(parallel) == 3
        for s, p in zip(serial, parallel):
            np.testing.assert_array_equal(s.delays, p.delays)

    def test_cache_hits_reported(self, tmp_path):
        runner = CampaignRunner(store=tmp_path)
        jobs = self._jobs()
        runner.run(jobs)
        assert (runner.stats.hits, runner.stats.misses) == (0, 3)
        runner.run(jobs)
        assert (runner.stats.hits, runner.stats.misses) == (3, 0)

    def test_results_aligned_with_jobs(self, tmp_path):
        jobs = self._jobs()
        runner = CampaignRunner(store=tmp_path)
        first = runner.run(jobs)
        # a second run mixing cached and fresh jobs keeps order
        fu = build_functional_unit("int_add", width=8)
        fresh_stream = random_stream(40, operand_width=8, seed=99)
        fresh_stream.name = "par_fresh"
        mixed = [jobs[1], CampaignJob(fu, fresh_stream, CONDS), jobs[0]]
        out = runner.run(mixed)
        np.testing.assert_array_equal(out[0].delays, first[1].delays)
        np.testing.assert_array_equal(out[2].delays, first[0].delays)

    def test_backends_share_dta_cache_but_not_event(self, tmp_path):
        fu = build_functional_unit("int_add", width=8)
        stream = random_stream(20, operand_width=8, seed=8)
        job = [CampaignJob(fu, stream, CONDS[:1])]
        store = TraceStore(tmp_path)
        CampaignRunner(backend="levelized", store=store).run(job)
        bp = CampaignRunner(backend="bitpacked", store=store)
        bp.run(job)
        assert bp.stats.hits == 1  # dta engines interchangeable
        ev = CampaignRunner(backend="event", store=store)
        ev.run(job)
        assert ev.stats.misses == 1  # glitch model never shares

    def test_no_cache_runner_writes_nothing(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        runner = CampaignRunner(use_cache=False)
        runner.run(self._jobs())
        assert list(tmp_path.iterdir()) == []

    def test_invalid_worker_count(self):
        with pytest.raises(ValueError):
            CampaignRunner(n_workers=0)

    def test_invalid_shard_cycles(self):
        with pytest.raises(ValueError):
            CampaignRunner(shard_cycles=0)


class TestShardPlanning:
    def test_explicit_sizes_cover_in_order(self):
        for n_cycles, size in ((330, 1), (330, 37), (330, 330),
                               (330, 1000), (128, 64)):
            bounds = plan_cycle_shards(n_cycles, size)
            assert bounds[0][0] == 0 and bounds[-1][1] == n_cycles
            for (a, b), (c, d) in zip(bounds, bounds[1:]):
                assert b == c and a < b
            assert all(b - a == size for a, b in bounds[:-1])

    def test_auto_never_splits_single_worker(self):
        assert plan_cycle_shards(10 ** 6, None, 1) == [(0, 10 ** 6)]

    def test_auto_respects_minimum(self):
        bounds = plan_cycle_shards(2 * MIN_SHARD_CYCLES, None, 64)
        assert all(b - a >= MIN_SHARD_CYCLES for a, b in bounds[:-1])
        assert len(bounds) >= 2

    def test_auto_small_job_untouched(self):
        assert plan_cycle_shards(MIN_SHARD_CYCLES, None, 8) == [
            (0, MIN_SHARD_CYCLES)]

    def test_auto_targets_two_shards_per_worker(self):
        bounds = plan_cycle_shards(64_000, None, 4)
        assert len(bounds) == 8

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            plan_cycle_shards(0, None)
        with pytest.raises(ValueError):
            plan_cycle_shards(100, 0)


class TestCycleSharding:
    """The delay matrices (and collected outputs) must be bit-identical
    for every worker count and shard size, including shards that are
    not multiples of the engines' 64-cycle packing words and streams
    whose internal chunk boundaries interleave with shard boundaries.
    """

    N_CYCLES = 330  # not a multiple of 64: ragged words everywhere

    def _job(self):
        fu = build_functional_unit("int_add", width=8)
        stream = random_stream(self.N_CYCLES, operand_width=8, seed=77)
        stream.name = "shard_parity"
        return CampaignJob(fu, stream, CONDS)

    @pytest.fixture(scope="class")
    def reference(self):
        return CampaignRunner(use_cache=False).run([self._job()])[0]

    @pytest.mark.parametrize("n_workers", [1, 2, 4])
    @pytest.mark.parametrize("shard_cycles", [1, 37, N_CYCLES, None])
    def test_byte_identical_across_configs(self, reference, n_workers,
                                           shard_cycles):
        runner = CampaignRunner(use_cache=False, n_workers=n_workers,
                                shard_cycles=shard_cycles)
        trace = runner.run([self._job()])[0]
        assert trace.delays.tobytes() == reference.delays.tobytes()
        assert trace.delays.shape == reference.delays.shape
        expected = len(plan_cycle_shards(self.N_CYCLES, shard_cycles,
                                         n_workers))
        assert runner.stats.job_shards == {0: expected}

    def test_shard_chunk_boundary_interaction(self):
        # stitch shards that were themselves chunked internally at 64
        # cycles: shard size 37 guarantees every chunk/shard phase
        fu = build_functional_unit("int_add", width=8)
        stream = random_stream(self.N_CYCLES, operand_width=8, seed=78)
        inputs = stream.bit_matrix(fu)
        dm = DEFAULT_LIBRARY.delay_matrix(fu.netlist, CONDS)
        backend = get_backend("compiled")
        whole = backend.run_delays(fu.netlist, inputs, dm,
                                   collect_outputs=True)
        for shard in (1, 37, 64, self.N_CYCLES):
            parts = [backend.run_delays(fu.netlist,
                                        inputs[start:stop + 1], dm,
                                        collect_outputs=True)
                     for start, stop in plan_cycle_shards(
                         self.N_CYCLES, shard)]
            delays = np.concatenate([p.delays for p in parts], axis=1)
            outputs = np.concatenate([p.outputs for p in parts], axis=0)
            assert delays.tobytes() == whole.delays.tobytes(), shard
            np.testing.assert_array_equal(outputs, whole.outputs,
                                          err_msg=str(shard))

    def test_event_backend_never_sharded(self):
        fu = build_functional_unit("int_add", width=4)
        stream = random_stream(40, operand_width=4, seed=79)
        stream.name = "shard_event"
        runner = CampaignRunner(backend="event", use_cache=False,
                                n_workers=2, shard_cycles=10)
        runner.run([CampaignJob(fu, stream, CONDS[:1])])
        assert runner.stats.job_shards == {0: 1}

    def test_stats_record_times_and_shards(self, tmp_path):
        fu = build_functional_unit("int_add", width=8)
        streams = []
        for seed in (80, 81):
            s = random_stream(60, operand_width=8, seed=seed)
            s.name = f"shard_stats_{seed}"
            streams.append(s)
        runner = CampaignRunner(store=tmp_path, shard_cycles=25)
        runner.run([CampaignJob(fu, s, CONDS) for s in streams])
        stats = runner.stats
        assert stats.misses == 2
        assert stats.job_shards == {0: 3, 1: 3}
        assert stats.total_shards == 6
        assert set(stats.job_seconds) == {0, 1}
        assert all(t >= 0 for t in stats.job_seconds.values())
        assert stats.sim_seconds == pytest.approx(
            sum(stats.job_seconds.values()))
        assert stats.wall_seconds > 0
        # second run: all hits, no shard/timing entries
        runner.run([CampaignJob(fu, s, CONDS) for s in streams])
        assert runner.stats.hits == 2
        assert runner.stats.job_shards == {}
        assert runner.stats.sim_seconds == 0.0

    def test_sharded_results_cache_and_reload(self, tmp_path):
        fu = build_functional_unit("int_add", width=8)
        stream = random_stream(90, operand_width=8, seed=82)
        stream.name = "shard_cache"
        job = CampaignJob(fu, stream, CONDS)
        sharded = CampaignRunner(store=tmp_path, shard_cycles=40)
        first = sharded.run([job])[0]
        unsharded = CampaignRunner(store=tmp_path)
        second = unsharded.run([job])[0]
        assert unsharded.stats.hits == 1
        assert second.delays.tobytes() == first.delays.tobytes()


class TestTraceStoreGC:
    def _populate(self, tmp_path, seeds=(20, 21, 22)):
        fu = build_functional_unit("int_add", width=8)
        runner = CampaignRunner(store=tmp_path)
        for seed in seeds:
            stream = random_stream(30, operand_width=8, seed=seed)
            stream.name = f"gc_{seed}"
            runner.characterize(fu, stream, CONDS)
        return TraceStore(tmp_path)

    def test_gc_removes_orphan_blobs(self, tmp_path):
        store = self._populate(tmp_path)
        orphan = tmp_path / "dta_int_add_stray_deadbeef.npz"
        np.savez_compressed(orphan, delays=np.zeros((1, 2)))
        report = store.gc()
        assert orphan.name in report.removed_blobs
        assert not orphan.exists()
        assert len(store.entries()) == 3  # live entries untouched

    def test_gc_drops_stale_manifest_entries(self, tmp_path):
        store = self._populate(tmp_path)
        key, entry = next(iter(store.entries().items()))
        (tmp_path / entry["file"]).unlink()
        report = store.gc()
        assert key in report.dropped_entries
        assert key not in store.entries()

    def test_gc_size_budget_evicts_oldest_first(self, tmp_path):
        store = self._populate(tmp_path)
        entries = store.entries()
        # stamp distinct ages so eviction order is deterministic
        manifest = store._read_manifest()
        for i, key in enumerate(sorted(entries)):
            manifest["entries"][key]["created"] = f"2026-01-0{i + 1}T00:00:00"
        store._write_manifest(manifest)
        sizes = {key: (tmp_path / e["file"]).stat().st_size
                 for key, e in entries.items()}
        ordered = sorted(entries, key=lambda k: store.entries()[k]["created"])
        budget = sizes[ordered[-1]]  # room for exactly the newest blob
        report = store.gc(max_bytes=budget)
        remaining = store.entries()
        assert list(remaining) == [ordered[-1]]
        assert report.kept_bytes <= budget
        # evicted blobs really left the disk
        assert len(list(tmp_path.glob("dta_*.npz"))) == 1

    def test_gc_zero_budget_empties_store(self, tmp_path):
        store = self._populate(tmp_path)
        store.gc(max_bytes=0)
        assert store.entries() == {}
        assert list(tmp_path.glob("dta_*.npz")) == []

    def test_gc_dry_run_touches_nothing(self, tmp_path):
        store = self._populate(tmp_path)
        before = set(p.name for p in tmp_path.glob("dta_*.npz"))
        report = store.gc(max_bytes=0, dry_run=True)
        assert len(report.removed_blobs) == 3
        assert set(p.name for p in tmp_path.glob("dta_*.npz")) == before
        assert len(store.entries()) == 3

    def test_gc_negative_budget_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            TraceStore(tmp_path).gc(max_bytes=-1)

    def test_gc_on_missing_store_is_noop(self, tmp_path):
        report = TraceStore(tmp_path / "nope").gc()
        assert report.removed_blobs == []
        assert report.dropped_entries == []
