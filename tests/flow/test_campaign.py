"""Tests for the campaign runner and the versioned trace store."""

import json

import numpy as np
import pytest

from repro.circuits import build_functional_unit
from repro.flow import (
    CampaignJob,
    CampaignRunner,
    TraceStore,
    library_fingerprint,
    trace_key,
)
from repro.timing import DEFAULT_LIBRARY, OperatingCondition
from repro.timing.cells import CellLibrary, CellTiming
from repro.workloads import random_stream

CONDS = [OperatingCondition(0.81, 0.0), OperatingCondition(1.00, 100.0)]


def _slow_library() -> CellLibrary:
    """A library with every intrinsic delay doubled."""
    timings = {
        gtype: CellTiming(t.intrinsic * 2.0, t.load, t.vth_offset)
        for gtype, t in DEFAULT_LIBRARY.timings.items()
    }
    return CellLibrary(timings=timings)


class TestTraceKey:
    def test_library_changes_key(self):
        # regression: the old cache hash omitted the CellLibrary, so a
        # non-default library silently reused default-library delays
        fu = build_functional_unit("int_add", width=8)
        stream = random_stream(20, operand_width=8, seed=0)
        k_default = trace_key(fu, stream, CONDS, DEFAULT_LIBRARY)
        k_slow = trace_key(fu, stream, CONDS, _slow_library())
        assert k_default != k_slow

    def test_delay_model_changes_key(self):
        fu = build_functional_unit("int_add", width=8)
        stream = random_stream(20, operand_width=8, seed=0)
        assert (trace_key(fu, stream, CONDS, DEFAULT_LIBRARY, "dta")
                != trace_key(fu, stream, CONDS, DEFAULT_LIBRARY, "glitch"))

    def test_fingerprint_stable_and_sensitive(self):
        assert (library_fingerprint(DEFAULT_LIBRARY)
                == library_fingerprint(CellLibrary()))
        assert (library_fingerprint(DEFAULT_LIBRARY)
                != library_fingerprint(_slow_library()))


class TestLibraryCacheRegression:
    def test_non_default_library_not_served_stale(self, tmp_path):
        fu = build_functional_unit("int_add", width=8)
        stream = random_stream(30, operand_width=8, seed=1)
        runner = CampaignRunner(store=tmp_path)
        base = runner.characterize(fu, stream, CONDS)
        slow = runner.characterize(fu, stream, CONDS,
                                   library=_slow_library())
        # doubled intrinsics must show up: strictly slower worst delay
        assert slow.delays.max() > base.delays.max()
        # and both entries coexist in the store
        assert len(TraceStore(tmp_path).entries()) == 2


class TestTraceStore:
    def test_put_get_roundtrip(self, tmp_path):
        fu = build_functional_unit("int_add", width=8)
        stream = random_stream(25, operand_width=8, seed=2)
        store = TraceStore(tmp_path)
        key = trace_key(fu, stream, CONDS, DEFAULT_LIBRARY)
        assert store.get(key, CONDS) is None
        trace = CampaignRunner(use_cache=False).characterize(
            fu, stream, CONDS)
        store.put(key, trace, fu_name=fu.name, stream_name=stream.name,
                  library=DEFAULT_LIBRARY, backend="bitpacked")
        assert key in store
        loaded = store.get(key, CONDS)
        np.testing.assert_array_equal(loaded.delays, trace.delays)

    def test_manifest_records_metadata(self, tmp_path):
        fu = build_functional_unit("int_add", width=8)
        stream = random_stream(25, operand_width=8, seed=3)
        CampaignRunner(store=tmp_path).characterize(fu, stream, CONDS)
        manifest = json.loads((tmp_path / "manifest.json").read_text())
        (entry,) = manifest["entries"].values()
        assert entry["fu"] == "int_add"
        assert entry["n_conditions"] == 2
        assert entry["n_cycles"] == 25
        assert entry["delay_model"] == "dta"
        assert entry["library"] == library_fingerprint(DEFAULT_LIBRARY)

    def test_incompatible_store_version_ignored(self, tmp_path):
        (tmp_path / "manifest.json").write_text(
            json.dumps({"store_version": 999, "entries": {"k": {}}}))
        assert TraceStore(tmp_path).entries() == {}

    def test_lost_manifest_entry_recovers_via_blob(self, tmp_path):
        # key-embedding blob names make the store self-healing when a
        # concurrent writer clobbers the manifest
        fu = build_functional_unit("int_add", width=8)
        stream = random_stream(25, operand_width=8, seed=12)
        first = CampaignRunner(store=tmp_path).characterize(fu, stream,
                                                            CONDS)
        (tmp_path / "manifest.json").unlink()
        key = trace_key(fu, stream, CONDS, DEFAULT_LIBRARY)
        recovered = TraceStore(tmp_path).get(key, CONDS)
        np.testing.assert_array_equal(recovered.delays, first.delays)

    def test_missing_blob_is_a_miss(self, tmp_path):
        fu = build_functional_unit("int_add", width=8)
        stream = random_stream(25, operand_width=8, seed=4)
        CampaignRunner(store=tmp_path).characterize(fu, stream, CONDS)
        for blob in tmp_path.glob("dta_*.npz"):
            blob.unlink()
        key = trace_key(fu, stream, CONDS, DEFAULT_LIBRARY)
        assert TraceStore(tmp_path).get(key, CONDS) is None


class TestCampaignRunner:
    def _jobs(self, n_cycles=40):
        jobs = []
        for name, width, seed in (("int_add", 8, 5), ("int_add", 8, 6),
                                  ("int_mul", 4, 7)):
            fu = build_functional_unit(name, width=width)
            stream = random_stream(n_cycles, operand_width=width, seed=seed)
            stream.name = f"par_{name}_{seed}"
            jobs.append(CampaignJob(fu, stream, CONDS))
        return jobs

    def test_parallel_matches_serial(self, tmp_path):
        serial = CampaignRunner(n_workers=1,
                                store=tmp_path / "serial").run(self._jobs())
        parallel = CampaignRunner(n_workers=2,
                                  store=tmp_path / "par").run(self._jobs())
        assert len(serial) == len(parallel) == 3
        for s, p in zip(serial, parallel):
            np.testing.assert_array_equal(s.delays, p.delays)

    def test_cache_hits_reported(self, tmp_path):
        runner = CampaignRunner(store=tmp_path)
        jobs = self._jobs()
        runner.run(jobs)
        assert (runner.stats.hits, runner.stats.misses) == (0, 3)
        runner.run(jobs)
        assert (runner.stats.hits, runner.stats.misses) == (3, 0)

    def test_results_aligned_with_jobs(self, tmp_path):
        jobs = self._jobs()
        runner = CampaignRunner(store=tmp_path)
        first = runner.run(jobs)
        # a second run mixing cached and fresh jobs keeps order
        fu = build_functional_unit("int_add", width=8)
        fresh_stream = random_stream(40, operand_width=8, seed=99)
        fresh_stream.name = "par_fresh"
        mixed = [jobs[1], CampaignJob(fu, fresh_stream, CONDS), jobs[0]]
        out = runner.run(mixed)
        np.testing.assert_array_equal(out[0].delays, first[1].delays)
        np.testing.assert_array_equal(out[2].delays, first[0].delays)

    def test_backends_share_dta_cache_but_not_event(self, tmp_path):
        fu = build_functional_unit("int_add", width=8)
        stream = random_stream(20, operand_width=8, seed=8)
        job = [CampaignJob(fu, stream, CONDS[:1])]
        store = TraceStore(tmp_path)
        CampaignRunner(backend="levelized", store=store).run(job)
        bp = CampaignRunner(backend="bitpacked", store=store)
        bp.run(job)
        assert bp.stats.hits == 1  # dta engines interchangeable
        ev = CampaignRunner(backend="event", store=store)
        ev.run(job)
        assert ev.stats.misses == 1  # glitch model never shares

    def test_no_cache_runner_writes_nothing(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        runner = CampaignRunner(use_cache=False)
        runner.run(self._jobs())
        assert list(tmp_path.iterdir()) == []

    def test_invalid_worker_count(self):
        with pytest.raises(ValueError):
            CampaignRunner(n_workers=0)


class TestTraceStoreGC:
    def _populate(self, tmp_path, seeds=(20, 21, 22)):
        fu = build_functional_unit("int_add", width=8)
        runner = CampaignRunner(store=tmp_path)
        for seed in seeds:
            stream = random_stream(30, operand_width=8, seed=seed)
            stream.name = f"gc_{seed}"
            runner.characterize(fu, stream, CONDS)
        return TraceStore(tmp_path)

    def test_gc_removes_orphan_blobs(self, tmp_path):
        store = self._populate(tmp_path)
        orphan = tmp_path / "dta_int_add_stray_deadbeef.npz"
        np.savez_compressed(orphan, delays=np.zeros((1, 2)))
        report = store.gc()
        assert orphan.name in report.removed_blobs
        assert not orphan.exists()
        assert len(store.entries()) == 3  # live entries untouched

    def test_gc_drops_stale_manifest_entries(self, tmp_path):
        store = self._populate(tmp_path)
        key, entry = next(iter(store.entries().items()))
        (tmp_path / entry["file"]).unlink()
        report = store.gc()
        assert key in report.dropped_entries
        assert key not in store.entries()

    def test_gc_size_budget_evicts_oldest_first(self, tmp_path):
        store = self._populate(tmp_path)
        entries = store.entries()
        # stamp distinct ages so eviction order is deterministic
        manifest = store._read_manifest()
        for i, key in enumerate(sorted(entries)):
            manifest["entries"][key]["created"] = f"2026-01-0{i + 1}T00:00:00"
        store._write_manifest(manifest)
        sizes = {key: (tmp_path / e["file"]).stat().st_size
                 for key, e in entries.items()}
        ordered = sorted(entries, key=lambda k: store.entries()[k]["created"])
        budget = sizes[ordered[-1]]  # room for exactly the newest blob
        report = store.gc(max_bytes=budget)
        remaining = store.entries()
        assert list(remaining) == [ordered[-1]]
        assert report.kept_bytes <= budget
        # evicted blobs really left the disk
        assert len(list(tmp_path.glob("dta_*.npz"))) == 1

    def test_gc_zero_budget_empties_store(self, tmp_path):
        store = self._populate(tmp_path)
        store.gc(max_bytes=0)
        assert store.entries() == {}
        assert list(tmp_path.glob("dta_*.npz")) == []

    def test_gc_dry_run_touches_nothing(self, tmp_path):
        store = self._populate(tmp_path)
        before = set(p.name for p in tmp_path.glob("dta_*.npz"))
        report = store.gc(max_bytes=0, dry_run=True)
        assert len(report.removed_blobs) == 3
        assert set(p.name for p in tmp_path.glob("dta_*.npz")) == before
        assert len(store.entries()) == 3

    def test_gc_negative_budget_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            TraceStore(tmp_path).gc(max_bytes=-1)

    def test_gc_on_missing_store_is_noop(self, tmp_path):
        report = TraceStore(tmp_path / "nope").gc()
        assert report.removed_blobs == []
        assert report.dropped_entries == []
