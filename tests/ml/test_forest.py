"""Tests for random forests."""

import numpy as np
import pytest

from repro.ml import RandomForestClassifier, RandomForestRegressor
from repro.ml.metrics import accuracy_score, r2_score


def make_interaction_data(n=800, seed=0):
    rng = np.random.default_rng(seed)
    X = rng.integers(0, 2, (n, 10)).astype(float)
    y = 5 * X[:, 0] * X[:, 1] + 2 * X[:, 2] + rng.normal(0, 0.1, n)
    return X, y


class TestRegressorForest:
    def test_generalizes_interactions(self):
        X, y = make_interaction_data()
        model = RandomForestRegressor(n_estimators=10, random_state=0)
        model.fit(X[:600], y[:600])
        assert r2_score(y[600:], model.predict(X[600:])) > 0.95

    def test_reproducible_with_seed(self):
        X, y = make_interaction_data()
        p1 = RandomForestRegressor(5, random_state=42).fit(X, y).predict(X[:20])
        p2 = RandomForestRegressor(5, random_state=42).fit(X, y).predict(X[:20])
        np.testing.assert_array_equal(p1, p2)

    def test_more_trees_reduce_variance(self):
        X, y = make_interaction_data(seed=3)
        single = RandomForestRegressor(1, random_state=0).fit(X[:600], y[:600])
        many = RandomForestRegressor(20, random_state=0).fit(X[:600], y[:600])
        err1 = np.mean((y[600:] - single.predict(X[600:])) ** 2)
        err20 = np.mean((y[600:] - many.predict(X[600:])) ** 2)
        assert err20 <= err1 * 1.2

    def test_feature_importances_identify_signal(self):
        X, y = make_interaction_data()
        model = RandomForestRegressor(10, random_state=0).fit(X, y)
        imp = model.feature_importances()
        assert imp.shape == (10,)
        assert imp.sum() == pytest.approx(1.0)
        assert set(np.argsort(imp)[-3:]) >= {0, 1}

    def test_no_bootstrap_option(self):
        X, y = make_interaction_data()
        model = RandomForestRegressor(3, bootstrap=False, random_state=0)
        model.fit(X, y)
        assert r2_score(y, model.predict(X)) > 0.95

    def test_invalid_n_estimators(self):
        with pytest.raises(ValueError):
            RandomForestRegressor(0)


class TestClassifierForest:
    def test_classifies_xor(self):
        rng = np.random.default_rng(1)
        X = rng.integers(0, 2, (600, 2)).astype(float)
        y = (X[:, 0].astype(int) ^ X[:, 1].astype(int))
        model = RandomForestClassifier(10, random_state=0).fit(X, y)
        assert accuracy_score(y, model.predict(X)) > 0.99

    def test_predict_proba_normalized(self):
        rng = np.random.default_rng(2)
        X = rng.normal(size=(200, 4))
        y = (X[:, 0] > 0).astype(int)
        model = RandomForestClassifier(5, random_state=0).fit(X, y)
        proba = model.predict_proba(X)
        np.testing.assert_allclose(proba.sum(axis=1), 1.0, atol=1e-9)

    def test_sqrt_max_features(self):
        rng = np.random.default_rng(3)
        X = rng.integers(0, 2, (300, 16)).astype(float)
        y = X[:, 0].astype(int)
        model = RandomForestClassifier(10, max_features="sqrt",
                                       random_state=0).fit(X, y)
        assert accuracy_score(y, model.predict(X)) > 0.95

    def test_class_labels_preserved(self):
        X = np.array([[0.0], [1.0]] * 50)
        y = np.array([3, 9] * 50)
        model = RandomForestClassifier(5, random_state=0).fit(X, y)
        assert set(model.predict(X)) == {3, 9}
