"""Tests for linear models, SVM, and kNN."""

import numpy as np
import pytest

from repro.ml import (
    KNeighborsClassifier,
    KNeighborsRegressor,
    LinearRegression,
    LinearSVC,
    LogisticRegression,
    NotFittedError,
)
from repro.ml.metrics import accuracy_score, r2_score


def linearly_separable(n=400, seed=0):
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n, 3))
    y = (X @ np.array([2.0, -1.0, 0.5]) + 0.3 > 0).astype(int)
    return X, y


class TestLinearRegression:
    def test_recovers_exact_linear_function(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(100, 4))
        y = X @ np.array([1.5, -2.0, 0.0, 3.0]) + 7.0
        model = LinearRegression().fit(X, y)
        np.testing.assert_allclose(model.coef_, [1.5, -2.0, 0.0, 3.0],
                                   atol=1e-8)
        assert model.intercept_ == pytest.approx(7.0)
        assert r2_score(y, model.predict(X)) == pytest.approx(1.0)

    def test_no_intercept(self):
        X = np.array([[1.0], [2.0], [3.0]])
        y = np.array([2.0, 4.0, 6.0])
        model = LinearRegression(fit_intercept=False).fit(X, y)
        assert model.intercept_ == 0.0
        assert model.coef_[0] == pytest.approx(2.0)

    def test_not_fitted_raises(self):
        with pytest.raises(NotFittedError):
            LinearRegression().predict([[1.0]])


class TestLogisticRegression:
    def test_separable_data_high_accuracy(self):
        X, y = linearly_separable()
        model = LogisticRegression(n_iter=500).fit(X, y)
        assert accuracy_score(y, model.predict(X)) > 0.95

    def test_predict_proba_in_unit_interval(self):
        X, y = linearly_separable()
        model = LogisticRegression().fit(X, y)
        proba = model.predict_proba(X)
        assert np.all(proba >= 0) and np.all(proba <= 1)
        np.testing.assert_allclose(proba.sum(axis=1), 1.0)

    def test_single_class_degenerates_to_constant(self):
        X = np.zeros((10, 2))
        y = np.ones(10, dtype=int)
        model = LogisticRegression().fit(X, y)
        assert np.all(model.predict(X) == 1)

    def test_multiclass_rejected(self):
        X = np.zeros((3, 1))
        with pytest.raises(ValueError):
            LogisticRegression().fit(X, np.array([0, 1, 2]))

    def test_label_values_preserved(self):
        X, y01 = linearly_separable()
        y = np.where(y01 == 1, 5, -5)
        model = LogisticRegression().fit(X, y)
        assert set(np.unique(model.predict(X))) <= {-5, 5}


class TestLinearSVC:
    def test_separable_data_high_accuracy(self):
        X, y = linearly_separable(seed=1)
        model = LinearSVC(n_epochs=20, random_state=0).fit(X, y)
        assert accuracy_score(y, model.predict(X)) > 0.93

    def test_decision_function_sign_matches_predictions(self):
        X, y = linearly_separable(seed=2)
        model = LinearSVC(random_state=0).fit(X, y)
        scores = model.decision_function(X)
        preds = model.predict(X)
        assert np.all((scores >= 0) == (preds == model.classes_[1]))

    def test_invalid_C(self):
        with pytest.raises(ValueError):
            LinearSVC(C=0)

    def test_multiclass_rejected(self):
        with pytest.raises(ValueError):
            LinearSVC().fit(np.zeros((3, 1)), np.array([0, 1, 2]))


class TestKNN:
    def test_regressor_interpolates_neighbors(self):
        X = np.array([[0.0], [1.0], [2.0], [10.0]])
        y = np.array([0.0, 1.0, 2.0, 10.0])
        model = KNeighborsRegressor(n_neighbors=2).fit(X, y)
        # nearest neighbours of 0.4 are 0 and 1 -> mean 0.5
        assert model.predict([[0.4]])[0] == pytest.approx(0.5)

    def test_classifier_majority_vote(self):
        X = np.array([[0.0], [0.1], [0.2], [5.0], [5.1]])
        y = np.array([0, 0, 0, 1, 1])
        model = KNeighborsClassifier(n_neighbors=3).fit(X, y)
        assert model.predict([[0.05]])[0] == 0
        assert model.predict([[5.05]])[0] == 1

    def test_k1_memorizes_training_data(self):
        rng = np.random.default_rng(3)
        X = rng.normal(size=(50, 4))
        y = rng.integers(0, 2, 50)
        model = KNeighborsClassifier(n_neighbors=1).fit(X, y)
        assert accuracy_score(y, model.predict(X)) == 1.0

    def test_chunked_prediction_matches_unchunked(self):
        rng = np.random.default_rng(4)
        X = rng.normal(size=(100, 3))
        y = rng.normal(size=100)
        big = KNeighborsRegressor(5, chunk_size=1000).fit(X, y)
        small = KNeighborsRegressor(5, chunk_size=7).fit(X, y)
        q = rng.normal(size=(30, 3))
        np.testing.assert_allclose(big.predict(q), small.predict(q))

    def test_k_larger_than_train_raises(self):
        with pytest.raises(ValueError):
            KNeighborsRegressor(5).fit(np.zeros((3, 1)), np.zeros(3))

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            KNeighborsRegressor(0)
