"""Tests for estimator plumbing: validation and max_features parsing."""

import numpy as np
import pytest

from repro.ml.base import (
    BaseEstimator,
    NotFittedError,
    check_X,
    check_X_y,
    resolve_max_features,
)


class TestCheckXy:
    def test_valid_conversion(self):
        X, y = check_X_y([[1, 2], [3, 4]], [0, 1])
        assert X.dtype == np.float64
        assert X.shape == (2, 2)

    def test_rejects_1d_X(self):
        with pytest.raises(ValueError):
            check_X_y([1, 2, 3], [1, 2, 3])

    def test_rejects_2d_y(self):
        with pytest.raises(ValueError):
            check_X_y([[1], [2]], [[1], [2]])

    def test_rejects_length_mismatch(self):
        with pytest.raises(ValueError):
            check_X_y([[1], [2]], [1, 2, 3])

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            check_X_y(np.zeros((0, 2)), np.zeros(0))


class TestCheckX:
    def test_feature_count_enforced(self):
        with pytest.raises(ValueError):
            check_X([[1, 2]], n_features=3)

    def test_passes_matching(self):
        X = check_X([[1, 2]], n_features=2)
        assert X.shape == (1, 2)


class TestResolveMaxFeatures:
    @pytest.mark.parametrize("spec,expected", [
        (None, 100), ("all", 100), ("sqrt", 10), ("log2", 6),
        (0.5, 50), (7, 7), (1000, 100),
    ])
    def test_specs(self, spec, expected):
        assert resolve_max_features(spec, 100) == expected

    def test_invalid_float(self):
        with pytest.raises(ValueError):
            resolve_max_features(1.5, 10)

    def test_invalid_int(self):
        with pytest.raises(ValueError):
            resolve_max_features(0, 10)

    def test_invalid_string(self):
        with pytest.raises(ValueError):
            resolve_max_features("banana", 10)


class TestBaseEstimator:
    def test_require_fitted(self):
        est = BaseEstimator()
        with pytest.raises(NotFittedError):
            est._require_fitted()

    def test_get_params_skips_arrays_and_private(self):
        est = BaseEstimator()
        est.alpha = 3
        est._secret = 4
        est.weights = np.zeros(3)
        params = est.get_params()
        assert params == {"alpha": 3}
