"""Tests for CART decision trees."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ml import DecisionTreeClassifier, DecisionTreeRegressor, NotFittedError
from repro.ml.metrics import accuracy_score, r2_score


def xor_dataset(n=400, seed=0):
    rng = np.random.default_rng(seed)
    X = rng.integers(0, 2, (n, 2)).astype(float)
    y = (X[:, 0].astype(int) ^ X[:, 1].astype(int))
    return X, y


class TestRegressor:
    def test_fits_piecewise_constant_exactly(self):
        X = np.array([[0.0], [1.0], [2.0], [3.0]])
        y = np.array([1.0, 1.0, 5.0, 5.0])
        model = DecisionTreeRegressor().fit(X, y)
        np.testing.assert_allclose(model.predict(X), y)

    def test_learns_xor_interaction(self):
        X, y = xor_dataset()
        model = DecisionTreeRegressor().fit(X, y.astype(float))
        assert r2_score(y, model.predict(X)) > 0.99

    def test_max_depth_limits_tree(self):
        X, y = xor_dataset()
        stump = DecisionTreeRegressor(max_depth=1).fit(X, y.astype(float))
        assert stump.depth() <= 1
        # XOR is not learnable at depth 1
        assert r2_score(y, stump.predict(X)) < 0.3

    def test_min_samples_leaf_respected(self):
        rng = np.random.default_rng(1)
        X = rng.normal(size=(100, 3))
        y = rng.normal(size=100)
        model = DecisionTreeRegressor(min_samples_leaf=10).fit(X, y)
        leaves = model._decision_leaves(np.asarray(X))
        _, counts = np.unique(leaves, return_counts=True)
        assert counts.min() >= 10

    def test_continuous_feature_threshold(self):
        X = np.linspace(0, 1, 50)[:, None]
        y = (X[:, 0] > 0.6).astype(float) * 10
        model = DecisionTreeRegressor(max_depth=1).fit(X, y)
        assert 0.5 < model.threshold_[0] < 0.7

    def test_predict_before_fit_raises(self):
        with pytest.raises(NotFittedError):
            DecisionTreeRegressor().predict([[1.0]])

    def test_wrong_feature_count_raises(self):
        X, y = xor_dataset()
        model = DecisionTreeRegressor().fit(X, y.astype(float))
        with pytest.raises(ValueError):
            model.predict(np.zeros((3, 5)))

    @given(seed=st.integers(0, 1000))
    @settings(max_examples=15, deadline=None)
    def test_training_r2_nonnegative(self, seed):
        rng = np.random.default_rng(seed)
        X = rng.normal(size=(60, 4))
        y = rng.normal(size=60)
        model = DecisionTreeRegressor(min_samples_leaf=5).fit(X, y)
        assert r2_score(y, model.predict(X)) >= 0.0

    def test_constant_target_single_leaf(self):
        X = np.arange(20, dtype=float)[:, None]
        y = np.full(20, 7.0)
        model = DecisionTreeRegressor().fit(X, y)
        assert model.n_nodes == 1
        np.testing.assert_allclose(model.predict(X), 7.0)


class TestClassifier:
    def test_learns_xor(self):
        X, y = xor_dataset()
        model = DecisionTreeClassifier().fit(X, y)
        assert accuracy_score(y, model.predict(X)) == 1.0

    def test_predict_proba_rows_sum_to_one(self):
        X, y = xor_dataset()
        model = DecisionTreeClassifier(max_depth=1).fit(X, y)
        proba = model.predict_proba(X)
        np.testing.assert_allclose(proba.sum(axis=1), 1.0)

    def test_string_labels_supported(self):
        X = np.array([[0.0], [1.0], [0.0], [1.0]])
        y = np.array(["ok", "err", "ok", "err"])
        model = DecisionTreeClassifier().fit(X, y)
        assert list(model.predict(X)) == ["ok", "err", "ok", "err"]

    def test_three_classes(self):
        X = np.array([[0.0], [1.0], [2.0]] * 10)
        y = np.array([0, 1, 2] * 10)
        model = DecisionTreeClassifier().fit(X, y)
        assert accuracy_score(y, model.predict(X)) == 1.0

    def test_gini_prefers_informative_feature(self):
        rng = np.random.default_rng(2)
        noise = rng.integers(0, 2, 200).astype(float)
        signal = rng.integers(0, 2, 200).astype(float)
        X = np.stack([noise, signal], axis=1)
        y = signal.astype(int)
        model = DecisionTreeClassifier(max_depth=1).fit(X, y)
        assert model.feature_[0] == 1


class TestMixedFeatures:
    def test_binary_and_continuous_agree_with_bruteforce(self):
        """Binary fast path and the sort scan must choose equally good
        splits: force each path and compare training loss."""
        rng = np.random.default_rng(3)
        n = 300
        bits = rng.integers(0, 2, (n, 6)).astype(float)
        cont = rng.uniform(0, 1, (n, 1))
        X = np.hstack([bits, cont])
        y = bits[:, 2] * 4 + (cont[:, 0] > 0.5) * 2 + rng.normal(0, .05, n)
        model = DecisionTreeRegressor(min_samples_leaf=2).fit(X, y)
        assert r2_score(y, model.predict(X)) > 0.95
