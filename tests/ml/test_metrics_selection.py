"""Tests for metrics, model selection, and preprocessing."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ml import (
    KFold,
    LinearRegression,
    MinMaxScaler,
    StandardScaler,
    accuracy_score,
    confusion_matrix,
    cross_val_score,
    mean_absolute_error,
    mean_squared_error,
    precision_recall_f1,
    r2_score,
    train_test_split,
)


class TestMetrics:
    def test_accuracy(self):
        assert accuracy_score([1, 0, 1, 1], [1, 0, 0, 1]) == 0.75

    def test_accuracy_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            accuracy_score([1, 2], [1])

    def test_confusion_matrix(self):
        m = confusion_matrix([0, 0, 1, 1], [0, 1, 1, 1])
        np.testing.assert_array_equal(m, [[1, 1], [0, 2]])

    def test_precision_recall_f1(self):
        stats = precision_recall_f1([1, 1, 0, 0], [1, 0, 1, 0])
        assert stats["precision"] == 0.5
        assert stats["recall"] == 0.5
        assert stats["f1"] == 0.5

    def test_prf_degenerate_no_positives(self):
        stats = precision_recall_f1([0, 0], [0, 0])
        assert stats == {"precision": 0.0, "recall": 0.0, "f1": 0.0}

    def test_mse_mae(self):
        assert mean_squared_error([0, 2], [0, 0]) == 2.0
        assert mean_absolute_error([0, 2], [0, 0]) == 1.0

    def test_r2_perfect_and_mean(self):
        y = np.array([1.0, 2.0, 3.0])
        assert r2_score(y, y) == 1.0
        assert r2_score(y, np.full(3, 2.0)) == pytest.approx(0.0)

    @given(st.lists(st.integers(0, 1), min_size=2, max_size=40))
    @settings(max_examples=50, deadline=None)
    def test_accuracy_bounds(self, labels):
        y = np.array(labels)
        assert 0.0 <= accuracy_score(y, 1 - y) <= 1.0


class TestTrainTestSplit:
    def test_sizes(self):
        X = np.arange(40).reshape(20, 2)
        y = np.arange(20)
        Xtr, Xte, ytr, yte = train_test_split(X, y, test_size=0.25,
                                              random_state=0)
        assert len(Xte) == 5 and len(Xtr) == 15
        assert len(ytr) == 15 and len(yte) == 5

    def test_partition_is_exact(self):
        X = np.arange(30).reshape(15, 2)
        y = np.arange(15)
        Xtr, Xte, ytr, yte = train_test_split(X, y, random_state=1)
        together = sorted(list(ytr) + list(yte))
        assert together == list(range(15))

    def test_reproducible(self):
        X = np.arange(20).reshape(10, 2)
        y = np.arange(10)
        a = train_test_split(X, y, random_state=7)
        b = train_test_split(X, y, random_state=7)
        np.testing.assert_array_equal(a[1], b[1])

    def test_bad_test_size(self):
        with pytest.raises(ValueError):
            train_test_split(np.zeros((4, 1)), np.zeros(4), test_size=1.5)


class TestKFold:
    def test_folds_partition_data(self):
        folds = list(KFold(4).split(np.zeros((10, 1))))
        assert len(folds) == 4
        all_test = np.concatenate([test for _, test in folds])
        assert sorted(all_test) == list(range(10))

    def test_train_test_disjoint(self):
        for train, test in KFold(3).split(np.zeros((9, 1))):
            assert not set(train) & set(test)

    def test_too_few_samples_raises(self):
        with pytest.raises(ValueError):
            list(KFold(5).split(np.zeros((3, 1))))

    def test_cross_val_score_r2(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(60, 2))
        y = X @ np.array([1.0, 2.0]) + 0.5
        scores = cross_val_score(LinearRegression, X, y, cv=3, scoring="r2",
                                 random_state=0)
        assert len(scores) == 3
        assert min(scores) > 0.99

    def test_unknown_scoring_raises(self):
        with pytest.raises(ValueError):
            cross_val_score(LinearRegression, np.zeros((6, 1)),
                            np.zeros(6), scoring="banana")


class TestScalers:
    def test_standard_scaler_roundtrip(self):
        rng = np.random.default_rng(0)
        X = rng.normal(5, 3, size=(50, 4))
        scaler = StandardScaler()
        Z = scaler.fit_transform(X)
        np.testing.assert_allclose(Z.mean(axis=0), 0, atol=1e-9)
        np.testing.assert_allclose(Z.std(axis=0), 1, atol=1e-9)
        np.testing.assert_allclose(scaler.inverse_transform(Z), X)

    def test_standard_scaler_constant_column(self):
        X = np.ones((10, 2))
        Z = StandardScaler().fit_transform(X)
        assert np.all(np.isfinite(Z))

    def test_minmax_scaler_range(self):
        rng = np.random.default_rng(1)
        X = rng.uniform(-4, 9, size=(30, 3))
        scaler = MinMaxScaler()
        Z = scaler.fit_transform(X)
        assert Z.min() >= 0.0 and Z.max() <= 1.0
        np.testing.assert_allclose(scaler.inverse_transform(Z), X)
