"""Tests for integer adder generators (all architectures)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits.adders import (
    ADDER_ARCHITECTURES,
    build_int_adder,
    incrementer,
    subtractor,
)
from repro.circuits.builder import CircuitBuilder

ARCHS = sorted(ADDER_ARCHITECTURES)


def run_adder(netlist, a, b, width):
    bits = [(a >> i) & 1 for i in range(width)]
    bits += [(b >> i) & 1 for i in range(width)]
    out = netlist.evaluate_outputs(bits)
    total = 0
    for i in range(width):
        total |= out[i] << i
    return total, out[width]


@pytest.fixture(scope="module", params=ARCHS)
def adder8(request):
    return request.param, build_int_adder(8, request.param)


class TestAdderArchitectures:
    def test_exhaustive_small_width(self):
        for arch in ARCHS:
            nl = build_int_adder(3, arch)
            for a in range(8):
                for b in range(8):
                    s, c = run_adder(nl, a, b, 3)
                    assert s == (a + b) & 7, (arch, a, b)
                    assert c == (a + b) >> 3, (arch, a, b)

    @given(a=st.integers(0, 255), b=st.integers(0, 255))
    @settings(max_examples=150, deadline=None)
    def test_width8_matches_python(self, adder8, a, b):
        arch, nl = adder8
        s, c = run_adder(nl, a, b, 8)
        assert s == (a + b) & 0xFF
        assert c == (a + b) >> 8

    @pytest.mark.parametrize("arch", ARCHS)
    def test_width32_corner_values(self, arch):
        nl = build_int_adder(32, arch)
        mask = (1 << 32) - 1
        cases = [(0, 0), (mask, 1), (mask, mask), (0x80000000, 0x80000000),
                 (0x55555555, 0xAAAAAAAA), (1, mask - 1)]
        for a, b in cases:
            s, c = run_adder(nl, a, b, 32)
            assert s == (a + b) & mask
            assert c == (a + b) >> 32

    def test_unknown_architecture_raises(self):
        with pytest.raises(ValueError):
            build_int_adder(8, "kogge-stone")

    def test_architectures_have_different_structure(self):
        ripple = build_int_adder(32, "ripple")
        cla = build_int_adder(32, "cla")
        assert ripple.depth() > cla.depth()


class TestSubtractor:
    @given(a=st.integers(0, 255), b=st.integers(0, 255))
    @settings(max_examples=150, deadline=None)
    def test_subtract_matches_python(self, a, b):
        bld = CircuitBuilder()
        ba = bld.input_bus(8, "a")
        bb = bld.input_bus(8, "b")
        diff, no_borrow = subtractor(bld, ba, bb)
        bld.mark_output_bus(diff)
        bld.netlist.mark_output(no_borrow)
        nl = bld.build()
        bits = [(a >> i) & 1 for i in range(8)] + [(b >> i) & 1 for i in range(8)]
        out = nl.evaluate_outputs(bits)
        got = sum(out[i] << i for i in range(8))
        assert got == (a - b) & 0xFF
        assert out[8] == (1 if a >= b else 0)


class TestIncrementer:
    @pytest.mark.parametrize("value", [0, 1, 6, 7])
    def test_increment(self, value):
        bld = CircuitBuilder()
        bus = bld.input_bus(3)
        inc, carry = incrementer(bld, bus)
        bld.mark_output_bus(inc)
        bld.netlist.mark_output(carry)
        nl = bld.build()
        out = nl.evaluate_outputs([(value >> i) & 1 for i in range(3)])
        got = sum(out[i] << i for i in range(3))
        assert got == (value + 1) & 7
        assert out[3] == (1 if value == 7 else 0)


def test_width_mismatch_raises():
    bld = CircuitBuilder()
    with pytest.raises(ValueError):
        from repro.circuits.adders import ripple_carry_adder
        ripple_carry_adder(bld, bld.input_bus(4), bld.input_bus(5))
