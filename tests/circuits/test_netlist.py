"""Unit tests for the netlist core."""

import pytest

from repro.circuits.netlist import (
    GATE_ARITY,
    Gate,
    GateType,
    Netlist,
    NetlistError,
    evaluate_gate,
)

TWO_INPUT_TRUTH = {
    GateType.AND2: lambda a, b: a & b,
    GateType.OR2: lambda a, b: a | b,
    GateType.NAND2: lambda a, b: 1 - (a & b),
    GateType.NOR2: lambda a, b: 1 - (a | b),
    GateType.XOR2: lambda a, b: a ^ b,
    GateType.XNOR2: lambda a, b: 1 - (a ^ b),
}


class TestEvaluateGate:
    @pytest.mark.parametrize("gtype", sorted(TWO_INPUT_TRUTH, key=str))
    def test_two_input_truth_tables(self, gtype):
        fn = TWO_INPUT_TRUTH[gtype]
        for a in (0, 1):
            for b in (0, 1):
                assert evaluate_gate(gtype, [a, b]) == fn(a, b)

    def test_unary_gates(self):
        assert evaluate_gate(GateType.BUF, [0]) == 0
        assert evaluate_gate(GateType.BUF, [1]) == 1
        assert evaluate_gate(GateType.NOT, [0]) == 1
        assert evaluate_gate(GateType.NOT, [1]) == 0

    def test_constants(self):
        assert evaluate_gate(GateType.CONST0, []) == 0
        assert evaluate_gate(GateType.CONST1, []) == 1

    def test_mux_selects_second_input_when_sel_high(self):
        for sel in (0, 1):
            for d0 in (0, 1):
                for d1 in (0, 1):
                    expect = d1 if sel else d0
                    assert evaluate_gate(GateType.MUX2, [sel, d0, d1]) == expect

    def test_every_gate_type_has_arity(self):
        assert set(GATE_ARITY) == set(GateType)


class TestGate:
    def test_arity_mismatch_raises(self):
        with pytest.raises(ValueError):
            Gate(GateType.AND2, (0,), 1)

    def test_gate_is_frozen(self):
        g = Gate(GateType.NOT, (0,), 1)
        with pytest.raises(AttributeError):
            g.output = 5


class TestNetlistConstruction:
    def test_add_input_and_gate(self):
        nl = Netlist(name="t")
        a = nl.add_input("a")
        b = nl.add_input("b")
        out = nl.add_gate(GateType.AND2, (a, b))
        nl.mark_output(out)
        nl.validate()
        assert nl.n_gates == 1
        assert nl.n_nets == 3
        assert nl.primary_inputs == [a, b]
        assert nl.primary_outputs == [out]

    def test_gate_referencing_unknown_net_raises(self):
        nl = Netlist()
        with pytest.raises(NetlistError):
            nl.add_gate(GateType.NOT, (7,))

    def test_mark_output_unknown_net_raises(self):
        nl = Netlist()
        with pytest.raises(NetlistError):
            nl.mark_output(3)

    def test_floating_net_fails_validation(self):
        nl = Netlist()
        nl.new_net()  # never driven, not an input
        with pytest.raises(NetlistError):
            nl.validate()

    def test_multiple_drivers_fails_validation(self):
        nl = Netlist()
        a = nl.add_input()
        out = nl.add_gate(GateType.BUF, (a,))
        nl.gates.append(Gate(GateType.NOT, (a,), out))
        with pytest.raises(NetlistError):
            nl.validate()


class TestNetlistEvaluate:
    def _xor_netlist(self):
        nl = Netlist()
        a = nl.add_input("a")
        b = nl.add_input("b")
        out = nl.add_gate(GateType.XOR2, (a, b))
        nl.mark_output(out)
        return nl, a, b

    def test_evaluate_full_truth_table(self):
        nl, a, b = self._xor_netlist()
        for va in (0, 1):
            for vb in (0, 1):
                values = nl.evaluate({a: va, b: vb})
                assert values[nl.primary_outputs[0]] == va ^ vb

    def test_evaluate_outputs_order(self):
        nl = Netlist()
        a = nl.add_input()
        n1 = nl.add_gate(GateType.NOT, (a,))
        n2 = nl.add_gate(GateType.BUF, (a,))
        nl.mark_output(n1)
        nl.mark_output(n2)
        assert nl.evaluate_outputs([0]) == [1, 0]
        assert nl.evaluate_outputs([1]) == [0, 1]

    def test_missing_input_raises(self):
        nl, a, b = self._xor_netlist()
        with pytest.raises(NetlistError):
            nl.evaluate({a: 1})

    def test_wrong_bit_count_raises(self):
        nl, _, __ = self._xor_netlist()
        with pytest.raises(NetlistError):
            nl.evaluate_outputs([1])


class TestNetlistStructure:
    def test_levelize_and_depth(self):
        nl = Netlist()
        a = nl.add_input()
        b = nl.add_input()
        n1 = nl.add_gate(GateType.AND2, (a, b))   # level 1
        n2 = nl.add_gate(GateType.NOT, (n1,))     # level 2
        n3 = nl.add_gate(GateType.OR2, (n2, a))   # level 3
        nl.mark_output(n3)
        level = nl.levelize()
        assert level[a] == 0 and level[b] == 0
        assert level[n1] == 1 and level[n2] == 2 and level[n3] == 3
        assert nl.depth() == 3

    def test_fanout_counts_include_primary_outputs(self):
        nl = Netlist()
        a = nl.add_input()
        n1 = nl.add_gate(GateType.NOT, (a,))
        n2 = nl.add_gate(GateType.BUF, (n1,))
        nl.mark_output(n1)
        nl.mark_output(n2)
        fo = nl.fanout_counts()
        assert fo[a] == 1
        assert fo[n1] == 2  # drives BUF input + is a primary output
        assert fo[n2] == 1  # primary output load only

    def test_gate_histogram(self):
        nl = Netlist()
        a = nl.add_input()
        nl.add_gate(GateType.NOT, (a,))
        nl.add_gate(GateType.NOT, (a,))
        nl.add_gate(GateType.BUF, (a,))
        hist = nl.gate_histogram()
        assert hist[GateType.NOT] == 2
        assert hist[GateType.BUF] == 1

    def test_stats_keys(self):
        nl = Netlist()
        a = nl.add_input()
        nl.mark_output(nl.add_gate(GateType.NOT, (a,)))
        stats = nl.stats()
        assert stats == {"nets": 2, "gates": 1, "inputs": 1,
                         "outputs": 1, "depth": 1}

    def test_empty_netlist_depth_zero(self):
        assert Netlist().depth() == 0
