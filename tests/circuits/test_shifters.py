"""Tests for barrel shifters."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits.builder import CircuitBuilder
from repro.circuits.shifters import (
    barrel_shift_left,
    barrel_shift_right,
    build_barrel_shifter,
    rotate_left,
)


def _build_right_with_sticky(width, amt_bits):
    b = CircuitBuilder()
    data = b.input_bus(width, "d")
    amount = b.input_bus(amt_bits, "amt")
    out, sticky = barrel_shift_right(b, data, amount, sticky=True)
    b.mark_output_bus(out)
    b.netlist.mark_output(sticky)
    return b.build()


def _run(netlist, value, amount, width, amt_bits):
    bits = [(value >> i) & 1 for i in range(width)]
    bits += [(amount >> i) & 1 for i in range(amt_bits)]
    return netlist.evaluate_outputs(bits)


class TestBarrelShiftRight:
    @given(value=st.integers(0, 2**16 - 1), amount=st.integers(0, 31))
    @settings(max_examples=120, deadline=None)
    def test_matches_python_shift(self, value, amount):
        nl = _cached("right16")
        out = _run(nl, value, amount, 16, 5)
        got = sum(out[i] << i for i in range(16))
        assert got == value >> amount

    @given(value=st.integers(0, 2**16 - 1), amount=st.integers(0, 31))
    @settings(max_examples=120, deadline=None)
    def test_sticky_collects_dropped_bits(self, value, amount):
        nl = _cached("right16")
        out = _run(nl, value, amount, 16, 5)
        dropped = value & ((1 << min(amount, 16)) - 1) if amount else 0
        assert out[16] == (1 if dropped else 0)


class TestBarrelShiftLeft:
    @given(value=st.integers(0, 2**16 - 1), amount=st.integers(0, 31))
    @settings(max_examples=120, deadline=None)
    def test_matches_python_shift(self, value, amount):
        nl = _cached("left16")
        out = _run(nl, value, amount, 16, 5)
        got = sum(out[i] << i for i in range(16))
        assert got == (value << amount) & 0xFFFF


class TestRotate:
    @given(value=st.integers(0, 255), amount=st.integers(0, 7))
    @settings(max_examples=80, deadline=None)
    def test_rotate_left(self, value, amount):
        nl = _cached("rot8")
        out = _run(nl, value, amount, 8, 3)
        got = sum(out[i] << i for i in range(8))
        expect = ((value << amount) | (value >> (8 - amount))) & 0xFF \
            if amount else value
        assert got == expect


class TestBuildHelpers:
    def test_build_right(self):
        nl = build_barrel_shifter(32, "right")
        assert len(nl.primary_inputs) == 32 + 5
        assert len(nl.primary_outputs) == 32

    def test_build_left(self):
        nl = build_barrel_shifter(32, "left")
        assert len(nl.primary_outputs) == 32

    def test_bad_direction_raises(self):
        with pytest.raises(ValueError):
            build_barrel_shifter(8, "sideways")


_CACHE = {}


def _cached(kind):
    if kind in _CACHE:
        return _CACHE[kind]
    if kind == "right16":
        nl = _build_right_with_sticky(16, 5)
    elif kind == "left16":
        b = CircuitBuilder()
        data = b.input_bus(16)
        amount = b.input_bus(5)
        b.mark_output_bus(barrel_shift_left(b, data, amount))
        nl = b.build()
    elif kind == "rot8":
        b = CircuitBuilder()
        data = b.input_bus(8)
        amount = b.input_bus(3)
        b.mark_output_bus(rotate_left(b, data, amount))
        nl = b.build()
    _CACHE[kind] = nl
    return nl
