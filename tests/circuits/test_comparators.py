"""Tests for gate-level comparators."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits.builder import CircuitBuilder
from repro.circuits.comparators import (
    build_comparator,
    unsigned_compare,
    unsigned_less_than,
)

_CMP8 = build_comparator(8)


class TestUnsignedCompare:
    def test_exhaustive_small(self):
        nl = build_comparator(3)
        for a in range(8):
            for b in range(8):
                bits = [(a >> i) & 1 for i in range(3)]
                bits += [(b >> i) & 1 for i in range(3)]
                lt, eq, gt = nl.evaluate_outputs(bits)
                assert (lt, eq, gt) == (int(a < b), int(a == b), int(a > b))

    @given(a=st.integers(0, 255), b=st.integers(0, 255))
    @settings(max_examples=150, deadline=None)
    def test_width8_random(self, a, b):
        bits = [(a >> i) & 1 for i in range(8)]
        bits += [(b >> i) & 1 for i in range(8)]
        lt, eq, gt = _CMP8.evaluate_outputs(bits)
        assert (lt, eq, gt) == (int(a < b), int(a == b), int(a > b))

    def test_onehot_invariant(self):
        # exactly one of lt/eq/gt is set, always
        for a in range(8):
            for b in range(8):
                bits = [(a >> i) & 1 for i in range(3)]
                bits += [(b >> i) & 1 for i in range(3)]
                nl = build_comparator(3)
                assert sum(nl.evaluate_outputs(bits)) == 1


class TestUnsignedLessThan:
    @given(a=st.integers(0, 63), b=st.integers(0, 63))
    @settings(max_examples=100, deadline=None)
    def test_matches_python(self, a, b):
        bld = CircuitBuilder()
        ba = bld.input_bus(6)
        bb = bld.input_bus(6)
        lt = unsigned_less_than(bld, ba, bb)
        bld.netlist.mark_output(lt)
        nl = bld.build()
        bits = [(a >> i) & 1 for i in range(6)]
        bits += [(b >> i) & 1 for i in range(6)]
        assert nl.evaluate_outputs(bits)[0] == int(a < b)


def test_width_mismatch_raises():
    import pytest

    bld = CircuitBuilder()
    with pytest.raises(ValueError):
        unsigned_compare(bld, bld.input_bus(4), bld.input_bus(3))
