"""Validate the softfloat-lite reference models against numpy float32.

The reference models define the exact semantics the gate-level FP units
must match (RNE, DAZ/FTZ, canonical qNaN).  Here we check that, on
inputs and outputs where IEEE-754 and our simplifications agree (normal
operands, non-subnormal results), the reference models are bit-exact
with numpy's float32 arithmetic.
"""

import struct

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits.refmodels import (
    INF,
    QNAN,
    bits_to_float,
    compose32,
    decompose32,
    float_to_bits,
    fp32_add_ref,
    fp32_mul_ref,
    int_add_ref,
    int_mul_ref,
    is_inf32,
    is_nan32,
    is_zero32_daz,
)

np.seterr(all="ignore")


def _is_normal(bits):
    e = (bits >> 23) & 0xFF
    return e not in (0, 0xFF)


def _f32(bits):
    return np.float32(struct.unpack("<f", struct.pack("<I", bits))[0])


def _assert_matches_numpy(op_ref, np_op, a, b):
    if not (_is_normal(a) and _is_normal(b)):
        return
    want_bits = float_to_bits(float(np_op(_f32(a), _f32(b))))
    we = (want_bits >> 23) & 0xFF
    if we == 0 and (want_bits & 0x7FFFFFFF):
        return  # subnormal result: FTZ legitimately differs
    got = op_ref(a, b)
    if we == 0xFF and (want_bits & 0x7FFFFF):
        assert got == QNAN
    else:
        assert got == want_bits, (hex(a), hex(b), hex(want_bits), hex(got))


class TestIntRefs:
    @given(a=st.integers(0, 2**32 - 1), b=st.integers(0, 2**32 - 1))
    @settings(max_examples=100, deadline=None)
    def test_add(self, a, b):
        s, c = int_add_ref(a, b)
        assert s == (a + b) & 0xFFFFFFFF
        assert c == (a + b) >> 32

    @given(a=st.integers(0, 2**32 - 1), b=st.integers(0, 2**32 - 1))
    @settings(max_examples=100, deadline=None)
    def test_mul(self, a, b):
        assert int_mul_ref(a, b) == (a * b) & 0xFFFFFFFF
        assert int_mul_ref(a, b, full=True) == a * b


class TestFieldHelpers:
    @given(bits=st.integers(0, 2**32 - 1))
    @settings(max_examples=100, deadline=None)
    def test_decompose_compose_roundtrip(self, bits):
        s, e, m = decompose32(bits)
        assert compose32(s, e, m) == bits

    def test_classifiers(self):
        assert is_nan32(QNAN)
        assert not is_nan32(INF)
        assert is_inf32(INF)
        assert is_inf32(INF | 0x80000000)
        assert is_zero32_daz(0)
        assert is_zero32_daz(0x00000001)  # subnormal counts as zero (DAZ)
        assert not is_zero32_daz(float_to_bits(1.0))

    def test_float_roundtrip(self):
        for v in (0.0, 1.0, -2.5, 3.14159, 1e30, -1e-30):
            assert bits_to_float(float_to_bits(v)) == np.float32(v)


class TestFpAddVsNumpy:
    @given(a=st.integers(0, 2**32 - 1), b=st.integers(0, 2**32 - 1))
    @settings(max_examples=400, deadline=None)
    def test_random_bit_patterns(self, a, b):
        _assert_matches_numpy(fp32_add_ref, lambda x, y: x + y, a, b)

    @given(
        a=st.floats(min_value=2.0**-100, max_value=2.0**100, allow_nan=False, width=32),
        b=st.floats(min_value=2.0**-100, max_value=2.0**100, allow_nan=False, width=32),
    )
    @settings(max_examples=300, deadline=None)
    def test_positive_floats(self, a, b):
        _assert_matches_numpy(fp32_add_ref, lambda x, y: x + y,
                              float_to_bits(a), float_to_bits(b))

    @given(a=st.floats(min_value=-(2.0**66), max_value=2.0**66, allow_nan=False,
                       width=32))
    @settings(max_examples=200, deadline=None)
    def test_catastrophic_cancellation(self, a):
        bits = float_to_bits(a)
        neg = bits ^ 0x80000000
        assert fp32_add_ref(bits, neg) == 0  # x + (-x) == +0 under RNE

    def test_specials(self):
        one = float_to_bits(1.0)
        assert fp32_add_ref(QNAN, one) == QNAN
        assert fp32_add_ref(one, QNAN) == QNAN
        assert fp32_add_ref(INF, one) == INF
        assert fp32_add_ref(INF, INF) == INF
        assert fp32_add_ref(INF, INF | 0x80000000) == QNAN  # inf - inf
        assert fp32_add_ref(0, one) == one
        assert fp32_add_ref(one, 0) == one
        assert fp32_add_ref(0x80000000, 0x80000000) == 0x80000000  # -0 + -0
        assert fp32_add_ref(0x80000000, 0) == 0  # -0 + +0 = +0

    def test_overflow_to_inf(self):
        big = float_to_bits(3.4e38)
        assert fp32_add_ref(big, big) == INF

    def test_daz_input(self):
        sub = 0x00000001  # smallest subnormal, treated as zero
        one = float_to_bits(1.0)
        assert fp32_add_ref(sub, one) == one


class TestFpMulVsNumpy:
    @given(a=st.integers(0, 2**32 - 1), b=st.integers(0, 2**32 - 1))
    @settings(max_examples=400, deadline=None)
    def test_random_bit_patterns(self, a, b):
        _assert_matches_numpy(fp32_mul_ref, lambda x, y: x * y, a, b)

    def test_specials(self):
        one = float_to_bits(1.0)
        two = float_to_bits(2.0)
        assert fp32_mul_ref(one, two) == two
        assert fp32_mul_ref(QNAN, one) == QNAN
        assert fp32_mul_ref(INF, one) == INF
        assert fp32_mul_ref(INF, 0) == QNAN  # inf * 0
        assert fp32_mul_ref(INF, two | 0x80000000) == INF | 0x80000000
        assert fp32_mul_ref(0, one) == 0
        assert fp32_mul_ref(one | 0x80000000, two) == two | 0x80000000

    def test_overflow_and_underflow(self):
        big = float_to_bits(3e38)
        tiny = float_to_bits(1e-38)
        assert fp32_mul_ref(big, big) == INF
        assert fp32_mul_ref(tiny, tiny) == 0  # FTZ

    @given(a=st.floats(min_value=0.5, max_value=2.0, width=32))
    @settings(max_examples=100, deadline=None)
    def test_mul_by_one_is_identity(self, a):
        bits = float_to_bits(a)
        assert fp32_mul_ref(bits, float_to_bits(1.0)) == bits
