"""Tests for leading-zero counter and priority encoder."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits.builder import CircuitBuilder
from repro.circuits.encoders import build_lzc, leading_zero_counter, priority_encoder


def clz(value, width):
    """Reference count-leading-zeros."""
    for i in range(width - 1, -1, -1):
        if (value >> i) & 1:
            return width - 1 - i
    return width


_LZC_CACHE = {}


def _lzc_netlist(width):
    if width not in _LZC_CACHE:
        _LZC_CACHE[width] = build_lzc(width)
    return _LZC_CACHE[width]


class TestLeadingZeroCounter:
    @pytest.mark.parametrize("width", [1, 2, 3, 4, 5, 8])
    def test_exhaustive_small_widths(self, width):
        nl = _lzc_netlist(width)
        count_bits = len(nl.primary_outputs) - 1
        for value in range(1 << width):
            out = nl.evaluate_outputs([(value >> i) & 1 for i in range(width)])
            got = sum(out[i] << i for i in range(count_bits))
            assert got == clz(value, width), (width, value)
            assert out[count_bits] == (1 if value == 0 else 0)

    @given(value=st.integers(0, 2**28 - 1))
    @settings(max_examples=150, deadline=None)
    def test_width28_matches_reference(self, value):
        nl = _lzc_netlist(28)
        count_bits = len(nl.primary_outputs) - 1
        out = nl.evaluate_outputs([(value >> i) & 1 for i in range(28)])
        got = sum(out[i] << i for i in range(count_bits))
        assert got == clz(value, 28)

    def test_empty_input_raises(self):
        b = CircuitBuilder()
        with pytest.raises(ValueError):
            leading_zero_counter(b, b.input_bus(0))


class TestPriorityEncoder:
    @pytest.mark.parametrize("width", [2, 4, 8])
    def test_exhaustive(self, width):
        b = CircuitBuilder()
        data = b.input_bus(width)
        index, valid = priority_encoder(b, data)
        b.mark_output_bus(index)
        b.netlist.mark_output(valid)
        nl = b.build()
        idx_bits = len(index)
        for value in range(1 << width):
            out = nl.evaluate_outputs([(value >> i) & 1 for i in range(width)])
            got_valid = out[idx_bits]
            if value == 0:
                assert got_valid == 0
            else:
                got = sum(out[i] << i for i in range(idx_bits))
                assert got_valid == 1
                assert got == value.bit_length() - 1, (width, value)
