"""Tests for integer multiplier generators."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits.multipliers import (
    MULTIPLIER_ARCHITECTURES,
    build_int_multiplier,
)

ARCHS = sorted(MULTIPLIER_ARCHITECTURES)


def run_mul(netlist, a, b, width, out_width):
    bits = [(a >> i) & 1 for i in range(width)]
    bits += [(b >> i) & 1 for i in range(width)]
    out = netlist.evaluate_outputs(bits)
    return sum(out[i] << i for i in range(out_width))


class TestMultiplierArchitectures:
    @pytest.mark.parametrize("arch", ARCHS)
    def test_exhaustive_4bit_full_product(self, arch):
        nl = build_int_multiplier(4, arch, full_product=True)
        for a in range(16):
            for b in range(16):
                assert run_mul(nl, a, b, 4, 8) == a * b, (arch, a, b)

    @pytest.mark.parametrize("arch", ARCHS)
    @given(a=st.integers(0, 255), b=st.integers(0, 255))
    @settings(max_examples=60, deadline=None)
    def test_8bit_truncated(self, arch, a, b):
        nl = _cached_mul8(arch)
        assert run_mul(nl, a, b, 8, 8) == (a * b) & 0xFF

    @pytest.mark.parametrize("arch", ARCHS)
    def test_32bit_corner_values(self, arch):
        nl = _cached_mul32(arch)
        mask = (1 << 32) - 1
        for a, b in [(0, 0), (1, mask), (mask, mask), (0xFFFF, 0x10001),
                     (0x12345678, 0x9ABCDEF0)]:
            assert run_mul(nl, a, b, 32, 32) == (a * b) & mask

    def test_unknown_architecture_raises(self):
        with pytest.raises(ValueError):
            build_int_multiplier(8, "booth")

    def test_wallace_is_shallower_than_array(self):
        array = _cached_mul32("array")
        wallace = _cached_mul32("wallace")
        assert wallace.depth() < array.depth()


_MUL_CACHE = {}


def _cached_mul8(arch):
    key = ("mul8", arch)
    if key not in _MUL_CACHE:
        _MUL_CACHE[key] = build_int_multiplier(8, arch)
    return _MUL_CACHE[key]


def _cached_mul32(arch):
    key = ("mul32", arch)
    if key not in _MUL_CACHE:
        _MUL_CACHE[key] = build_int_multiplier(32, arch)
    return _MUL_CACHE[key]
