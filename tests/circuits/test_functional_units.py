"""Tests for the FunctionalUnit registry and operand packing."""

import numpy as np
import pytest

from repro.circuits.functional_units import (
    PAPER_UNITS,
    available_units,
    build_functional_unit,
)


class TestRegistry:
    def test_paper_units_all_registered(self):
        for name in PAPER_UNITS:
            assert name in available_units()

    def test_unknown_unit_raises(self):
        with pytest.raises(ValueError):
            build_functional_unit("div")

    def test_int_add_architecture_kwarg(self):
        ripple = build_functional_unit("int_add", architecture="ripple")
        cla = build_functional_unit("int_add", architecture="cla")
        assert ripple.netlist.depth() != cla.netlist.depth()

    def test_narrow_width_kwarg(self):
        fu = build_functional_unit("int_add", width=8)
        assert fu.operand_width == 8
        assert fu.compute(200, 100) == (300 & 0xFF)


class TestOperandPacking:
    @pytest.fixture(scope="class")
    def fu(self):
        return build_functional_unit("int_add", width=8)

    def test_encode_inputs_lsb_first(self, fu):
        bits = fu.encode_inputs(0b1, 0b10)
        assert bits[0] == 1 and sum(bits[:8]) == 1
        assert bits[9] == 1 and sum(bits[8:]) == 1

    def test_encode_masks_overflow(self, fu):
        assert fu.encode_inputs(1 << 8, 0) == [0] * 16

    def test_encode_array_matches_scalar(self, fu):
        a = np.array([3, 255, 0, 170], dtype=np.uint64)
        b = np.array([7, 1, 0, 85], dtype=np.uint64)
        mat = fu.encode_inputs_array(a, b)
        assert mat.shape == (4, 16)
        for row, (ai, bi) in enumerate(zip(a, b)):
            assert list(mat[row]) == fu.encode_inputs(int(ai), int(bi))

    def test_decode_result_roundtrip(self, fu):
        out_bits = [(123 >> i) & 1 for i in range(8)]
        assert fu.decode_result(out_bits) == 123


class TestSoftwareEvaluation:
    @pytest.mark.parametrize("name", PAPER_UNITS)
    def test_simulate_logic_matches_reference(self, name):
        import random

        fu = build_functional_unit(name)
        random.seed(hash(name) % (2**32))
        n = 20 if name.startswith("fp") else 30
        for _ in range(n):
            a, b = random.getrandbits(32), random.getrandbits(32)
            assert fu.simulate_logic(a, b) == fu.compute(a, b)

    def test_wrong_input_count_validated(self):
        from repro.circuits.adders import build_int_adder
        from repro.circuits.functional_units import FunctionalUnit

        with pytest.raises(ValueError):
            FunctionalUnit(
                name="bad",
                netlist=build_int_adder(8),
                operand_width=16,  # netlist only has 16 input bits total
                result_width=16,
                reference=lambda a, b: 0,
            )
