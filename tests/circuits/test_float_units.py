"""Gate-level FP units vs the bit-exact reference models."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits.functional_units import build_functional_unit
from repro.circuits.refmodels import INF, QNAN, float_to_bits


@pytest.fixture(scope="module")
def fp_add():
    return build_functional_unit("fp_add")


@pytest.fixture(scope="module")
def fp_mul():
    return build_functional_unit("fp_mul")


SPECIALS = [
    0x00000000, 0x80000000,          # +-0
    0x3F800000, 0xBF800000,          # +-1
    0x00000001, 0x807FFFFF,          # subnormals (DAZ)
    0x00800000, 0x80800000,          # smallest normals
    0x7F7FFFFF, 0xFF7FFFFF,          # largest finite
    0x7F800000, 0xFF800000,          # +-inf
    0x7FC00000, 0x7F800001,          # NaNs
    0x3FFFFFFF, 0x40000000,          # rounding boundary neighbours
]


class TestFpAddNetlist:
    def test_special_value_cross_product(self, fp_add):
        for a in SPECIALS:
            for b in SPECIALS:
                got = fp_add.simulate_logic(a, b)
                want = fp_add.compute(a, b)
                assert got == want, (hex(a), hex(b), hex(got), hex(want))

    @given(a=st.integers(0, 2**32 - 1), b=st.integers(0, 2**32 - 1))
    @settings(max_examples=60, deadline=None)
    def test_random_bit_patterns(self, fp_add, a, b):
        assert fp_add.simulate_logic(a, b) == fp_add.compute(a, b)

    @given(
        a=st.floats(min_value=-1e6, max_value=1e6, allow_nan=False, width=32),
        b=st.floats(min_value=-1e6, max_value=1e6, allow_nan=False, width=32),
    )
    @settings(max_examples=60, deadline=None)
    def test_ordinary_magnitudes(self, fp_add, a, b):
        ab, bb = float_to_bits(a), float_to_bits(b)
        assert fp_add.simulate_logic(ab, bb) == fp_add.compute(ab, bb)

    def test_near_cancellation(self, fp_add):
        # operands differing only in the last mantissa bits: worst-case
        # normalization shifts
        random.seed(11)
        for _ in range(40):
            base = random.getrandbits(23) | (random.randrange(1, 255) << 23)
            tweak = base ^ random.randrange(1, 8)
            a, b = base, tweak | 0x80000000
            assert fp_add.simulate_logic(a, b) == fp_add.compute(a, b)

    def test_alignment_sticky_paths(self, fp_add):
        # exponent gaps around the 24/27/32 shift boundaries
        for gap in (0, 1, 2, 3, 4, 23, 24, 25, 26, 27, 28, 31, 32, 40, 200):
            ea = 150
            eb = max(1, ea - gap)
            a = (ea << 23) | 0x2AAAAA
            b = (eb << 23) | 0x555555
            for sb in (0, 0x80000000):
                got = fp_add.simulate_logic(a, b | sb)
                want = fp_add.compute(a, b | sb)
                assert got == want, (gap, hex(got), hex(want))


class TestFpMulNetlist:
    def test_special_value_cross_product(self, fp_mul):
        for a in SPECIALS:
            for b in SPECIALS:
                got = fp_mul.simulate_logic(a, b)
                want = fp_mul.compute(a, b)
                assert got == want, (hex(a), hex(b), hex(got), hex(want))

    @given(a=st.integers(0, 2**32 - 1), b=st.integers(0, 2**32 - 1))
    @settings(max_examples=40, deadline=None)
    def test_random_bit_patterns(self, fp_mul, a, b):
        assert fp_mul.simulate_logic(a, b) == fp_mul.compute(a, b)

    def test_rounding_tie_cases(self, fp_mul):
        # products that land exactly on the rounding boundary
        cases = [
            (0x3FC00000, 0x3FC00000),  # 1.5 * 1.5 = 2.25
            (0x3F800001, 0x3F800001),  # (1+ulp)^2
            (0x3FFFFFFF, 0x3FFFFFFF),
            (0x40490FDB, 0x40490FDB),  # pi^2
        ]
        for a, b in cases:
            assert fp_mul.simulate_logic(a, b) == fp_mul.compute(a, b)
