"""Unit tests for the structural builder DSL."""

import pytest

from repro.circuits.builder import Bus, CircuitBuilder


def eval_bus(netlist, input_bits, bus):
    """Evaluate a netlist and return the integer value of ``bus``."""
    values = netlist.evaluate(dict(zip(netlist.primary_inputs, input_bits)))
    word = 0
    for i, net in enumerate(bus):
        word |= values[net] << i
    return word


def bits_of(value, width):
    return [(value >> i) & 1 for i in range(width)]


class TestBus:
    def test_slicing_returns_bus(self):
        bus = Bus([5, 6, 7, 8])
        assert isinstance(bus[1:3], Bus)
        assert bus[1:3] == (6, 7)

    def test_indexing_returns_net_id(self):
        bus = Bus([5, 6, 7])
        assert bus[0] == 5
        assert bus.msb() == 7

    def test_width(self):
        assert Bus([1, 2, 3]).width == 3


class TestConstants:
    def test_const_bits_cached(self):
        b = CircuitBuilder()
        assert b.const_bit(0) == b.const_bit(0)
        assert b.const_bit(1) == b.const_bit(1)
        assert b.const_bit(0) != b.const_bit(1)

    @pytest.mark.parametrize("value", [0, 1, 5, 0xAB, 255])
    def test_const_bus_value(self, value):
        b = CircuitBuilder()
        bus = b.const_bus(value, 8)
        nl = b.netlist
        nl.validate()
        assert eval_bus(nl, [], bus) == value


class TestWordOps:
    @pytest.mark.parametrize("a,x", [(0b1010, 0b0110), (0, 0xF), (0xF, 0xF)])
    def test_bitwise_ops(self, a, x):
        b = CircuitBuilder()
        ba = b.input_bus(4, "a")
        bx = b.input_bus(4, "b")
        out_and = b.and_bus(ba, bx)
        out_or = b.or_bus(ba, bx)
        out_xor = b.xor_bus(ba, bx)
        out_not = b.not_bus(ba)
        nl = b.netlist
        bits = bits_of(a, 4) + bits_of(x, 4)
        assert eval_bus(nl, bits, out_and) == (a & x)
        assert eval_bus(nl, bits, out_or) == (a | x)
        assert eval_bus(nl, bits, out_xor) == (a ^ x)
        assert eval_bus(nl, bits, out_not) == (~a) & 0xF

    def test_mux_bus(self):
        b = CircuitBuilder()
        sel = b.input_bit("sel")
        ba = b.input_bus(4, "a")
        bx = b.input_bus(4, "b")
        out = b.mux_bus(sel, ba, bx)
        nl = b.netlist
        a, x = 0b0011, 0b1100
        assert eval_bus(nl, [0] + bits_of(a, 4) + bits_of(x, 4), out) == a
        assert eval_bus(nl, [1] + bits_of(a, 4) + bits_of(x, 4), out) == x

    def test_width_mismatch_raises(self):
        b = CircuitBuilder()
        with pytest.raises(ValueError):
            b.and_bus(b.input_bus(4), b.input_bus(3))

    def test_and_bit_bus_masks(self):
        b = CircuitBuilder()
        bit = b.input_bit()
        bus = b.input_bus(4)
        out = b.and_bit_bus(bit, bus)
        nl = b.netlist
        assert eval_bus(nl, [0] + bits_of(0xF, 4), out) == 0
        assert eval_bus(nl, [1] + bits_of(0xA, 4), out) == 0xA


class TestReductions:
    @pytest.mark.parametrize("value", range(16))
    def test_reductions_match_python(self, value):
        b = CircuitBuilder()
        bus = b.input_bus(4)
        r_and = b.and_reduce(bus)
        r_or = b.or_reduce(bus)
        r_xor = b.xor_reduce(bus)
        nl = b.netlist
        bits = bits_of(value, 4)
        values = nl.evaluate(dict(zip(nl.primary_inputs, bits)))
        assert values[r_and] == (1 if value == 0xF else 0)
        assert values[r_or] == (1 if value else 0)
        assert values[r_xor] == bin(value).count("1") % 2

    def test_reduce_empty_raises(self):
        b = CircuitBuilder()
        with pytest.raises(ValueError):
            b.or_reduce([])

    def test_single_bit_reduction_is_identity(self):
        b = CircuitBuilder()
        bit = b.input_bit()
        assert b.and_reduce([bit]) == bit


class TestStructuralUtilities:
    def test_zero_extend(self):
        b = CircuitBuilder()
        bus = b.input_bus(3)
        out = b.zero_extend(bus, 6)
        nl = b.netlist
        assert out.width == 6
        assert eval_bus(nl, bits_of(0b101, 3), out) == 0b101

    def test_zero_extend_narrower_raises(self):
        b = CircuitBuilder()
        with pytest.raises(ValueError):
            b.zero_extend(b.input_bus(4), 2)

    def test_shift_left_const(self):
        b = CircuitBuilder()
        bus = b.input_bus(4)
        out = b.shift_left_const(bus, 2, 8)
        nl = b.netlist
        assert eval_bus(nl, bits_of(0b1011, 4), out) == 0b101100

    def test_concat_orders_lsb_first(self):
        b = CircuitBuilder()
        lo = b.input_bus(2, "lo")
        hi = b.input_bus(2, "hi")
        out = b.concat(lo, hi)
        nl = b.netlist
        # lo = 0b01, hi = 0b10 -> word = 0b1001
        assert eval_bus(nl, bits_of(0b01, 2) + bits_of(0b10, 2), out) == 0b1001


class TestArithmeticCells:
    def test_half_adder_truth(self):
        b = CircuitBuilder()
        x = b.input_bit()
        y = b.input_bit()
        s, c = b.half_adder(x, y)
        nl = b.netlist
        for vx in (0, 1):
            for vy in (0, 1):
                values = nl.evaluate({x: vx, y: vy})
                assert values[s] == (vx + vy) % 2
                assert values[c] == (vx + vy) // 2

    def test_full_adder_truth(self):
        b = CircuitBuilder()
        x, y, z = b.input_bit(), b.input_bit(), b.input_bit()
        s, c = b.full_adder(x, y, z)
        nl = b.netlist
        for vx in (0, 1):
            for vy in (0, 1):
                for vz in (0, 1):
                    values = nl.evaluate({x: vx, y: vy, z: vz})
                    total = vx + vy + vz
                    assert values[s] == total % 2
                    assert values[c] == total // 2


class TestComparisons:
    def test_equal_bus(self):
        b = CircuitBuilder()
        ba = b.input_bus(4)
        bx = b.input_bus(4)
        eq = b.equal_bus(ba, bx)
        nl = b.netlist
        for a, x in [(3, 3), (3, 4), (0, 0), (15, 14)]:
            values = nl.evaluate(dict(zip(nl.primary_inputs,
                                          bits_of(a, 4) + bits_of(x, 4))))
            assert values[eq] == (1 if a == x else 0)

    def test_is_zero(self):
        b = CircuitBuilder()
        bus = b.input_bus(4)
        z = b.is_zero(bus)
        nl = b.netlist
        for v in range(16):
            values = nl.evaluate(dict(zip(nl.primary_inputs, bits_of(v, 4))))
            assert values[z] == (1 if v == 0 else 0)


def test_build_validates():
    b = CircuitBuilder(name="ok")
    bus = b.input_bus(2)
    b.mark_output_bus(b.not_bus(bus))
    nl = b.build()
    assert nl.name == "ok"
    assert nl.n_gates == 2
