"""Stdlib client for a running ``repro serve`` instance.

Thin ``urllib``-based wrapper so scripts (and the CI smoke job) can
query the server without any third-party HTTP dependency:

>>> client = ServeClient("127.0.0.1", 8000)
>>> client.health()["status"]
'healthy'
>>> client.predict(fu="int_add", a=3, b=4, voltage=0.9, temperature=25.0)
{'ok': True, 'delay_ps': ..., ...}

Resilience behavior: every predict request carries a ``deadline_ms``
budget derived from the client timeout (so the server can drop work
this client has already given up on); a ``429``/``503`` that advertises
``Retry-After`` is retried after the advertised delay (capped) instead
of failing immediately; and transport-reset backoff is jittered so a
fleet of shed clients does not re-converge on the same instant.

The retry/backoff plumbing itself lives in
:mod:`repro.serve.http` (:class:`~repro.serve.http.HttpTransport`),
shared with the remote store clients in :mod:`repro.remote`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from .http import (  # noqa: F401  (re-exported: public retry policy surface)
    MAX_HONORED_RETRY_AFTER_S,
    _RETRYABLE,
    HttpTransport,
    TransportError,
    _parse_retry_after,
    _retryable_reason,
)


class ServeError(TransportError):
    """Server-side failure (HTTP error status or per-request failure).

    ``retry_after`` carries the server's advertised backoff (seconds)
    when the failure was a shed (``429``) or unavailable (``503``)
    response that included one, else None.
    """


def _claim_predictions(status: int, body: Dict) -> Optional[Dict]:
    # 422 carries per-request results; surface them to the caller
    if status == 422 and "predictions" in body:
        return body
    return None


class ServeClient:
    """JSON client bound to one server address.

    Every call carries a per-request ``timeout``; transport resets are
    retried up to ``retries`` times with exponential backoff starting
    at ``backoff_s`` (jittered by up to ``jitter`` of itself, so a
    thundering herd of retriers decorrelates).  ``429``/``503``
    responses that advertise ``Retry-After`` are retried after the
    advertised delay (capped at :data:`MAX_HONORED_RETRY_AFTER_S`);
    other HTTP error statuses and timeouts are never retried.

    ``deadline_ms`` is attached to every predict request that does not
    set its own: by default the client's ``timeout`` (there is no
    point computing an answer this client will no longer read);
    pass ``deadline_ms=0`` to disable.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 8000,
                 timeout: float = 30.0, retries: int = 2,
                 backoff_s: float = 0.05, jitter: float = 0.25,
                 deadline_ms: Optional[float] = None) -> None:
        if deadline_ms is not None and deadline_ms < 0:
            raise ValueError("deadline_ms must be >= 0 (0 disables)")
        self._transport = HttpTransport(
            f"http://{host}:{port}", timeout=timeout, retries=retries,
            backoff_s=backoff_s, jitter=jitter, error_cls=ServeError)
        if deadline_ms is None:
            deadline_ms = timeout * 1e3 if timeout else 0.0
        self.deadline_ms = float(deadline_ms)

    @property
    def base_url(self) -> str:
        return self._transport.base_url

    @property
    def timeout(self) -> float:
        return self._transport.timeout

    @property
    def retries(self) -> int:
        return self._transport.retries

    @property
    def backoff_s(self) -> float:
        return self._transport.backoff_s

    @property
    def jitter(self) -> float:
        return self._transport.jitter

    # -- transport ------------------------------------------------------------

    def _retry_delay_s(self, attempt: int,
                       last: Optional[Exception]) -> float:
        return self._transport.retry_delay_s(attempt, last)

    def _call(self, path: str, payload: Optional[Dict] = None) -> Dict:
        return self._transport.call(path, payload,
                                    on_http_error=_claim_predictions)

    # -- endpoints ------------------------------------------------------------

    def health(self) -> Dict:
        """Health payload even when the node is not healthy: a
        degraded/draining server answers 503 with the same JSON body,
        which callers still want (that *is* the health report)."""
        try:
            return self._call("/health")
        except ServeError as exc:
            if exc.payload.get("status"):
                return exc.payload
            raise

    def stats(self) -> Dict:
        return self._call("/stats")

    def models(self) -> List[Dict]:
        return self._call("/models")["models"]

    def configure(self, batch_window_ms: Optional[float] = None,
                  max_batch: Optional[int] = None,
                  max_queue: Optional[int] = None,
                  default_deadline_ms: Optional[float] = None,
                  refresh_models: bool = False) -> Dict:
        payload: Dict = {}
        if batch_window_ms is not None:
            payload["batch_window_ms"] = batch_window_ms
        if max_batch is not None:
            payload["max_batch"] = max_batch
        if max_queue is not None:
            payload["max_queue"] = max_queue
        if default_deadline_ms is not None:
            payload["default_deadline_ms"] = default_deadline_ms
        if refresh_models:
            payload["refresh_models"] = True
        return self._call("/config", payload)

    def predict_many(self, requests: Sequence[Dict]) -> List[Dict]:
        """Batch predict; returns per-request dicts aligned with input.

        Requests without their own ``deadline_ms`` inherit the
        client's (see the class docstring).
        """
        reqs = [dict(r) for r in requests]
        if self.deadline_ms:
            for r in reqs:
                r.setdefault("deadline_ms", self.deadline_ms)
        body = self._call("/predict", {"requests": reqs})
        return body["predictions"]

    def predict(self, **request) -> Dict:
        """Single predict; raises :class:`ServeError` on failure."""
        result = self.predict_many([request])[0]
        if not result.get("ok"):
            raise ServeError(result.get("message", "prediction failed"),
                             payload=result)
        return result
