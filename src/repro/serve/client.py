"""Stdlib client for a running ``repro serve`` instance.

Thin ``urllib``-based wrapper so scripts (and the CI smoke job) can
query the server without any third-party HTTP dependency:

>>> client = ServeClient("127.0.0.1", 8000)
>>> client.health()["status"]
'healthy'
>>> client.predict(fu="int_add", a=3, b=4, voltage=0.9, temperature=25.0)
{'ok': True, 'delay_ps': ..., ...}

Resilience behavior: every predict request carries a ``deadline_ms``
budget derived from the client timeout (so the server can drop work
this client has already given up on); a ``429``/``503`` that advertises
``Retry-After`` is retried after the advertised delay (capped) instead
of failing immediately; and transport-reset backoff is jittered so a
fleet of shed clients does not re-converge on the same instant.
"""

from __future__ import annotations

import http.client
import json
import random
import socket
import time
import urllib.error
import urllib.request
from typing import Dict, List, Optional, Sequence

#: Never honor an advertised Retry-After longer than this — a confused
#: (or hostile) server must not park the client for minutes.
MAX_HONORED_RETRY_AFTER_S = 5.0


class ServeError(RuntimeError):
    """Server-side failure (HTTP error status or per-request failure).

    ``retry_after`` carries the server's advertised backoff (seconds)
    when the failure was a shed (``429``) or unavailable (``503``)
    response that included one, else None.
    """

    def __init__(self, message: str, status: int = 0,
                 payload: Optional[Dict] = None,
                 retry_after: Optional[float] = None) -> None:
        super().__init__(message)
        self.status = status
        self.payload = payload or {}
        self.retry_after = retry_after


def _parse_retry_after(header: Optional[str],
                       body: Dict) -> Optional[float]:
    """Advertised backoff from the ``Retry-After`` header (seconds
    form) or the JSON body's ``retry_after_s``, else None."""
    for candidate in (header, body.get("retry_after_s")):
        if candidate is None:
            continue
        try:
            value = float(candidate)
        except (TypeError, ValueError):
            continue
        if value >= 0:
            return value
    return None


#: Transport-level failures worth one more try: the connection died
#: before/mid response (server restarting a worker, listen backlog
#: momentarily full).  Timeouts and HTTP error statuses are NOT here —
#: a slow or failing request must surface, not silently re-run.
_RETRYABLE = (ConnectionResetError, ConnectionRefusedError,
              BrokenPipeError, ConnectionAbortedError,
              http.client.RemoteDisconnected, http.client.BadStatusLine)


def _retryable_reason(exc: Exception) -> bool:
    if isinstance(exc, _RETRYABLE):
        return True
    if isinstance(exc, urllib.error.URLError):
        reason = getattr(exc, "reason", None)
        return isinstance(reason, _RETRYABLE)
    return False


class ServeClient:
    """JSON client bound to one server address.

    Every call carries a per-request ``timeout``; transport resets are
    retried up to ``retries`` times with exponential backoff starting
    at ``backoff_s`` (jittered by up to ``jitter`` of itself, so a
    thundering herd of retriers decorrelates).  ``429``/``503``
    responses that advertise ``Retry-After`` are retried after the
    advertised delay (capped at :data:`MAX_HONORED_RETRY_AFTER_S`);
    other HTTP error statuses and timeouts are never retried.

    ``deadline_ms`` is attached to every predict request that does not
    set its own: by default the client's ``timeout`` (there is no
    point computing an answer this client will no longer read);
    pass ``deadline_ms=0`` to disable.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 8000,
                 timeout: float = 30.0, retries: int = 2,
                 backoff_s: float = 0.05, jitter: float = 0.25,
                 deadline_ms: Optional[float] = None) -> None:
        if retries < 0:
            raise ValueError("retries must be >= 0")
        if backoff_s < 0:
            raise ValueError("backoff_s must be >= 0")
        if not 0 <= jitter <= 1:
            raise ValueError("jitter must be in [0, 1]")
        if deadline_ms is not None and deadline_ms < 0:
            raise ValueError("deadline_ms must be >= 0 (0 disables)")
        self.base_url = f"http://{host}:{port}"
        self.timeout = timeout
        self.retries = retries
        self.backoff_s = backoff_s
        self.jitter = jitter
        if deadline_ms is None:
            deadline_ms = timeout * 1e3 if timeout else 0.0
        self.deadline_ms = float(deadline_ms)

    # -- transport ------------------------------------------------------------

    def _retry_delay_s(self, attempt: int,
                       last: Optional[Exception]) -> float:
        """Delay before retry ``attempt`` (1-based): the advertised
        ``Retry-After`` when the server gave one, else jittered
        exponential backoff."""
        if isinstance(last, ServeError) and last.retry_after is not None:
            return min(last.retry_after, MAX_HONORED_RETRY_AFTER_S)
        delay = self.backoff_s * (2 ** (attempt - 1))
        return delay * (1.0 + self.jitter * random.random())

    def _call(self, path: str, payload: Optional[Dict] = None) -> Dict:
        url = self.base_url + path
        data = None
        headers = {"Accept": "application/json"}
        if payload is not None:
            data = json.dumps(payload).encode()
            headers["Content-Type"] = "application/json"
        last: Optional[Exception] = None
        for attempt in range(self.retries + 1):
            if attempt:
                time.sleep(self._retry_delay_s(attempt, last))
            request = urllib.request.Request(url, data=data, headers=headers)
            try:
                with urllib.request.urlopen(request,
                                            timeout=self.timeout) as response:
                    return json.loads(response.read())
            except urllib.error.HTTPError as exc:
                try:
                    body = json.loads(exc.read())
                except (json.JSONDecodeError, ValueError):
                    body = {}
                # 422 carries per-request results; surface them to the caller
                if exc.code == 422 and "predictions" in body:
                    return body
                retry_after = _parse_retry_after(
                    exc.headers.get("Retry-After"), body)
                err = ServeError(body.get("error", str(exc)),
                                 status=exc.code, payload=body,
                                 retry_after=retry_after)
                if exc.code in (429, 503) and retry_after is not None:
                    last = err  # honor the advertised backoff and retry
                    continue
                raise err from None
            except socket.timeout:
                raise ServeError(
                    f"request to {url} timed out "
                    f"after {self.timeout}s") from None
            except urllib.error.URLError as exc:
                if isinstance(exc.reason, socket.timeout):
                    raise ServeError(
                        f"request to {url} timed out "
                        f"after {self.timeout}s") from None
                if not _retryable_reason(exc):
                    raise ServeError(
                        f"cannot reach {url}: {exc.reason}") from None
                last = exc
            except _RETRYABLE as exc:
                last = exc
        if isinstance(last, ServeError):
            raise last  # shed on every attempt: surface the final 429/503
        reason = getattr(last, "reason", last)
        raise ServeError(
            f"cannot reach {url} after {self.retries + 1} attempt(s): "
            f"{reason}") from None

    # -- endpoints ------------------------------------------------------------

    def health(self) -> Dict:
        """Health payload even when the node is not healthy: a
        degraded/draining server answers 503 with the same JSON body,
        which callers still want (that *is* the health report)."""
        try:
            return self._call("/health")
        except ServeError as exc:
            if exc.payload.get("status"):
                return exc.payload
            raise

    def stats(self) -> Dict:
        return self._call("/stats")

    def models(self) -> List[Dict]:
        return self._call("/models")["models"]

    def configure(self, batch_window_ms: Optional[float] = None,
                  max_batch: Optional[int] = None,
                  max_queue: Optional[int] = None,
                  default_deadline_ms: Optional[float] = None,
                  refresh_models: bool = False) -> Dict:
        payload: Dict = {}
        if batch_window_ms is not None:
            payload["batch_window_ms"] = batch_window_ms
        if max_batch is not None:
            payload["max_batch"] = max_batch
        if max_queue is not None:
            payload["max_queue"] = max_queue
        if default_deadline_ms is not None:
            payload["default_deadline_ms"] = default_deadline_ms
        if refresh_models:
            payload["refresh_models"] = True
        return self._call("/config", payload)

    def predict_many(self, requests: Sequence[Dict]) -> List[Dict]:
        """Batch predict; returns per-request dicts aligned with input.

        Requests without their own ``deadline_ms`` inherit the
        client's (see the class docstring).
        """
        reqs = [dict(r) for r in requests]
        if self.deadline_ms:
            for r in reqs:
                r.setdefault("deadline_ms", self.deadline_ms)
        body = self._call("/predict", {"requests": reqs})
        return body["predictions"]

    def predict(self, **request) -> Dict:
        """Single predict; raises :class:`ServeError` on failure."""
        result = self.predict_many([request])[0]
        if not result.get("ok"):
            raise ServeError(result.get("message", "prediction failed"),
                             payload=result)
        return result
