"""Stdlib client for a running ``repro serve`` instance.

Thin ``urllib``-based wrapper so scripts (and the CI smoke job) can
query the server without any third-party HTTP dependency:

>>> client = ServeClient("127.0.0.1", 8000)
>>> client.health()["status"]
'ok'
>>> client.predict(fu="int_add", a=3, b=4, voltage=0.9, temperature=25.0)
{'ok': True, 'delay_ps': ..., ...}
"""

from __future__ import annotations

import http.client
import json
import socket
import time
import urllib.error
import urllib.request
from typing import Dict, List, Optional, Sequence


class ServeError(RuntimeError):
    """Server-side failure (HTTP error status or per-request failure)."""

    def __init__(self, message: str, status: int = 0,
                 payload: Optional[Dict] = None) -> None:
        super().__init__(message)
        self.status = status
        self.payload = payload or {}


#: Transport-level failures worth one more try: the connection died
#: before/mid response (server restarting a worker, listen backlog
#: momentarily full).  Timeouts and HTTP error statuses are NOT here —
#: a slow or failing request must surface, not silently re-run.
_RETRYABLE = (ConnectionResetError, ConnectionRefusedError,
              BrokenPipeError, ConnectionAbortedError,
              http.client.RemoteDisconnected, http.client.BadStatusLine)


def _retryable_reason(exc: Exception) -> bool:
    if isinstance(exc, _RETRYABLE):
        return True
    if isinstance(exc, urllib.error.URLError):
        reason = getattr(exc, "reason", None)
        return isinstance(reason, _RETRYABLE)
    return False


class ServeClient:
    """JSON client bound to one server address.

    Every call carries a per-request ``timeout``; transport resets are
    retried up to ``retries`` times with exponential backoff starting
    at ``backoff_s``.  HTTP error statuses and timeouts are never
    retried.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 8000,
                 timeout: float = 30.0, retries: int = 2,
                 backoff_s: float = 0.05) -> None:
        if retries < 0:
            raise ValueError("retries must be >= 0")
        if backoff_s < 0:
            raise ValueError("backoff_s must be >= 0")
        self.base_url = f"http://{host}:{port}"
        self.timeout = timeout
        self.retries = retries
        self.backoff_s = backoff_s

    # -- transport ------------------------------------------------------------

    def _call(self, path: str, payload: Optional[Dict] = None) -> Dict:
        url = self.base_url + path
        data = None
        headers = {"Accept": "application/json"}
        if payload is not None:
            data = json.dumps(payload).encode()
            headers["Content-Type"] = "application/json"
        last: Optional[Exception] = None
        for attempt in range(self.retries + 1):
            if attempt:
                time.sleep(self.backoff_s * (2 ** (attempt - 1)))
            request = urllib.request.Request(url, data=data, headers=headers)
            try:
                with urllib.request.urlopen(request,
                                            timeout=self.timeout) as response:
                    return json.loads(response.read())
            except urllib.error.HTTPError as exc:
                try:
                    body = json.loads(exc.read())
                except (json.JSONDecodeError, ValueError):
                    body = {}
                # 422 carries per-request results; surface them to the caller
                if exc.code == 422 and "predictions" in body:
                    return body
                raise ServeError(body.get("error", str(exc)), status=exc.code,
                                 payload=body) from None
            except socket.timeout:
                raise ServeError(
                    f"request to {url} timed out "
                    f"after {self.timeout}s") from None
            except urllib.error.URLError as exc:
                if isinstance(exc.reason, socket.timeout):
                    raise ServeError(
                        f"request to {url} timed out "
                        f"after {self.timeout}s") from None
                if not _retryable_reason(exc):
                    raise ServeError(
                        f"cannot reach {url}: {exc.reason}") from None
                last = exc
            except _RETRYABLE as exc:
                last = exc
        reason = getattr(last, "reason", last)
        raise ServeError(
            f"cannot reach {url} after {self.retries + 1} attempt(s): "
            f"{reason}") from None

    # -- endpoints ------------------------------------------------------------

    def health(self) -> Dict:
        return self._call("/health")

    def stats(self) -> Dict:
        return self._call("/stats")

    def models(self) -> List[Dict]:
        return self._call("/models")["models"]

    def configure(self, batch_window_ms: Optional[float] = None,
                  max_batch: Optional[int] = None,
                  refresh_models: bool = False) -> Dict:
        payload: Dict = {}
        if batch_window_ms is not None:
            payload["batch_window_ms"] = batch_window_ms
        if max_batch is not None:
            payload["max_batch"] = max_batch
        if refresh_models:
            payload["refresh_models"] = True
        return self._call("/config", payload)

    def predict_many(self, requests: Sequence[Dict]) -> List[Dict]:
        """Batch predict; returns per-request dicts aligned with input."""
        body = self._call("/predict", {"requests": list(requests)})
        return body["predictions"]

    def predict(self, **request) -> Dict:
        """Single predict; raises :class:`ServeError` on failure."""
        result = self.predict_many([request])[0]
        if not result.get("ok"):
            raise ServeError(result.get("message", "prediction failed"),
                             payload=result)
        return result
