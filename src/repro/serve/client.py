"""Stdlib client for a running ``repro serve`` instance.

Thin ``urllib``-based wrapper so scripts (and the CI smoke job) can
query the server without any third-party HTTP dependency:

>>> client = ServeClient("127.0.0.1", 8000)
>>> client.health()["status"]
'ok'
>>> client.predict(fu="int_add", a=3, b=4, voltage=0.9, temperature=25.0)
{'ok': True, 'delay_ps': ..., ...}
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request
from typing import Dict, List, Optional, Sequence


class ServeError(RuntimeError):
    """Server-side failure (HTTP error status or per-request failure)."""

    def __init__(self, message: str, status: int = 0,
                 payload: Optional[Dict] = None) -> None:
        super().__init__(message)
        self.status = status
        self.payload = payload or {}


class ServeClient:
    """JSON client bound to one server address."""

    def __init__(self, host: str = "127.0.0.1", port: int = 8000,
                 timeout: float = 30.0) -> None:
        self.base_url = f"http://{host}:{port}"
        self.timeout = timeout

    # -- transport ------------------------------------------------------------

    def _call(self, path: str, payload: Optional[Dict] = None) -> Dict:
        url = self.base_url + path
        data = None
        headers = {"Accept": "application/json"}
        if payload is not None:
            data = json.dumps(payload).encode()
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(url, data=data, headers=headers)
        try:
            with urllib.request.urlopen(request,
                                        timeout=self.timeout) as response:
                body = json.loads(response.read())
        except urllib.error.HTTPError as exc:
            try:
                body = json.loads(exc.read())
            except (json.JSONDecodeError, ValueError):
                body = {}
            # 422 carries per-request results; surface them to the caller
            if exc.code == 422 and "predictions" in body:
                return body
            raise ServeError(body.get("error", str(exc)), status=exc.code,
                             payload=body) from None
        except urllib.error.URLError as exc:
            raise ServeError(f"cannot reach {url}: {exc.reason}") from None
        return body

    # -- endpoints ------------------------------------------------------------

    def health(self) -> Dict:
        return self._call("/health")

    def stats(self) -> Dict:
        return self._call("/stats")

    def models(self) -> List[Dict]:
        return self._call("/models")["models"]

    def configure(self, batch_window_ms: Optional[float] = None,
                  max_batch: Optional[int] = None,
                  refresh_models: bool = False) -> Dict:
        payload: Dict = {}
        if batch_window_ms is not None:
            payload["batch_window_ms"] = batch_window_ms
        if max_batch is not None:
            payload["max_batch"] = max_batch
        if refresh_models:
            payload["refresh_models"] = True
        return self._call("/config", payload)

    def predict_many(self, requests: Sequence[Dict]) -> List[Dict]:
        """Batch predict; returns per-request dicts aligned with input."""
        body = self._call("/predict", {"requests": list(requests)})
        return body["predictions"]

    def predict(self, **request) -> Dict:
        """Single predict; raises :class:`ServeError` on failure."""
        result = self.predict_many([request])[0]
        if not result.get("ok"):
            raise ServeError(result.get("message", "prediction failed"),
                             payload=result)
        return result
