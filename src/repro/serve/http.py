"""Shared stdlib HTTP transport: retry + Retry-After + jitter.

One retrying ``urllib`` wrapper used by every wire client in the repo —
:class:`repro.serve.client.ServeClient` and the remote store clients in
:mod:`repro.remote.client` — so the backoff policy lives in exactly one
place:

* transport resets (connection refused/reset, server restarting a
  worker) are retried up to ``retries`` times with jittered exponential
  backoff — timeouts and HTTP error statuses are **not** retried;
* a ``429``/``503`` that advertises ``Retry-After`` (header or JSON
  ``retry_after_s``) is retried after the advertised delay, capped at
  :data:`MAX_HONORED_RETRY_AFTER_S`;
* errors raise the caller's ``error_cls`` (a
  :class:`TransportError` subclass) so each client keeps its own typed
  exception while sharing the plumbing.

Besides JSON calls the transport moves raw bytes (npz trace blobs,
pickled model artifacts) in both directions — see :meth:`
HttpTransport.request_bytes`.
"""

from __future__ import annotations

import http.client
import json
import random
import socket
import time
import urllib.error
import urllib.request
from typing import Callable, Dict, Optional, Tuple

#: Never honor an advertised Retry-After longer than this — a confused
#: (or hostile) server must not park the client for minutes.
MAX_HONORED_RETRY_AFTER_S = 5.0


class TransportError(RuntimeError):
    """HTTP-level failure (error status or unreachable server).

    ``retry_after`` carries the server's advertised backoff (seconds)
    when the failure was a shed (``429``) or unavailable (``503``)
    response that included one, else None.
    """

    def __init__(self, message: str, status: int = 0,
                 payload: Optional[Dict] = None,
                 retry_after: Optional[float] = None) -> None:
        super().__init__(message)
        self.status = status
        self.payload = payload or {}
        self.retry_after = retry_after


def _parse_retry_after(header: Optional[str],
                       body: Dict) -> Optional[float]:
    """Advertised backoff from the ``Retry-After`` header (seconds
    form) or the JSON body's ``retry_after_s``, else None."""
    for candidate in (header, body.get("retry_after_s")):
        if candidate is None:
            continue
        try:
            value = float(candidate)
        except (TypeError, ValueError):
            continue
        if value >= 0:
            return value
    return None


#: Transport-level failures worth one more try: the connection died
#: before/mid response (server restarting a worker, listen backlog
#: momentarily full).  Timeouts and HTTP error statuses are NOT here —
#: a slow or failing request must surface, not silently re-run.
_RETRYABLE = (ConnectionResetError, ConnectionRefusedError,
              BrokenPipeError, ConnectionAbortedError,
              http.client.RemoteDisconnected, http.client.BadStatusLine)


def _retryable_reason(exc: Exception) -> bool:
    if isinstance(exc, _RETRYABLE):
        return True
    if isinstance(exc, urllib.error.URLError):
        reason = getattr(exc, "reason", None)
        return isinstance(reason, _RETRYABLE)
    return False


class HttpTransport:
    """Retrying request runner bound to one ``base_url``.

    ``on_http_error(status, body)`` lets a client claim an HTTP error
    response as a *result* (e.g. the serve server's ``422`` with
    per-request predictions): return a dict to hand it to the caller,
    or None to fall through to normal error handling.
    """

    def __init__(self, base_url: str, *, timeout: float = 30.0,
                 retries: int = 2, backoff_s: float = 0.05,
                 jitter: float = 0.25,
                 error_cls: type = TransportError) -> None:
        if retries < 0:
            raise ValueError("retries must be >= 0")
        if backoff_s < 0:
            raise ValueError("backoff_s must be >= 0")
        if not 0 <= jitter <= 1:
            raise ValueError("jitter must be in [0, 1]")
        if not issubclass(error_cls, TransportError):
            raise TypeError("error_cls must subclass TransportError")
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        self.retries = retries
        self.backoff_s = backoff_s
        self.jitter = jitter
        self.error_cls = error_cls

    # -- retry policy ---------------------------------------------------------

    def retry_delay_s(self, attempt: int,
                      last: Optional[Exception]) -> float:
        """Delay before retry ``attempt`` (1-based): the advertised
        ``Retry-After`` when the server gave one, else jittered
        exponential backoff."""
        if isinstance(last, TransportError) and last.retry_after is not None:
            return min(last.retry_after, MAX_HONORED_RETRY_AFTER_S)
        delay = self.backoff_s * (2 ** (attempt - 1))
        return delay * (1.0 + self.jitter * random.random())

    # -- transport ------------------------------------------------------------

    def request_bytes(
        self, path: str, data: Optional[bytes] = None, *,
        headers: Optional[Dict[str, str]] = None,
        on_http_error: Optional[Callable[[int, Dict], Optional[Dict]]] = None,
    ) -> Tuple[bytes, Dict[str, str]]:
        """Run one request (GET, or POST when ``data`` is not None)
        with the full retry policy; returns ``(body, headers)`` on
        success.  When ``on_http_error`` claims an error response, the
        claimed dict comes back JSON-encoded as the body."""
        url = self.base_url + path
        send_headers = dict(headers or {})
        last: Optional[Exception] = None
        for attempt in range(self.retries + 1):
            if attempt:
                time.sleep(self.retry_delay_s(attempt, last))
            request = urllib.request.Request(url, data=data,
                                             headers=send_headers)
            try:
                with urllib.request.urlopen(request,
                                            timeout=self.timeout) as response:
                    return (response.read(),
                            {k.lower(): v for k, v in response.headers.items()})
            except urllib.error.HTTPError as exc:
                try:
                    body = json.loads(exc.read())
                except (json.JSONDecodeError, ValueError):
                    body = {}
                if on_http_error is not None:
                    claimed = on_http_error(exc.code, body)
                    if claimed is not None:
                        return json.dumps(claimed).encode(), {}
                retry_after = _parse_retry_after(
                    exc.headers.get("Retry-After"), body)
                err = self.error_cls(body.get("error", str(exc)),
                                     status=exc.code, payload=body,
                                     retry_after=retry_after)
                if exc.code in (429, 503) and retry_after is not None:
                    last = err  # honor the advertised backoff and retry
                    continue
                raise err from None
            except socket.timeout:
                raise self.error_cls(
                    f"request to {url} timed out "
                    f"after {self.timeout}s") from None
            except urllib.error.URLError as exc:
                if isinstance(exc.reason, socket.timeout):
                    raise self.error_cls(
                        f"request to {url} timed out "
                        f"after {self.timeout}s") from None
                if not _retryable_reason(exc):
                    raise self.error_cls(
                        f"cannot reach {url}: {exc.reason}") from None
                last = exc
            except _RETRYABLE as exc:
                last = exc
        if isinstance(last, self.error_cls):
            raise last  # shed on every attempt: surface the final 429/503
        reason = getattr(last, "reason", last)
        raise self.error_cls(
            f"cannot reach {url} after {self.retries + 1} attempt(s): "
            f"{reason}") from None

    def call(
        self, path: str, payload: Optional[Dict] = None, *,
        headers: Optional[Dict[str, str]] = None,
        on_http_error: Optional[Callable[[int, Dict], Optional[Dict]]] = None,
    ) -> Dict:
        """JSON request/response on top of :meth:`request_bytes`."""
        data = None
        send_headers = {"Accept": "application/json", **(headers or {})}
        if payload is not None:
            data = json.dumps(payload).encode()
            send_headers["Content-Type"] = "application/json"
        body, _ = self.request_bytes(path, data, headers=send_headers,
                                     on_http_error=on_http_error)
        return json.loads(body)
