"""Distributed serving: one front end fanned out over worker processes.

The single-process server runs one :class:`~repro.serve.engine.
PredictionEngine` behind one :class:`~repro.serve.server.MicroBatcher`.
This module scales that shape out without changing its semantics: a
:class:`ClusterEngine` exposes the same ``predict_batch`` /
``refresh`` / ``stats_dict`` surface the batcher and HTTP server
already consume, but executes batches on ``N`` long-lived worker
processes — the bliss/conductor pattern (small coordination server
owning config and data flow, stateless workers) applied to serving.

Design points:

* **Workers replicate the registry.**  Each worker builds its own
  :class:`~repro.serve.engine.PredictionEngine` over the registry
  *directory* and pre-resolves every published model of the served
  kind into its hot LRU before reporting ready, so the first request
  never pays an unpickle.  A ``refresh`` control message (HTTP
  ``POST /models/refresh``) makes every replica drop and re-warm —
  that is how a newly published version rolls out.
* **Model-affinity routing.**  Each FU is pinned to one worker slot
  (least-loaded at first sight, sticky afterwards), so a worker's
  hot-model LRU and compiled sim-fallback programs stay warm instead
  of every worker faulting in every model.
* **The front end owns per-stream history.**  The Eq.-3 features need
  ``x[t-1]``; the cluster chains it *before* dispatch and sends every
  request with explicit ``prev_a``/``prev_b``, making workers
  stateless per request.  A respawned worker therefore serves
  bit-identical answers — and the whole cluster is bit-exact with the
  single-process engine, which applies the very same chaining rule
  (see :func:`repro.serve.engine.validate_request` for the shared
  validation that keeps failed requests from advancing history on
  either side).
* **Crash robustness.**  A worker that dies mid-batch (kill -9, OOM)
  is respawned in place and its in-flight sub-batch reissued — the
  same reissue discipline as :class:`repro.flow.pool.WorkerPool`.
  Because requests carry explicit history, a reissue cannot skew
  results.  A sub-batch that repeatedly kills workers fails loudly
  (per-request ``ok=False``) instead of looping forever.
* **Hung-worker watchdog.**  A worker that neither answers nor dies
  wedges ``conn.recv()`` forever, so every sub-batch wait is bounded:
  by ``hang_timeout_s`` when the batch has no deadline, else by a
  slice of the deadline's remaining budget (half while reissue
  attempts remain, all of it on the last).  A worker that blows the
  bound is SIGKILLed, respawned, and the sub-batch reissued — unless
  the deadline has already passed, in which case the sub-batch is
  answered ``deadline exceeded``, its history rolled back (expired
  requests must not advance per-stream state, or replay would
  diverge), and any late reply is dropped as stale.
* **Crash-loop quarantine + graceful degradation.**  A slot whose
  worker dies ``quarantine_respawns`` times inside a sliding
  ``quarantine_window_s`` is *quarantined*: no further respawns, its
  FU affinity rehomed to surviving slots, and the cluster keeps
  answering degraded (``health_state() == "degraded"``, which the
  HTTP ``/health`` endpoint surfaces non-200).  The last live slot is
  never quarantined — a fully dead cluster helps nobody.  ``POST
  /models/refresh`` retries quarantined slots and lifts the
  quarantine when a replica comes back healthy.
"""

from __future__ import annotations

import os
import time
import traceback
import weakref
from collections import OrderedDict, deque
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..flow.watchdog import Deadline, kill_worker
from ..testing import faults
from .engine import (
    Prediction,
    PredictionEngine,
    PredictRequest,
    expired_prediction,
    validate_request,
)
from .registry import ModelRegistry, open_model_registry

__all__ = [
    "CLUSTER_MAX_REISSUES",
    "ClusterEngine",
    "ClusterStats",
    "HANG_TIMEOUT_ENV",
    "QUARANTINE_RESPAWNS_ENV",
    "QUARANTINE_WINDOW_ENV",
]

#: A sub-batch that sees its worker die this many times is failed with
#: per-request errors — the batch itself is almost certainly the killer.
CLUSTER_MAX_REISSUES = 2

#: Watchdog bound on a no-deadline sub-batch wait (seconds).
HANG_TIMEOUT_ENV = "REPRO_SERVE_HANG_TIMEOUT_S"
DEFAULT_HANG_TIMEOUT_S = 30.0

#: Worker deaths inside the sliding window that trigger quarantine.
QUARANTINE_RESPAWNS_ENV = "REPRO_CLUSTER_QUARANTINE_RESPAWNS"
DEFAULT_QUARANTINE_RESPAWNS = 3

#: Width of the crash-loop sliding window (seconds).
QUARANTINE_WINDOW_ENV = "REPRO_CLUSTER_QUARANTINE_WINDOW_S"
DEFAULT_QUARANTINE_WINDOW_S = 30.0


def _env_float(name: str, default: float) -> float:
    raw = os.environ.get(name, "")
    try:
        return float(raw) if raw else default
    except ValueError:
        return default


def _env_int(name: str, default: int) -> int:
    raw = os.environ.get(name, "")
    try:
        return int(raw) if raw else default
    except ValueError:
        return default

#: Env var naming a crash-token file: a worker that consumes a token at
#: batch receipt hard-kills itself mid-batch.  Deterministic test hook
#: for the respawn/reissue path (same file format as the pool's).
CRASH_FILE_ENV = "REPRO_CLUSTER_CRASH_FILE"

#: Fault point hit at batch receipt in every worker (see
#: :mod:`repro.testing.faults`; exercises the respawn/reissue path).
SITE_BATCH = faults.register_site("cluster.worker.batch")


# -- worker side ---------------------------------------------------------------


def _warm_replica(engine: PredictionEngine) -> Tuple[str, int]:
    """Replicate the registry manifest into the worker's hot LRU.

    Resolves every published FU of the served kind (up to the LRU
    capacity) so requests never pay a cold unpickle, and returns the
    manifest fingerprint + hot-model count for the ready report.
    """
    registry = engine.registry
    if registry is None:
        return "-", 0
    fus: List[str] = []
    for record in registry.list_models(kind=engine.kind):
        if record.fu not in fus:
            fus.append(record.fu)
    warmed = 0
    for fu in fus[:engine.max_hot_models]:
        try:
            if engine._resolve_model(fu) is not None:
                warmed += 1
        except Exception:  # a corrupt artifact must not kill the worker
            continue
    return registry.manifest_fingerprint(), warmed


def _cluster_worker_main(conn, registry_root: Optional[str], kind: str,
                         sim_fallback: bool, backend: str,
                         max_hot_models: int) -> None:
    """Worker loop: replicate the registry, then serve predict batches.

    Messages: ``("predict", task_id, [PredictRequest, ...])`` answered
    with ``("done", task_id, [Prediction, ...])`` or ``("err",
    task_id, traceback)``; ``("refresh",)`` re-replicates (no reply —
    pipe ordering serializes it before any later batch); ``("stop",)``
    or EOF exits.
    """
    try:
        engine = PredictionEngine(
            registry=registry_root, kind=kind, sim_fallback=sim_fallback,
            backend=backend, max_hot_models=max_hot_models,
            push_rollout=False)
        fingerprint, warmed = _warm_replica(engine)
        conn.send(("ready", fingerprint, warmed))
    except Exception:
        try:
            conn.send(("init_err", traceback.format_exc()))
        except OSError:
            pass
        return
    try:
        while True:
            try:
                msg = conn.recv()
            except (EOFError, OSError):
                break
            kind_ = msg[0]
            if kind_ == "stop":
                break
            if kind_ == "refresh":
                engine.refresh()
                fingerprint, warmed = _warm_replica(engine)
                conn.send(("refreshed", fingerprint, warmed))
            elif kind_ == "predict":
                _, task_id, requests = msg
                # deterministic crash hooks (fault plan rides the env,
                # so forked workers honor it): see repro.testing.faults
                faults.fault_point(SITE_BATCH)
                faults.crash_token_hook(CRASH_FILE_ENV)
                try:
                    results = engine.predict_batch(requests)
                    conn.send(("done", task_id, results))
                except BaseException:
                    conn.send(("err", task_id, traceback.format_exc()))
    finally:
        try:
            conn.close()
        except OSError:
            pass


# -- parent side ---------------------------------------------------------------


@dataclass
class ClusterStats:
    """Front-end counters since cluster construction."""

    requests: int = 0
    batches: int = 0
    failed: int = 0
    respawns: int = 0
    reissues: int = 0
    refreshes: int = 0
    expired: int = 0
    watchdog_kills: int = 0
    quarantines: int = 0
    per_worker: Dict[int, int] = field(default_factory=dict)

    def as_dict(self) -> Dict:
        return {"requests": self.requests, "batches": self.batches,
                "failed": self.failed, "respawns": self.respawns,
                "reissues": self.reissues, "refreshes": self.refreshes,
                "expired": self.expired,
                "watchdog_kills": self.watchdog_kills,
                "quarantines": self.quarantines,
                "per_worker": {str(k): v
                               for k, v in sorted(self.per_worker.items())}}


class _WorkerHung(Exception):
    """Internal: a sub-batch wait blew its watchdog bound."""


#: sentinel for "this stream had no history before the batch".
_MISSING = object()


class _ClusterWorker:
    """Parent-side handle for one serving worker slot."""

    __slots__ = ("slot", "process", "conn", "manifest", "hot_models",
                 "started")

    def __init__(self, slot: int, process, conn) -> None:
        self.slot = slot
        self.process = process
        self.conn = conn
        self.manifest = "-"
        self.hot_models = 0
        self.started = time.monotonic()


def _shutdown_cluster(workers: List[_ClusterWorker]) -> None:
    """Finalizer body: reap workers.  Idempotent, no self-references
    (weakref.finalize contract)."""
    for w in workers:
        try:
            if w.process.is_alive():
                w.conn.send(("stop",))
        except (BrokenPipeError, OSError):
            pass
    for w in workers:
        w.process.join(timeout=2.0)
        if w.process.is_alive():
            w.process.terminate()
            w.process.join(timeout=1.0)
        try:
            w.conn.close()
        except OSError:
            pass
    workers.clear()


class ClusterEngine:
    """Batch executor fanning one front end over N serving workers.

    Drop-in for :class:`~repro.serve.engine.PredictionEngine` wherever
    only the serving surface is needed (``predict_batch``,
    ``refresh``, ``stats_dict``, ``registry``/``kind``/
    ``sim_fallback`` attributes) — in particular behind
    :class:`~repro.serve.server.MicroBatcher` and
    :class:`~repro.serve.server.PredictionServer`.

    Parameters
    ----------
    registry:
        Registry directory (or :class:`ModelRegistry`, or None).
        Workers replicate it by *path* — each builds its own reader.
    workers:
        Worker-process count (>= 1; 1 is a valid degenerate cluster).
    kind / sim_fallback / backend / max_hot_models:
        Forwarded to every worker's engine, same meaning as on
        :class:`PredictionEngine`.
    max_streams:
        LRU capacity of the front end's per-stream history (mirrors
        the engine default so eviction behavior is identical).
    hang_timeout_s:
        Watchdog bound on a sub-batch wait when the batch carries no
        deadline (default ``REPRO_SERVE_HANG_TIMEOUT_S`` or 30s).
    quarantine_respawns / quarantine_window_s:
        A slot whose worker dies ``quarantine_respawns`` times within
        ``quarantine_window_s`` seconds is quarantined (defaults
        ``REPRO_CLUSTER_QUARANTINE_RESPAWNS``=3 /
        ``REPRO_CLUSTER_QUARANTINE_WINDOW_S``=30).
    """

    def __init__(self, registry: Union[ModelRegistry, str, Path, None],
                 workers: int = 2, kind: str = "tevot",
                 sim_fallback: bool = True, backend: Optional[str] = None,
                 max_hot_models: int = 8, max_streams: int = 4096,
                 hang_timeout_s: Optional[float] = None,
                 quarantine_respawns: Optional[int] = None,
                 quarantine_window_s: Optional[float] = None,
                 push_rollout: Optional[bool] = None) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if max_streams < 1:
            raise ValueError("max_streams must be >= 1")
        self.hang_timeout_s = (
            hang_timeout_s if hang_timeout_s is not None
            else _env_float(HANG_TIMEOUT_ENV, DEFAULT_HANG_TIMEOUT_S))
        self.quarantine_respawns = (
            quarantine_respawns if quarantine_respawns is not None
            else _env_int(QUARANTINE_RESPAWNS_ENV,
                          DEFAULT_QUARANTINE_RESPAWNS))
        self.quarantine_window_s = (
            quarantine_window_s if quarantine_window_s is not None
            else _env_float(QUARANTINE_WINDOW_ENV,
                            DEFAULT_QUARANTINE_WINDOW_S))
        if self.hang_timeout_s <= 0:
            raise ValueError("hang_timeout_s must be > 0")
        if self.quarantine_respawns < 1:
            raise ValueError("quarantine_respawns must be >= 1")
        if self.quarantine_window_s <= 0:
            raise ValueError("quarantine_window_s must be > 0")
        if registry is None or not isinstance(registry, (str, Path)):
            self.registry = registry  # a registry object (local or remote)
        else:
            self.registry = open_model_registry(registry)
        # workers replicate by root — a directory path, or the store
        # service URL (str() round-trips through open_model_registry)
        self._registry_root = (None if self.registry is None
                               else str(self.registry.root))
        self.n_workers = workers
        self.kind = kind
        self.sim_fallback = sim_fallback
        if backend is None:
            from ..flow.campaign import DEFAULT_BACKEND
            backend = DEFAULT_BACKEND
        self.backend = backend
        self.max_hot_models = max_hot_models
        self.max_streams = max_streams
        from multiprocessing import get_context
        try:
            self._ctx = get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX hosts
            self._ctx = get_context()
        import threading

        self._lock = threading.Lock()
        self._task_seq = 0
        self._quarantined: set = set()
        self._death_times: Dict[int, "deque[float]"] = {}
        self._affinity: Dict[str, int] = {}
        self._fus: Dict[str, object] = {}
        self._history: "OrderedDict[Tuple[str, str], Tuple[int, int]]" \
            = OrderedDict()
        self.stats = ClusterStats()
        self._workers: List[_ClusterWorker] = []
        self._finalizer = weakref.finalize(
            self, _shutdown_cluster, self._workers)
        for slot in range(workers):
            self._workers.append(self._spawn(slot))
        # push rollout: the front end owns the single event-feed
        # subscription; a publish announcement fans out through
        # refresh() to every worker replica (workers themselves run
        # with push_rollout=False)
        self._push = None
        want_push = True if push_rollout is None else bool(push_rollout)
        subscribe = getattr(self.registry, "subscribe_events", None)
        if want_push and callable(subscribe):
            self._push = subscribe(self.refresh)

    # -- lifecycle ------------------------------------------------------------

    @property
    def closed(self) -> bool:
        return not self._finalizer.alive

    def close(self) -> None:
        """Reap every worker (idempotent; also runs at GC / exit)."""
        if self._push is not None:
            self._push.close()
            self._push = None
        self._finalizer()

    def __enter__(self) -> "ClusterEngine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def n_alive(self) -> int:
        """Live worker processes (tests / leak checks)."""
        return sum(1 for w in self._workers if w.process.is_alive())

    def _spawn(self, slot: int) -> _ClusterWorker:
        parent_conn, child_conn = self._ctx.Pipe()
        process = self._ctx.Process(
            target=_cluster_worker_main,
            args=(child_conn, self._registry_root, self.kind,
                  self.sim_fallback, self.backend, self.max_hot_models),
            name=f"repro-serve-worker-{slot}", daemon=True)
        process.start()
        child_conn.close()
        worker = _ClusterWorker(slot, process, parent_conn)
        self._await_ready(worker)
        return worker

    def _await_ready(self, worker: _ClusterWorker) -> None:
        try:
            msg = worker.conn.recv()
        except (EOFError, OSError):
            raise RuntimeError(
                f"serving worker {worker.slot} died during startup")
        if msg[0] == "init_err":
            raise RuntimeError(
                f"serving worker {worker.slot} failed to start:\n{msg[1]}")
        _, worker.manifest, worker.hot_models = msg

    def _respawn(self, worker: _ClusterWorker) -> _ClusterWorker:
        try:
            worker.conn.close()
        except OSError:
            pass
        if worker.process.is_alive():  # pragma: no cover - defensive
            worker.process.terminate()
        worker.process.join(timeout=2.0)
        fresh = self._spawn(worker.slot)
        self._workers[worker.slot] = fresh
        self.stats.respawns += 1
        return fresh

    # -- crash-loop quarantine -------------------------------------------------

    def _live_other_slots(self, slot: int) -> List[int]:
        return [w.slot for w in self._workers
                if w.slot != slot and w.slot not in self._quarantined
                and w.process.is_alive()]

    def _quarantine(self, slot: int) -> None:
        """Give up on a crash-looping slot: stop respawning it, rehome
        its FU affinity, serve degraded.  ``refresh()`` can revive it."""
        worker = self._workers[slot]
        kill_worker(worker.process)
        try:
            worker.conn.close()
        except OSError:
            pass
        self._quarantined.add(slot)
        self.stats.quarantines += 1
        self._affinity = {fu: s for fu, s in self._affinity.items()
                          if s != slot}

    def _handle_dead(self, slot: int) -> int:
        """React to a worker death (crash or watchdog kill): respawn in
        place, or quarantine a crash-looping slot and return a surviving
        slot the in-flight sub-batch should move to."""
        now = time.monotonic()
        times = self._death_times.setdefault(slot, deque())
        times.append(now)
        while times and now - times[0] > self.quarantine_window_s:
            times.popleft()
        survivors = self._live_other_slots(slot)
        if len(times) >= self.quarantine_respawns and survivors:
            self._quarantine(slot)
            loads = {s: self.stats.per_worker.get(s, 0) for s in survivors}
            return min(survivors, key=lambda s: (loads[s], s))
        self._respawn(self._workers[slot])
        return slot

    # -- history + routing ----------------------------------------------------

    def _functional_unit(self, fu_name: str):
        fu = self._fus.get(fu_name)
        if fu is None:
            from ..circuits.functional_units import build_functional_unit
            fu = build_functional_unit(fu_name)
            self._fus[fu_name] = fu
        return fu

    def _chain(self, req: PredictRequest) -> PredictRequest:
        """Copy of ``req`` with history made explicit, advancing state.

        Mirrors :meth:`PredictionEngine._chain_history` exactly —
        explicit ``prev_*`` wins, else the stored cross-batch state,
        else the request's own operands (a steady input).  Raw operand
        values are stored; the worker's engine masks at use, which is
        idempotent, so served bits cannot differ from single-process.
        """
        key = (req.fu, req.stream_id)
        if req.prev_a is not None or req.prev_b is not None:
            prev_a = req.prev_a if req.prev_a is not None else req.a
            prev_b = req.prev_b if req.prev_b is not None else req.b
        else:
            prev_a, prev_b = self._history.get(key, (req.a, req.b))
        self._history[key] = (req.a, req.b)
        self._history.move_to_end(key)
        while len(self._history) > self.max_streams:
            self._history.popitem(last=False)
        return replace(req, prev_a=prev_a, prev_b=prev_b)

    def _worker_for(self, fu_name: str) -> int:
        """Sticky FU -> worker-slot affinity (least-loaded on first
        sight) so each worker's hot-model LRU stays warm.  Quarantined
        slots are never chosen; an FU whose slot was quarantined is
        rehomed here, on first sight after the quarantine."""
        slot = self._affinity.get(fu_name)
        if slot is None or slot in self._quarantined:
            eligible = [w.slot for w in self._workers
                        if w.slot not in self._quarantined]
            loads = {s: 0 for s in eligible}
            for s in self._affinity.values():
                if s in loads:
                    loads[s] += 1
            slot = min(eligible, key=lambda s: (loads[s], s))
            self._affinity[fu_name] = slot
        return slot

    def _rollback(self, snapshot: Dict) -> None:
        """Restore per-stream history captured before a sub-batch was
        chained — an expired (never executed) sub-batch must not
        advance state, or replay would diverge from what was served."""
        for key, old in snapshot.items():
            if old is _MISSING:
                self._history.pop(key, None)
            else:
                self._history[key] = old

    # -- inference ------------------------------------------------------------

    def predict_one(self, request: PredictRequest) -> Prediction:
        """Single-request convenience; raises on failure."""
        result = self.predict_batch([request])[0]
        if not result.ok:
            raise ValueError(result.message or "prediction failed")
        return result

    def predict_batch(self, requests: Sequence[PredictRequest],
                      deadline: Optional[Deadline] = None
                      ) -> List[Prediction]:
        """Dispatch one micro-batch across the workers.

        Results align with ``requests``; the answer stream is
        bit-identical to :meth:`PredictionEngine.predict_batch` on the
        same sequence of batches.  ``deadline`` (set by the
        micro-batcher to the batch's tightest request deadline) bounds
        every sub-batch wait; a sub-batch the deadline overruns is
        answered ``deadline exceeded`` with its history rolled back,
        so expired requests never advance per-stream state.
        """
        if self.closed:
            raise RuntimeError("ClusterEngine is closed")
        requests = list(requests)
        with self._lock:
            return self._predict_batch_locked(requests, deadline)

    def _predict_batch_locked(self, requests: List[PredictRequest],
                              deadline: Optional[Deadline]
                              ) -> List[Prediction]:
        self.stats.batches += 1
        self.stats.requests += len(requests)
        results: List[Optional[Prediction]] = [None] * len(requests)

        # validate + chain history in batch order (the engine's order),
        # then group chained copies per affinity worker.  Each stream
        # key belongs to exactly one sub-batch (FU -> slot), so each
        # slot's pre-chain snapshot can be rolled back independently.
        sub_batches: Dict[int, List[Tuple[int, PredictRequest]]] = {}
        snapshots: Dict[int, Dict] = {}
        for i, req in enumerate(requests):
            failure = validate_request(req, self._functional_unit)
            if failure is not None:
                results[i] = Prediction(ok=False, message=failure)
                self.stats.failed += 1
                continue
            slot = self._worker_for(req.fu)
            snap = snapshots.setdefault(slot, {})
            key = (req.fu, req.stream_id)
            if key not in snap:
                snap[key] = self._history.get(key, _MISSING)
            chained = self._chain(req)
            sub_batches.setdefault(slot, []).append((i, chained))

        for slot, entries in sub_batches.items():
            idxs = [i for i, _ in entries]
            batch = [r for _, r in entries]
            predictions = self._dispatch(slot, batch, deadline)
            if predictions is None:  # expired, never executed
                self._rollback(snapshots[slot])
                predictions = [expired_prediction() for _ in batch]
            for i, pred in zip(idxs, predictions):
                results[i] = pred
        return results  # type: ignore[return-value]

    def _attempt_timeout_s(self, deadline: Optional[Deadline],
                           attempt: int) -> float:
        """Watchdog bound for one dispatch attempt.  While reissue
        attempts remain only half the remaining budget is risked on the
        current worker (the other half pays for a respawned retry);
        the last attempt gets everything left."""
        if deadline is None:
            return self.hang_timeout_s
        remaining = max(deadline.remaining_s(), 0.0)
        fraction = 0.5 if attempt < CLUSTER_MAX_REISSUES else 1.0
        return min(self.hang_timeout_s, remaining * fraction)

    def _dispatch(self, slot: int, batch: List[PredictRequest],
                  deadline: Optional[Deadline] = None
                  ) -> Optional[List[Prediction]]:
        """Run one sub-batch on one worker, respawning + reissuing on
        worker death (requests carry explicit history, so a reissue is
        idempotent).  Returns ``None`` when the deadline expired before
        the sub-batch could execute — the caller answers those requests
        ``deadline exceeded`` and rolls their history back."""
        self._task_seq += 1
        task_id = self._task_seq
        for attempt in range(CLUSTER_MAX_REISSUES + 1):
            if deadline is not None and deadline.expired():
                self.stats.expired += len(batch)
                return None
            worker = self._workers[slot]
            if attempt:
                self.stats.reissues += 1
            timeout = self._attempt_timeout_s(deadline, attempt)
            try:
                worker.conn.send(("predict", task_id, batch))
                waited_until = time.monotonic() + timeout
                while True:
                    remaining = waited_until - time.monotonic()
                    if remaining <= 0 or not worker.conn.poll(remaining):
                        raise _WorkerHung()
                    msg = worker.conn.recv()
                    if msg[0] == "done" and msg[1] == task_id:
                        self.stats.per_worker[slot] = (
                            self.stats.per_worker.get(slot, 0) + len(batch))
                        return msg[2]
                    if msg[0] == "err" and msg[1] == task_id:
                        self.stats.failed += len(batch)
                        return [Prediction(
                            ok=False,
                            message=f"worker error: {msg[2].splitlines()[-1]}")
                            for _ in batch]
                    # stale reply from an abandoned task: drop it
            except _WorkerHung:
                if deadline is not None and deadline.expired():
                    # out of budget: abandon without killing — the
                    # worker may just be slow, and its late reply is
                    # dropped as stale by the next dispatch
                    self.stats.expired += len(batch)
                    return None
                self.stats.watchdog_kills += 1
                kill_worker(worker.process)
                slot = self._handle_dead(slot)
            except (BrokenPipeError, EOFError, OSError):
                slot = self._handle_dead(slot)
        if deadline is not None and deadline.expired():
            self.stats.expired += len(batch)
            return None
        self.stats.failed += len(batch)
        return [Prediction(
            ok=False,
            message=(f"worker {slot} died {CLUSTER_MAX_REISSUES + 1} times "
                     f"serving this batch"))
            for _ in batch]

    # -- control --------------------------------------------------------------

    def refresh(self) -> None:
        """Re-replicate the registry on every worker (the
        ``POST /models/refresh`` control message): each replica drops
        hot models + negative cache and re-warms from the manifest.

        Quarantined slots get a second chance here — an operator
        refresh is the explicit "try again" signal; a slot whose fresh
        replica comes up healthy rejoins routing with a clean
        crash-history window.
        """
        with self._lock:
            self.stats.refreshes += 1
            for slot in sorted(self._quarantined):
                try:
                    fresh = self._spawn(slot)
                except RuntimeError:
                    continue  # still broken: stays quarantined
                self._workers[slot] = fresh
                self._quarantined.discard(slot)
                self._death_times.pop(slot, None)
                self.stats.respawns += 1
            for worker in list(self._workers):
                if worker.slot in self._quarantined:
                    continue
                try:
                    worker.conn.send(("refresh",))
                    msg = worker.conn.recv()
                    if msg[0] == "refreshed":
                        _, worker.manifest, worker.hot_models = msg
                except (BrokenPipeError, EOFError, OSError):
                    # a fresh worker replicates the new manifest anyway
                    self._respawn(worker)

    def reset_stream(self, fu: Optional[str] = None,
                     stream_id: Optional[str] = None) -> None:
        """Forget front-end history (all streams, or one FU/stream);
        mirrors :meth:`PredictionEngine.reset_stream`."""
        with self._lock:
            self._history = OrderedDict(
                (k, v) for k, v in self._history.items()
                if (fu is not None and k[0] != fu)
                or (stream_id is not None and k[1] != stream_id))

    # -- introspection --------------------------------------------------------

    def health_state(self) -> str:
        """``healthy`` while every slot routes; ``degraded`` while any
        slot sits quarantined (the HTTP layer maps degraded to a
        non-200 ``/health`` so load balancers can react)."""
        return "degraded" if self._quarantined else "healthy"

    def workers_dict(self) -> List[Dict]:
        """Per-replica status rows for ``/stats``."""
        return [{"slot": w.slot, "alive": w.process.is_alive(),
                 "quarantined": w.slot in self._quarantined,
                 "manifest": w.manifest, "hot_models": w.hot_models,
                 "uptime_s": round(time.monotonic() - w.started, 3)}
                for w in self._workers]

    def stats_dict(self) -> Dict:
        with self._lock:
            out = self.stats.as_dict()
            out["workers"] = self.workers_dict()
            out["quarantined_slots"] = sorted(self._quarantined)
            out["affinity"] = dict(sorted(self._affinity.items()))
        if self._push is not None:
            out["push"] = self._push.stats()
        return out
