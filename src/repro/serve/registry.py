"""Versioned on-disk registry of trained delay models.

The serving counterpart of the characterization
:class:`~repro.flow.tracestore.TraceStore`: a registry is a directory
holding one ``manifest.json`` plus one pickled artifact per published
model (stable v2 format from :mod:`repro.core.model`).  Entries are
keyed by everything that determines what a model was trained to
predict:

* the FU identity (name + netlist structural stats when available),
* the operating-corner grid it was characterized over,
* the training-stream fingerprint (exact operand bytes), and
* the feature-spec version (layout + operand width + history flag),

so ``resolve`` can never hand the prediction engine a model whose
feature layout does not match the features it builds.  Publishing the
same (FU, kind) repeatedly assigns monotonically increasing versions;
``resolve`` returns the newest unless pinned.
"""

from __future__ import annotations

import hashlib
import re
import time
import warnings
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..circuits.functional_units import FunctionalUnit
from ..core.model import load_model, save_model
from ..flow.durable import (
    ManifestCorrupt,
    StoreLock,
    StoreLockTimeout,
    quarantine,
)
from ..flow.manifest import read_manifest, stable_fingerprint, write_manifest
from ..testing import faults
from ..timing.corners import OperatingCondition
from ..workloads.streams import OperandStream

#: Bump when the on-disk layout or key derivation changes.
REGISTRY_VERSION = 1

#: Model kinds the pipeline publishes.
MODEL_KINDS = ("tevot", "tevot_nh", "delay_based", "ter_based")

SITE_MANIFEST = faults.register_site("registry.manifest.replace",
                                     persistence=True)
SITE_ARTIFACT = faults.register_site("registry.artifact.write",
                                     persistence=True)

_MODEL_ID_RE = re.compile(r"^(?P<fu>.+)/(?P<kind>[^/]+)/v(?P<version>\d+)$")


def fu_fingerprint(fu: Union[FunctionalUnit, str]) -> str:
    """FU identity: name plus netlist structure when we have the unit."""
    if isinstance(fu, str):
        return fu
    return f"{fu.name}:{fu.netlist.stats()}"


def corner_fingerprint(
        conditions: Optional[Sequence[OperatingCondition]]) -> str:
    """Stable hash of an operating-corner grid (``-`` when unknown)."""
    if not conditions:
        return "-"
    h = hashlib.sha256()
    for c in conditions:
        h.update(f"{c.voltage:.4f},{c.temperature:.2f};".encode())
    return h.hexdigest()[:16]


def stream_fingerprint(
        stream: Union[OperandStream, np.ndarray, None]) -> str:
    """Stable hash of the training inputs (``-`` when unknown).

    Accepts either the operand stream itself or the encoded input bit
    matrix a :class:`~repro.sim.dta.DelayTrace` carries.
    """
    if stream is None:
        return "-"
    h = hashlib.sha256()
    if isinstance(stream, OperandStream):
        h.update(np.ascontiguousarray(stream.a).tobytes())
        h.update(np.ascontiguousarray(stream.b).tobytes())
    else:
        h.update(np.ascontiguousarray(stream).tobytes())
    return h.hexdigest()[:16]


def model_key(fu: Union[FunctionalUnit, str], kind: str,
              conditions: Optional[Sequence[OperatingCondition]] = None,
              stream: Union[OperandStream, np.ndarray, None] = None,
              spec_tag: str = "-") -> str:
    """Content key covering FU, corners, training stream, feature spec."""
    h = hashlib.sha256()
    h.update(f"r{REGISTRY_VERSION};".encode())
    h.update(fu_fingerprint(fu).encode())
    h.update(f";{kind};".encode())
    h.update(corner_fingerprint(conditions).encode())
    h.update(stream_fingerprint(stream).encode())
    h.update(spec_tag.encode())
    return h.hexdigest()[:24]


@dataclass(frozen=True)
class ModelRecord:
    """Manifest row describing one published artifact."""

    model_id: str
    fu: str
    kind: str
    version: int
    file: str
    key: str
    feature_spec: Optional[Dict]
    corners: str
    train_stream: str
    created: str
    size_bytes: int
    metadata: Dict

    @classmethod
    def from_entry(cls, model_id: str, entry: Dict) -> "ModelRecord":
        return cls(model_id=model_id, fu=entry["fu"], kind=entry["kind"],
                   version=int(entry["version"]), file=entry["file"],
                   key=entry["key"], feature_spec=entry.get("feature_spec"),
                   corners=entry.get("corners", "-"),
                   train_stream=entry.get("train_stream", "-"),
                   created=entry.get("created", ""),
                   size_bytes=int(entry.get("size_bytes", 0)),
                   metadata=dict(entry.get("metadata") or {}))

    def as_entry(self) -> Dict:
        return {"fu": self.fu, "kind": self.kind, "version": self.version,
                "file": self.file, "key": self.key,
                "feature_spec": self.feature_spec, "corners": self.corners,
                "train_stream": self.train_stream, "created": self.created,
                "size_bytes": self.size_bytes, "metadata": self.metadata}


@dataclass
class RegistryGCReport:
    """What a :meth:`ModelRegistry.gc` pass did (or would do)."""

    removed_files: List[str]
    dropped_entries: List[str]
    freed_bytes: int

    def summary(self) -> str:
        return (f"removed {len(self.removed_files)} artifact(s) "
                f"({self.freed_bytes / 1e6:.2f} MB), dropped "
                f"{len(self.dropped_entries)} entr(y/ies)")


class ModelRegistry:
    """Manifest-backed store of published models under one directory."""

    def __init__(self, root: Union[str, Path], *,
                 lock_timeout: float = 10.0) -> None:
        self.root = Path(root)
        self.lock_timeout = lock_timeout

    @property
    def manifest_path(self) -> Path:
        return self.root / "manifest.json"

    def lock(self) -> StoreLock:
        """Advisory inter-process lock serializing registry writers."""
        return StoreLock(self.root / ".registry.lock",
                         timeout=self.lock_timeout)

    def _read(self) -> Dict:
        return read_manifest(self.manifest_path,
                             version_key="registry_version",
                             version=REGISTRY_VERSION, entries_key="models",
                             on_corrupt=self._recover_manifest)

    def _write(self, manifest: Dict) -> None:
        write_manifest(self.manifest_path, manifest, site=SITE_MANIFEST)

    def _recover_manifest(self, exc: ManifestCorrupt) -> Dict:
        """Quarantine a corrupt manifest and rebuild it from artifacts.

        Published artifacts carry their ``model_id``/``key`` in the v2
        pickle metadata, so the model table is recoverable; derived
        fingerprints (corners, train stream, feature spec) are lost and
        recorded as unknown.
        """
        quarantined = quarantine(self.manifest_path)
        manifest: Dict = {"registry_version": REGISTRY_VERSION, "models": {}}
        for path in sorted(self.root.glob("*.pkl")):
            entry = self._artifact_entry(path)
            if entry is not None:
                model_id, record = entry
                manifest["models"][model_id] = record
        warnings.warn(
            f"model-registry manifest was corrupt ({exc}); quarantined to "
            f"{quarantined.name if quarantined else '<gone>'} and rebuilt "
            f"{len(manifest['models'])} entr(y/ies) from artifacts",
            RuntimeWarning, stacklevel=4)
        try:  # persist best-effort so the next reader skips the rescan
            with StoreLock(self.root / ".registry.lock", timeout=0.5):
                self._write(manifest)
        except (StoreLockTimeout, OSError):
            pass
        return manifest

    def _artifact_entry(self, path: Path) -> Optional[Tuple[str, Dict]]:
        """(model_id, manifest entry) recovered from one .pkl artifact."""
        try:
            _, meta = load_model(path)
        except Exception:
            return None  # unreadable artifact: not worth an entry
        meta = meta or {}
        model_id = meta.get("model_id")
        match = _MODEL_ID_RE.match(model_id or "")
        if match is None:
            return None
        entry = {
            "fu": match.group("fu"),
            "kind": match.group("kind"),
            "version": int(match.group("version")),
            "file": path.name,
            "key": meta.get("key", "-"),
            "feature_spec": None,
            "corners": "-",
            "train_stream": "-",
            "created": "",
            "size_bytes": path.stat().st_size,
            "metadata": {k: v for k, v in meta.items()
                         if k not in ("model_id", "key")},
            "rebuilt": True,
        }
        return model_id, entry

    # -- queries --------------------------------------------------------------

    def list_models(self, fu: Optional[str] = None,
                    kind: Optional[str] = None) -> List[ModelRecord]:
        """All published records, newest version first within (fu, kind)."""
        records = [ModelRecord.from_entry(model_id, entry)
                   for model_id, entry in self._read()["models"].items()]
        if fu is not None:
            records = [r for r in records if r.fu == fu]
        if kind is not None:
            records = [r for r in records if r.kind == kind]
        return sorted(records, key=lambda r: (r.fu, r.kind, -r.version))

    def __len__(self) -> int:
        return len(self._read()["models"])

    def manifest_fingerprint(self, length: int = 16) -> str:
        """Content hash of the manifest's model table.

        Cluster workers report this after replicating the registry on
        startup/refresh, so ``/stats`` can show whether every replica
        serves the same published set.
        """
        return stable_fingerprint(self._read()["models"],
                                  tag="registry-manifest", length=length)

    # -- publish / resolve ----------------------------------------------------

    def publish(self, model: Any, fu: Union[FunctionalUnit, str],
                kind: str = "tevot",
                conditions: Optional[Sequence[OperatingCondition]] = None,
                train_stream: Union[OperandStream, np.ndarray, None] = None,
                metadata: Optional[Dict] = None) -> ModelRecord:
        """Persist a trained model and record it in the manifest.

        Returns the new :class:`ModelRecord`; its ``version`` is one
        past the latest published for this (FU, kind).
        """
        if kind not in MODEL_KINDS:
            raise ValueError(
                f"unknown model kind {kind!r}; expected one of "
                f"{', '.join(MODEL_KINDS)}")
        fu_name = fu if isinstance(fu, str) else fu.name
        spec = getattr(model, "spec", None)
        spec_tag = spec.version_tag() if spec is not None else "-"
        key = model_key(fu, kind, conditions, train_stream, spec_tag)
        return self.publish_fingerprinted(
            model, fu_name=fu_name, kind=kind, key=key,
            feature_spec=None if spec is None else {
                "operand_width": spec.operand_width,
                "include_history": spec.include_history,
                "tag": spec_tag,
            },
            corners=corner_fingerprint(conditions),
            train_stream=stream_fingerprint(train_stream),
            metadata=metadata)

    def publish_fingerprinted(self, model: Any, *, fu_name: str,
                              kind: str, key: str,
                              feature_spec: Optional[Dict],
                              corners: str, train_stream: str,
                              metadata: Optional[Dict] = None
                              ) -> ModelRecord:
        """The locked half of :meth:`publish`: version assignment,
        artifact write, manifest update.

        Takes already-computed fingerprints so a caller that never held
        the original FU/stream objects — the store service publishing
        on behalf of a remote client — assigns versions under *this*
        registry's lock while the client keeps key computation (and
        therefore byte-identical keys) on its side of the wire.
        """
        if kind not in MODEL_KINDS:
            raise ValueError(
                f"unknown model kind {kind!r}; expected one of "
                f"{', '.join(MODEL_KINDS)}")
        self.root.mkdir(parents=True, exist_ok=True)
        # the whole read-modify-write runs under the store lock, so
        # concurrent publishes serialize: no dropped entries, no
        # colliding version numbers
        with self.lock():
            manifest = self._read()
            models = manifest["models"]
            latest = max((int(e["version"]) for e in models.values()
                          if e["fu"] == fu_name and e["kind"] == kind),
                         default=0)
            version = latest + 1
            model_id = f"{fu_name}/{kind}/v{version}"
            fname = f"{fu_name}_{kind}_v{version}_{key[:8]}.pkl"

            path = self.root / fname
            faults.fault_point(SITE_ARTIFACT)
            # our provenance fields last: stale model_id/key in
            # re-published artifact metadata must not survive into the
            # new artifact
            save_model(model, path,
                       metadata={**(metadata or {}),
                                 "model_id": model_id, "key": key})
            record = ModelRecord(
                model_id=model_id, fu=fu_name, kind=kind, version=version,
                file=fname, key=key,
                feature_spec=feature_spec,
                corners=corners,
                train_stream=train_stream,
                created=time.strftime("%Y-%m-%dT%H:%M:%S"),
                size_bytes=path.stat().st_size,
                metadata=dict(metadata or {}))
            models[model_id] = record.as_entry()
            self._write(manifest)
        return record

    def resolve(self, fu: str, kind: str = "tevot",
                key: Optional[str] = None,
                version: Optional[int] = None) -> Tuple[Any, ModelRecord]:
        """Load the newest matching model, or pin by ``key``/``version``.

        Raises :class:`LookupError` when nothing matches — the serving
        engine turns that into its gate-level-simulation fallback.
        """
        candidates = self.list_models(fu=fu, kind=kind)
        if key is not None:
            candidates = [r for r in candidates if r.key == key]
        if version is not None:
            candidates = [r for r in candidates if r.version == version]
        for record in candidates:  # newest first
            path = self.root / record.file
            if not path.is_file():
                continue
            try:
                model, _ = load_model(path)
            except Exception as exc:
                # torn/garbled artifact: quarantine and fall through to
                # the next-newest candidate instead of failing the serve
                quarantined = quarantine(path)
                warnings.warn(
                    f"unreadable model artifact {path.name} ({exc}); "
                    f"quarantined to "
                    f"{quarantined.name if quarantined else '<gone>'}",
                    RuntimeWarning, stacklevel=2)
                continue
            return model, record
        raise LookupError(
            f"no published model for fu={fu!r} kind={kind!r}"
            + (f" key={key!r}" if key else "")
            + (f" version={version}" if version else ""))

    # -- garbage collection ---------------------------------------------------

    def gc(self, keep: int = 1, dry_run: bool = False) -> RegistryGCReport:
        """Drop orphan artifacts, stale entries, and old versions.

        ``keep`` retains that many newest versions per (FU, kind); older
        ones are evicted along with any ``.pkl`` the manifest does not
        reference.
        """
        if keep < 1:
            raise ValueError("keep must be >= 1")
        removed: List[str] = []
        dropped: List[str] = []
        freed = 0
        if not self.root.is_dir():
            return RegistryGCReport(removed, dropped, freed)
        with self.lock():
            return self._gc_locked(keep, dry_run, removed, dropped, freed)

    def _gc_locked(self, keep: int, dry_run: bool, removed: List[str],
                   dropped: List[str], freed: int) -> RegistryGCReport:
        manifest = self._read()
        models = manifest["models"]

        by_group: Dict[Tuple[str, str], List[str]] = {}
        for model_id, entry in models.items():
            by_group.setdefault((entry["fu"], entry["kind"]),
                                []).append(model_id)
        for group in by_group.values():
            group.sort(key=lambda m: -int(models[m]["version"]))
            for model_id in group[keep:]:
                path = self.root / models[model_id]["file"]
                dropped.append(model_id)
                if path.is_file():
                    removed.append(path.name)
                    freed += path.stat().st_size
                    if not dry_run:
                        path.unlink()
                if not dry_run:
                    del models[model_id]

        for model_id, entry in list(models.items()):
            if not (self.root / entry["file"]).is_file():
                dropped.append(model_id)
                if not dry_run:
                    del models[model_id]

        referenced = {entry["file"] for entry in models.values()}
        for path in sorted(self.root.glob("*.pkl")):
            if path.name not in referenced:
                removed.append(path.name)
                freed += path.stat().st_size
                if not dry_run:
                    path.unlink()

        if not dry_run and (removed or dropped):
            self._write(manifest)
        return RegistryGCReport(removed, dropped, freed)


def open_model_registry(root: Union[str, Path, None], *,
                        lock_timeout: float = 10.0,
                        **remote_kwargs) -> Any:
    """Open a registry by location: local directory or store-service URL.

    An ``http(s)://`` string returns a
    :class:`~repro.remote.client.RemoteModelRegistry` (same duck-typed
    surface, lazily imported so local flows never load the remote
    package); anything else builds a local :class:`ModelRegistry`.
    """
    if isinstance(root, str) and root.startswith(("http://", "https://")):
        from ..remote.client import RemoteModelRegistry
        return RemoteModelRegistry(root, **remote_kwargs)
    return ModelRegistry(root, lock_timeout=lock_timeout)
