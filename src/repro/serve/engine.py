"""Long-lived prediction engine: hot models + micro-batched inference.

The paper's query-time claim is that one trained delay regressor
replaces gate-level simulation for any workload, corner, and clock.
:class:`PredictionEngine` operationalizes that:

* resolved models stay **hot** in an LRU cache instead of being
  re-unpickled per request (the one-shot ``predict`` CLI reloads from
  scratch every call);
* per-stream **history state** is maintained server-side — the Eq.-3
  feature vector needs ``x[t-1]``, so the engine remembers the last
  operands seen on each ``(FU, stream_id)`` and chains requests into
  exactly the feature rows offline
  :func:`~repro.core.features.build_feature_matrix` would build.
  Served predictions are therefore bit-identical to offline ones;
* incoming requests are **micro-batched**: any mix of corners, clocks,
  and streams for one model collapses into a single vectorized
  ``RandomForestRegressor`` pass, because voltage and temperature are
  feature columns, not separate models;
* when no published model matches an FU the engine **falls back to
  gate-level simulation** through
  :class:`~repro.flow.campaign.CampaignRunner`, chaining each stream's
  requests into a short operand stream — slower, but never wrong.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..circuits.functional_units import FunctionalUnit, build_functional_unit
from ..core.features import operand_bits
from ..flow.campaign import DEFAULT_BACKEND, CampaignJob, CampaignRunner
from ..timing.corners import OperatingCondition
from ..workloads.streams import OperandStream
from .registry import ModelRegistry, open_model_registry


@dataclass
class PredictRequest:
    """One (FU, condition, operands, clock) inference request.

    ``stream_id`` names the logical operand stream the request belongs
    to; the engine keeps the previous operands per (FU, stream) so the
    history features chain across requests.  ``prev_a``/``prev_b``
    override the stored history explicitly (e.g. stateless replay).
    ``clock_period`` (ps) is optional — when given, the response also
    carries the paper's timing-error classification.

    ``deadline_ms`` is the request's total latency budget, relative to
    its arrival at the server (clients derive it from their own
    timeout).  A request still queued — or still executing on a hung
    worker — when the budget runs out is answered *expired* (HTTP 504)
    instead of silently computed into the void; ``None`` defers to the
    server's ``default_deadline_ms``.
    """

    fu: str
    a: int
    b: int
    voltage: float
    temperature: float
    clock_period: Optional[float] = None
    stream_id: str = "default"
    prev_a: Optional[int] = None
    prev_b: Optional[int] = None
    deadline_ms: Optional[float] = None

    def condition(self) -> OperatingCondition:
        return OperatingCondition(self.voltage, self.temperature)

    def as_dict(self) -> Dict:
        """Plain-JSON payload; ``from_dict`` reconstructs it exactly."""
        return {"fu": self.fu, "a": self.a, "b": self.b,
                "voltage": self.voltage, "temperature": self.temperature,
                "clock_period": self.clock_period,
                "stream_id": self.stream_id,
                "prev_a": self.prev_a, "prev_b": self.prev_b,
                "deadline_ms": self.deadline_ms}

    @classmethod
    def from_dict(cls, data: Dict) -> "PredictRequest":
        try:
            return cls(
                fu=str(data["fu"]), a=int(data["a"]), b=int(data["b"]),
                voltage=float(data["voltage"]),
                temperature=float(data["temperature"]),
                clock_period=(None if data.get("clock_period") is None
                              else float(data["clock_period"])),
                stream_id=str(data.get("stream_id", "default")),
                prev_a=(None if data.get("prev_a") is None
                        else int(data["prev_a"])),
                prev_b=(None if data.get("prev_b") is None
                        else int(data["prev_b"])),
                deadline_ms=(None if data.get("deadline_ms") is None
                             else float(data["deadline_ms"])))
        except KeyError as exc:
            raise ValueError(f"predict request missing field {exc}") from None


#: ``Prediction.source`` value marking a request whose deadline ran out
#: before (or while) it executed — the HTTP layer maps it to 504 and
#: the request log records it as a non-executed ``dropped`` entry.
EXPIRED_SOURCE = "expired"


def expired_prediction() -> "Prediction":
    """The canonical answer for a request that outlived its deadline."""
    return Prediction(ok=False, source=EXPIRED_SOURCE,
                      message="deadline exceeded")


@dataclass
class Prediction:
    """Engine answer for one request."""

    ok: bool
    delay_ps: Optional[float] = None
    timing_error: Optional[bool] = None
    source: str = ""            # "model", "sim", or "expired"
    model_id: Optional[str] = None
    message: str = ""

    @property
    def expired(self) -> bool:
        return self.source == EXPIRED_SOURCE

    def as_dict(self) -> Dict:
        return {"ok": self.ok, "delay_ps": self.delay_ps,
                "timing_error": self.timing_error, "source": self.source,
                "model_id": self.model_id, "message": self.message}


@dataclass
class EngineStats:
    """Counters since engine construction (or :meth:`reset_stats`)."""

    requests: int = 0
    batches: int = 0
    served_by_model: int = 0
    served_by_sim: int = 0
    failed: int = 0
    model_cache_hits: int = 0
    model_cache_misses: int = 0
    per_fu: Dict[str, int] = field(default_factory=dict)

    def as_dict(self) -> Dict:
        return {"requests": self.requests, "batches": self.batches,
                "served_by_model": self.served_by_model,
                "served_by_sim": self.served_by_sim, "failed": self.failed,
                "model_cache_hits": self.model_cache_hits,
                "model_cache_misses": self.model_cache_misses,
                "per_fu": dict(self.per_fu)}


def validate_request(request: PredictRequest, fu_lookup) -> Optional[str]:
    """Validate one request; return the failure message or None.

    Shared between :class:`PredictionEngine` and the cluster front end
    (:mod:`repro.serve.cluster`), so both reject the same requests with
    the same messages — and, crucially, neither advances per-stream
    history for a request the other would have failed.
    """
    try:
        request.condition()  # validates the (V, T) ranges
        fu_lookup(request.fu)
        if request.clock_period is not None and request.clock_period <= 0:
            raise ValueError("clock_period must be positive")
        if request.deadline_ms is not None and request.deadline_ms <= 0:
            raise ValueError("deadline_ms must be positive")
    except (ValueError, KeyError) as exc:
        return str(exc)
    return None


class PredictionEngine:
    """Serves delay predictions from a registry, with sim fallback.

    Parameters
    ----------
    registry:
        A :class:`~repro.serve.registry.ModelRegistry` or its root
        directory.  ``None`` disables model serving entirely (every
        request uses the simulation fallback).
    kind:
        Which published model kind to serve (default ``"tevot"``).
    sim_fallback:
        Run gate-level simulation for FUs with no published model.
    backend:
        Simulation backend for the fallback path.
    max_hot_models:
        LRU capacity of the resolved-model cache.
    max_streams:
        LRU capacity of the per-stream history state — bounds server
        memory when clients mint fresh ``stream_id`` values forever.
    push_rollout:
        Subscribe to the store service's event feed and
        :meth:`refresh` on publish/gc announcements.  ``None`` (the
        default) subscribes automatically when the registry is remote
        (exposes ``subscribe_events``); ``False`` disables — cluster
        worker replicas set this, since their front end owns the one
        subscription and fans refreshes out.
    """

    def __init__(self, registry: Union[ModelRegistry, str, None] = None,
                 kind: str = "tevot", sim_fallback: bool = True,
                 backend: str = DEFAULT_BACKEND,
                 max_hot_models: int = 8,
                 max_streams: int = 4096,
                 push_rollout: Optional[bool] = None) -> None:
        if max_hot_models < 1:
            raise ValueError("max_hot_models must be >= 1")
        if max_streams < 1:
            raise ValueError("max_streams must be >= 1")
        if registry is None or not isinstance(registry, (str, Path)):
            self.registry = registry  # a registry object (local or remote)
        else:
            self.registry = open_model_registry(registry)
        self.kind = kind
        self.sim_fallback = sim_fallback
        # fallback runner: cache disabled — two-row serving streams
        # would churn the shared characterization store
        self._runner = CampaignRunner(backend=backend, use_cache=False)
        self.max_hot_models = max_hot_models
        self.max_streams = max_streams
        self._hot: "OrderedDict[str, Tuple[object, object]]" = OrderedDict()
        # FUs known to have no published model; cleared by refresh()
        self._unpublished: set = set()
        self._history: "OrderedDict[Tuple[str, str], Tuple[int, int]]" \
            = OrderedDict()
        self._fus: Dict[str, FunctionalUnit] = {}
        self._lock = threading.Lock()
        self.stats = EngineStats()
        self._push = None
        want_push = True if push_rollout is None else bool(push_rollout)
        subscribe = getattr(self.registry, "subscribe_events", None)
        if want_push and callable(subscribe):
            self._push = subscribe(self.refresh)

    def close(self) -> None:
        """Stop the push subscriber (idempotent; no-op without one)."""
        if self._push is not None:
            self._push.close()
            self._push = None

    # -- model / FU resolution ------------------------------------------------

    def _functional_unit(self, fu_name: str) -> FunctionalUnit:
        fu = self._fus.get(fu_name)
        if fu is None:
            fu = build_functional_unit(fu_name)
            self._fus[fu_name] = fu
        return fu

    def _resolve_model(self, fu_name: str):
        """Hot model + record for an FU, or None when unpublished.

        Both outcomes are cached until :meth:`refresh` — a fallback-only
        FU must not re-read the registry manifest on every batch.
        """
        entry = self._hot.get(fu_name)
        if entry is not None:
            self._hot.move_to_end(fu_name)
            self.stats.model_cache_hits += 1
            return entry
        if fu_name in self._unpublished:
            self.stats.model_cache_hits += 1
            return None
        self.stats.model_cache_misses += 1
        if self.registry is None:
            self._unpublished.add(fu_name)
            return None
        try:
            model, record = self.registry.resolve(fu_name, kind=self.kind)
        except LookupError:
            self._unpublished.add(fu_name)
            return None
        self._hot[fu_name] = (model, record)
        while len(self._hot) > self.max_hot_models:
            self._hot.popitem(last=False)
        return model, record

    def refresh(self) -> None:
        """Drop hot models and negative-resolution entries so newly
        published versions get picked up."""
        with self._lock:
            self._hot.clear()
            self._unpublished.clear()

    def reset_stream(self, fu: Optional[str] = None,
                     stream_id: Optional[str] = None) -> None:
        """Forget stored history (all streams, or one FU/stream)."""
        with self._lock:
            self._history = OrderedDict(
                (k, v) for k, v in self._history.items()
                if (fu is not None and k[0] != fu)
                or (stream_id is not None and k[1] != stream_id))

    def reset_stats(self) -> None:
        with self._lock:
            self.stats = EngineStats()

    # -- inference ------------------------------------------------------------

    def predict_one(self, request: PredictRequest) -> Prediction:
        """Single-request convenience; raises on failure."""
        result = self.predict_batch([request])[0]
        if not result.ok:
            raise ValueError(result.message or "prediction failed")
        return result

    def predict_batch(self, requests: Sequence[PredictRequest]
                      ) -> List[Prediction]:
        """Serve a micro-batch in one pass per distinct model.

        Results align with ``requests``.  Requests sharing a
        ``(fu, stream_id)`` chain their history in list order; requests
        for different FUs or corners batch freely — V and T are feature
        columns, so a single forest pass covers a corner mix.
        """
        with self._lock:
            return self._predict_batch_locked(list(requests))

    def _predict_batch_locked(self, requests: List[PredictRequest]
                              ) -> List[Prediction]:
        results: List[Optional[Prediction]] = [None] * len(requests)
        self.stats.batches += 1
        self.stats.requests += len(requests)

        # validate + group by FU, preserving request order per group
        groups: Dict[str, List[int]] = {}
        for i, req in enumerate(requests):
            failure = validate_request(req, self._functional_unit)
            if failure is not None:
                results[i] = Prediction(ok=False, message=failure)
                self.stats.failed += 1
                continue
            groups.setdefault(req.fu, []).append(i)
            self.stats.per_fu[req.fu] = self.stats.per_fu.get(req.fu, 0) + 1

        for fu_name, idxs in groups.items():
            resolved = self._resolve_model(fu_name)
            try:
                if resolved is not None:
                    model, record = resolved
                    batch = self._predict_with_model(
                        fu_name, model, [requests[i] for i in idxs])
                    for pred in batch:
                        pred.model_id = record.model_id
                    self.stats.served_by_model += len(idxs)
                elif self.sim_fallback:
                    batch = self._predict_with_sim(
                        fu_name, [requests[i] for i in idxs])
                    self.stats.served_by_sim += len(idxs)
                else:
                    raise LookupError(
                        f"no published {self.kind!r} model for FU "
                        f"{fu_name!r} and simulation fallback is disabled")
            except (LookupError, ValueError) as exc:
                batch = [Prediction(ok=False, message=str(exc))
                         for _ in idxs]
                self.stats.failed += len(idxs)
            for i, pred in zip(idxs, batch):
                results[i] = pred
        return results  # type: ignore[return-value]

    def _chain_history(self, fu_name: str, requests: List[PredictRequest],
                       width: int):
        """Current/previous operand arrays, advancing stored state.

        Request i's history is (in priority order) its explicit
        ``prev_*``, the previous request on the same stream within this
        batch, the stored cross-batch state, or — for a stream's very
        first request — its own operands (a steady input: no
        transition, matching a two-row stream ``[x, x]``).
        """
        mask = (1 << width) - 1
        cur_a = np.empty(len(requests), dtype=np.uint64)
        cur_b = np.empty(len(requests), dtype=np.uint64)
        prev_a = np.empty(len(requests), dtype=np.uint64)
        prev_b = np.empty(len(requests), dtype=np.uint64)
        for i, req in enumerate(requests):
            a, b = req.a & mask, req.b & mask
            state_key = (fu_name, req.stream_id)
            if req.prev_a is not None or req.prev_b is not None:
                pa = (req.prev_a if req.prev_a is not None else a) & mask
                pb = (req.prev_b if req.prev_b is not None else b) & mask
            else:
                pa, pb = self._history.get(state_key, (a, b))
            cur_a[i], cur_b[i] = a, b
            prev_a[i], prev_b[i] = pa, pb
            self._history[state_key] = (a, b)
            self._history.move_to_end(state_key)
        while len(self._history) > self.max_streams:
            self._history.popitem(last=False)
        return cur_a, cur_b, prev_a, prev_b

    def _predict_with_model(self, fu_name: str, model,
                            requests: List[PredictRequest]
                            ) -> List[Prediction]:
        """One vectorized regressor pass over the whole group."""
        spec = model.spec
        width = spec.operand_width
        cur_a, cur_b, prev_a, prev_b = self._chain_history(
            fu_name, requests, width)

        parts = [operand_bits(cur_a, width), operand_bits(cur_b, width)]
        if spec.include_history:
            parts += [operand_bits(prev_a, width),
                      operand_bits(prev_b, width)]
        volts = np.array([r.voltage for r in requests],
                         dtype=np.float32)[:, None]
        temps = np.array([r.temperature for r in requests],
                         dtype=np.float32)[:, None]
        X = np.concatenate(parts + [volts, temps], axis=1)

        delays = model.predict_delay(X)
        return [self._finish(req, float(d), "model")
                for req, d in zip(requests, delays)]

    def _predict_with_sim(self, fu_name: str,
                          requests: List[PredictRequest]
                          ) -> List[Prediction]:
        """Gate-level fallback: chain each stream into one sim job.

        Consecutive same-stream requests share one operand stream (one
        simulated cycle each); the unique corners of the group become
        the job's condition axis and each request reads its own
        ``(corner row, cycle)`` cell of the resulting delay matrix.
        """
        fu = self._functional_unit(fu_name)
        width = fu.operand_width
        cur_a, cur_b, prev_a, prev_b = self._chain_history(
            fu_name, requests, width)

        # split into chained segments: a segment breaks where a
        # request's history is not the previous request's operands
        segments: List[List[int]] = []
        seg_stream: Dict[str, int] = {}
        for i, req in enumerate(requests):
            seg_idx = seg_stream.get(req.stream_id)
            if (seg_idx is not None
                    and prev_a[i] == cur_a[segments[seg_idx][-1]]
                    and prev_b[i] == cur_b[segments[seg_idx][-1]]):
                segments[seg_idx].append(i)
            else:
                seg_stream[req.stream_id] = len(segments)
                segments.append([i])

        conditions = []
        cond_row: Dict[OperatingCondition, int] = {}
        for req in requests:
            cond = req.condition()
            if cond not in cond_row:
                cond_row[cond] = len(conditions)
                conditions.append(cond)

        jobs = []
        for seg in segments:
            a = np.concatenate(([prev_a[seg[0]]], cur_a[seg]))
            b = np.concatenate(([prev_b[seg[0]]], cur_b[seg]))
            stream = OperandStream(
                f"serve_{fu_name}_{requests[seg[0]].stream_id}", a, b)
            jobs.append(CampaignJob(fu, stream, conditions))
        traces = self._runner.run(jobs)

        results: List[Optional[Prediction]] = [None] * len(requests)
        for seg, trace in zip(segments, traces):
            for cycle, i in enumerate(seg):
                req = requests[i]
                delay = float(trace.delays[cond_row[req.condition()], cycle])
                results[i] = self._finish(req, delay, "sim")
        return [r for r in results if r is not None]

    @staticmethod
    def _finish(req: PredictRequest, delay: float,
                source: str) -> Prediction:
        # clock_period was validated up front, before history advanced
        timing_error = (None if req.clock_period is None
                        else bool(delay > req.clock_period))
        return Prediction(ok=True, delay_ps=delay,
                          timing_error=timing_error, source=source)

    # -- introspection --------------------------------------------------------

    def stats_dict(self) -> Dict:
        with self._lock:
            stats = self.stats.as_dict()
        if self._push is not None:
            stats["push"] = self._push.stats()
        return stats
