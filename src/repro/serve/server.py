"""Stdlib HTTP/JSON front end over the prediction engine.

``repro serve`` starts a :class:`PredictionServer`: a threading HTTP
server whose handler threads do **not** call the engine directly —
they enqueue onto a :class:`MicroBatcher`, a single consumer thread
that waits ``batch_window_ms`` after the first request lands (or until
``max_batch`` accumulate) and pushes the whole slab through one
vectorized :meth:`~repro.serve.engine.PredictionEngine.predict_batch`.
Concurrent connections therefore share forest passes instead of
serializing on per-request model calls.

The request path is *bounded end to end*: the micro-batch queue holds
at most ``max_queue`` requests — an arrival that would overflow it is
**shed** immediately with ``429`` + a ``Retry-After`` estimate instead
of growing the queue (the accept loop never blocks on overload) — and
every request carries a **deadline** (its own ``deadline_ms``, else
the server's ``default_deadline_ms``).  A request still queued when
its deadline passes is answered ``504 deadline exceeded`` at dequeue,
never silently computed; the tightest deadline of each batch rides
into deadline-aware engines (the cluster propagates it to its
hung-worker watchdog).

Endpoints (all JSON):

* ``POST /predict`` — body ``{"requests": [...]}`` or a single request
  object; returns per-request predictions in order (``429`` when shed,
  ``504`` when every request's deadline expired).
* ``GET  /models``  — published registry records.
* ``GET  /health``  — ``healthy`` / ``degraded`` / ``draining``; only
  ``healthy`` is a 200, so load balancers can eject a degraded node.
* ``GET  /stats``   — engine + batching counters (shed / expired /
  watchdog / quarantine) and current config.
* ``POST /config``  — adjust ``batch_window_ms`` / ``max_batch`` /
  ``max_queue`` / ``default_deadline_ms`` at runtime (the
  dynamic-serving-parameter idea from PAPERS.md).
* ``POST /models/refresh`` — re-resolve published models; on a
  cluster engine this is the control message that makes every worker
  replica re-replicate the registry manifest and re-warm (it also
  retries quarantined worker slots).

The server also accepts any *engine-shaped* executor (anything with
``predict_batch`` / ``refresh`` / ``stats_dict`` and the
``registry`` / ``kind`` / ``sim_fallback`` attributes) — that is how
:class:`~repro.serve.cluster.ClusterEngine` slots in unchanged — and
an optional :class:`~repro.serve.requestlog.RequestLog` that records
every executed batch for deterministic replay.

Shutdown is graceful: ``close()`` (or SIGTERM via ``repro serve``)
stops accepting, drains the micro-batcher queue, answers every
in-flight request, and only then closes the socket.
"""

from __future__ import annotations

import inspect
import json
import math
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, List, Optional, Sequence, Tuple

from ..flow.watchdog import Deadline
from .engine import (
    Prediction,
    PredictionEngine,
    PredictRequest,
    expired_prediction,
)


class ConfigError(ValueError):
    """A rejected runtime-config value; ``field`` names the culprit."""

    def __init__(self, field: str, message: str) -> None:
        super().__init__(message)
        self.field = field


class QueueFullError(RuntimeError):
    """Raised by :meth:`MicroBatcher.submit_many` when accepting the
    requests would overflow ``max_queue`` — the HTTP layer turns it
    into ``429`` with a ``Retry-After`` header."""

    def __init__(self, n_shed: int, retry_after_s: float) -> None:
        super().__init__(
            f"queue full: shed {n_shed} request(s), retry after "
            f"{retry_after_s:.3f}s")
        self.n_shed = n_shed
        self.retry_after_s = retry_after_s


def _check_window(value) -> float:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ConfigError("batch_window_ms",
                          f"batch_window_ms must be a number, "
                          f"got {value!r}")
    if float(value) < 0:
        raise ConfigError("batch_window_ms",
                          f"batch_window_ms must be >= 0, got {value!r}")
    return float(value)


def _check_max_batch(value) -> int:
    if isinstance(value, bool) or not isinstance(value, int):
        raise ConfigError("max_batch",
                          f"max_batch must be an integer, got {value!r}")
    if value < 1:
        raise ConfigError("max_batch",
                          f"max_batch must be >= 1, got {value!r}")
    return value


def _check_max_queue(value) -> int:
    if isinstance(value, bool) or not isinstance(value, int):
        raise ConfigError("max_queue",
                          f"max_queue must be an integer, got {value!r}")
    if value < 1:
        raise ConfigError("max_queue",
                          f"max_queue must be >= 1, got {value!r}")
    return value


def _check_default_deadline(value) -> float:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ConfigError("default_deadline_ms",
                          f"default_deadline_ms must be a number, "
                          f"got {value!r}")
    if float(value) < 0:
        raise ConfigError("default_deadline_ms",
                          f"default_deadline_ms must be >= 0 "
                          f"(0 disables), got {value!r}")
    return float(value)


class _Pending:
    """One queued request awaiting its batch result."""

    __slots__ = ("request", "done", "result", "deadline")

    def __init__(self, request: PredictRequest,
                 deadline: Optional[Deadline] = None) -> None:
        self.request = request
        self.done = threading.Event()
        self.result: Optional[Prediction] = None
        self.deadline = deadline

    def finish(self, result: Prediction) -> None:
        self.result = result
        self.done.set()


class MicroBatcher:
    """Collects requests across threads into engine-sized batches.

    The queue is bounded (``max_queue``): a submission that would
    overflow it raises :class:`QueueFullError` *immediately* — load is
    shed at the door, handler threads never block on overload, and the
    queue can never grow without bound.  Every queued request carries a
    deadline (its own ``deadline_ms`` or the batcher's
    ``default_deadline_ms``); expired requests are answered
    ``deadline exceeded`` at dequeue instead of executed, and the
    tightest deadline of each batch is forwarded to deadline-aware
    engines (``predict_batch(requests, deadline=...)``).
    """

    def __init__(self, engine: PredictionEngine,
                 batch_window_ms: float = 2.0, max_batch: int = 64,
                 request_log=None, max_queue: int = 256,
                 default_deadline_ms: float = 0.0) -> None:
        self.engine = engine
        self.request_log = request_log
        self.configure(batch_window_ms=batch_window_ms, max_batch=max_batch,
                       max_queue=max_queue,
                       default_deadline_ms=default_deadline_ms)
        try:
            self._deadline_aware = "deadline" in inspect.signature(
                engine.predict_batch).parameters
        except (TypeError, ValueError):  # pragma: no cover - exotic stubs
            self._deadline_aware = False
        self._cond = threading.Condition()
        self._log_lock = threading.Lock()
        self._queue: List[_Pending] = []
        self._stopped = False
        self.n_batches = 0
        self.n_requests = 0
        self.largest_batch = 0
        self.n_shed = 0
        self.n_expired = 0
        self._thread = threading.Thread(target=self._loop, daemon=True,
                                        name="repro-serve-batcher")
        self._thread.start()

    def configure(self, batch_window_ms: Optional[float] = None,
                  max_batch: Optional[int] = None,
                  max_queue: Optional[int] = None,
                  default_deadline_ms: Optional[float] = None) -> None:
        """Runtime-adjustable batching + overload knobs.

        Validates everything before applying anything (raising
        :class:`ConfigError` naming the offending field), so a
        rejected call never half-applies.
        """
        if batch_window_ms is not None:
            batch_window_ms = _check_window(batch_window_ms)
        if max_batch is not None:
            max_batch = _check_max_batch(max_batch)
        if max_queue is not None:
            max_queue = _check_max_queue(max_queue)
        if default_deadline_ms is not None:
            default_deadline_ms = _check_default_deadline(default_deadline_ms)
        if batch_window_ms is not None:
            self.batch_window_ms = batch_window_ms
        if max_batch is not None:
            self.max_batch = max_batch
        if max_queue is not None:
            self.max_queue = max_queue
        if default_deadline_ms is not None:
            self.default_deadline_ms = default_deadline_ms

    def _deadline_for(self, request: PredictRequest) -> Optional[Deadline]:
        budget = (request.deadline_ms if request.deadline_ms is not None
                  else self.default_deadline_ms)
        return Deadline.after_ms(budget) if budget else None

    def _retry_after_s(self, queue_len: int) -> float:
        """Honest backoff hint for a shed client: roughly how long the
        current queue takes to drain at the configured batch cadence."""
        batches_ahead = max(1, math.ceil(queue_len / self.max_batch))
        return round(batches_ahead * max(self.batch_window_ms, 1.0) / 1e3
                     + 0.01, 3)

    def _log_dropped(self, requests: List[PredictRequest],
                     reason: str) -> None:
        if self.request_log is None or not requests:
            return
        with self._log_lock:
            try:
                self.request_log.append_dropped(requests, reason)
            except OSError:  # a full disk must not take serving down
                pass

    def submit_many(self, requests: Sequence[PredictRequest]
                    ) -> List[Prediction]:
        """Enqueue and block until every request's batch has run.

        Raises :class:`QueueFullError` without blocking when the whole
        submission does not fit under ``max_queue`` (all-or-nothing:
        a multi-request body is shed as a unit, so its per-stream
        history chain is never half-applied).
        """
        pending = [_Pending(r, self._deadline_for(r)) for r in requests]
        with self._cond:
            if self._stopped:
                raise RuntimeError("batcher is stopped")
            if len(self._queue) + len(pending) > self.max_queue:
                self.n_shed += len(pending)
                retry_after = self._retry_after_s(len(self._queue))
                shed = [p.request for p in pending]
            else:
                shed = None
                self._queue.extend(pending)
                self._cond.notify()
        if shed is not None:
            self._log_dropped(shed, "shed")
            raise QueueFullError(len(shed), retry_after)
        for p in pending:
            p.done.wait()
        return [p.result for p in pending]  # type: ignore[misc]

    def stop(self) -> None:
        """Stop accepting and drain: every already-queued request is
        answered before the consumer thread exits (new ``submit_many``
        calls are rejected immediately)."""
        with self._cond:
            self._stopped = True
            self._cond.notify()
        self._thread.join()
        if self.request_log is not None:
            self.request_log.close()

    def _drain(self) -> List[_Pending]:
        batch = self._queue[:self.max_batch]
        del self._queue[:len(batch)]
        return batch

    def _sweep_expired(self) -> List[_Pending]:
        """Pull every already-expired request off the queue (caller
        holds ``_cond``).  Answering them here — before the batch is
        formed — keeps a burst of doomed requests from occupying batch
        slots that live requests could use."""
        expired = [p for p in self._queue
                   if p.deadline is not None and p.deadline.expired()]
        if expired:
            dead = set(id(p) for p in expired)
            self._queue = [p for p in self._queue if id(p) not in dead]
        return expired

    def _answer_expired(self, expired: List[_Pending]) -> None:
        if not expired:
            return
        self.n_expired += len(expired)
        for p in expired:
            p.finish(expired_prediction())
        self._log_dropped([p.request for p in expired], "expired")

    def _loop(self) -> None:
        while True:
            with self._cond:
                while not self._queue and not self._stopped:
                    self._cond.wait()
                if self._stopped and not self._queue:
                    return
                # first arrival: hold the window open for stragglers
                deadline = time.monotonic() + self.batch_window_ms / 1e3
                while (len(self._queue) < self.max_batch
                       and not self._stopped):
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        break
                    self._cond.wait(timeout=remaining)
                expired = self._sweep_expired()
                batch = self._drain()
            self._answer_expired(expired)
            if not batch:
                continue
            batch_deadline = Deadline.earliest(p.deadline for p in batch)
            try:
                if self._deadline_aware:
                    results = self.engine.predict_batch(
                        [p.request for p in batch], deadline=batch_deadline)
                else:
                    results = self.engine.predict_batch(
                        [p.request for p in batch])
            except Exception as exc:  # engine bug: fail the batch, live on
                results = [Prediction(ok=False, message=f"engine error: {exc}")
                           for _ in batch]
            # split executed from deadline-expired results so the log's
            # executed stream stays bit-exact under replay
            executed_req: List[PredictRequest] = []
            executed_res: List[Prediction] = []
            expired_req: List[PredictRequest] = []
            for pending, result in zip(batch, results):
                if result.expired:
                    expired_req.append(pending.request)
                else:
                    executed_req.append(pending.request)
                    executed_res.append(result)
            if self.request_log is not None and executed_req:
                with self._log_lock:
                    try:
                        self.request_log.append_batch(
                            executed_req, executed_res)
                    except OSError:  # full disk must not take serving down
                        pass
            self._log_dropped(expired_req, "expired")
            self.n_expired += len(expired_req)
            self.n_batches += 1
            self.n_requests += len(executed_req)
            self.largest_batch = max(self.largest_batch, len(batch))
            for pending, result in zip(batch, results):
                pending.finish(result)

    def queue_depth(self) -> int:
        with self._cond:
            return len(self._queue)

    def stats_dict(self) -> Dict:
        return {"batches": self.n_batches, "requests": self.n_requests,
                "largest_batch": self.largest_batch,
                "mean_batch": (self.n_requests / self.n_batches
                               if self.n_batches else 0.0),
                "shed": self.n_shed,
                "expired": self.n_expired,
                "queue_depth": self.queue_depth(),
                "batch_window_ms": self.batch_window_ms,
                "max_batch": self.max_batch,
                "max_queue": self.max_queue,
                "default_deadline_ms": self.default_deadline_ms}


class _Handler(BaseHTTPRequestHandler):
    server: "PredictionServer"

    #: bound the time a silent connection can pin a handler thread, so
    #: graceful close (which joins handler threads) cannot hang forever
    timeout = 60.0

    # -- plumbing -------------------------------------------------------------

    def _send_json(self, payload: Dict, status: int = 200,
                   headers: Optional[Dict[str, str]] = None) -> None:
        body = json.dumps(payload).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _read_json(self) -> Dict:
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length else b"{}"
        try:
            data = json.loads(raw)
        except json.JSONDecodeError as exc:
            raise ValueError(f"invalid JSON body: {exc}") from None
        if not isinstance(data, dict):
            raise ValueError("JSON body must be an object")
        return data

    def log_message(self, fmt: str, *args) -> None:  # pragma: no cover
        if self.server.verbose:
            super().log_message(fmt, *args)

    # -- routes ---------------------------------------------------------------

    def do_GET(self) -> None:
        path = self.path.split("?", 1)[0]
        if path == "/health":
            payload = self.server.health()
            # only "healthy" is a 200 so load balancers eject the node
            status = 200 if payload["status"] == "healthy" else 503
            self._send_json(payload, status)
        elif path == "/models":
            self._send_json({"models": self.server.model_records()})
        elif path == "/stats":
            self._send_json(self.server.stats())
        else:
            self._send_json({"error": f"unknown path {path!r}"}, 404)

    def do_POST(self) -> None:
        path = self.path.split("?", 1)[0]
        try:
            data = self._read_json()
        except ValueError as exc:
            self._send_json({"error": str(exc)}, 400)
            return
        if path == "/predict":
            self._predict(data)
        elif path == "/config":
            self._config(data)
        elif path == "/models/refresh":
            self.server.refresh_calls += 1
            self.server.engine.refresh()
            self._send_json({"ok": True})
        else:
            self._send_json({"error": f"unknown path {path!r}"}, 404)

    def _predict(self, data: Dict) -> None:
        try:
            raw = data["requests"] if "requests" in data else [data]
            if not isinstance(raw, list) or not raw:
                raise ValueError("'requests' must be a non-empty list")
            requests = [PredictRequest.from_dict(item) for item in raw]
        except (TypeError, ValueError) as exc:
            self._send_json({"error": str(exc)}, 400)
            return
        try:
            results = self.server.batcher.submit_many(requests)
        except QueueFullError as exc:  # overload: shed with a backoff hint
            self._send_json(
                {"error": "queue full, request shed",
                 "retry_after_s": exc.retry_after_s},
                429, headers={"Retry-After": f"{exc.retry_after_s:.3f}"})
            return
        except RuntimeError:  # shutting down: batcher drains, no new work
            self._send_json({"error": "server is shutting down"}, 503)
            return
        if all(r.ok for r in results):
            status = 200
        elif all(r.expired for r in results):
            status = 504  # every request outlived its deadline
        else:
            status = 422
        self._send_json(
            {"predictions": [r.as_dict() for r in results]}, status)

    def _config(self, data: Dict) -> None:
        try:
            self.server.batcher.configure(
                batch_window_ms=data.get("batch_window_ms"),
                max_batch=data.get("max_batch"),
                max_queue=data.get("max_queue"),
                default_deadline_ms=data.get("default_deadline_ms"))
        except ConfigError as exc:
            self._send_json({"error": str(exc), "field": exc.field}, 400)
            return
        if data.get("refresh_models"):
            self.server.engine.refresh()
        self._send_json({"ok": True,
                         "config": self.server.batcher.stats_dict()})


class PredictionServer(ThreadingHTTPServer):
    """HTTP server owning one engine + one micro-batcher.

    ``engine`` may be a single-process
    :class:`~repro.serve.engine.PredictionEngine` or a
    :class:`~repro.serve.cluster.ClusterEngine` — anything exposing
    the engine surface the batcher and endpoints consume.  ``port=0``
    binds an ephemeral port (see :attr:`address`); call
    :meth:`serve_forever` (blocking) or :meth:`start_background`.
    Stop with :meth:`close` (graceful: drains queued requests, then
    closes the socket and any cluster workers).
    """

    # handler threads are joined on server_close so every accepted
    # request gets its response written before the socket goes away
    daemon_threads = False
    block_on_close = True

    def __init__(self, engine: PredictionEngine, host: str = "127.0.0.1",
                 port: int = 8000, batch_window_ms: float = 2.0,
                 max_batch: int = 64, verbose: bool = False,
                 request_log=None, max_queue: int = 256,
                 default_deadline_ms: float = 0.0) -> None:
        self.engine = engine
        self.batcher = MicroBatcher(engine, batch_window_ms=batch_window_ms,
                                    max_batch=max_batch,
                                    request_log=request_log,
                                    max_queue=max_queue,
                                    default_deadline_ms=default_deadline_ms)
        self.verbose = verbose
        #: manual POST /models/refresh count — with push rollout active
        #: this should stay 0 (the CI smoke asserts exactly that)
        self.refresh_calls = 0
        self._started = time.monotonic()
        self._closed = False
        self._draining = False
        super().__init__((host, port), _Handler)

    @property
    def address(self) -> Tuple[str, int]:
        return self.server_address[0], self.server_address[1]

    @property
    def request_log(self):
        return self.batcher.request_log

    def start_background(self) -> threading.Thread:
        thread = threading.Thread(target=self.serve_forever, daemon=True,
                                  name="repro-serve-http")
        thread.start()
        return thread

    def shutdown(self) -> None:
        """Stop accepting and drain in-flight + queued requests."""
        self._draining = True
        super().shutdown()
        self.batcher.stop()

    def close(self) -> None:
        """Graceful full stop (idempotent): drain, reap, close socket.

        Order matters: stop accepting, answer everything queued
        (:meth:`MicroBatcher.stop` drains), close cluster workers if
        the engine owns any, then close the socket — joining handler
        threads so already-computed responses are flushed to clients.
        """
        if self._closed:
            return
        self._closed = True
        self.shutdown()
        engine_close = getattr(self.engine, "close", None)
        if callable(engine_close):
            engine_close()
        self.server_close()

    # -- endpoint payloads ----------------------------------------------------

    def health_state(self) -> str:
        """``healthy`` | ``degraded`` | ``draining``.

        Draining wins (the node is leaving); otherwise a cluster engine
        reporting quarantined worker slots makes the node degraded —
        it still answers, but a load balancer should prefer others.
        """
        if self._draining or self._closed:
            return "draining"
        engine_state = getattr(self.engine, "health_state", None)
        if callable(engine_state):
            return engine_state()
        return "healthy"

    def health(self) -> Dict:
        registry = self.engine.registry
        return {"status": self.health_state(),
                "uptime_s": round(time.monotonic() - self._started, 3),
                "models_published": 0 if registry is None else len(registry),
                "sim_fallback": self.engine.sim_fallback,
                "workers": getattr(self.engine, "n_workers", 1),
                "kind": self.engine.kind}

    def model_records(self) -> List[Dict]:
        registry = self.engine.registry
        if registry is None:
            return []
        return [{"model_id": r.model_id, "fu": r.fu, "kind": r.kind,
                 "version": r.version, "key": r.key,
                 "feature_spec": r.feature_spec, "corners": r.corners,
                 "train_stream": r.train_stream, "created": r.created,
                 "size_bytes": r.size_bytes}
                for r in registry.list_models()]

    def stats(self) -> Dict:
        return {"engine": self.engine.stats_dict(),
                "batching": self.batcher.stats_dict(),
                "refresh_calls": self.refresh_calls}
