"""Stdlib HTTP/JSON front end over the prediction engine.

``repro serve`` starts a :class:`PredictionServer`: a threading HTTP
server whose handler threads do **not** call the engine directly —
they enqueue onto a :class:`MicroBatcher`, a single consumer thread
that waits ``batch_window_ms`` after the first request lands (or until
``max_batch`` accumulate) and pushes the whole slab through one
vectorized :meth:`~repro.serve.engine.PredictionEngine.predict_batch`.
Concurrent connections therefore share forest passes instead of
serializing on per-request model calls.

Endpoints (all JSON):

* ``POST /predict`` — body ``{"requests": [...]}`` or a single request
  object; returns per-request predictions in order.
* ``GET  /models``  — published registry records.
* ``GET  /health``  — liveness + registry/model counts.
* ``GET  /stats``   — engine + batching counters and current config.
* ``POST /config``  — adjust ``batch_window_ms`` / ``max_batch`` at
  runtime (the dynamic-serving-parameter idea from PAPERS.md).
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, List, Optional, Sequence, Tuple

from .engine import Prediction, PredictionEngine, PredictRequest


class _Pending:
    """One queued request awaiting its batch result."""

    __slots__ = ("request", "done", "result")

    def __init__(self, request: PredictRequest) -> None:
        self.request = request
        self.done = threading.Event()
        self.result: Optional[Prediction] = None


class MicroBatcher:
    """Collects requests across threads into engine-sized batches."""

    def __init__(self, engine: PredictionEngine,
                 batch_window_ms: float = 2.0, max_batch: int = 64) -> None:
        self.engine = engine
        self.configure(batch_window_ms=batch_window_ms, max_batch=max_batch)
        self._cond = threading.Condition()
        self._queue: List[_Pending] = []
        self._stopped = False
        self.n_batches = 0
        self.n_requests = 0
        self.largest_batch = 0
        self._thread = threading.Thread(target=self._loop, daemon=True,
                                        name="repro-serve-batcher")
        self._thread.start()

    def configure(self, batch_window_ms: Optional[float] = None,
                  max_batch: Optional[int] = None) -> None:
        """Runtime-adjustable batching knobs.

        Validates everything before applying anything, so a rejected
        call never half-applies.
        """
        if batch_window_ms is not None and float(batch_window_ms) < 0:
            raise ValueError("batch_window_ms must be >= 0")
        if max_batch is not None and int(max_batch) < 1:
            raise ValueError("max_batch must be >= 1")
        if batch_window_ms is not None:
            self.batch_window_ms = float(batch_window_ms)
        if max_batch is not None:
            self.max_batch = int(max_batch)

    def submit_many(self, requests: Sequence[PredictRequest]
                    ) -> List[Prediction]:
        """Enqueue and block until every request's batch has run."""
        pending = [_Pending(r) for r in requests]
        with self._cond:
            if self._stopped:
                raise RuntimeError("batcher is stopped")
            self._queue.extend(pending)
            self._cond.notify()
        for p in pending:
            p.done.wait()
        return [p.result for p in pending]  # type: ignore[misc]

    def stop(self) -> None:
        with self._cond:
            self._stopped = True
            self._cond.notify()
        self._thread.join(timeout=5.0)

    def _drain(self) -> List[_Pending]:
        batch = self._queue[:self.max_batch]
        del self._queue[:len(batch)]
        return batch

    def _loop(self) -> None:
        while True:
            with self._cond:
                while not self._queue and not self._stopped:
                    self._cond.wait()
                if self._stopped and not self._queue:
                    return
                # first arrival: hold the window open for stragglers
                deadline = time.monotonic() + self.batch_window_ms / 1e3
                while (len(self._queue) < self.max_batch
                       and not self._stopped):
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        break
                    self._cond.wait(timeout=remaining)
                batch = self._drain()
            try:
                results = self.engine.predict_batch(
                    [p.request for p in batch])
            except Exception as exc:  # engine bug: fail the batch, live on
                results = [Prediction(ok=False, message=f"engine error: {exc}")
                           for _ in batch]
            self.n_batches += 1
            self.n_requests += len(batch)
            self.largest_batch = max(self.largest_batch, len(batch))
            for pending, result in zip(batch, results):
                pending.result = result
                pending.done.set()

    def stats_dict(self) -> Dict:
        return {"batches": self.n_batches, "requests": self.n_requests,
                "largest_batch": self.largest_batch,
                "mean_batch": (self.n_requests / self.n_batches
                               if self.n_batches else 0.0),
                "batch_window_ms": self.batch_window_ms,
                "max_batch": self.max_batch}


class _Handler(BaseHTTPRequestHandler):
    server: "PredictionServer"

    # -- plumbing -------------------------------------------------------------

    def _send_json(self, payload: Dict, status: int = 200) -> None:
        body = json.dumps(payload).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _read_json(self) -> Dict:
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length else b"{}"
        try:
            data = json.loads(raw)
        except json.JSONDecodeError as exc:
            raise ValueError(f"invalid JSON body: {exc}") from None
        if not isinstance(data, dict):
            raise ValueError("JSON body must be an object")
        return data

    def log_message(self, fmt: str, *args) -> None:  # pragma: no cover
        if self.server.verbose:
            super().log_message(fmt, *args)

    # -- routes ---------------------------------------------------------------

    def do_GET(self) -> None:
        path = self.path.split("?", 1)[0]
        if path == "/health":
            self._send_json(self.server.health())
        elif path == "/models":
            self._send_json({"models": self.server.model_records()})
        elif path == "/stats":
            self._send_json(self.server.stats())
        else:
            self._send_json({"error": f"unknown path {path!r}"}, 404)

    def do_POST(self) -> None:
        path = self.path.split("?", 1)[0]
        try:
            data = self._read_json()
        except ValueError as exc:
            self._send_json({"error": str(exc)}, 400)
            return
        if path == "/predict":
            self._predict(data)
        elif path == "/config":
            self._config(data)
        else:
            self._send_json({"error": f"unknown path {path!r}"}, 404)

    def _predict(self, data: Dict) -> None:
        try:
            raw = data["requests"] if "requests" in data else [data]
            if not isinstance(raw, list) or not raw:
                raise ValueError("'requests' must be a non-empty list")
            requests = [PredictRequest.from_dict(item) for item in raw]
        except (TypeError, ValueError) as exc:
            self._send_json({"error": str(exc)}, 400)
            return
        results = self.server.batcher.submit_many(requests)
        status = 200 if all(r.ok for r in results) else 422
        self._send_json(
            {"predictions": [r.as_dict() for r in results]}, status)

    def _config(self, data: Dict) -> None:
        try:
            self.server.batcher.configure(
                batch_window_ms=data.get("batch_window_ms"),
                max_batch=data.get("max_batch"))
        except (TypeError, ValueError) as exc:
            self._send_json({"error": str(exc)}, 400)
            return
        if data.get("refresh_models"):
            self.server.engine.refresh()
        self._send_json({"ok": True,
                         "config": self.server.batcher.stats_dict()})


class PredictionServer(ThreadingHTTPServer):
    """HTTP server owning one engine + one micro-batcher.

    ``port=0`` binds an ephemeral port (see :attr:`address`); call
    :meth:`serve_forever` (blocking) or :meth:`start_background`.
    """

    daemon_threads = True

    def __init__(self, engine: PredictionEngine, host: str = "127.0.0.1",
                 port: int = 8000, batch_window_ms: float = 2.0,
                 max_batch: int = 64, verbose: bool = False) -> None:
        self.engine = engine
        self.batcher = MicroBatcher(engine, batch_window_ms=batch_window_ms,
                                    max_batch=max_batch)
        self.verbose = verbose
        self._started = time.monotonic()
        super().__init__((host, port), _Handler)

    @property
    def address(self) -> Tuple[str, int]:
        return self.server_address[0], self.server_address[1]

    def start_background(self) -> threading.Thread:
        thread = threading.Thread(target=self.serve_forever, daemon=True,
                                  name="repro-serve-http")
        thread.start()
        return thread

    def shutdown(self) -> None:
        super().shutdown()
        self.batcher.stop()

    # -- endpoint payloads ----------------------------------------------------

    def health(self) -> Dict:
        registry = self.engine.registry
        return {"status": "ok",
                "uptime_s": round(time.monotonic() - self._started, 3),
                "models_published": 0 if registry is None else len(registry),
                "sim_fallback": self.engine.sim_fallback,
                "kind": self.engine.kind}

    def model_records(self) -> List[Dict]:
        registry = self.engine.registry
        if registry is None:
            return []
        return [{"model_id": r.model_id, "fu": r.fu, "kind": r.kind,
                 "version": r.version, "key": r.key,
                 "feature_spec": r.feature_spec, "corners": r.corners,
                 "train_stream": r.train_stream, "created": r.created,
                 "size_bytes": r.size_bytes}
                for r in registry.list_models()]

    def stats(self) -> Dict:
        return {"engine": self.engine.stats_dict(),
                "batching": self.batcher.stats_dict()}
