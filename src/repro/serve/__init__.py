"""Online inference: model registry + micro-batching prediction serving.

The offline pipeline trains delay regressors; this package serves them:

* :mod:`repro.serve.registry` — versioned on-disk
  :class:`ModelRegistry` (``publish`` / ``resolve`` / ``list`` /
  ``gc``), keyed by FU, corner grid, training-stream fingerprint, and
  feature-spec version;
* :mod:`repro.serve.engine` — long-lived :class:`PredictionEngine`
  keeping models hot, chaining per-stream history, micro-batching
  mixed-corner requests into single forest passes, and falling back to
  gate-level simulation for unpublished FUs;
* :mod:`repro.serve.cluster` — :class:`ClusterEngine` fanning batches
  over N worker processes, each holding a replicated registry engine;
  FU-affinity routing, dead-worker respawn with in-flight reissue,
  bit-exact with the single-process engine;
* :mod:`repro.serve.requestlog` — append-only sealed JSONL
  :class:`RequestLog` of every executed batch, and :func:`replay_log`
  (``repro serve --replay``) re-driving it bit-exact;
* :mod:`repro.serve.server` / :mod:`repro.serve.client` — stdlib
  HTTP/JSON server (``repro serve``) and retrying client.

The request path is resilient end to end: bounded queues shed overload
with ``429`` + ``Retry-After``, per-request deadlines expire to
``504`` instead of executing stale work, a watchdog kills + respawns
hung cluster workers, and crash-looping worker slots are quarantined
while the cluster serves degraded (``/health`` non-200).
"""

from .client import ServeClient, ServeError
from .http import HttpTransport, TransportError
from .cluster import ClusterEngine, ClusterStats
from .engine import (
    EngineStats,
    Prediction,
    PredictionEngine,
    PredictRequest,
    expired_prediction,
    validate_request,
)
from .registry import (
    MODEL_KINDS,
    ModelRecord,
    ModelRegistry,
    RegistryGCReport,
    corner_fingerprint,
    fu_fingerprint,
    model_key,
    open_model_registry,
    stream_fingerprint,
)
from .requestlog import (
    ReplayMismatch,
    ReplayReport,
    RequestLog,
    read_request_log,
    replay_log,
)
from .server import (
    ConfigError,
    MicroBatcher,
    PredictionServer,
    QueueFullError,
)

__all__ = [
    "ClusterEngine",
    "ClusterStats",
    "ConfigError",
    "EngineStats",
    "HttpTransport",
    "MODEL_KINDS",
    "MicroBatcher",
    "ModelRecord",
    "ModelRegistry",
    "Prediction",
    "PredictionEngine",
    "PredictionServer",
    "PredictRequest",
    "QueueFullError",
    "RegistryGCReport",
    "ReplayMismatch",
    "ReplayReport",
    "RequestLog",
    "ServeClient",
    "ServeError",
    "TransportError",
    "corner_fingerprint",
    "expired_prediction",
    "fu_fingerprint",
    "model_key",
    "open_model_registry",
    "read_request_log",
    "replay_log",
    "stream_fingerprint",
    "validate_request",
]
