"""Online inference: model registry + micro-batching prediction serving.

The offline pipeline trains delay regressors; this package serves them:

* :mod:`repro.serve.registry` — versioned on-disk
  :class:`ModelRegistry` (``publish`` / ``resolve`` / ``list`` /
  ``gc``), keyed by FU, corner grid, training-stream fingerprint, and
  feature-spec version;
* :mod:`repro.serve.engine` — long-lived :class:`PredictionEngine`
  keeping models hot, chaining per-stream history, micro-batching
  mixed-corner requests into single forest passes, and falling back to
  gate-level simulation for unpublished FUs;
* :mod:`repro.serve.server` / :mod:`repro.serve.client` — stdlib
  HTTP/JSON server (``repro serve``) and client.
"""

from .client import ServeClient, ServeError
from .engine import (
    EngineStats,
    Prediction,
    PredictionEngine,
    PredictRequest,
)
from .registry import (
    MODEL_KINDS,
    ModelRecord,
    ModelRegistry,
    RegistryGCReport,
    corner_fingerprint,
    fu_fingerprint,
    model_key,
    stream_fingerprint,
)
from .server import MicroBatcher, PredictionServer

__all__ = [
    "EngineStats",
    "MODEL_KINDS",
    "MicroBatcher",
    "ModelRecord",
    "ModelRegistry",
    "Prediction",
    "PredictionEngine",
    "PredictionServer",
    "PredictRequest",
    "RegistryGCReport",
    "ServeClient",
    "ServeError",
    "corner_fingerprint",
    "fu_fingerprint",
    "model_key",
    "stream_fingerprint",
]
