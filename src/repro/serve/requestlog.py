"""Persistent, replayable request log for the serving tier.

Load tests become reproducible artifacts: every ``/predict`` body the
:class:`~repro.serve.server.MicroBatcher` executes is appended to a
JSONL file in the workspace — one record per *executed batch*, so the
log preserves the batch boundaries the live traffic actually produced
(micro-batch composition affects nothing bit-wise, but replaying the
true boundaries keeps the replay an honest re-run of the recorded
load, and the graph-supported dynamic-configuration framing of
PAPERS.md needs the real arrival/batch structure to tune against).

Each record is sealed with a content fingerprint
(:func:`repro.flow.manifest.seal_record`), so truncated or hand-edited
lines are detected on read instead of silently replayed.  The first
line is a header record naming the server configuration that produced
the log.

``repro serve --replay LOG`` drives :func:`replay_log`: rebuild the
requests batch by batch, push them through a fresh engine (single
process or cluster — both are bit-exact with the recording engine for
the same registry), and compare every response against the recorded
one.  Per-stream history starts empty on both sides (the log starts at
server start), so a clean replay asserts byte-identical response
streams.
"""

from __future__ import annotations

import json
import os
import time
import warnings
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Union

from ..flow.manifest import check_record, seal_record
from ..testing import faults
from .engine import Prediction, PredictRequest

__all__ = [
    "ReplayMismatch",
    "ReplayReport",
    "RequestLog",
    "read_request_log",
    "replay_log",
]

#: Bump when the record layout changes.
LOG_VERSION = 1

#: Fingerprint namespace for sealed log records.
LOG_TAG = "serve-request-log"

SITE_APPEND = faults.register_site("requestlog.append", persistence=True)


class RequestLog:
    """Append-only JSONL log of executed prediction batches.

    Opened by the server at startup; :meth:`append_batch` is called by
    the micro-batcher's single consumer thread (no locking needed) and
    flushes + fsyncs per record, so even a ``kill -9``'d server loses
    at most the batch in flight — and a crash mid-line leaves a *torn
    final line* that :func:`read_request_log` recognizes and skips.
    Appending to an existing log continues its batch numbering —
    replay treats the whole file as one session only when the header
    count is 1.
    """

    def __init__(self, path: Union[str, Path],
                 config: Optional[Dict] = None) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._n_batches = 0
        self._seal_torn_tail()
        self._fh = open(self.path, "a", encoding="utf-8")
        self._write({"kind": "header", "version": LOG_VERSION,
                     "created": time.strftime("%Y-%m-%dT%H:%M:%S"),
                     "config": dict(config or {})})

    def _seal_torn_tail(self) -> None:
        """Truncate a torn final line left by a crashed writer.

        A previous process killed mid-append leaves the file without a
        trailing newline.  Appending straight after those bytes would
        fuse them with our next record into unparsable *interior*
        corruption, so the unacknowledged tail is dropped before the
        new session starts — the same record the reader would have
        skipped anyway.
        """
        try:
            with open(self.path, "r+b") as fh:
                data = fh.read()
                if not data or data.endswith(b"\n"):
                    return
                keep = data.rfind(b"\n") + 1
                fh.truncate(keep)
                fh.flush()
                os.fsync(fh.fileno())
        except FileNotFoundError:
            return
        warnings.warn(
            f"{self.path}: torn final log line (crash artifact) "
            f"truncated before appending", RuntimeWarning, stacklevel=3)

    def _write(self, record: Dict) -> None:
        line = json.dumps(seal_record(record, tag=LOG_TAG),
                          sort_keys=True, separators=(",", ":"))
        action = faults.trigger(SITE_APPEND)
        if action == "raise":
            raise faults.FaultInjected(f"fault injected at {SITE_APPEND}")
        if action == "exit":  # record never reaches the file
            os._exit(faults.EXIT_CODE)
        if action == "torn-write":  # crash mid-line: no newline lands
            self._fh.write(line[: max(1, len(line) // 2)])
            self._sync()
            os._exit(faults.TORN_EXIT_CODE)
        self._fh.write(line + "\n")
        self._sync()

    def _sync(self) -> None:
        """Flush + fsync: the batch boundary is durable, not just
        handed to the OS."""
        self._fh.flush()
        try:
            os.fsync(self._fh.fileno())
        except OSError:  # pragma: no cover - exotic fs
            pass

    def append_batch(self, requests: Sequence[PredictRequest],
                     predictions: Sequence[Prediction]) -> None:
        """Record one executed batch (requests as received, pre-chain)."""
        self._n_batches += 1
        self._write({"kind": "batch", "batch": self._n_batches,
                     "ts": round(time.time(), 6),
                     "requests": [r.as_dict() for r in requests],
                     "predictions": [p.as_dict() for p in predictions]})

    def append_dropped(self, requests: Sequence[PredictRequest],
                       reason: str) -> None:
        """Record requests the server never executed (``shed`` at the
        full queue, or ``expired`` past their deadline).

        They get their own record kind so the executed stream stays
        the only thing :func:`replay_log` re-drives — dropped requests
        never advanced per-stream history live, so replaying them
        would *break* bit-exactness, but the overload itself is part
        of the recorded load and worth keeping for analysis.
        """
        if not requests:
            return
        self._write({"kind": "dropped", "reason": str(reason),
                     "ts": round(time.time(), 6),
                     "requests": [r.as_dict() for r in requests]})

    @property
    def n_batches(self) -> int:
        return self._n_batches

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.close()

    def __enter__(self) -> "RequestLog":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def _check_log_line(path: Path, lineno: int, raw: str,
                    is_last: bool) -> Optional[Dict]:
    """Verify one raw log line; None means skip (blank or torn tail).

    Interior corruption always fails loudly.  The one tolerated defect
    is a *torn final line*: the last line of the file, missing its
    trailing newline, that fails to parse or seal — exactly the
    artifact a crash mid-append leaves behind (the writer emits line +
    newline in one buffered write).  A complete (newline-terminated)
    final line that fails is hand-editing or bit-rot, not a crash, and
    still raises.
    """
    line = raw.strip()
    if not line:
        return None
    torn_tail_ok = is_last and not raw.endswith("\n")
    try:
        obj = json.loads(line)
    except json.JSONDecodeError as exc:
        if torn_tail_ok:
            warnings.warn(
                f"{path}:{lineno}: torn final log line (crash artifact) "
                f"skipped; the sealed prefix replays", RuntimeWarning,
                stacklevel=3)
            return None
        raise ValueError(
            f"{path}:{lineno}: unparsable log line: {exc}") from None
    try:
        record = check_record(obj, tag=LOG_TAG)
    except ValueError as exc:
        if torn_tail_ok:
            warnings.warn(
                f"{path}:{lineno}: torn final log line (crash artifact) "
                f"skipped; the sealed prefix replays", RuntimeWarning,
                stacklevel=3)
            return None
        raise ValueError(f"{path}:{lineno}: {exc}") from None
    if record.get("kind") == "header" \
            and record.get("version") != LOG_VERSION:
        raise ValueError(
            f"{path}:{lineno}: unsupported log version "
            f"{record.get('version')!r} (expected {LOG_VERSION})")
    return record


def read_request_log(path: Union[str, Path]) -> Iterator[Dict]:
    """Yield verified records (header(s) included) from a log file.

    Raises :class:`ValueError` on unparsable JSON, a missing/bad
    fingerprint, or an unsupported log version — a corrupt log must
    fail loudly, never replay partially.  The single exception is a
    torn *final* line with no trailing newline (what a crashed writer
    leaves mid-append): that is skipped with a warning so the sealed
    prefix stays replayable.
    """
    path = Path(path)
    with open(path, "r", encoding="utf-8") as fh:
        prev = None  # one-line lookahead to know which line is last
        for lineno, raw in enumerate(fh, start=1):
            if prev is not None:
                record = _check_log_line(path, prev[0], prev[1],
                                         is_last=False)
                if record is not None:
                    yield record
            prev = (lineno, raw)
        if prev is not None:
            record = _check_log_line(path, prev[0], prev[1], is_last=True)
            if record is not None:
                yield record


@dataclass
class ReplayMismatch:
    """One replayed response that differs from the recording."""

    batch: int
    index: int
    recorded: Dict
    replayed: Dict

    def describe(self) -> str:
        return (f"batch {self.batch} request {self.index}: recorded "
                f"{json.dumps(self.recorded, sort_keys=True)} != replayed "
                f"{json.dumps(self.replayed, sort_keys=True)}")


@dataclass
class ReplayReport:
    """Outcome of one :func:`replay_log` run."""

    batches: int = 0
    requests: int = 0
    dropped: int = 0
    mismatches: List[ReplayMismatch] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.mismatches

    def summary(self) -> str:
        state = ("bit-exact" if self.ok
                 else f"{len(self.mismatches)} mismatch(es)")
        skipped = (f", skipped {self.dropped} dropped (shed/expired)"
                   if self.dropped else "")
        return (f"replayed {self.requests} request(s) in {self.batches} "
                f"batch(es): {state}{skipped}")


def replay_log(path: Union[str, Path],
               predict_batch: Callable[[List[PredictRequest]],
                                       Sequence[Prediction]],
               max_mismatches: int = 16) -> ReplayReport:
    """Re-drive a recorded log and compare every response bit-exact.

    ``predict_batch`` is any engine-shaped executor — a fresh
    :class:`~repro.serve.engine.PredictionEngine` or
    :class:`~repro.serve.cluster.ClusterEngine` ``predict_batch``
    bound method.  Batches are replayed in recorded order with
    recorded boundaries, so per-stream history chains exactly as it
    did live.  Comparison is on the JSON payloads (floats round-trip
    ``repr``-exact through JSON, so equality is bit-equality).
    Collection stops after ``max_mismatches`` differences.
    """
    report = ReplayReport()
    headers = 0
    for record in read_request_log(path):
        if record.get("kind") == "header":
            headers += 1
            if headers > 1:
                # a second session appended to this file: its engine
                # started with fresh history, ours would not have —
                # replaying across the boundary cannot be bit-exact
                raise ValueError(
                    f"{path} holds {headers} recording sessions; replay "
                    f"them separately (split at the header lines)")
            continue
        if record.get("kind") == "dropped":
            # never executed live (shed / expired) — never advanced
            # history, so replaying it would skew every later stream
            report.dropped += len(record.get("requests", []))
            continue
        if record.get("kind") != "batch":
            continue
        report.batches += 1
        requests = [PredictRequest.from_dict(r)
                    for r in record["requests"]]
        report.requests += len(requests)
        replayed = [p.as_dict() for p in predict_batch(requests)]
        recorded = record["predictions"]
        if len(replayed) != len(recorded):  # pragma: no cover - defensive
            raise ValueError(
                f"batch {record['batch']}: replay produced "
                f"{len(replayed)} response(s) for {len(recorded)} "
                f"recorded")
        for i, (rec, rep) in enumerate(zip(recorded, replayed)):
            if rec != rep:
                report.mismatches.append(ReplayMismatch(
                    batch=record["batch"], index=i,
                    recorded=rec, replayed=rep))
                if len(report.mismatches) >= max_mismatches:
                    return report
    return report
