"""Model evaluation: the paper's accuracy metrics and comparison sweep.

Implements Eq. 4 (prediction accuracy = matched cycles / total cycles)
and the Table III protocol: for every operating condition and clock
speedup, compare each model's per-cycle error classes against the
simulated ground truth, then average.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..sim.dta import DelayTrace, timing_error_labels
from ..timing.corners import CLOCK_SPEEDUPS, OperatingCondition, sped_up_clock
from ..workloads.streams import OperandStream
from .baselines import DelayBasedModel, TERBasedModel
from .features import build_feature_matrix
from .model import TEVoT


def prediction_accuracy(true_labels: np.ndarray,
                        predicted_labels: np.ndarray) -> float:
    """Eq. 4: fraction of cycles whose class matches the simulation."""
    true_labels = np.asarray(true_labels)
    predicted_labels = np.asarray(predicted_labels)
    if true_labels.shape != predicted_labels.shape:
        raise ValueError("label arrays must have the same shape")
    if true_labels.size == 0:
        raise ValueError("no cycles to compare")
    return float((true_labels == predicted_labels).mean())


@dataclass
class ModelAccuracies:
    """Average Eq.-4 accuracy per model over a (condition, speedup) sweep."""

    tevot: float
    delay_based: float
    ter_based: float
    tevot_nh: float

    def as_dict(self) -> Dict[str, float]:
        return {
            "TEVoT": self.tevot,
            "Delay-based": self.delay_based,
            "TER-based": self.ter_based,
            "TEVoT-NH": self.tevot_nh,
        }


@dataclass
class SweepResult:
    """Full per-cell accuracy tensor of one Table III entry."""

    conditions: List[OperatingCondition]
    speedups: List[float]
    #: model name -> (n_conditions, n_speedups) accuracies
    per_cell: Dict[str, np.ndarray] = field(default_factory=dict)

    def averages(self) -> ModelAccuracies:
        return ModelAccuracies(
            tevot=float(self.per_cell["TEVoT"].mean()),
            delay_based=float(self.per_cell["Delay-based"].mean()),
            ter_based=float(self.per_cell["TER-based"].mean()),
            tevot_nh=float(self.per_cell["TEVoT-NH"].mean()),
        )


def evaluate_models(tevot: TEVoT,
                    tevot_nh: TEVoT,
                    delay_based: DelayBasedModel,
                    ter_based: TERBasedModel,
                    stream: OperandStream,
                    test_trace: DelayTrace,
                    error_free_clocks: Dict[OperatingCondition, float],
                    speedups: Sequence[float] = CLOCK_SPEEDUPS) -> SweepResult:
    """Run the Table III protocol on one (FU, dataset) pair.

    Parameters
    ----------
    test_trace:
        Ground-truth delays of ``stream`` (the *test* workload) at every
        condition.
    error_free_clocks:
        Per-condition fastest error-free clock (max delay observed
        during offline characterization); speedups are applied to it.
    """
    conditions = test_trace.conditions
    speedups = list(speedups)
    shape = (len(conditions), len(speedups))
    cells = {name: np.zeros(shape) for name in
             ("TEVoT", "Delay-based", "TER-based", "TEVoT-NH")}

    for ci, condition in enumerate(conditions):
        true_delays = test_trace.delays[ci]
        n_cycles = len(true_delays)
        X = build_feature_matrix(stream, condition, tevot.spec)
        X_nh = build_feature_matrix(stream, condition, tevot_nh.spec)
        pred_delay = tevot.predict_delay(X)
        pred_delay_nh = tevot_nh.predict_delay(X_nh)
        for si, speedup in enumerate(speedups):
            tclk = sped_up_clock(error_free_clocks[condition], speedup)
            truth = timing_error_labels(true_delays, tclk)
            cells["TEVoT"][ci, si] = prediction_accuracy(
                truth, (pred_delay > tclk).astype(np.uint8))
            cells["TEVoT-NH"][ci, si] = prediction_accuracy(
                truth, (pred_delay_nh > tclk).astype(np.uint8))
            cells["Delay-based"][ci, si] = prediction_accuracy(
                truth, delay_based.predict_errors(condition, tclk, n_cycles))
            cells["TER-based"][ci, si] = prediction_accuracy(
                truth, ter_based.predict_errors(condition, tclk, n_cycles))
    return SweepResult(list(conditions), speedups, cells)
