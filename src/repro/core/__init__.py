"""TEVoT core: features, model, baselines, evaluation, pipeline."""

from .baselines import DelayBasedModel, TERBasedModel, make_tevot_nh
from .evaluation import (
    ModelAccuracies,
    SweepResult,
    evaluate_models,
    prediction_accuracy,
)
from .features import (
    FeatureSpec,
    build_feature_matrix,
    build_training_set,
    stream_bits,
)
from .model import TEVoT, default_regressor
from .pipeline import ExperimentResult, run_experiment, train_models

__all__ = [
    "DelayBasedModel",
    "ExperimentResult",
    "FeatureSpec",
    "ModelAccuracies",
    "SweepResult",
    "TERBasedModel",
    "TEVoT",
    "build_feature_matrix",
    "build_training_set",
    "default_regressor",
    "evaluate_models",
    "make_tevot_nh",
    "prediction_accuracy",
    "run_experiment",
    "stream_bits",
    "train_models",
]
