"""TEVoT core: features, model, baselines, evaluation, pipeline."""

from .baselines import DelayBasedModel, TERBasedModel, make_tevot_nh
from .evaluation import (
    ModelAccuracies,
    SweepResult,
    evaluate_models,
    prediction_accuracy,
)
from .features import (
    FEATURE_SPEC_VERSION,
    FeatureSpec,
    build_feature_matrix,
    build_training_set,
    operand_bits,
    stream_bits,
)
from .model import (TEVoT, default_regressor, load_model,
                    loads_model, save_model)
from .pipeline import (
    ExperimentResult,
    experiment_impl,
    publish_models,
    run_experiment,
    train_models,
)

__all__ = [
    "DelayBasedModel",
    "ExperimentResult",
    "FEATURE_SPEC_VERSION",
    "FeatureSpec",
    "ModelAccuracies",
    "SweepResult",
    "TERBasedModel",
    "TEVoT",
    "build_feature_matrix",
    "build_training_set",
    "default_regressor",
    "evaluate_models",
    "experiment_impl",
    "load_model",
    "loads_model",
    "make_tevot_nh",
    "operand_bits",
    "prediction_accuracy",
    "publish_models",
    "run_experiment",
    "save_model",
    "stream_bits",
    "train_models",
]
