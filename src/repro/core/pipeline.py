"""End-to-end TEVoT pipeline (Fig. 2): DTA -> training -> evaluation.

:func:`run_experiment` performs the whole Table III protocol for one
(FU, dataset) pair: characterize the training workload, derive the
per-corner error-free clocks, train TEVoT / TEVoT-NH and fit the
Delay-based / TER-based baselines on the *training* trace, then score
every model on the *test* workload's ground-truth delays.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..circuits.functional_units import FunctionalUnit, build_functional_unit
from ..flow.campaign import (
    DEFAULT_BACKEND,
    CampaignJob,
    CampaignRunner,
    error_free_clocks,
)
from ..sim.dta import DelayTrace
from ..timing.cells import CellLibrary, DEFAULT_LIBRARY
from ..timing.corners import (
    CLOCK_SPEEDUPS,
    OperatingCondition,
    paper_corner_grid,
    sped_up_clock,
)
from ..workloads.streams import OperandStream, stream_for_unit
from .baselines import DelayBasedModel, TERBasedModel, make_tevot_nh
from .evaluation import SweepResult, evaluate_models
from .features import build_training_set
from .model import TEVoT


@dataclass
class ExperimentResult:
    """Everything produced by one (FU, dataset) experiment."""

    fu_name: str
    dataset: str
    sweep: SweepResult
    tevot: TEVoT
    tevot_nh: TEVoT
    delay_based: DelayBasedModel
    ter_based: TERBasedModel
    train_trace: DelayTrace
    test_trace: DelayTrace
    clocks: Dict[OperatingCondition, float]

    def summary(self) -> Dict[str, float]:
        return self.sweep.averages().as_dict()

    def publish(self, registry) -> List:
        """Publish all four trained models; see :func:`publish_models`."""
        return publish_models(registry, self)


def publish_models(registry, result: "ExperimentResult",
                   metadata: Optional[Dict] = None) -> List:
    """Publish an experiment's models into a serving registry.

    ``registry`` is a :class:`~repro.serve.registry.ModelRegistry` or a
    directory path for one.  Each of TEVoT, TEVoT-NH, and the two
    baselines becomes one versioned artifact keyed by the FU, the
    corner grid, the training-stream fingerprint (from the train
    trace's input bits), and the feature-spec version.  Returns the new
    :class:`~repro.serve.registry.ModelRecord` list.
    """
    # imported here: repro.serve depends on repro.core, not vice versa
    from ..serve.registry import ModelRegistry

    if not isinstance(registry, ModelRegistry):
        registry = ModelRegistry(registry)
    conditions = result.train_trace.conditions
    train_inputs = result.train_trace.inputs
    meta = {"dataset": result.dataset, **(metadata or {})}
    records = []
    for kind, model in (("tevot", result.tevot),
                        ("tevot_nh", result.tevot_nh),
                        ("delay_based", result.delay_based),
                        ("ter_based", result.ter_based)):
        records.append(registry.publish(
            model, fu=result.fu_name, kind=kind, conditions=conditions,
            train_stream=train_inputs, metadata=meta))
    return records


def train_models(fu: FunctionalUnit,
                 train_stream: OperandStream,
                 conditions: Sequence[OperatingCondition],
                 library: CellLibrary = DEFAULT_LIBRARY,
                 max_train_rows: int = 200_000,
                 speedups: Sequence[float] = CLOCK_SPEEDUPS,
                 seed: int = 0,
                 use_cache: bool = True,
                 runner: Optional[CampaignRunner] = None,
                 train_trace: Optional[DelayTrace] = None):
    """Characterize a training stream and fit all four models.

    ``runner`` selects the campaign runner (backend, store, worker
    pool); a default one is built when omitted.  A precomputed
    ``train_trace`` (e.g. from a batched campaign) skips the
    characterization step.  Returns ``(tevot, tevot_nh, delay_based,
    ter_based, train_trace, clocks)``.
    """
    if train_trace is None:
        if runner is None:
            runner = CampaignRunner(use_cache=use_cache)
        train_trace = runner.run([CampaignJob(fu, train_stream,
                                              list(conditions), library)])[0]
    clocks = error_free_clocks(train_trace)

    tevot = TEVoT(operand_width=fu.operand_width)
    X, y = build_training_set(train_stream, train_trace.conditions,
                              train_trace.delays, spec=tevot.spec,
                              max_rows=max_train_rows, seed=seed)
    tevot.fit(X, y)

    nh = make_tevot_nh(operand_width=fu.operand_width)
    X_nh, y_nh = build_training_set(train_stream, train_trace.conditions,
                                    train_trace.delays, spec=nh.spec,
                                    max_rows=max_train_rows, seed=seed)
    nh.fit(X_nh, y_nh)

    delay_based = DelayBasedModel().fit(train_trace.conditions,
                                        train_trace.delays)
    clock_table = {
        condition: [sped_up_clock(clocks[condition], s) for s in speedups]
        for condition in train_trace.conditions
    }
    ter_based = TERBasedModel(seed=seed).fit(train_trace.conditions,
                                             train_trace.delays, clock_table)
    return tevot, nh, delay_based, ter_based, train_trace, clocks


def experiment_impl(fu: FunctionalUnit,
                    train_stream: OperandStream,
                    test_stream: OperandStream,
                    conditions: Sequence[OperatingCondition],
                    library: CellLibrary = DEFAULT_LIBRARY,
                    max_train_rows: int = 200_000,
                    speedups: Sequence[float] = CLOCK_SPEEDUPS,
                    seed: int = 0,
                    runner: Optional[CampaignRunner] = None,
                    registry=None) -> ExperimentResult:
    """Full Fig.-2 protocol over already-built objects.

    The working core behind :meth:`repro.api.Workspace.experiment`
    (which expands a declarative :class:`~repro.api.ExperimentSpec`)
    and the deprecated :func:`run_experiment` shim.  The train and
    test characterizations run as one campaign batch, so a runner with
    ``n_workers > 1`` overlaps them; a ``registry`` (path or
    :class:`~repro.serve.registry.ModelRegistry`) publishes the
    trained models for serving before returning.
    """
    conditions = list(conditions)
    if runner is None:
        runner = CampaignRunner()
    train_trace, test_trace = runner.run([
        CampaignJob(fu, train_stream, conditions, library),
        CampaignJob(fu, test_stream, conditions, library),
    ])

    tevot, nh, delay_based, ter_based, train_trace, clocks = train_models(
        fu, train_stream, conditions, library,
        max_train_rows=max_train_rows, speedups=speedups, seed=seed,
        runner=runner, train_trace=train_trace)
    sweep = evaluate_models(tevot, nh, delay_based, ter_based,
                            test_stream, test_trace, clocks, speedups)
    result = ExperimentResult(
        fu_name=fu.name,
        dataset=test_stream.name,
        sweep=sweep,
        tevot=tevot,
        tevot_nh=nh,
        delay_based=delay_based,
        ter_based=ter_based,
        train_trace=train_trace,
        test_trace=test_trace,
        clocks=clocks,
    )
    if registry is not None:
        result.publish(registry)
    return result


def run_experiment(fu_name: str,
                   test_stream: Optional[OperandStream] = None,
                   train_stream: Optional[OperandStream] = None,
                   conditions: Optional[Sequence[OperatingCondition]] = None,
                   library: CellLibrary = DEFAULT_LIBRARY,
                   n_train_cycles: int = 2000,
                   n_test_cycles: int = 2000,
                   max_train_rows: int = 200_000,
                   speedups: Sequence[float] = CLOCK_SPEEDUPS,
                   seed: int = 0,
                   use_cache: bool = True,
                   backend: str = DEFAULT_BACKEND,
                   n_workers: int = 1,
                   runner: Optional[CampaignRunner] = None,
                   registry=None,
                   **fu_kwargs) -> ExperimentResult:
    """One full Fig.-2 pipeline run for an FU.

    Deprecated compatibility shim: new code should describe the run as
    a :class:`repro.api.ExperimentSpec` and call
    :meth:`repro.api.Workspace.experiment` (declarative, versionable),
    or use :func:`experiment_impl` for pre-built objects.  Defaults:
    random train/test streams (unseen test data, like the paper's
    200 K/200 K split) over the full Table I corner grid.
    """
    warnings.warn(
        "repro.core.run_experiment() is deprecated; use "
        "repro.api.Workspace.experiment(spec) (or experiment_impl() "
        "for pre-built streams/conditions)",
        DeprecationWarning, stacklevel=2)
    fu = build_functional_unit(fu_name, **fu_kwargs)
    conditions = list(conditions) if conditions else paper_corner_grid()
    if train_stream is None:
        train_stream = stream_for_unit(fu_name, n_train_cycles, seed=seed)
        train_stream.name = "random_train"
    if test_stream is None:
        test_stream = stream_for_unit(fu_name, n_test_cycles, seed=seed + 1)
        test_stream.name = "random_test"
    if runner is None:
        runner = CampaignRunner(backend=backend, n_workers=n_workers,
                                use_cache=use_cache)
    return experiment_impl(fu, train_stream, test_stream, conditions,
                           library, max_train_rows=max_train_rows,
                           speedups=speedups, seed=seed, runner=runner,
                           registry=registry)
