"""The TEVoT model (paper Sec. III-IV).

TEVoT learns the *dynamic delay* ``D = fd(V, T, x[t], x[t-1])`` (Eq. 2)
with a random-forest regressor, then classifies any cycle as timing
correct/erroneous by comparing the predicted delay against an arbitrary
clock period — the paper's argument for delay regression over direct
error classification (Eq. 1): one trained model serves every clock
speed.
"""

from __future__ import annotations

import os
import pickle
from pathlib import Path
from typing import Any, Dict, Optional, Tuple, Union

import numpy as np

from ..ml.forest import RandomForestRegressor
from ..timing.corners import OperatingCondition
from ..workloads.streams import OperandStream
from .features import FeatureSpec, build_feature_matrix

#: Marker + schema version of the on-disk model artifact format.  v1
#: artifacts were a bare pickled model object; v2 wraps the model in a
#: self-describing payload dict so registries can read class, feature
#: spec, and user metadata without unpickling surprises.
ARTIFACT_FORMAT = "repro-model"
ARTIFACT_VERSION = 2


def save_model(model: Any, path: Union[str, Path],
               metadata: Optional[Dict] = None) -> None:
    """Persist any trained model object in the stable artifact format.

    Works for :class:`TEVoT` and the baseline models alike; ``metadata``
    is an arbitrary JSON-like dict stored alongside (provenance,
    registry keys, ...).
    """
    spec = getattr(model, "spec", None)
    payload = {
        "format": ARTIFACT_FORMAT,
        "format_version": ARTIFACT_VERSION,
        "class": type(model).__name__,
        "feature_spec": None if spec is None else {
            "operand_width": spec.operand_width,
            "include_history": spec.include_history,
        },
        "metadata": dict(metadata or {}),
        "model": model,
    }
    # tmp + fsync + rename: a crash mid-save leaves the previous
    # artifact (or nothing), never a torn pickle
    path = Path(path)
    tmp = path.parent / f".{path.name}.{os.getpid()}.tmp"
    try:
        with tmp.open("wb") as fh:
            pickle.dump(payload, fh)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    except BaseException:
        tmp.unlink(missing_ok=True)
        raise


def loads_model(data: bytes, source: str = "<bytes>") -> Tuple[Any, Dict]:
    """Deserialize ``(model, metadata)`` from artifact bytes.

    The in-memory half of :func:`load_model`, so callers that receive
    an artifact over the wire (the remote registry client) decode it
    with the same format/version handling as the on-disk path.
    """
    obj = pickle.loads(data)
    if isinstance(obj, dict) and obj.get("format") == ARTIFACT_FORMAT:
        if obj.get("format_version") > ARTIFACT_VERSION:
            raise ValueError(
                f"{source}: artifact format v{obj.get('format_version')} is "
                f"newer than this code understands (v{ARTIFACT_VERSION})")
        return obj["model"], dict(obj.get("metadata") or {})
    return obj, {}


def load_model(path: Union[str, Path]) -> Tuple[Any, Dict]:
    """Load ``(model, metadata)`` from either artifact format.

    v2 payload dicts yield their stored metadata; bare v1 pickles (the
    pre-registry format) yield ``{}`` — old artifacts keep loading.
    """
    return loads_model(Path(path).read_bytes(), source=str(path))


def default_regressor(random_state: Optional[int] = 0) -> RandomForestRegressor:
    """The paper's stated configuration: scikit-learn defaults of the
    era — 10 trees, all features considered at each split."""
    return RandomForestRegressor(
        n_estimators=10,
        max_features=None,       # all features per split
        min_samples_leaf=4,      # keeps pure-noise leaves from exploding
        random_state=random_state,
    )


class TEVoT:
    """Timing-Error model under dynamic Voltage and Temperature.

    Parameters
    ----------
    regressor:
        Any object with ``fit(X, y)`` / ``predict(X)``; defaults to the
        paper's 10-tree random forest.
    include_history:
        When False this is the TEVoT-NH ablation (no ``x[t-1]``
        features).
    operand_width:
        Bits per FU operand (32 for the paper's units).
    """

    def __init__(self, regressor=None, include_history: bool = True,
                 operand_width: int = 32) -> None:
        self.regressor = regressor if regressor is not None \
            else default_regressor()
        self.spec = FeatureSpec(operand_width=operand_width,
                                include_history=include_history)
        self._fitted = False

    # -- training ------------------------------------------------------------

    def fit(self, X: np.ndarray, delays: np.ndarray) -> "TEVoT":
        """Train on a feature matrix (Eq. 3 layout) and delay labels."""
        X = np.asarray(X)
        if X.shape[1] != self.spec.n_features:
            raise ValueError(
                f"feature matrix has {X.shape[1]} columns, spec wants "
                f"{self.spec.n_features}")
        self.regressor.fit(X, np.asarray(delays, dtype=np.float64))
        self._fitted = True
        return self

    # -- inference -----------------------------------------------------------

    def predict_delay(self, X: np.ndarray) -> np.ndarray:
        """Predicted dynamic delay (ps) per cycle."""
        self._check_fitted()
        return np.asarray(self.regressor.predict(np.asarray(X)))

    def predict_errors(self, X: np.ndarray, clock_period: float) -> np.ndarray:
        """Per-cycle class: 1 = timing erroneous, 0 = timing correct.

        The same fitted model serves any ``clock_period`` — the paper's
        flexibility argument for predicting delay instead of the error
        bit.
        """
        if clock_period <= 0:
            raise ValueError("clock_period must be positive")
        return (self.predict_delay(X) > clock_period).astype(np.uint8)

    def predict_stream_errors(self, stream: OperandStream,
                              condition: OperatingCondition,
                              clock_period: float) -> np.ndarray:
        """Convenience: feature-build + classify one operand stream."""
        X = build_feature_matrix(stream, condition, self.spec)
        return self.predict_errors(X, clock_period)

    def predict_stream_delays(self, stream: OperandStream,
                              condition: OperatingCondition) -> np.ndarray:
        X = build_feature_matrix(stream, condition, self.spec)
        return self.predict_delay(X)

    def timing_error_rate(self, stream: OperandStream,
                          condition: OperatingCondition,
                          clock_period: float) -> float:
        """Model-estimated TER for a stream at a condition and clock."""
        return float(self.predict_stream_errors(
            stream, condition, clock_period).mean())

    # -- persistence ("we will open-source the pre-trained models") -----------

    def save(self, path: Union[str, Path],
             metadata: Optional[Dict] = None) -> None:
        """Write the stable v2 artifact (payload dict + metadata)."""
        save_model(self, path, metadata=metadata)

    @classmethod
    def load(cls, path: Union[str, Path]) -> "TEVoT":
        model, _ = cls.load_with_metadata(path)
        return model

    @classmethod
    def load_with_metadata(cls, path: Union[str, Path]
                           ) -> Tuple["TEVoT", Dict]:
        """Load a model plus its stored metadata (``{}`` for v1 files)."""
        model, metadata = load_model(path)
        if not isinstance(model, cls):
            raise TypeError(f"{path} does not contain a {cls.__name__}")
        return model, metadata

    def _check_fitted(self) -> None:
        if not self._fitted:
            raise RuntimeError("TEVoT model is not fitted yet")

    @property
    def include_history(self) -> bool:
        return self.spec.include_history
