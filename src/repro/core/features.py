"""Feature generation (paper Sec. IV-B, Eq. 3).

The variability feature of cycle ``t`` is ``{V, T, x[t], x[t-1]}``: the
operating condition plus the bit-level current and previous input
words.  With two 32-bit operands each word contributes 64 bit features,
giving the 130-dimensional feature matrix of Eq. 3 (TEVoT-NH omits the
history half: 66 features).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..timing.corners import OperatingCondition
from ..workloads.streams import OperandStream

#: Version of the Eq.-3 feature layout.  Bump on any change to column
#: order/meaning — the model registry keys published artifacts by it so
#: a served model is never fed features from a different layout.
FEATURE_SPEC_VERSION = 1


@dataclass(frozen=True)
class FeatureSpec:
    """Column layout of a TEVoT feature matrix.

    ``include_history`` distinguishes TEVoT (x[t] and x[t-1]) from the
    TEVoT-NH ablation (x[t] only).
    """

    operand_width: int = 32
    include_history: bool = True

    @property
    def bits_per_cycle(self) -> int:
        return 2 * self.operand_width  # both operands, one word

    @property
    def n_features(self) -> int:
        words = 2 if self.include_history else 1
        return words * self.bits_per_cycle + 2  # + V + T

    def version_tag(self) -> str:
        """Registry tag: layout version + the knobs that change it."""
        return (f"fs{FEATURE_SPEC_VERSION}:w{self.operand_width}:"
                f"h{int(self.include_history)}")

    def column_names(self) -> List[str]:
        """Human-readable names, for importance reports."""
        names = [f"x_t[{i}]" for i in range(self.bits_per_cycle)]
        if self.include_history:
            names += [f"x_t-1[{i}]" for i in range(self.bits_per_cycle)]
        return names + ["V", "T"]


def operand_bits(words: np.ndarray, operand_width: int = 32) -> np.ndarray:
    """LSB-first bit expansion of operand words: ``(n, width)`` float32.

    The single bit-layout definition shared by offline training
    (:func:`stream_bits`) and the serving engine — both sides must
    build identical feature columns for bit-exact parity.
    """
    shifts = np.arange(operand_width, dtype=np.uint64)
    words = np.asarray(words, dtype=np.uint64)
    return ((words[:, None] >> shifts) & 1).astype(np.float32)


def stream_bits(stream: OperandStream, operand_width: int = 32) -> np.ndarray:
    """Bit-expand a stream: ``(n_rows, 2 * width)`` float32 matrix."""
    return np.concatenate([operand_bits(stream.a, operand_width),
                           operand_bits(stream.b, operand_width)], axis=1)


def build_feature_matrix(stream: OperandStream,
                         condition: OperatingCondition,
                         spec: FeatureSpec = FeatureSpec()) -> np.ndarray:
    """Feature matrix for one stream at one operating condition.

    Returns ``(n_cycles, spec.n_features)`` float32: row ``t`` holds the
    bits of ``x[t]`` (input applied at cycle ``t``), optionally the bits
    of ``x[t-1]``, then ``V`` and ``T``.
    """
    bits = stream_bits(stream, spec.operand_width)
    current = bits[1:]
    parts = [current]
    if spec.include_history:
        parts.append(bits[:-1])
    n = current.shape[0]
    parts.append(np.full((n, 1), condition.voltage, dtype=np.float32))
    parts.append(np.full((n, 1), condition.temperature, dtype=np.float32))
    return np.concatenate(parts, axis=1)


def build_training_set(stream: OperandStream,
                       conditions: Sequence[OperatingCondition],
                       delays: np.ndarray,
                       spec: FeatureSpec = FeatureSpec(),
                       max_rows: Optional[int] = None,
                       seed: Optional[int] = 0):
    """Stack (features, delay) pairs over many operating conditions.

    ``delays`` is the ``(n_conditions, n_cycles)`` matrix from a
    :class:`~repro.sim.dta.DelayTrace`.  When the stacked set exceeds
    ``max_rows`` it is subsampled uniformly (the paper caps training at
    200 K rows).

    Returns ``(X, y)``.
    """
    delays = np.asarray(delays)
    if delays.shape[0] != len(conditions):
        raise ValueError(
            f"delays has {delays.shape[0]} condition rows for "
            f"{len(conditions)} conditions")
    if delays.shape[1] != stream.n_cycles:
        raise ValueError(
            f"delays has {delays.shape[1]} cycles, stream has "
            f"{stream.n_cycles}")

    bits = stream_bits(stream, spec.operand_width)
    current = bits[1:]
    history = bits[:-1] if spec.include_history else None

    blocks = []
    targets = []
    for k, condition in enumerate(conditions):
        parts = [current]
        if history is not None:
            parts.append(history)
        n = current.shape[0]
        parts.append(np.full((n, 1), condition.voltage, dtype=np.float32))
        parts.append(np.full((n, 1), condition.temperature, dtype=np.float32))
        blocks.append(np.concatenate(parts, axis=1))
        targets.append(delays[k].astype(np.float32))
    X = np.concatenate(blocks, axis=0)
    y = np.concatenate(targets)

    if max_rows is not None and X.shape[0] > max_rows:
        rng = np.random.default_rng(seed)
        pick = rng.choice(X.shape[0], max_rows, replace=False)
        X, y = X[pick], y[pick]
    return X, y
