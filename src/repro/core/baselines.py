"""Baseline error models the paper compares against (Sec. IV-C).

* **Delay-based** — the instruction/FU-level models of Rahimi et al.
  and Constantin et al.: predict a timing error whenever the clock
  period is shorter than the maximum delay measured offline at that
  operating condition.  Workload-blind.
* **TER-based** — the approximate-computing models of EnerJ / Truffle:
  predict errors stochastically with the per-(condition, clock) timing
  error rate measured offline.
* **TEVoT-NH** — TEVoT without the history features ``x[t-1]``
  (constructed via ``TEVoT(include_history=False)``; re-exported here
  for discoverability).
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from ..timing.corners import OperatingCondition
from .model import TEVoT


class DelayBasedModel:
    """Workload-blind pessimist: error iff ``tclk < max offline delay``."""

    def __init__(self) -> None:
        self._max_delay: Dict[OperatingCondition, float] = {}
        self._fitted = False

    def fit(self, conditions, delays: np.ndarray) -> "DelayBasedModel":
        """Record the max dynamic delay per condition from an offline
        characterization trace (``delays``: ``(n_conditions, n_cycles)``)."""
        delays = np.asarray(delays)
        if delays.ndim != 2 or delays.shape[0] != len(conditions):
            raise ValueError("delays must be (n_conditions, n_cycles)")
        for k, condition in enumerate(conditions):
            self._max_delay[condition] = float(delays[k].max())
        self._fitted = True
        return self

    def max_delay(self, condition: OperatingCondition) -> float:
        self._check(condition)
        return self._max_delay[condition]

    def predict_errors(self, condition: OperatingCondition,
                       clock_period: float, n_cycles: int) -> np.ndarray:
        """Same class for every cycle: the model ignores the workload."""
        self._check(condition)
        erroneous = clock_period < self._max_delay[condition]
        return np.full(n_cycles, 1 if erroneous else 0, dtype=np.uint8)

    def timing_error_rate(self, condition: OperatingCondition,
                          clock_period: float) -> float:
        self._check(condition)
        return 1.0 if clock_period < self._max_delay[condition] else 0.0

    def _check(self, condition: OperatingCondition) -> None:
        if not self._fitted:
            raise RuntimeError("DelayBasedModel is not fitted yet")
        if condition not in self._max_delay:
            raise KeyError(f"condition {condition} was not characterized")


class TERBasedModel:
    """Stochastic baseline: Bernoulli errors at the offline-measured TER."""

    def __init__(self, seed: Optional[int] = 0) -> None:
        self._ter: Dict[Tuple[OperatingCondition, float], float] = {}
        self._seed = seed
        self._fitted = False

    def fit(self, conditions, delays: np.ndarray,
            clock_periods) -> "TERBasedModel":
        """Measure TER per (condition, clock period) on training delays.

        ``clock_periods`` maps each condition to an iterable of clock
        periods (the 3 sped-up clocks in the paper's setup).
        """
        delays = np.asarray(delays)
        if delays.ndim != 2 or delays.shape[0] != len(conditions):
            raise ValueError("delays must be (n_conditions, n_cycles)")
        for k, condition in enumerate(conditions):
            for tclk in clock_periods[condition]:
                ter = float((delays[k] > tclk).mean())
                self._ter[(condition, round(float(tclk), 6))] = ter
        self._fitted = True
        return self

    def timing_error_rate(self, condition: OperatingCondition,
                          clock_period: float) -> float:
        key = (condition, round(float(clock_period), 6))
        if not self._fitted:
            raise RuntimeError("TERBasedModel is not fitted yet")
        if key not in self._ter:
            raise KeyError(f"no TER recorded for {key}")
        return self._ter[key]

    def predict_errors(self, condition: OperatingCondition,
                       clock_period: float, n_cycles: int) -> np.ndarray:
        """Bernoulli(TER) per cycle — no test-workload information."""
        ter = self.timing_error_rate(condition, clock_period)
        rng = np.random.default_rng(self._seed)
        return (rng.random(n_cycles) < ter).astype(np.uint8)


def make_tevot_nh(regressor=None, operand_width: int = 32) -> TEVoT:
    """The TEVoT-NH ablation: identical training, no history features."""
    return TEVoT(regressor=regressor, include_history=False,
                 operand_width=operand_width)
