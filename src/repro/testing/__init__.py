"""Test-support machinery that ships with the package.

`repro.testing.faults` is imported by production modules (tracestore,
registry, request log, pool, cluster) to plant named fault points, so it
lives in the package proper rather than under tests/.
"""
from . import faults
from .faults import (
    EXIT_CODE,
    TORN_EXIT_CODE,
    FaultInjected,
    FaultPlanError,
    FaultRule,
    consume_crash_token,
    crash_token_hook,
    fault_point,
    parse_plan,
    persistence_sites,
    register_site,
    registered_sites,
    trigger,
)

__all__ = [
    "EXIT_CODE",
    "TORN_EXIT_CODE",
    "FaultInjected",
    "FaultPlanError",
    "FaultRule",
    "consume_crash_token",
    "crash_token_hook",
    "fault_point",
    "faults",
    "parse_plan",
    "persistence_sites",
    "register_site",
    "registered_sites",
    "trigger",
]
