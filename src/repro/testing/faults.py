"""Deterministic fault injection for crash-safety testing.

Production persistence code plants *named fault points* (for example
``fault_point("tracestore.manifest.replace")``).  In normal operation a
fault point is a no-op costing one dict lookup.  Under test, the
environment variable ``REPRO_FAULT_PLAN`` arms a plan of rules::

    REPRO_FAULT_PLAN=site:action:nth[,site:action:nth ...]

* ``site``   — the fault-point name (``tracestore.blob.write``, ...)
* ``action`` — ``raise`` (raise :class:`FaultInjected`), ``exit``
  (``os._exit(EXIT_CODE)`` — simulates ``kill -9`` mid-operation),
  ``hang`` (sleep :func:`hang_seconds` — the process is alive but
  wedged, the failure mode only a watchdog can see; the sleep length
  comes from ``REPRO_FAULT_HANG_S`` so a broken watchdog fails a test
  instead of freezing the suite), or
  ``torn-write`` (the caller writes a truncated artifact to the *final*
  path, then ``os._exit(TORN_EXIT_CODE)`` — simulates a crash while a
  legacy in-place writer was mid-write)
* ``nth``    — trigger on the nth *hit* of that site (1-based)

Because the plan rides in the environment, forked pool/cluster workers
inherit and honor it, which makes multi-process crash tests replayable.

Hit counters are per-process.  For plans that must fire **once
globally** across respawned workers or across two invocations of the
same command (crash run, then clean rerun), set ``REPRO_FAULT_STATE`` to
a scratch directory: each rule then records its firing in a marker file
created with ``O_CREAT | O_EXCL``, and never fires twice.

The older ad-hoc crash hooks (``REPRO_POOL_CRASH_FILE`` /
``REPRO_CLUSTER_CRASH_FILE``) are reimplemented here on top of
:func:`consume_crash_token`; pool and cluster workers call
:func:`crash_token_hook` instead of carrying private copies.
"""
from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

PLAN_ENV = "REPRO_FAULT_PLAN"
STATE_ENV = "REPRO_FAULT_STATE"
HANG_ENV = "REPRO_FAULT_HANG_S"

#: default ``hang`` sleep — long enough that any sane watchdog fires
#: first, short enough that a broken one eventually unblocks the suite.
DEFAULT_HANG_SECONDS = 300.0

#: exit status used by the ``exit`` action (distinct from real crashes).
EXIT_CODE = 23
#: exit status used by the ``torn-write`` action.
TORN_EXIT_CODE = 25

ACTIONS = ("raise", "exit", "hang", "torn-write")


class FaultPlanError(ValueError):
    """REPRO_FAULT_PLAN is malformed.  Always fails loudly."""


class FaultInjected(RuntimeError):
    """Raised by the ``raise`` action at an armed fault point."""


@dataclass(frozen=True)
class FaultRule:
    site: str
    action: str
    nth: int

    @property
    def tag(self) -> str:
        return f"{self.site}:{self.action}:{self.nth}"


# Sites register at import time of the module that plants them, so a
# chaos test can enumerate every persistence fault point it must cover.
_SITES: Dict[str, bool] = {}
_HITS: Dict[str, int] = {}
_FIRED: set = set()
_LOCK = threading.Lock()


def register_site(site: str, *, persistence: bool = False) -> str:
    """Declare a fault point.  ``persistence=True`` marks sites whose
    ``exit`` injection must leave the store reopenable (the chaos suite
    iterates exactly these)."""
    with _LOCK:
        _SITES[site] = _SITES.get(site, False) or persistence
    return site


def registered_sites() -> Tuple[str, ...]:
    with _LOCK:
        return tuple(sorted(_SITES))


def persistence_sites() -> Tuple[str, ...]:
    with _LOCK:
        return tuple(sorted(s for s, p in _SITES.items() if p))


def parse_plan(text: str) -> List[FaultRule]:
    rules = []
    for chunk in text.split(","):
        chunk = chunk.strip()
        if not chunk:
            continue
        parts = chunk.split(":")
        if len(parts) == 2:
            parts.append("1")
        if len(parts) != 3:
            raise FaultPlanError(
                f"bad fault rule {chunk!r}: want site:action:nth")
        site, action, nth_s = parts
        if action not in ACTIONS:
            raise FaultPlanError(
                f"bad fault action {action!r} in {chunk!r}: "
                f"want one of {'/'.join(ACTIONS)}")
        try:
            nth = int(nth_s)
        except ValueError:
            raise FaultPlanError(
                f"bad fault count {nth_s!r} in {chunk!r}") from None
        if nth < 1:
            raise FaultPlanError(f"fault count must be >= 1 in {chunk!r}")
        rules.append(FaultRule(site, action, nth))
    return rules


def active_plan() -> List[FaultRule]:
    text = os.environ.get(PLAN_ENV, "")
    if not text:
        return []
    return parse_plan(text)


def reset() -> None:
    """Forget per-process hit counts (test isolation helper)."""
    with _LOCK:
        _HITS.clear()
        _FIRED.clear()


def _claim_global(rule: FaultRule) -> bool:
    """True if this rule may fire.  With REPRO_FAULT_STATE set, firing
    is recorded in a marker file so the rule fires once *globally* —
    across forked workers and across process invocations."""
    state_dir = os.environ.get(STATE_ENV, "")
    if not state_dir:
        return True
    os.makedirs(state_dir, exist_ok=True)
    marker = os.path.join(
        state_dir,
        "fired-" + rule.tag.replace(":", "_").replace("/", "_"))
    try:
        fd = os.open(marker, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
    except FileExistsError:
        return False
    try:
        os.write(fd, f"{os.getpid()}\n".encode())
    finally:
        os.close(fd)
    return True


def hang_seconds() -> float:
    """How long the ``hang`` action sleeps (``REPRO_FAULT_HANG_S``)."""
    raw = os.environ.get(HANG_ENV, "")
    try:
        return float(raw) if raw else DEFAULT_HANG_SECONDS
    except ValueError:
        return DEFAULT_HANG_SECONDS


def trigger(site: Optional[str]) -> Optional[str]:
    """Record a hit at ``site`` and return the armed action, if any.

    Callers that can produce a torn artifact themselves (npz / pickle
    writers) use the returned action; plain callers use
    :func:`fault_point`.  Returns None when nothing is armed — the
    common case, which costs one env lookup.

    The ``hang`` action is handled *here*, uniformly for every site:
    the process sleeps :func:`hang_seconds` and then proceeds normally
    (returning None), so to a supervising parent it is indistinguishable
    from a wedged worker until a watchdog intervenes.
    """
    if site is None or PLAN_ENV not in os.environ:
        return None
    rules = active_plan()
    if not rules:
        return None
    with _LOCK:
        n = _HITS.get(site, 0) + 1
        _HITS[site] = n
        matched = None
        for rule in rules:
            if rule.site == site and rule.nth == n and rule.tag not in _FIRED:
                matched = rule
                break
        if matched is None:
            return None
        _FIRED.add(matched.tag)
    if not _claim_global(matched):
        return None
    if matched.action == "hang":
        time.sleep(hang_seconds())
        return None
    return matched.action


def fault_point(site: str) -> None:
    """Plant a fault point with no torn-write capability.

    ``raise`` raises :class:`FaultInjected`; ``exit`` hard-kills the
    process.  Arming ``torn-write`` at such a site is a plan error.
    """
    action = trigger(site)
    if action is None:
        return
    if action == "raise":
        raise FaultInjected(f"fault injected at {site}")
    if action == "exit":
        os._exit(EXIT_CODE)
    raise FaultPlanError(
        f"site {site!r} does not support the {action!r} action")


def consume_crash_token(path: str) -> bool:
    """Atomically consume one crash token from ``path``.

    The file holds a token count; each call decrements it (a non-integer
    body counts as 1).  The consumer that takes the last token unlinks
    the file.  Returns True if a token was consumed.  Lock-free: rename
    to a per-pid name, decrement, rename back — losers of the rename
    race simply see no file.
    """
    if not path or not os.path.exists(path):
        return False
    claim = f"{path}.claim.{os.getpid()}"
    try:
        os.rename(path, claim)
    except OSError:
        return False
    try:
        with open(claim, "r", encoding="utf-8") as fh:
            body = fh.read().strip()
        tokens = int(body) if body.lstrip("-").isdigit() else 1
    except OSError:
        tokens = 1
    if tokens <= 1:
        try:
            os.unlink(claim)
        except OSError:
            pass
        return tokens == 1
    with open(claim, "w", encoding="utf-8") as fh:
        fh.write(str(tokens - 1))
    os.rename(claim, path)
    return True


def crash_token_hook(env_var: str, exit_code: int = 17) -> None:
    """Legacy crash hook: if ``env_var`` names a token file with tokens
    remaining, consume one and hard-kill the process."""
    path = os.environ.get(env_var, "")
    if path and consume_crash_token(path):
        os._exit(exit_code)
