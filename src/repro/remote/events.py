"""Push-based model rollout: the event-feed subscriber thread.

A serving engine holding a :class:`~repro.remote.client.
RemoteModelRegistry` starts one :class:`EventSubscriber`; it long-polls
``GET /events?since=seq`` on the store service and invokes the
engine's ``refresh()`` whenever a publish/gc is announced — replacing
the manual ``POST /models/refresh`` poll path (which stays available
as a fallback).

The subscriber applies the serving layer's resilience discipline to
its own thread: it never lets an exception escape (a broken feed
degrades to the refresh-poll fallback, it never takes serving down),
reconnects with capped exponential backoff when the service is away,
resyncs via ``since=seq`` after the gap (the server replays every
missed publish still in its ring, and flags ``gap``/``reset`` when it
cannot), and refreshes defensively on either flag.
"""

from __future__ import annotations

import os
import threading
from typing import Callable, Dict, Optional, Sequence

from ..testing import faults

#: Long-poll wait per request; small enough that close() is prompt.
#: Override with REPRO_PUSH_POLL_TIMEOUT_S.
DEFAULT_POLL_TIMEOUT_S = 10.0

#: Event kinds that invalidate replicated model state.
MODEL_EVENTS = ("publish", "registry-gc")

#: Armed inside the poll loop, so an injected ``raise`` exercises the
#: subscriber's survive-and-backoff path rather than killing serving.
SITE_POLL = faults.register_site("remote.events.poll")


def _default_poll_timeout_s() -> float:
    try:
        return float(os.environ.get("REPRO_PUSH_POLL_TIMEOUT_S", ""))
    except ValueError:
        return DEFAULT_POLL_TIMEOUT_S


class EventSubscriber:
    """Daemon thread long-polling one store service's event feed.

    ``callback()`` (typically ``engine.refresh``) runs on the
    subscriber thread, at most once per poll round, whenever a
    model-affecting event arrives.  Counters are exposed via
    :meth:`stats` and surface in the serving ``/stats`` payload.
    """

    def __init__(self, client, callback: Callable[[], None], *,
                 kinds: Sequence[str] = MODEL_EVENTS,
                 poll_timeout_s: Optional[float] = None,
                 backoff_s: float = 0.2,
                 max_backoff_s: float = 5.0) -> None:
        self._client = client
        self._callback = callback
        self._kinds = frozenset(kinds)
        self._poll_timeout_s = (poll_timeout_s if poll_timeout_s is not None
                                else _default_poll_timeout_s())
        self._backoff_s = backoff_s
        self._max_backoff_s = max_backoff_s
        self._stop = threading.Event()
        self._since = None  # None until the baseline poll lands
        self.events_seen = 0
        self.refreshes = 0
        self.errors = 0
        self.reconnects = 0
        self.resets = 0
        self.callback_errors = 0
        self._thread = threading.Thread(target=self._loop, daemon=True,
                                        name="repro-push-subscriber")
        self._thread.start()

    @property
    def alive(self) -> bool:
        return self._thread.is_alive()

    def close(self) -> None:
        """Stop polling; joins briefly (the thread is a daemon, so an
        in-flight long-poll cannot block interpreter exit)."""
        self._stop.set()
        self._thread.join(timeout=self._poll_timeout_s + 5.0)

    def stats(self) -> Dict:
        return {"alive": self.alive,
                "since": self._since,
                "events_seen": self.events_seen,
                "refreshes": self.refreshes,
                "errors": self.errors,
                "reconnects": self.reconnects,
                "resets": self.resets,
                "callback_errors": self.callback_errors}

    # -- the loop -------------------------------------------------------------

    def _loop(self) -> None:
        backoff = self._backoff_s
        while not self._stop.is_set():
            try:
                faults.fault_point(SITE_POLL)
                if self._since is None:
                    # baseline: learn the current sequence, skip history
                    body = self._client.poll_events(-1, timeout_s=0.0)
                else:
                    body = self._client.poll_events(
                        self._since, timeout_s=self._poll_timeout_s)
            except Exception:  # noqa: BLE001 — must outlive any feed error
                self.errors += 1
                if self._stop.wait(backoff):
                    break
                backoff = min(backoff * 2, self._max_backoff_s)
                self.reconnects += 1
                continue
            backoff = self._backoff_s
            seq = int(body.get("seq", 0))
            if self._since is None:
                self._since = seq
                continue
            refresh = False
            for event in body.get("events") or []:
                self.events_seen += 1
                if event.get("kind") in self._kinds:
                    refresh = True
            if body.get("reset"):
                # service restarted and renumbered: adopt its sequence
                # and refresh defensively (publishes may have landed
                # under sequence numbers we can no longer compare)
                self.resets += 1
                refresh = True
                self._since = seq
            else:
                if body.get("gap"):
                    refresh = True  # ring overflowed past us
                self._since = max(self._since, seq)
            if refresh and not self._stop.is_set():
                try:
                    self._callback()
                    self.refreshes += 1
                except Exception:  # noqa: BLE001 — see module docstring
                    self.callback_errors += 1
