"""Remote drop-ins for TraceStore and ModelRegistry.

Both classes speak to a running :class:`~repro.remote.service.
StoreService` over the shared retrying transport
(:class:`~repro.serve.http.HttpTransport`, the same plumbing
``ServeClient`` uses) and implement the duck-typed surface the local
classes expose, so ``CampaignRunner``, ``Workspace``,
``PredictionEngine`` and the CLIs take either interchangeably.

Key discipline — the reason remote and local runs fingerprint
byte-identically: **key derivation never crosses the wire.**  The
client holds the FU/stream/library objects and computes
``trace_key``/``model_key``/fingerprints locally with the exact same
code the local classes use; the service only performs the locked
write (and, for publishes, the under-lock version assignment).

Failure modes are loud and typed: :class:`RemoteStoreError` for
transport/HTTP failures, :class:`RemoteProtocolError` for version skew
or a URL that is not a store service, :class:`RemoteChecksumError`
when a streamed blob fails its SHA-256 (retried once, then raised).
"""

from __future__ import annotations

import hashlib
import io
import json
import pickle
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.model import loads_model
from ..flow.tracestore import (
    STORE_VERSION,
    GCReport,
    ShardRange,
    library_fingerprint,
)
from ..serve.http import HttpTransport, TransportError
from ..serve.registry import (
    MODEL_KINDS,
    REGISTRY_VERSION,
    ModelRecord,
    RegistryGCReport,
    corner_fingerprint,
    model_key,
    stream_fingerprint,
)
from ..sim.dta import DelayTrace
from ..testing import faults

#: Must match :data:`repro.remote.service.PROTOCOL_VERSION`.
PROTOCOL_VERSION = 1

_SERVICE_NAME = "repro-store"

#: Every wire request of both remote clients passes through this fault
#: point, so the chaos suite can kill a campaign mid-flight at the
#: store boundary.
SITE_REQUEST = faults.register_site("remote.store.request")


class RemoteStoreError(TransportError):
    """Store service unreachable or answered an HTTP error status."""


class RemoteProtocolError(RemoteStoreError):
    """The far end is not a compatible store service (wrong service,
    or store/registry/protocol version skew)."""


class RemoteChecksumError(RemoteStoreError):
    """A streamed blob failed checksum verification twice — the
    stream is torn (or the far end is corrupting data)."""


class _RemoteBase:
    """Transport + protocol handshake shared by both remote clients."""

    def __init__(self, url: str, *, timeout: float = 30.0,
                 retries: int = 2, backoff_s: float = 0.05,
                 jitter: float = 0.25) -> None:
        self.url = url.rstrip("/")
        self._transport = HttpTransport(
            self.url, timeout=timeout, retries=retries,
            backoff_s=backoff_s, jitter=jitter,
            error_cls=RemoteStoreError)
        self._meta: Optional[Dict] = None

    @property
    def root(self) -> str:
        """The service URL — the duck-typed analogue of the local
        classes' root path.  ``str(root)`` round-trips through
        :func:`~repro.flow.tracestore.open_trace_store` /
        :func:`~repro.serve.registry.open_model_registry`, which is how
        forked cluster workers rebuild their replica clients."""
        return self.url

    # -- wire -----------------------------------------------------------------

    def _request_bytes(self, path: str, data: Optional[bytes] = None,
                       headers: Optional[Dict[str, str]] = None
                       ) -> Tuple[bytes, Dict[str, str]]:
        faults.fault_point(SITE_REQUEST)
        self._check_meta()
        return self._transport.request_bytes(path, data, headers=headers)

    def _call(self, path: str, payload: Optional[Dict] = None) -> Dict:
        faults.fault_point(SITE_REQUEST)
        if path != "/meta":
            self._check_meta()
        return self._transport.call(path, payload)

    def _check_meta(self) -> None:
        """One-time handshake: loud, typed error on version skew."""
        if self._meta is not None:
            return
        try:
            meta = self._transport.call("/meta")
        except RemoteStoreError as exc:
            if exc.status and 400 <= exc.status < 500:
                # something answered, but it has no /meta — a web
                # server, maybe, just not a repro store service
                raise RemoteProtocolError(
                    f"{self.url} is not a repro store service "
                    f"(GET /meta answered {exc.status})") from None
            raise
        if meta.get("service") != _SERVICE_NAME:
            raise RemoteProtocolError(
                f"{self.url} is not a repro store service "
                f"(service={meta.get('service')!r})")
        skew = []
        for name, ours in (("protocol", PROTOCOL_VERSION),
                           ("store_version", STORE_VERSION),
                           ("registry_version", REGISTRY_VERSION)):
            theirs = meta.get(name)
            if theirs != ours:
                skew.append(f"{name}: service={theirs!r} client={ours!r}")
        if skew:
            raise RemoteProtocolError(
                f"version skew against {self.url}: {'; '.join(skew)}")
        self._meta = meta

    def _fetch_checked(self, path: str) -> bytes:
        """GET raw bytes, verifying the streamed checksum.

        A mismatch (torn stream) is retried exactly once; a second
        mismatch raises :class:`RemoteChecksumError`.
        """
        for _ in range(2):
            body, headers = self._request_bytes(path)
            declared = headers.get("x-repro-sha256")
            if (declared is None
                    or hashlib.sha256(body).hexdigest() == declared):
                return body
        raise RemoteChecksumError(
            f"torn blob stream from {self.url}{path}: "
            f"checksum mismatch on 2 attempts")

    def _is_404(self, exc: RemoteStoreError) -> bool:
        return exc.status == 404

    def poll_events(self, since: int = -1,
                    timeout_s: float = 0.0) -> Dict:
        """One ``/events`` long-poll (``since=-1`` returns the current
        sequence immediately — the baseline for a new subscriber)."""
        return self._call(f"/events?since={int(since)}"
                          f"&timeout_s={float(timeout_s)}")

    def subscribe_events(self, callback, **kwargs):
        """Start an :class:`~repro.remote.events.EventSubscriber`
        invoking ``callback()`` on every publish/gc announcement."""
        from .events import EventSubscriber
        return EventSubscriber(self, callback, **kwargs)


class RemoteTraceStore(_RemoteBase):
    """TraceStore surface over the wire (see module docstring)."""

    def entries(self) -> Dict[str, Dict]:
        return self._call("/store/entries")["entries"]

    def __contains__(self, key: str) -> bool:
        try:
            self._call(f"/store/entry/{key}")
        except RemoteStoreError as exc:
            if self._is_404(exc):
                return False
            raise
        return True

    # -- traces ---------------------------------------------------------------

    def get(self, key: str, conditions: Sequence, inputs=None
            ) -> Optional[DelayTrace]:
        """Fetch + decode the blob for ``key``, or None on a miss.

        The delays matrix comes off the wire; conditions/inputs are
        the caller's local objects (exactly the split the local
        ``get`` performs against its manifest)."""
        try:
            body = self._fetch_checked(f"/store/blob/{key}")
        except RemoteChecksumError:
            raise
        except RemoteStoreError as exc:
            if self._is_404(exc):
                return None
            raise
        delays = np.load(io.BytesIO(body))["delays"]
        return DelayTrace(delays, list(conditions), inputs=inputs)

    def put(self, key: str, trace: DelayTrace, *, fu_name: str,
            stream_name: str, library, delay_model: str = "dta",
            backend: str = "") -> str:
        entry = {
            "fu": fu_name,
            "stream": stream_name,
            "library": (library if isinstance(library, str)
                        else library_fingerprint(library)),
            "delay_model": delay_model,
            "backend": backend,
        }
        buf = io.BytesIO()
        np.savez_compressed(buf, delays=trace.delays)
        self._request_bytes(
            f"/store/put/{key}", buf.getvalue(),
            headers={"X-Repro-Entry": json.dumps(entry),
                     "Content-Type": "application/octet-stream"})
        return f"{self.url}/store/blob/{key}"

    # -- throughput history ---------------------------------------------------

    def record_throughput(self, fu_name: str, backend: str,
                          n_corners: int, corner_cycles_per_s: float,
                          alpha: float = 0.4) -> None:
        self._call("/store/throughput/record",
                   {"fu": fu_name, "backend": backend,
                    "n_corners": int(n_corners),
                    "corner_cycles_per_s": corner_cycles_per_s,
                    "alpha": alpha})

    def get_throughput(self, fu_name: str, backend: str,
                       n_corners: int) -> Optional[float]:
        return self.get_throughput_many([(fu_name, backend, n_corners)])[0]

    def get_throughput_many(
            self, keys: Sequence[Tuple[str, str, int]]
            ) -> List[Optional[float]]:
        body = self._call("/store/throughput/get-many",
                          {"keys": [[f, b, int(n)] for f, b, n in keys]})
        return [None if v is None else float(v) for v in body["cps"]]

    def throughput_history(self) -> Dict[str, Dict]:
        return self._call("/store/throughput")["history"]

    def clear_throughput(self) -> int:
        return int(self._call("/store/throughput/clear", {})["removed"])

    # -- size / gc ------------------------------------------------------------

    def size_bytes(self) -> int:
        return int(self._call("/store/stats")["size_bytes"])

    def stats(self) -> Dict:
        return self._call("/store/stats")

    def gc(self, max_bytes: Optional[int] = None,
           dry_run: bool = False) -> GCReport:
        body = self._call("/store/gc", {"max_bytes": max_bytes,
                                        "dry_run": dry_run})
        return GCReport(**body["report"])

    # -- campaign journals ----------------------------------------------------

    def record_journal_shard(self, key: str, *,
                             plan: Sequence[ShardRange],
                             shard: ShardRange, delays: np.ndarray,
                             backend: str, n_corners: int,
                             n_cycles: int) -> None:
        info = {"plan": [list(int(x) for x in s) for s in plan],
                "shard": [int(x) for x in shard],
                "backend": backend, "n_corners": int(n_corners),
                "n_cycles": int(n_cycles)}
        buf = io.BytesIO()
        np.savez_compressed(buf, delays=np.ascontiguousarray(delays))
        self._request_bytes(
            f"/store/journal-shard/{key}", buf.getvalue(),
            headers={"X-Repro-Journal": json.dumps(info),
                     "Content-Type": "application/octet-stream"})

    def load_journal(self, key: str, *, backend: str, n_corners: int,
                     n_cycles: int
                     ) -> Optional[Tuple[List[ShardRange],
                                         List[Tuple[ShardRange,
                                                    np.ndarray]]]]:
        try:
            body = self._fetch_checked(
                f"/store/journal/{key}?backend={backend}"
                f"&n_corners={int(n_corners)}&n_cycles={int(n_cycles)}")
        except RemoteChecksumError:
            raise
        except RemoteStoreError as exc:
            if self._is_404(exc):
                return None
            raise
        with np.load(io.BytesIO(body)) as data:
            meta = json.loads(data["meta"].item())
            plan = [tuple(int(x) for x in s) for s in meta["plan"]]
            done = [(tuple(int(x) for x in shard),
                     np.array(data[f"part_{i}"]))
                    for i, shard in enumerate(meta["shards"])]
        return plan, done

    def clear_journal(self, key: str) -> None:
        self._call(f"/store/journal-clear/{key}", {})


class RemoteModelRegistry(_RemoteBase):
    """ModelRegistry surface over the wire (see module docstring)."""

    def list_models(self, fu: Optional[str] = None,
                    kind: Optional[str] = None) -> List[ModelRecord]:
        query = []
        if fu is not None:
            query.append(f"fu={fu}")
        if kind is not None:
            query.append(f"kind={kind}")
        path = "/registry/models" + ("?" + "&".join(query) if query else "")
        return [ModelRecord.from_entry(m["model_id"], m["entry"])
                for m in self._call(path)["models"]]

    def __len__(self) -> int:
        return int(self._call("/registry/fingerprint")["models"])

    def manifest_fingerprint(self, length: int = 16) -> str:
        return self._call(
            f"/registry/fingerprint?length={int(length)}")["fingerprint"]

    # -- publish / resolve ----------------------------------------------------

    def publish(self, model: Any, fu, kind: str = "tevot",
                conditions=None, train_stream=None,
                metadata: Optional[Dict] = None) -> ModelRecord:
        """Publish over the wire with client-side key derivation.

        Everything identity-bearing (FU fingerprint, corner grid,
        stream bytes, feature-spec tag → ``model_key``) is computed
        here with the exact code the local registry uses; the service
        assigns the version under its lock.
        """
        if kind not in MODEL_KINDS:
            raise ValueError(
                f"unknown model kind {kind!r}; expected one of "
                f"{', '.join(MODEL_KINDS)}")
        fu_name = fu if isinstance(fu, str) else fu.name
        spec = getattr(model, "spec", None)
        spec_tag = spec.version_tag() if spec is not None else "-"
        info = {
            "fu_name": fu_name,
            "kind": kind,
            "key": model_key(fu, kind, conditions, train_stream, spec_tag),
            "feature_spec": None if spec is None else {
                "operand_width": spec.operand_width,
                "include_history": spec.include_history,
                "tag": spec_tag,
            },
            "corners": corner_fingerprint(conditions),
            "train_stream": stream_fingerprint(train_stream),
            "metadata": dict(metadata or {}),
        }
        body, _ = self._request_bytes(
            "/registry/publish", pickle.dumps(model),
            headers={"X-Repro-Publish": json.dumps(info),
                     "Content-Type": "application/octet-stream"})
        resp = json.loads(body)
        return ModelRecord.from_entry(resp["model_id"], resp["entry"])

    def resolve(self, fu: str, kind: str = "tevot",
                key: Optional[str] = None,
                version: Optional[int] = None) -> Tuple[Any, ModelRecord]:
        candidates = self.list_models(fu=fu, kind=kind)
        if key is not None:
            candidates = [r for r in candidates if r.key == key]
        if version is not None:
            candidates = [r for r in candidates if r.version == version]
        for record in candidates:  # newest first
            try:
                body = self._fetch_checked(
                    f"/registry/artifact/{record.model_id}")
            except RemoteStoreError as exc:
                if self._is_404(exc):
                    continue  # artifact gone server-side; next-newest
                raise
            model, _ = loads_model(body, source=record.model_id)
            return model, record
        raise LookupError(
            f"no published model for fu={fu!r} kind={kind!r}"
            + (f" key={key!r}" if key else "")
            + (f" version={version}" if version else ""))

    def gc(self, keep: int = 1, dry_run: bool = False) -> RegistryGCReport:
        body = self._call("/registry/gc",
                          {"keep": int(keep), "dry_run": dry_run})
        return RegistryGCReport(**body["report"])
