"""Remote store access: one process owns the stores, the rest dial in.

The bliss/conductor pattern applied to this repo's persistence layer:

* :mod:`repro.remote.service` — :class:`StoreService`, a stdlib HTTP
  server (``repro store serve --root DIR``) owning a local
  :class:`~repro.flow.tracestore.TraceStore` +
  :class:`~repro.serve.registry.ModelRegistry` under the advisory
  store lock, exposing their full surface (trace get/put with npz blob
  streaming, throughput history, model publish/resolve/list/gc,
  manifest fingerprints) plus a long-poll event feed
  (``/events?since=seq``) announcing every publish/gc;
* :mod:`repro.remote.client` — :class:`RemoteTraceStore` and
  :class:`RemoteModelRegistry`, duck-typed drop-ins for the local
  classes: byte-identical cache/model keys (key derivation stays
  client-side), retry/backoff shared with
  :class:`~repro.serve.client.ServeClient` via
  :mod:`repro.serve.http`, and loud typed errors on version skew
  (:class:`RemoteProtocolError`) or torn blob streams
  (:class:`RemoteChecksumError`);
* :mod:`repro.remote.events` — :class:`EventSubscriber`, the
  daemon-thread long-poller behind push-based model rollout:
  ``PredictionEngine``/``ClusterEngine`` re-replicate on publish
  events instead of waiting for a manual ``POST /models/refresh``.

``Workspace("http://host:port")`` routes the whole
characterize → train → publish → predict flow through these clients,
so a box that shares no filesystem with the store runs the full flow.
"""

from .client import (
    PROTOCOL_VERSION,
    RemoteChecksumError,
    RemoteModelRegistry,
    RemoteProtocolError,
    RemoteStoreError,
    RemoteTraceStore,
)
from .events import EventSubscriber
from .service import StoreService

__all__ = [
    "EventSubscriber",
    "PROTOCOL_VERSION",
    "RemoteChecksumError",
    "RemoteModelRegistry",
    "RemoteProtocolError",
    "RemoteStoreError",
    "RemoteTraceStore",
    "StoreService",
]
