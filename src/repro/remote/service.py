"""The store service: one HTTP process owning TraceStore + ModelRegistry.

``repro store serve --root DIR`` runs a :class:`StoreService` on a
workspace-layout root (``DIR/traces`` + ``DIR/registry``).  Every other
process — campaign runners, trainers, serving clusters, CLIs — talks
to it through :mod:`repro.remote.client` instead of sharing the
filesystem.

Wire format: JSON everywhere except bulk payloads, which move as raw
bytes (npz trace blobs, pickled model artifacts) with an
``X-Repro-SHA256`` trailer header the client verifies — a torn stream
is detected, retried once, then loudly rejected.  Mutations run under
the PR-8 advisory store lock *and* an in-process mutex (the advisory
lock is reentrant within one process, so two handler threads of this
very service would not serialize against each other without it).

The event feed (``GET /events?since=seq``) long-polls a bounded
in-memory ring of monotonically sequenced events announcing every
publish/gc/trace-put; subscribers that fall behind the ring (``gap``)
or observe the sequence restart (``reset``) refresh defensively.
"""

from __future__ import annotations

import hashlib
import io
import json
import pickle
import threading
import time
from collections import deque
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Dict, Optional, Tuple, Union
from urllib.parse import parse_qs, unquote, urlparse

import numpy as np

from ..flow.durable import StoreLockTimeout
from ..flow.tracestore import STORE_VERSION, TraceStore
from ..serve.registry import REGISTRY_VERSION, ModelRegistry
from ..sim.dta import DelayTrace
from ..testing import faults

#: Bump on incompatible wire-format changes; clients check it against
#: their own on first contact and fail loudly on skew.
PROTOCOL_VERSION = 1

#: Identifies this service in ``/meta`` (a client pointed at some other
#: HTTP server must get a typed error, not a confusing JSON mismatch).
SERVICE_NAME = "repro-store"

#: Cap on one long-poll's server-side wait.
MAX_POLL_TIMEOUT_S = 30.0

#: Torn-stream injection for the chaos suite: ``torn-write`` truncates
#: a streamed blob body (the checksum header still covers the full
#: bytes, so the client's verify must catch it).
SITE_STREAM = faults.register_site("remote.service.stream")


class EventFeed:
    """Bounded ring of sequenced events with long-poll support."""

    def __init__(self, maxlen: int = 1024) -> None:
        self._cond = threading.Condition()
        self._events: deque = deque(maxlen=maxlen)
        self._seq = 0
        self._closed = False

    @property
    def seq(self) -> int:
        with self._cond:
            return self._seq

    def emit(self, kind: str, **fields) -> Dict:
        with self._cond:
            self._seq += 1
            event = {"seq": self._seq, "kind": kind, **fields}
            self._events.append(event)
            self._cond.notify_all()
        return event

    def close(self) -> None:
        """Wake every long-poller so server shutdown never blocks on
        an idle subscriber."""
        with self._cond:
            self._closed = True
            self._cond.notify_all()

    def poll(self, since: int, timeout_s: float) -> Dict:
        """Events with ``seq > since``, waiting up to ``timeout_s``.

        ``since < 0`` is a baseline request: return the current
        sequence immediately with no events (new subscribers skip
        history).  ``reset`` flags a ``since`` ahead of the current
        sequence (the service restarted and renumbered); ``gap`` flags
        events aged out of the ring before this subscriber saw them.
        """
        timeout_s = max(0.0, min(float(timeout_s), MAX_POLL_TIMEOUT_S))
        deadline = time.monotonic() + timeout_s
        with self._cond:
            while True:
                if since < 0:
                    return {"seq": self._seq, "events": []}
                if since > self._seq:
                    return {"seq": self._seq, "events": [], "reset": True}
                newer = [e for e in self._events if e["seq"] > since]
                if newer or self._closed:
                    oldest = (self._events[0]["seq"] if self._events
                              else self._seq + 1)
                    return {"seq": self._seq, "events": newer,
                            "gap": since + 1 < oldest}
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return {"seq": self._seq, "events": []}
                self._cond.wait(remaining)


class _Handler(BaseHTTPRequestHandler):
    server: "StoreService"

    #: bound the time a silent connection can pin a handler thread
    #: (long-polls wake via EventFeed.close, this covers dead peers)
    timeout = 60.0

    # -- plumbing -------------------------------------------------------------

    def _send_json(self, payload: Dict, status: int = 200,
                   headers: Optional[Dict[str, str]] = None) -> None:
        body = json.dumps(payload).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _send_bytes(self, body: bytes) -> None:
        digest = hashlib.sha256(body).hexdigest()
        if faults.trigger(SITE_STREAM) == "torn-write":
            body = body[: max(1, len(body) // 2)]
        self.send_response(200)
        self.send_header("Content-Type", "application/octet-stream")
        self.send_header("Content-Length", str(len(body)))
        self.send_header("X-Repro-SHA256", digest)
        self.end_headers()
        self.wfile.write(body)

    def _read_body(self) -> bytes:
        length = int(self.headers.get("Content-Length") or 0)
        return self.rfile.read(length) if length else b""

    def _json_header(self, name: str) -> Dict:
        raw = self.headers.get(name)
        if raw is None:
            raise ValueError(f"missing {name} header")
        data = json.loads(raw)
        if not isinstance(data, dict):
            raise ValueError(f"{name} header must be a JSON object")
        return data

    def log_message(self, fmt: str, *args) -> None:  # pragma: no cover
        if self.server.verbose:
            super().log_message(fmt, *args)

    def _dispatch(self, method: str) -> None:
        parsed = urlparse(self.path)
        path = unquote(parsed.path)
        query = {k: v[-1] for k, v in parse_qs(parsed.query).items()}
        try:
            handled = self.server.handle_route(self, method, path, query)
        except ValueError as exc:
            self._send_json({"error": str(exc)}, 400)
            return
        except LookupError as exc:
            self._send_json({"error": str(exc)}, 404)
            return
        except StoreLockTimeout as exc:
            # another writer holds the store lock: advertise a backoff
            # so the shared transport retries instead of failing
            self._send_json({"error": str(exc), "retry_after_s": 0.5},
                            503, headers={"Retry-After": "0.5"})
            return
        except Exception as exc:  # noqa: BLE001 — wire boundary
            self._send_json({"error": f"{type(exc).__name__}: {exc}"}, 500)
            return
        if not handled:
            self._send_json({"error": f"unknown path {path!r}"}, 404)

    def do_GET(self) -> None:
        self._dispatch("GET")

    def do_POST(self) -> None:
        self._dispatch("POST")


class StoreService(ThreadingHTTPServer):
    """HTTP server owning one TraceStore + one ModelRegistry.

    ``root`` uses the workspace layout: traces under ``root/traces``,
    models under ``root/registry`` — a directory previously used by a
    local ``Workspace(root)`` serves as-is (and vice versa).  ``port=0``
    binds an ephemeral port (see :attr:`address`); call
    :meth:`serve_forever` (blocking) or :meth:`start_background`, stop
    with :meth:`close`.
    """

    daemon_threads = False
    block_on_close = True

    def __init__(self, root: Union[str, Path], host: str = "127.0.0.1",
                 port: int = 8730, *, lock_timeout: float = 10.0,
                 verbose: bool = False) -> None:
        self.root = Path(root)
        self.store = TraceStore(self.root / "traces",
                                lock_timeout=lock_timeout)
        self.registry = ModelRegistry(self.root / "registry",
                                      lock_timeout=lock_timeout)
        self.events = EventFeed()
        self.verbose = verbose
        self._started = time.monotonic()
        self._closed = False
        # the advisory store lock is reentrant within one process: two
        # handler threads of this service must serialize here instead
        self._mutate = threading.Lock()
        super().__init__((host, port), _Handler)

    @property
    def address(self) -> Tuple[str, int]:
        return self.server_address[0], self.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.address[0]}:{self.address[1]}"

    def start_background(self) -> threading.Thread:
        thread = threading.Thread(target=self.serve_forever, daemon=True,
                                  name="repro-store-http")
        thread.start()
        return thread

    def close(self) -> None:
        """Stop accepting, wake long-pollers, join handler threads."""
        if self._closed:
            return
        self._closed = True
        self.events.close()
        self.shutdown()
        self.server_close()

    # -- routes ---------------------------------------------------------------

    def handle_route(self, h: _Handler, method: str, path: str,
                     query: Dict[str, str]) -> bool:
        """Serve one request; returns False for unknown paths."""
        if method == "GET":
            return self._handle_get(h, path, query)
        return self._handle_post(h, path, query)

    def _handle_get(self, h: _Handler, path: str,
                    query: Dict[str, str]) -> bool:
        if path == "/meta":
            h._send_json(self.meta())
        elif path == "/health":
            h._send_json({"status": "healthy", "service": SERVICE_NAME,
                          "uptime_s": round(
                              time.monotonic() - self._started, 3)})
        elif path == "/events":
            since = int(query.get("since", "-1"))
            timeout_s = float(query.get("timeout_s", "0"))
            h._send_json(self.events.poll(since, timeout_s))
        elif path == "/store/entries":
            h._send_json({"entries": self.store.entries()})
        elif path == "/store/stats":
            h._send_json(self.store_stats())
        elif path == "/store/throughput":
            h._send_json({"history": self.store.throughput_history()})
        elif path.startswith("/store/entry/"):
            key = path.rsplit("/", 1)[1]
            entry = self.store.entries().get(key)
            if entry is None:
                raise LookupError(f"no trace entry for key {key!r}")
            h._send_json({"key": key, "entry": entry})
        elif path.startswith("/store/blob/"):
            key = path.rsplit("/", 1)[1]
            blob = self.store.blob_path(key)
            if blob is None:
                raise LookupError(f"no trace blob for key {key!r}")
            h._send_bytes(blob.read_bytes())
        elif path.startswith("/store/journal/"):
            key = path.rsplit("/", 1)[1]
            h._send_bytes(self._journal_bytes(key, query))
        elif path == "/registry/models":
            records = self.registry.list_models(
                fu=query.get("fu"), kind=query.get("kind"))
            h._send_json({"models": [
                {"model_id": r.model_id, "entry": r.as_entry()}
                for r in records]})
        elif path == "/registry/fingerprint":
            length = int(query.get("length", "16"))
            h._send_json({
                "fingerprint": self.registry.manifest_fingerprint(length),
                "models": len(self.registry)})
        elif path.startswith("/registry/artifact/"):
            model_id = path[len("/registry/artifact/"):]
            h._send_bytes(self._artifact_bytes(model_id))
        else:
            return False
        return True

    def _handle_post(self, h: _Handler, path: str,
                     query: Dict[str, str]) -> bool:
        if path.startswith("/store/put/"):
            key = path.rsplit("/", 1)[1]
            entry = h._json_header("X-Repro-Entry")
            fname = self._put_trace(key, h._read_body(), entry)
            h._send_json({"ok": True, "file": fname})
        elif path == "/store/throughput/record":
            data = json.loads(h._read_body() or b"{}")
            with self._mutate:
                self.store.record_throughput(
                    str(data["fu"]), str(data["backend"]),
                    int(data["n_corners"]),
                    data["corner_cycles_per_s"],
                    alpha=float(data.get("alpha", 0.4)))
            h._send_json({"ok": True})
        elif path == "/store/throughput/get-many":
            data = json.loads(h._read_body() or b"{}")
            keys = [(str(f), str(b), int(n))
                    for f, b, n in data.get("keys", [])]
            h._send_json({"cps": self.store.get_throughput_many(keys)})
        elif path == "/store/throughput/clear":
            with self._mutate:
                removed = self.store.clear_throughput()
            h._send_json({"removed": removed})
        elif path == "/store/gc":
            data = json.loads(h._read_body() or b"{}")
            with self._mutate:
                report = self.store.gc(
                    max_bytes=data.get("max_bytes"),
                    dry_run=bool(data.get("dry_run", False)))
            if not data.get("dry_run"):
                self.events.emit("store-gc",
                                 removed=len(report.removed_blobs),
                                 dropped=len(report.dropped_entries))
            h._send_json({"report": {
                "removed_blobs": report.removed_blobs,
                "dropped_entries": report.dropped_entries,
                "freed_bytes": report.freed_bytes,
                "kept_bytes": report.kept_bytes}})
        elif path.startswith("/store/journal-shard/"):
            key = path.rsplit("/", 1)[1]
            info = h._json_header("X-Repro-Journal")
            self._record_journal_shard(key, h._read_body(), info)
            h._send_json({"ok": True})
        elif path.startswith("/store/journal-clear/"):
            key = path.rsplit("/", 1)[1]
            with self._mutate:
                self.store.clear_journal(key)
            h._send_json({"ok": True})
        elif path == "/registry/publish":
            info = h._json_header("X-Repro-Publish")
            record = self._publish(h._read_body(), info)
            h._send_json({"model_id": record.model_id,
                          "entry": record.as_entry()})
        elif path == "/registry/gc":
            data = json.loads(h._read_body() or b"{}")
            with self._mutate:
                report = self.registry.gc(
                    keep=int(data.get("keep", 1)),
                    dry_run=bool(data.get("dry_run", False)))
            if not data.get("dry_run"):
                self.events.emit("registry-gc",
                                 removed=len(report.removed_files),
                                 dropped=len(report.dropped_entries))
            h._send_json({"report": {
                "removed_files": report.removed_files,
                "dropped_entries": report.dropped_entries,
                "freed_bytes": report.freed_bytes}})
        else:
            return False
        return True

    # -- payload helpers ------------------------------------------------------

    def meta(self) -> Dict:
        return {"service": SERVICE_NAME,
                "protocol": PROTOCOL_VERSION,
                "store_version": STORE_VERSION,
                "registry_version": REGISTRY_VERSION,
                "seq": self.events.seq,
                "root": str(self.root)}

    def store_stats(self) -> Dict:
        quarantined = len(list(self.store.root.glob("*.corrupt-*"))) \
            if self.store.root.is_dir() else 0
        return {"size_bytes": self.store.size_bytes(),
                "n_entries": len(self.store.entries()),
                "quarantined": quarantined}

    def _put_trace(self, key: str, body: bytes, entry: Dict) -> str:
        delays = np.load(io.BytesIO(body))["delays"]
        # conditions live client-side; put only consumes the matrix
        trace = DelayTrace(delays, [])
        with self._mutate:
            path = self.store.put(
                key, trace, fu_name=str(entry["fu"]),
                stream_name=str(entry["stream"]),
                library=str(entry["library"]),
                delay_model=str(entry.get("delay_model", "dta")),
                backend=str(entry.get("backend", "")))
        self.events.emit("trace-put", key=key, fu=str(entry["fu"]),
                         stream=str(entry["stream"]))
        return path.name

    def _record_journal_shard(self, key: str, body: bytes,
                              info: Dict) -> None:
        delays = np.load(io.BytesIO(body))["delays"]
        plan = [tuple(int(x) for x in s) for s in info["plan"]]
        shard = tuple(int(x) for x in info["shard"])
        with self._mutate:
            self.store.record_journal_shard(
                key, plan=plan, shard=shard, delays=delays,
                backend=str(info["backend"]),
                n_corners=int(info["n_corners"]),
                n_cycles=int(info["n_cycles"]))

    def _journal_bytes(self, key: str, query: Dict[str, str]) -> bytes:
        state = self.store.load_journal(
            key, backend=str(query.get("backend", "")),
            n_corners=int(query.get("n_corners", "0")),
            n_cycles=int(query.get("n_cycles", "0")))
        if state is None:
            raise LookupError(f"no resumable journal for key {key!r}")
        plan, done = state
        buf = io.BytesIO()
        meta = {"plan": [list(s) for s in plan],
                "shards": [list(s) for s, _ in done]}
        np.savez_compressed(
            buf, meta=np.array(json.dumps(meta)),
            **{f"part_{i}": arr for i, (_, arr) in enumerate(done)})
        return buf.getvalue()

    def _artifact_bytes(self, model_id: str) -> bytes:
        entry = self.registry._read()["models"].get(model_id)
        if entry is None:
            raise LookupError(f"no published model {model_id!r}")
        path = self.registry.root / entry["file"]
        if not path.is_file():
            raise LookupError(f"artifact for {model_id!r} is missing")
        return path.read_bytes()

    def _publish(self, body: bytes, info: Dict):
        model = pickle.loads(body)
        with self._mutate:
            record = self.registry.publish_fingerprinted(
                model, fu_name=str(info["fu_name"]),
                kind=str(info["kind"]), key=str(info["key"]),
                feature_spec=info.get("feature_spec"),
                corners=str(info.get("corners", "-")),
                train_stream=str(info.get("train_stream", "-")),
                metadata=info.get("metadata") or {})
        self.events.emit("publish", model_id=record.model_id,
                         fu=record.fu, model_kind=record.kind,
                         version=record.version, key=record.key)
        return record
