"""Compiled netlist programs: level-parallel simulation kernels.

The levelized and bit-packed engines walk the netlist one gate at a
time in Python — a 32-bit array multiplier is ~5.6k numpy dispatches
per chunk, so characterization throughput is bounded by interpreter
overhead, not by array work.  This module removes that bound with a
one-time *lowering pass*: :func:`compile_netlist` turns a
:class:`~repro.circuits.netlist.Netlist` into a
:class:`CompiledNetlist` — flat structure-of-arrays form where gates
are bucketed by ``(logic level, gate type)`` with fanin/output/delay
index matrices per bucket.  Because a gate's inputs always sit at
strictly lower levels, every bucket can be evaluated with whole-bucket
fancy-indexed numpy ops, so the settled-value pass, the toggle pass,
and the float arrival pass each become a short loop over *levels*
instead of a Python loop over *gates*.

Two value substrates share the same lowered program and the same
arrival kernel:

``packed=False``
    per-cycle ``uint8`` values (the levelized engine's substrate);
``packed=True``
    cycle axis packed into ``uint64`` words, one bitwise op per 64
    cycles (the bit-packed engine's substrate).

Delays are **bit-identical** to the original per-gate engines: every
per-gate float32 operation (mask with ``-inf``, running ``maximum``
over fanins in pin order, add the gate delay, mask by output toggles)
is reproduced elementwise on the grouped arrays, and ``max``/``where``
/float32 ``+`` are exact elementwise ops whose values do not depend on
how gates are batched.  The backend parity tests assert this against
the retained per-gate reference paths.

Programs are cached per netlist identity (a ``weakref``-evicted map),
so repeated ``run_delays`` calls — e.g. one per campaign shard — pay
for validation, levelization, and lowering exactly once per process.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..circuits.netlist import GATE_ARITY, GateType, Netlist
from .engine import DelayTraceResult, SimBackend

NEG_INF = np.float32(-np.inf)
_ZERO = np.float32(0.0)
_ONE = np.uint64(1)
_SIXTY_THREE = np.uint64(63)
_U8_ONE = np.uint8(1)
_U64_ONES = np.uint64(0xFFFFFFFFFFFFFFFF)
#: Magnitude of the quiet-cycle arrival sentinel (an exact power of
#: two, ~1.27e30).  Quiet arrivals only need to (a) lose every ``max``
#: against a real arrival (reals are >= 0) and (b) stay negative under
#: any accumulation of gate delays along a quiet chain — circuit depth
#: times the largest gate delay is bounded far below this, and even
#: pathological overflow saturates to -inf, which also satisfies both.
_QUIET_SENTINEL = np.float32(2.0 ** 100)

#: float32 elements of the arrival scratch (~12 MB): sized to keep the
#: chunk state resident in last-level cache, where the level-parallel
#: arrival pass is ~2x faster than streaming from DRAM (empirically
#: flat across 4-20 MB on the paper FUs).
_CHUNK_BUDGET_ELEMS = 3 * 1024 * 1024


# -- bit packing primitives (canonical home; re-exported by bitpacked) --------


def pack_columns(matrix: np.ndarray) -> np.ndarray:
    """Pack a ``(n_rows, n_cols)`` 0/1 matrix into per-column words.

    Returns ``(n_cols, ceil(n_rows / 64))`` uint64 with row ``t`` of
    column ``c`` at bit ``t % 64`` of ``out[c, t // 64]``.
    """
    cols = np.ascontiguousarray(np.asarray(matrix, dtype=np.uint8).T)
    packed = np.packbits(cols, axis=1, bitorder="little")
    pad = (-packed.shape[1]) % 8
    if pad:
        packed = np.pad(packed, ((0, 0), (0, pad)))
    return packed.view(np.uint64)


def unpack_words(words: np.ndarray, n: int) -> np.ndarray:
    """First ``n`` bits of a packed word vector as a uint8 0/1 array."""
    return np.unpackbits(np.ascontiguousarray(words).view(np.uint8),
                         count=n, bitorder="little")


def toggle_word_rows(value_words: np.ndarray, n_cycles: int) -> np.ndarray:
    """Packed toggle masks for ``(n_nets, n_words)`` value words.

    Bit ``t`` of row ``i`` is set iff rows ``t`` and ``t+1`` of net
    ``i`` differ; bits past ``n_cycles`` are zeroed so ``any()`` tests
    and unpacks are exact.
    """
    shifted = value_words >> _ONE
    if value_words.shape[-1] > 1:
        shifted[..., :-1] |= value_words[..., 1:] << _SIXTY_THREE
    tog = value_words ^ shifted
    n_full, rem = divmod(n_cycles, 64)
    if rem:
        tog[..., n_full] &= np.uint64((1 << rem) - 1)
        tog[..., n_full + 1:] = 0
    else:
        tog[..., n_full:] = 0
    return tog


def toggle_words(value_words: np.ndarray, n_cycles: int) -> np.ndarray:
    """Packed toggle mask of a single net's word vector."""
    return toggle_word_rows(value_words[None, :], n_cycles)[0]


# -- lowering -----------------------------------------------------------------


@dataclass(frozen=True)
class GateGroup:
    """All gates of one type at one logic level, in index-array form.

    Nets are renumbered during lowering so that a group's output nets
    occupy the contiguous row range ``[start, stop)`` of every per-net
    state array — group writes are slice views, only fanin reads
    gather.
    """

    level: int
    gtype: GateType
    arity: int
    #: ``(n,)`` original gate indices — columns of the delay matrix.
    gate_idx: np.ndarray
    #: output rows ``start .. stop-1``, aligned with ``gate_idx``.
    start: int
    stop: int
    #: ``(arity, n)`` fanin *rows* (renumbered), pin-major.
    fanin: np.ndarray


@dataclass(frozen=True)
class ArrivalBlock:
    """One level's worth of gates for the float arrival pass.

    The arrival recurrence ``max(fanin arrivals) + delay`` does not
    depend on the gate function, so the pass merges value groups
    level-wise into wider blocks: all 1- and 2-input gates of a level
    form one block with a ``(2, n)`` fanin matrix (single-input gates
    duplicate their pin — ``max(x, x) == x`` exactly), 3-input muxes
    form another.  Fewer, larger numpy ops per level.
    """

    #: number of fanin rows carried per gate (2 or 3).
    width: int
    #: ``(n,)`` original gate indices — columns of the delay matrix.
    gate_idx: np.ndarray
    #: output rows ``start .. stop-1``, aligned with ``gate_idx``.
    start: int
    stop: int
    #: ``(width, n)`` fanin rows, pin-major.
    fanin: np.ndarray


def _eval_group(gtype: GateType, ins: np.ndarray, shape, dtype,
                ones) -> np.ndarray:
    """Evaluate one gate type on stacked per-gate value rows.

    ``ins`` is ``(arity, n_gates, width)``; works identically for the
    uint8 substrate (``ones = 1``) and the packed uint64 substrate
    (``ones = 0xFF..F``).
    """
    if gtype is GateType.CONST0:
        return np.zeros(shape, dtype)
    if gtype is GateType.CONST1:
        return np.full(shape, ones, dtype)
    if gtype is GateType.BUF:
        return ins[0]
    if gtype is GateType.NOT:
        return ins[0] ^ ones
    if gtype is GateType.AND2:
        return ins[0] & ins[1]
    if gtype is GateType.OR2:
        return ins[0] | ins[1]
    if gtype is GateType.NAND2:
        return (ins[0] & ins[1]) ^ ones
    if gtype is GateType.NOR2:
        return (ins[0] | ins[1]) ^ ones
    if gtype is GateType.XOR2:
        return ins[0] ^ ins[1]
    if gtype is GateType.XNOR2:
        return (ins[0] ^ ins[1]) ^ ones
    if gtype is GateType.MUX2:
        sel, d0, d1 = ins
        return (d0 & (sel ^ ones)) | (d1 & sel)
    raise ValueError(f"unknown gate type {gtype!r}")


class CompiledNetlist:
    """One netlist lowered to level-parallel structure-of-arrays form.

    Construction validates and levelizes the netlist once; use
    :func:`compile_netlist` to get the per-netlist cached instance.
    The program holds only flat arrays (no reference to the source
    :class:`Netlist`), so cache eviction is driven purely by the
    netlist's lifetime.

    Nets are renumbered into *program row order*: primary inputs first
    (rows ``0 .. n_inputs-1`` in declaration order), then each group's
    outputs as one contiguous block.  ``net_row`` maps original net ids
    to rows.  All kernel arrays (values, toggles, arrivals) use row
    order, which turns every group write into a slice view; only fanin
    reads gather.
    """

    def __init__(self, netlist: Netlist) -> None:
        netlist.validate()
        self.name = netlist.name
        self.n_nets = netlist.n_nets
        self.n_gates = len(netlist.gates)
        self.n_inputs = len(netlist.primary_inputs)
        self.n_outputs = len(netlist.primary_outputs)

        level = netlist.levelize()
        buckets: Dict[Tuple[int, GateType], List[int]] = {}
        for idx, gate in enumerate(netlist.gates):
            buckets.setdefault((level[gate.output], gate.gtype),
                               []).append(idx)
        gates = netlist.gates

        # Group order: by level, then fanin-width class (constants /
        # 1-2 pins / 3 pins), then type — so the gates of each arrival
        # block (see below) are contiguous rows.
        def width_class(arity: int) -> int:
            return 0 if arity == 0 else (1 if arity <= 2 else 2)

        ordered = sorted(
            buckets,
            key=lambda k: (k[0], width_class(GATE_ARITY[k[1]]), k[1].value))

        #: original net id -> program row
        self.net_row = np.empty(self.n_nets, dtype=np.int64)
        for row, net in enumerate(netlist.primary_inputs):
            self.net_row[net] = row
        cursor = self.n_inputs
        for key in ordered:
            for idx in buckets[key]:
                self.net_row[gates[idx].output] = cursor
                cursor += 1

        self.groups: List[GateGroup] = []
        cursor = self.n_inputs
        for lvl, gtype in ordered:
            idxs = buckets[(lvl, gtype)]
            arity = GATE_ARITY[gtype]
            self.groups.append(GateGroup(
                level=lvl, gtype=gtype, arity=arity,
                gate_idx=np.asarray(idxs, dtype=np.int64),
                start=cursor, stop=cursor + len(idxs),
                fanin=np.asarray(
                    [[self.net_row[gates[i].inputs[k]] for i in idxs]
                     for k in range(arity)],
                    dtype=np.int64).reshape(arity, len(idxs)),
            ))
            cursor += len(idxs)
        self.n_levels = 1 + max((g.level for g in self.groups), default=0)
        #: primary-output rows, in declaration order.
        self.po_rows = self.net_row[
            np.asarray(netlist.primary_outputs, dtype=np.int64)
        ] if self.n_outputs else np.empty(0, dtype=np.int64)

        # Arrival blocks: merge each level's 1-2 pin groups into one
        # (2, n) block — single-pin gates duplicate their fanin, which
        # is exact under max — and its muxes into one (3, n) block.
        # Constant rows are collected for -inf initialization.
        self.const_rows: List[Tuple[int, int]] = []
        self.arrival_blocks: List[ArrivalBlock] = []
        pending: Dict[Tuple[int, int], List[GateGroup]] = {}
        for g in self.groups:
            if g.arity == 0:
                self.const_rows.append((g.start, g.stop))
            else:
                pending.setdefault((g.level, width_class(g.arity)),
                                   []).append(g)
        for (lvl, wclass), members in sorted(pending.items()):
            width = 2 if wclass == 1 else 3
            fanin_rows = []
            for g in members:
                fan = g.fanin
                if g.arity == 1:
                    fan = np.vstack([fan[0], fan[0]])
                fanin_rows.append(fan)
            self.arrival_blocks.append(ArrivalBlock(
                width=width,
                gate_idx=np.concatenate([g.gate_idx for g in members]),
                start=members[0].start, stop=members[-1].stop,
                fanin=np.concatenate(fanin_rows, axis=1),
            ))

    # -- kernels -----------------------------------------------------------

    def settled_net_values(self, inputs: np.ndarray, packed: bool,
                           out: Optional[np.ndarray] = None,
                           pi_values: Optional[np.ndarray] = None
                           ) -> np.ndarray:
        """Settle every net for a stream of input rows.

        Returns per-net rows in program row order (see class docs):
        ``(n_nets, n_rows)`` uint8 or, with ``packed``, ``(n_nets,
        ceil(n_rows / 64))`` uint64 words (tail bits past the last row
        are unspecified, as in the per-gate engine).  ``out`` reuses a
        previous result buffer; ``pi_values`` supplies pre-substrated
        primary-input rows (chunked runs pack the stream once).
        """
        n_rows = inputs.shape[0]
        if packed:
            dtype, ones = np.uint64, _U64_ONES
            width = (n_rows + 63) // 64
            pi_vals = pack_columns(inputs) if pi_values is None else pi_values
        else:
            dtype, ones = np.uint8, _U8_ONE
            width = n_rows
            pi_vals = (np.ascontiguousarray(inputs.T)
                       if pi_values is None else pi_values)
        if out is not None and out.shape == (self.n_nets, width) \
                and out.dtype == dtype:
            values = out
        else:
            values = np.empty((self.n_nets, width), dtype=dtype)
        values[:self.n_inputs] = pi_vals
        for g in self.groups:
            values[g.start:g.stop] = _eval_group(
                g.gtype, values[g.fanin], (g.stop - g.start, width),
                dtype, ones)
        return values

    def toggle_masks(self, values: np.ndarray, n_cycles: int,
                     packed: bool) -> np.ndarray:
        """Per-net toggle masks as a ``(n_nets, n_cycles)`` bool array."""
        if packed:
            tog = toggle_word_rows(values, n_cycles)
            return np.unpackbits(tog.view(np.uint8), axis=1,
                                 count=n_cycles,
                                 bitorder="little").astype(bool)
        return values[:, 1:] != values[:, :-1]

    def quiet_masks(self, values: np.ndarray, n_cycles: int,
                    packed: bool) -> np.ndarray:
        """Per-net float arrival masks: ``0.0`` where toggling, a huge
        negative sentinel where quiet, as a ``(n_nets, n_cycles)``
        float32 array.

        This is both the primary-input arrival initialization and the
        output mask of the arrival pass.  Built with two vectorized
        arithmetic ops — ``np.where``/table gathers over the same data
        are several times slower.
        """
        if packed:
            tog = toggle_word_rows(values, n_cycles)
            bits = np.unpackbits(tog.view(np.uint8), axis=1,
                                 count=n_cycles, bitorder="little")
        else:
            bits = (values[:, 1:] != values[:, :-1]).view(np.uint8)
        # cast-and-subtract in one ufunc pass: toggling -> 0.0, quiet -> -1.0
        mask = np.subtract(bits, np.uint8(1), dtype=np.float32)
        mask *= _QUIET_SENTINEL
        return mask

    def block_delay_tiles(self, delays: np.ndarray,
                          n_cycles: int) -> List[np.ndarray]:
        """Per-arrival-block ``(n, n_corners, n_cycles)`` delay tiles.

        The gate-delay column is materialized across the cycle axis so
        the arrival add runs contiguous-over-contiguous (a zero-stride
        broadcast operand defeats SIMD and is ~2x slower).  Hoisted out
        of the chunk loop by :meth:`run` — the delay matrix is constant
        across chunks, and the ragged final chunk slices the tiles.
        """
        delays_t = np.ascontiguousarray(delays.T)  # (n_gates, n_corners)
        return [np.ascontiguousarray(np.broadcast_to(
                    delays_t[b.gate_idx][:, :, None],
                    (len(b.gate_idx), delays.shape[0], n_cycles)))
                for b in self.arrival_blocks]

    def arrival_delays(self, quiet_mask: np.ndarray, delays: np.ndarray,
                       scratch: Optional[np.ndarray] = None,
                       block_delays: Optional[List[np.ndarray]] = None
                       ) -> np.ndarray:
        """Float arrival pass: worst toggling PO arrival per cycle.

        ``quiet_mask`` is the :meth:`quiet_masks` float mask in program
        row order; ``delays`` is ``(n_corners, n_gates)`` float32.
        Returns ``(n_corners, n_cycles)`` float32, clamped at 0 where
        nothing toggled — elementwise identical to the per-gate
        arrival pass, which masks quiet arrivals to ``-inf`` at every
        fanin read.  Here quiet arrivals are huge negative sentinels
        maintained at gate outputs instead, which is exact because:

        * a settled value cannot change unless an input changed, so
          every *toggling* gate has at least one toggling fanin whose
          arrival is real (``>= 0``); the fanin ``max`` therefore picks
          the same real arrival either way, and quiet-cycle sentinel
          values never leak into a toggling cycle's delay;
        * quiet arrivals stay far below 0 under any delay accumulation
          (see :data:`_QUIET_SENTINEL`) and are clamped to 0 by the
          final ``max(worst, 0)`` exactly as ``-inf`` is;
        * the output mask is applied by *adding* the quiet mask:
          toggling cycles add ``+0.0``, which preserves bits because
          real arrivals are positive, never ``-0.0``.

        ``scratch`` optionally supplies the ``(n_nets, n_corners,
        n_cycles)`` float32 working array and ``block_delays`` the
        :meth:`block_delay_tiles` so chunked runs reuse both.
        """
        n_corners = delays.shape[0]
        n_cycles = quiet_mask.shape[1]
        shape = (self.n_nets, n_corners, n_cycles)
        if scratch is not None and scratch.shape == shape:
            arr = scratch
        else:
            arr = np.empty(shape, dtype=np.float32)
        if block_delays is None:
            block_delays = self.block_delay_tiles(delays, n_cycles)
        arr[:self.n_inputs] = quiet_mask[:self.n_inputs][:, None, :]
        for start, stop in self.const_rows:
            arr[start:stop] = NEG_INF  # constants never toggle
        for b, dtile in zip(self.arrival_blocks, block_delays):
            seg = arr[b.start:b.stop]
            fan = b.fanin
            cand = arr[fan[0]]
            for k in range(1, b.width):
                np.maximum(cand, arr[fan[k]], out=cand)
            np.add(cand, dtile[:, :, :n_cycles], out=seg)
            seg += quiet_mask[b.start:b.stop][:, None, :]
        if self.n_outputs == 0:
            return np.zeros((n_corners, n_cycles), dtype=np.float32)
        worst = arr[self.po_rows].max(axis=0)
        return np.maximum(worst, _ZERO)

    def _settled_outputs(self, values: np.ndarray, n_rows: int,
                         packed: bool) -> np.ndarray:
        """Primary-output values, ``(n_rows, n_outputs)`` uint8."""
        po_vals = values[self.po_rows]
        if packed:
            po_vals = np.unpackbits(
                np.ascontiguousarray(po_vals).view(np.uint8), axis=1,
                count=n_rows, bitorder="little")
        return np.ascontiguousarray(po_vals.T)

    # -- public API --------------------------------------------------------

    def default_chunk_cycles(self, n_corners: int) -> int:
        """Cycle-axis chunk sized so the arrival scratch stays cache-hot.

        The arrival pass streams the ``(n_nets, n_corners, chunk)``
        float32 scratch several times per chunk, so chunks that fit
        last-level cache win big; a floor keeps per-level dispatch
        overhead amortized when ``n_corners * n_nets`` is large.
        """
        chunk = _CHUNK_BUDGET_ELEMS // max(1, n_corners * self.n_nets)
        return max(128, (chunk // 64) * 64)

    def run(self, input_matrix: np.ndarray, gate_delays: np.ndarray,
            collect_outputs: bool = False,
            chunk_cycles: Optional[int] = None,
            packed: bool = True) -> DelayTraceResult:
        """Simulate a stream of input vectors across corners.

        Same contract (and bit-identical delays/outputs) as
        :meth:`repro.sim.levelized.LevelizedSimulator.run`; chunk
        boundaries never affect results because cycle ``t`` only reads
        input rows ``t`` and ``t+1``.
        """
        inputs = np.asarray(input_matrix, dtype=np.uint8)
        if inputs.ndim != 2 or inputs.shape[1] != self.n_inputs:
            raise ValueError(
                f"input matrix must be (rows, {self.n_inputs}), "
                f"got {inputs.shape}")
        if inputs.shape[0] < 2:
            raise ValueError(
                "need at least 2 input rows (initial state + 1 cycle)")
        delays = np.asarray(gate_delays, dtype=np.float32)
        if delays.ndim == 1:
            delays = delays[None, :]
        if delays.shape[1] != self.n_gates:
            raise ValueError(
                f"gate_delays must have {self.n_gates} per-gate "
                f"entries, got {delays.shape}")

        n_cycles = inputs.shape[0] - 1
        n_corners = delays.shape[0]
        if chunk_cycles is None:
            chunk_cycles = self.default_chunk_cycles(n_corners)
        out_delays = np.zeros((n_corners, n_cycles), dtype=np.float32)
        out_values = (np.zeros((n_cycles, self.n_outputs), dtype=np.uint8)
                      if collect_outputs else None)

        # per-run hoists: delay tiles are chunk-invariant, and the
        # primary inputs are substrated once (chunks start at 64-cycle
        # boundaries, so packed chunks are word slices of the stream)
        block_delays = self.block_delay_tiles(
            delays, min(chunk_cycles, n_cycles))
        if packed:
            all_pi = pack_columns(inputs)
        else:
            all_pi = np.ascontiguousarray(inputs.T)

        # scratch reused across full-size chunks (the kernels fall back
        # to fresh arrays for the ragged final chunk)
        val_buf: Optional[np.ndarray] = None
        arr_buf: Optional[np.ndarray] = None
        start = 0
        while start < n_cycles:
            stop = min(start + chunk_cycles, n_cycles)
            chunk = inputs[start:stop + 1]
            chunk_rows = chunk.shape[0]
            if packed:
                if start % 64 == 0:
                    w0 = start // 64
                    pi_vals = all_pi[:, w0:w0 + (chunk_rows + 63) // 64]
                else:  # explicit chunk_cycles not word-aligned
                    pi_vals = pack_columns(chunk)
            else:
                pi_vals = all_pi[:, start:stop + 1]
            values = self.settled_net_values(chunk, packed, out=val_buf,
                                             pi_values=pi_vals)
            val_buf = values
            quiet = self.quiet_masks(values, chunk_rows - 1, packed)
            if arr_buf is None:
                arr_buf = np.empty(
                    (self.n_nets, n_corners, chunk_rows - 1),
                    dtype=np.float32)
            out_delays[:, start:stop] = self.arrival_delays(
                quiet, delays, scratch=arr_buf, block_delays=block_delays)
            if collect_outputs:
                out_values[start:stop] = self._settled_outputs(
                    values, chunk_rows, packed)[1:]
            start = stop
        return DelayTraceResult(out_delays, out_values)

    def run_values(self, input_matrix: np.ndarray,
                   packed: bool = True) -> np.ndarray:
        """Settled output values only: ``(n_rows, n_outputs)`` uint8."""
        inputs = np.asarray(input_matrix, dtype=np.uint8)
        if inputs.ndim != 2 or inputs.shape[1] != self.n_inputs:
            raise ValueError("bad input matrix shape")
        values = self.settled_net_values(inputs, packed)
        return self._settled_outputs(values, inputs.shape[0], packed)


#: id(netlist) -> (weakref to netlist, program); evicted when the
#: netlist is garbage collected so id reuse can never alias programs.
_PROGRAM_CACHE: Dict[int, Tuple[weakref.ref, CompiledNetlist]] = {}


def compile_netlist(netlist: Netlist) -> CompiledNetlist:
    """Lower ``netlist`` to a :class:`CompiledNetlist`, cached per identity.

    The cache is keyed by object identity (netlists are mutable and
    unhashable) and guarded by a weak reference: a hit is only served
    while the original object is alive, and entries disappear with it.
    A netlist must not be mutated after its first simulation — the
    lowered program would go stale (the same held for the per-gate
    simulators' cached last-use tables).
    """
    key = id(netlist)
    entry = _PROGRAM_CACHE.get(key)
    if entry is not None and entry[0]() is netlist:
        return entry[1]
    program = CompiledNetlist(netlist)
    try:
        ref = weakref.ref(netlist,
                          lambda _, key=key: _PROGRAM_CACHE.pop(key, None))
    except TypeError:  # pragma: no cover - netlists support weakrefs
        return program
    _PROGRAM_CACHE[key] = (ref, program)
    return program


class CompiledBackend(SimBackend):
    """Level-parallel compiled engine behind the engine protocol.

    The canonical fast DTA engine: packed uint64 value substrate plus
    the level-parallel arrival kernel, with the compiled program cached
    per netlist.  Delays are bit-identical to ``levelized`` and
    ``bitpacked`` (which run on the same kernels).
    """

    name = "compiled"
    supports_multi_corner = True
    supports_cycle_sharding = True
    models_glitches = False

    def run_delays(self, netlist: Netlist, input_matrix: np.ndarray,
                   gate_delays: np.ndarray,
                   collect_outputs: bool = False) -> DelayTraceResult:
        return compile_netlist(netlist).run(
            input_matrix, gate_delays, collect_outputs=collect_outputs)

    def run_values(self, netlist: Netlist,
                   input_matrix: np.ndarray) -> np.ndarray:
        return compile_netlist(netlist).run_values(input_matrix)
