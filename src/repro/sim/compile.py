"""Compiled netlist programs: level-parallel simulation kernels.

The levelized and bit-packed engines walk the netlist one gate at a
time in Python — a 32-bit array multiplier is ~5.6k numpy dispatches
per chunk, so characterization throughput is bounded by interpreter
overhead, not by array work.  This module removes that bound with a
one-time *lowering pass*: :func:`compile_netlist` turns a
:class:`~repro.circuits.netlist.Netlist` into a
:class:`CompiledNetlist` — flat structure-of-arrays form where gates
are bucketed by ``(logic level, gate type)`` with fanin/output/delay
index matrices per bucket.  Because a gate's inputs always sit at
strictly lower levels, every bucket can be evaluated with whole-bucket
fancy-indexed numpy ops, so the settled-value pass, the toggle pass,
and the float arrival pass each become a short loop over *levels*
instead of a Python loop over *gates*.

Two value substrates share the same lowered program and the same
arrival kernel:

``packed=False``
    per-cycle ``uint8`` values (the levelized engine's substrate);
``packed=True``
    cycle axis packed into ``uint64`` words, one bitwise op per 64
    cycles (the bit-packed engine's substrate).

The multi-corner regime — every paper table simulates the full
operating-condition grid — is where the arrival pass spends its time,
so the kernels are organized around it:

* **Dead-cone segregation.**  Gates from whose output no primary
  output is reachable cannot influence any delay; lowering orders
  their rows after every live row, and the simulation passes stop at
  ``n_live_rows`` — a 32-bit array multiplier carries ~17% dead logic
  (unused carry/sign cells) that the per-gate engines dutifully
  simulate.
* **Corner-major scratch tiles.**  The arrival scratch is
  ``(n_live_rows, n_corners, chunk)`` float32: each net owns one
  contiguous ``(n_corners, chunk)`` tile, so per-block gathers move
  whole tiles and every elementwise op runs contiguous inner loops
  whatever the corner count.
* **Level-1 corner collapse.**  Primary inputs launch at the clock
  edge for *every* corner, so the fanin ``max`` of a level-1 gate is
  corner-independent: it is computed once on 2-D ``(n, chunk)`` rows
  and only the delay add touches the corner axis.  On an array
  multiplier the whole partial-product plane sits at level 1.
* **Cache-sized sub-blocks.**  Arrival blocks are split into row
  ranges whose gather/output tiles fit L2 (:data:`_SUB_BLOCK_ELEMS`),
  so the 3-4 elementwise ops of a sub-block re-read cache-hot data
  instead of round-tripping a multi-megabyte block through DRAM.
* **Quiet-block skipping.**  A sub-block none of whose outputs toggle
  anywhere in a chunk is filled with the quiet sentinel in one write —
  the sparsity-aware level loop that makes low-activity (application
  stream) chunks cheap.
* **Hoisted delay tiles.**  Per-sub-block ``(n, n_corners, chunk)``
  delay tiles are corner×gate constants, built once per ``run`` and
  only sliced per chunk.

Delays are **bit-identical** to the original per-gate engines: every
float32 operation on a *toggling* cycle is reproduced elementwise in
the same order (``max`` over fanins in pin order, add the gate delay,
add the ``+0.0`` toggle mask), and quiet-cycle values — which the
per-gate engines pin to ``-inf`` and these kernels hold at huge
negative sentinels — never reach a toggling cycle's delay (see
:meth:`CompiledNetlist.arrival_delays`).  The backend parity tests
assert this against the retained per-gate reference paths.

Programs are cached per netlist identity (a ``weakref``-evicted map),
so repeated ``run_delays`` calls — e.g. one per campaign shard — pay
for validation, levelization, and lowering exactly once per process.
"""

from __future__ import annotations

import os
import weakref
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..circuits.netlist import GATE_ARITY, GateType, Netlist
from .engine import DelayTraceResult, SimBackend

NEG_INF = np.float32(-np.inf)
_ZERO = np.float32(0.0)
_ONE = np.uint64(1)
_SIXTY_THREE = np.uint64(63)
_U8_ONE = np.uint8(1)
_U64_ONES = np.uint64(0xFFFFFFFFFFFFFFFF)
#: Magnitude of the quiet-cycle arrival sentinel (an exact power of
#: two, ~1.27e30).  Quiet arrivals only need to (a) lose every ``max``
#: against a real arrival (reals are >= 0) and (b) stay negative under
#: any accumulation of gate delays along a quiet chain — circuit depth
#: times the largest gate delay is bounded far below this, and even
#: pathological overflow saturates to -inf, which also satisfies both.
_QUIET_SENTINEL = np.float32(2.0 ** 100)

#: float32 elements of the per-corner-cycle arrival state (scratch row
#: + delay tile) allowed per chunk, i.e. chunks are sized so
#: ``n_corners * (n_live_rows + n_arrival_gates) * chunk`` stays under
#: this.  With the sub-blocked level loop the sweet spot is set by
#: dispatch amortization against total scratch traffic, not LLC size —
#: empirically flat from ~40 MB up on the paper FUs, rising sharply
#: below ~128 cycles per chunk.
_CHUNK_BUDGET_ELEMS = 14 * 1024 * 1024

#: float32 elements per arrival sub-block: row ranges are split so the
#: gathered fanin tile and the output segment (~2x this in bytes) stay
#: L2-resident across the 3-4 elementwise ops applied to them.  96k
#: elems = 384 KB per tile, sized for ~1-2 MB L2 slices; measured ~30%
#: faster than monolithic blocks on the 9-corner multiplier pass.
_SUB_BLOCK_ELEMS = 96 * 1024


# -- bit packing primitives (canonical home; re-exported by bitpacked) --------


def pack_columns(matrix: np.ndarray) -> np.ndarray:
    """Pack a ``(n_rows, n_cols)`` 0/1 matrix into per-column words.

    Returns ``(n_cols, ceil(n_rows / 64))`` uint64 with row ``t`` of
    column ``c`` at bit ``t % 64`` of ``out[c, t // 64]``.
    """
    cols = np.ascontiguousarray(np.asarray(matrix, dtype=np.uint8).T)
    packed = np.packbits(cols, axis=1, bitorder="little")
    pad = (-packed.shape[1]) % 8
    if pad:
        packed = np.pad(packed, ((0, 0), (0, pad)))
    return packed.view(np.uint64)


def unpack_words(words: np.ndarray, n: int) -> np.ndarray:
    """First ``n`` bits of a packed word vector as a uint8 0/1 array."""
    return np.unpackbits(np.ascontiguousarray(words).view(np.uint8),
                         count=n, bitorder="little")


def toggle_word_rows(value_words: np.ndarray, n_cycles: int) -> np.ndarray:
    """Packed toggle masks for ``(n_nets, n_words)`` value words.

    Bit ``t`` of row ``i`` is set iff rows ``t`` and ``t+1`` of net
    ``i`` differ; bits past ``n_cycles`` are zeroed so ``any()`` tests
    and unpacks are exact.
    """
    shifted = value_words >> _ONE
    if value_words.shape[-1] > 1:
        shifted[..., :-1] |= value_words[..., 1:] << _SIXTY_THREE
    tog = value_words ^ shifted
    n_full, rem = divmod(n_cycles, 64)
    if rem:
        tog[..., n_full] &= np.uint64((1 << rem) - 1)
        tog[..., n_full + 1:] = 0
    else:
        tog[..., n_full:] = 0
    return tog


def toggle_words(value_words: np.ndarray, n_cycles: int) -> np.ndarray:
    """Packed toggle mask of a single net's word vector."""
    return toggle_word_rows(value_words[None, :], n_cycles)[0]


# -- lowering -----------------------------------------------------------------


@dataclass(frozen=True)
class GateGroup:
    """All gates of one type at one logic level, in index-array form.

    Nets are renumbered during lowering so that a group's output nets
    occupy the contiguous row range ``[start, stop)`` of every per-net
    state array — group writes are slice views, only fanin reads
    gather.  Dead-cone groups (``live=False``) sort after every live
    group, so the run-path passes stop at ``n_live_rows`` and never
    touch them.
    """

    level: int
    gtype: GateType
    arity: int
    #: ``(n,)`` original gate indices — columns of the delay matrix.
    gate_idx: np.ndarray
    #: output rows ``start .. stop-1``, aligned with ``gate_idx``.
    start: int
    stop: int
    #: ``(arity, n)`` fanin *rows* (renumbered), pin-major.
    fanin: np.ndarray
    #: some primary output is structurally reachable from these gates.
    live: bool


@dataclass(frozen=True)
class ArrivalBlock:
    """One level's worth of live gates for the float arrival pass.

    The arrival recurrence ``max(fanin arrivals) + delay`` does not
    depend on the gate function, so the pass merges live value groups
    level-wise into wider blocks: all 1- and 2-input gates of a level
    form one block with a ``(2, n)`` fanin matrix (single-input gates
    duplicate their pin — ``max(x, x) == x`` exactly), 3-input muxes
    form another.  :meth:`CompiledNetlist.arrival_plan` splits blocks
    into cache-sized :class:`ArrivalStep` row ranges at run time.
    """

    level: int
    #: number of fanin rows carried per gate (2 or 3).
    width: int
    #: ``(n,)`` original gate indices — columns of the delay matrix.
    gate_idx: np.ndarray
    #: output rows ``start .. stop-1``, aligned with ``gate_idx``.
    start: int
    stop: int
    #: ``(width, n)`` fanin rows, pin-major.
    fanin: np.ndarray


@dataclass(frozen=True)
class ArrivalStep:
    """One cache-sized slice of an :class:`ArrivalBlock`, with the
    delay tile for a concrete ``(delay matrix, chunk)`` pair baked in.

    Steps of the same ``level`` are mutually independent: they write
    disjoint output row ranges and read only strictly-lower-level rows,
    so a run may execute them concurrently (see the ``threads`` knob of
    :meth:`CompiledNetlist.run`) with bit-identical results.
    """

    level: int
    start: int
    stop: int
    #: ``(width * n,)`` fanin rows, pin-major flattened — one fancy
    #: gather materializes every pin, then pin ``k`` is the view
    #: ``g[k*n:(k+1)*n]``.
    fanin_flat: np.ndarray
    #: ``(n, n_corners, chunk)`` float32 gate-delay tile.
    dtile: np.ndarray
    #: all fanins are level-0 rows (PI / constant arrivals), which are
    #: corner-independent — the fanin ``max`` collapses to 2-D.
    pi_cone: bool
    width: int


def _eval_group(gtype: GateType, ins: np.ndarray, shape, dtype,
                ones) -> np.ndarray:
    """Evaluate one gate type on stacked per-gate value rows.

    ``ins`` is ``(arity, n_gates, width)``; works identically for the
    uint8 substrate (``ones = 1``) and the packed uint64 substrate
    (``ones = 0xFF..F``).
    """
    if gtype is GateType.CONST0:
        return np.zeros(shape, dtype)
    if gtype is GateType.CONST1:
        return np.full(shape, ones, dtype)
    if gtype is GateType.BUF:
        return ins[0]
    if gtype is GateType.NOT:
        return ins[0] ^ ones
    if gtype is GateType.AND2:
        return ins[0] & ins[1]
    if gtype is GateType.OR2:
        return ins[0] | ins[1]
    if gtype is GateType.NAND2:
        return (ins[0] & ins[1]) ^ ones
    if gtype is GateType.NOR2:
        return (ins[0] | ins[1]) ^ ones
    if gtype is GateType.XOR2:
        return ins[0] ^ ins[1]
    if gtype is GateType.XNOR2:
        return (ins[0] ^ ins[1]) ^ ones
    if gtype is GateType.MUX2:
        sel, d0, d1 = ins
        return (d0 & (sel ^ ones)) | (d1 & sel)
    raise ValueError(f"unknown gate type {gtype!r}")


class CompiledNetlist:
    """One netlist lowered to level-parallel structure-of-arrays form.

    Construction validates and levelizes the netlist once; use
    :func:`compile_netlist` to get the per-netlist cached instance.
    The program holds only flat arrays (no reference to the source
    :class:`Netlist`), so cache eviction is driven purely by the
    netlist's lifetime.

    Nets are renumbered into *program row order*: primary inputs first
    (rows ``0 .. n_inputs-1`` in declaration order), then each live
    group's outputs as one contiguous block, then the dead-cone groups
    — every row below ``n_live_rows`` can reach a primary output, and
    no live gate reads a dead row.  ``net_row`` maps original net ids
    to rows.  All kernel arrays (values, toggles, arrivals) use row
    order, which turns every group write into a slice view; only fanin
    reads gather.
    """

    def __init__(self, netlist: Netlist) -> None:
        netlist.validate()
        self.name = netlist.name
        self.n_nets = netlist.n_nets
        self.n_gates = len(netlist.gates)
        self.n_inputs = len(netlist.primary_inputs)
        self.n_outputs = len(netlist.primary_outputs)

        level = netlist.levelize()
        gates = netlist.gates

        # Dead-cone sweep: a gate is live iff a primary output is
        # reachable from its output.  Consumers always sit at strictly
        # higher levels, so one descending-level pass suffices.
        live_net = np.zeros(self.n_nets, dtype=bool)
        if self.n_outputs:
            live_net[np.asarray(netlist.primary_outputs)] = True
        gate_live = np.zeros(self.n_gates, dtype=bool)
        by_level_desc = sorted(range(self.n_gates),
                               key=lambda i: level[gates[i].output],
                               reverse=True)
        for idx in by_level_desc:
            gate = gates[idx]
            if live_net[gate.output]:
                gate_live[idx] = True
                for i in gate.inputs:
                    live_net[i] = True

        buckets: Dict[Tuple[bool, int, GateType], List[int]] = {}
        for idx, gate in enumerate(gates):
            key = (not gate_live[idx], level[gate.output], gate.gtype)
            buckets.setdefault(key, []).append(idx)

        # Group order: live groups first (dead-cone rows trail every
        # live row), then by level, then fanin-width class (constants /
        # 1-2 pins / 3 pins), then type — so the gates of each arrival
        # block (see below) are contiguous rows.
        def width_class(arity: int) -> int:
            return 0 if arity == 0 else (1 if arity <= 2 else 2)

        ordered = sorted(
            buckets,
            key=lambda k: (k[0], k[1], width_class(GATE_ARITY[k[2]]),
                           k[2].value))

        #: original net id -> program row
        self.net_row = np.empty(self.n_nets, dtype=np.int64)
        for row, net in enumerate(netlist.primary_inputs):
            self.net_row[net] = row
        cursor = self.n_inputs
        for key in ordered:
            for idx in buckets[key]:
                self.net_row[gates[idx].output] = cursor
                cursor += 1

        self.groups: List[GateGroup] = []
        cursor = self.n_inputs
        for dead, lvl, gtype in ordered:
            idxs = buckets[(dead, lvl, gtype)]
            arity = GATE_ARITY[gtype]
            self.groups.append(GateGroup(
                level=lvl, gtype=gtype, arity=arity,
                gate_idx=np.asarray(idxs, dtype=np.int64),
                start=cursor, stop=cursor + len(idxs),
                fanin=np.asarray(
                    [[self.net_row[gates[i].inputs[k]] for i in idxs]
                     for k in range(arity)],
                    dtype=np.int64).reshape(arity, len(idxs)),
                live=not dead,
            ))
            cursor += len(idxs)
        #: groups[:n_live_groups] are the live ones (they sort first).
        self.n_live_groups = sum(1 for g in self.groups if g.live)
        #: rows below this are PIs or live gate outputs; the run-path
        #: value/toggle/arrival passes never touch rows past it.
        self.n_live_rows = (self.groups[self.n_live_groups - 1].stop
                            if self.n_live_groups else self.n_inputs)
        self.n_levels = 1 + max((g.level for g in self.groups), default=0)
        #: primary-output rows, in declaration order (always live).
        self.po_rows = self.net_row[
            np.asarray(netlist.primary_outputs, dtype=np.int64)
        ] if self.n_outputs else np.empty(0, dtype=np.int64)

        # Arrival blocks (live gates only): merge each level's 1-2 pin
        # groups into one (2, n) block — single-pin gates duplicate
        # their fanin, which is exact under max — and its muxes into
        # one (3, n) block.  Live constant rows are collected for -inf
        # initialization; dead rows are never written or read.
        self.const_rows: List[Tuple[int, int]] = []
        self.arrival_blocks: List[ArrivalBlock] = []
        pending: Dict[Tuple[int, int], List[GateGroup]] = {}
        for g in self.groups[:self.n_live_groups]:
            if g.arity == 0:
                self.const_rows.append((g.start, g.stop))
            else:
                pending.setdefault((g.level, width_class(g.arity)),
                                   []).append(g)
        for (lvl, wclass), members in sorted(pending.items()):
            width = 2 if wclass == 1 else 3
            fanin_rows = []
            for g in members:
                fan = g.fanin
                if g.arity == 1:
                    fan = np.vstack([fan[0], fan[0]])
                fanin_rows.append(fan)
            self.arrival_blocks.append(ArrivalBlock(
                level=lvl, width=width,
                gate_idx=np.concatenate([g.gate_idx for g in members]),
                start=members[0].start, stop=members[-1].stop,
                fanin=np.concatenate(fanin_rows, axis=1),
            ))
        #: gates the arrival pass actually computes (live, non-const).
        self.n_arrival_gates = sum(
            b.stop - b.start for b in self.arrival_blocks)
        # Single-slot caches for the per-run arrays (see arrival_plan /
        # run): repeated runs at the same corner count reuse the delay
        # tiles and the arrival scratch instead of faulting in tens of
        # MB of fresh pages per call.  Not thread-safe, like the rest
        # of the program state.
        self._plan_cache: Optional[Tuple[tuple, List[ArrivalStep]]] = None
        self._scratch_cache: Optional[Tuple[tuple, np.ndarray]] = None

    # -- kernels -----------------------------------------------------------

    def _settle(self, inputs: np.ndarray, packed: bool,
                out: Optional[np.ndarray], pi_values: Optional[np.ndarray],
                n_rows_needed: int, n_groups: int) -> np.ndarray:
        """Shared settled-value loop over the first ``n_groups`` groups."""
        n_rows = inputs.shape[0]
        if packed:
            dtype, ones = np.uint64, _U64_ONES
            width = (n_rows + 63) // 64
            pi_vals = pack_columns(inputs) if pi_values is None else pi_values
        else:
            dtype, ones = np.uint8, _U8_ONE
            width = n_rows
            pi_vals = (np.ascontiguousarray(inputs.T)
                       if pi_values is None else pi_values)
        if out is not None and out.shape == (n_rows_needed, width) \
                and out.dtype == dtype:
            values = out
        else:
            values = np.empty((n_rows_needed, width), dtype=dtype)
        values[:self.n_inputs] = pi_vals
        for g in self.groups[:n_groups]:
            values[g.start:g.stop] = _eval_group(
                g.gtype, values[g.fanin], (g.stop - g.start, width),
                dtype, ones)
        return values

    def settled_net_values(self, inputs: np.ndarray, packed: bool,
                           out: Optional[np.ndarray] = None,
                           pi_values: Optional[np.ndarray] = None,
                           live_only: bool = False) -> np.ndarray:
        """Settle nets for a stream of input rows.

        Returns per-net rows in program row order (see class docs):
        ``(n_rows_out, n_rows)`` uint8 or, with ``packed``,
        ``(n_rows_out, ceil(n_rows / 64))`` uint64 words (tail bits
        past the last row are unspecified, as in the per-gate engine).
        ``n_rows_out`` is ``n_nets``, or ``n_live_rows`` with
        ``live_only`` (the run path: dead-cone values cannot influence
        any output or delay).  ``out`` reuses a previous result
        buffer; ``pi_values`` supplies pre-substrated primary-input
        rows (chunked runs pack the stream once).
        """
        if live_only:
            return self._settle(inputs, packed, out, pi_values,
                                self.n_live_rows, self.n_live_groups)
        return self._settle(inputs, packed, out, pi_values,
                            self.n_nets, len(self.groups))

    def toggle_masks(self, values: np.ndarray, n_cycles: int,
                     packed: bool) -> np.ndarray:
        """Per-net toggle masks as a ``(n_rows, n_cycles)`` bool array."""
        if packed:
            tog = toggle_word_rows(values, n_cycles)
            return np.unpackbits(tog.view(np.uint8), axis=1,
                                 count=n_cycles,
                                 bitorder="little").astype(bool)
        return values[:, 1:] != values[:, :-1]

    def quiet_masks(self, values: np.ndarray, n_cycles: int,
                    packed: bool) -> np.ndarray:
        """Per-net float arrival masks: ``0.0`` where toggling, a huge
        negative sentinel where quiet, as a ``(n_rows, n_cycles)``
        float32 array.
        """
        return self._quiet_and_active(values, n_cycles, packed)[0]

    def _quiet_and_active(self, values: np.ndarray, n_cycles: int,
                          packed: bool
                          ) -> Tuple[np.ndarray, np.ndarray]:
        """Quiet float mask plus per-row chunk activity.

        The mask is both the primary-input arrival initialization and
        the output mask of the arrival pass, built with two vectorized
        arithmetic ops — ``np.where``/table gathers over the same data
        are several times slower.  ``active[i]`` is True iff row ``i``
        toggles at least once in the chunk; rows that never toggle let
        the arrival pass skip whole sub-blocks.
        """
        if packed:
            tog = toggle_word_rows(values, n_cycles)
            active = tog.any(axis=1)
            bits = np.unpackbits(tog.view(np.uint8), axis=1,
                                 count=n_cycles, bitorder="little")
        else:
            bits = (values[:, 1:] != values[:, :-1]).view(np.uint8)
            active = bits.any(axis=1)
        # cast-and-subtract in one ufunc pass: toggling -> 0.0, quiet -> -1.0
        mask = np.subtract(bits, np.uint8(1), dtype=np.float32)
        mask *= _QUIET_SENTINEL
        return mask, active

    def arrival_plan(self, delays: np.ndarray,
                     chunk_cycles: int) -> List[ArrivalStep]:
        """Split the arrival blocks into cache-sized steps for one run.

        Each step carries its ``(n, n_corners, chunk)`` gate-delay
        tile: the delay column is materialized across the cycle axis
        so the arrival add runs contiguous-over-contiguous (a
        zero-stride broadcast operand defeats SIMD and is ~2x slower).
        Tiles are corner×gate constants — built once per :meth:`run`,
        outside the chunk loop, and only sliced for the ragged final
        chunk.  Row ranges are capped at :data:`_SUB_BLOCK_ELEMS`
        elements so each step's tiles stay L2-resident across its ops.

        Plans (the tiles are the better part of the run's allocations)
        are cached single-slot per program: repeated runs with the same
        delay matrix and chunk — bench reps, campaign shards in a warm
        worker, the serving fallback — reuse the previous plan instead
        of re-materializing tens of MB of tiles.
        """
        delays = np.ascontiguousarray(delays, dtype=np.float32)
        # exact key: the raw delay bytes (~150 KB for the largest FU) —
        # a digest could collide and silently serve another matrix's
        # tiles, voiding the bit-identical contract
        cache_key = (delays.tobytes(), delays.shape, int(chunk_cycles))
        cached = self._plan_cache
        if cached is not None and cached[0] == cache_key:
            return cached[1]
        n_corners = delays.shape[0]
        n_sub = max(8, _SUB_BLOCK_ELEMS // max(1, n_corners * chunk_cycles))
        delays_t = np.ascontiguousarray(delays.T)  # (n_gates, n_corners)
        steps: List[ArrivalStep] = []
        for b in self.arrival_blocks:
            n = b.stop - b.start
            for lo in range(0, n, n_sub):
                hi = min(lo + n_sub, n)
                gi = b.gate_idx[lo:hi]
                dtile = np.ascontiguousarray(np.broadcast_to(
                    delays_t[gi][:, :, None],
                    (hi - lo, n_corners, chunk_cycles)))
                steps.append(ArrivalStep(
                    level=b.level,
                    start=b.start + lo, stop=b.start + hi,
                    fanin_flat=np.ascontiguousarray(
                        b.fanin[:, lo:hi].reshape(-1)),
                    dtile=dtile, pi_cone=(b.level == 1), width=b.width))
        self._plan_cache = (cache_key, steps)
        return steps

    def arrival_delays(self, quiet_mask: np.ndarray, delays: np.ndarray,
                       scratch: Optional[np.ndarray] = None,
                       plan: Optional[List[ArrivalStep]] = None,
                       active: Optional[np.ndarray] = None) -> np.ndarray:
        """Float arrival pass: worst toggling PO arrival per cycle.

        ``quiet_mask`` is the :meth:`quiet_masks` float mask in program
        row order (live rows suffice); ``delays`` is ``(n_corners,
        n_gates)`` float32.  Returns ``(n_corners, n_cycles)`` float32,
        clamped at 0 where nothing toggled — elementwise identical to
        the per-gate arrival pass, which masks quiet arrivals to
        ``-inf`` at every fanin read.  Here quiet arrivals are huge
        negative sentinels maintained at gate outputs instead, which is
        exact because:

        * a settled value cannot change unless an input changed, so
          every *toggling* gate has at least one toggling fanin whose
          arrival is real (``>= 0``); the fanin ``max`` therefore picks
          the same real arrival either way, and quiet-cycle sentinel
          values never leak into a toggling cycle's delay;
        * quiet arrivals stay far below 0 under any delay accumulation
          (see :data:`_QUIET_SENTINEL`) and are clamped to 0 by the
          final ``max(worst, 0)`` exactly as ``-inf`` is;
        * the output mask is applied by *adding* the quiet mask:
          toggling cycles add ``+0.0``, which preserves bits because
          real arrivals are positive, never ``-0.0``.

        The same argument licenses every fast path that only perturbs
        quiet values: the level-1 corner collapse reorders the adds to
        ``(max + mask) + delay`` (identical on toggling cycles where
        the mask is ``+0.0``), constants enter the 2-D level-1 max as
        the sentinel rather than ``-inf`` (both lose to any real
        arrival), and fully-quiet sub-blocks are filled with the raw
        sentinel instead of computed (every skipped value is quiet by
        construction).

        ``scratch`` optionally supplies the ``(n_live_rows, n_corners,
        n_cycles)`` float32 working array, ``plan`` the
        :meth:`arrival_plan`, and ``active`` the per-row chunk
        activity from :meth:`_quiet_and_active` — chunked runs reuse
        all three.
        """
        delays = np.asarray(delays, dtype=np.float32)
        if delays.ndim == 1:
            delays = delays[None, :]
        n_corners = delays.shape[0]
        n_cycles = quiet_mask.shape[1]
        shape = (self.n_live_rows, n_corners, n_cycles)
        if scratch is not None and scratch.shape == shape \
                and scratch.dtype == np.float32:
            arr = scratch
        else:
            arr = np.empty(shape, dtype=np.float32)
        if plan is None:
            plan = self.arrival_plan(delays, n_cycles)
        self._arrival_chunk(quiet_mask, plan, arr, n_cycles, active)
        if self.n_outputs == 0:
            return np.zeros((n_corners, n_cycles), dtype=np.float32)
        worst = arr[self.po_rows].max(axis=0)
        return np.maximum(worst, _ZERO)

    def _arrival_chunk(self, quiet: np.ndarray, plan: List[ArrivalStep],
                       arr: np.ndarray, n_cycles: int,
                       active: Optional[np.ndarray],
                       executor: Optional[ThreadPoolExecutor] = None
                       ) -> None:
        """Run the planned level loop for one chunk into ``arr``.

        ``arr`` is ``(n_live_rows, n_corners, chunk)`` with ``chunk >=
        n_cycles`` (the ragged final chunk slices); ``quiet`` has
        ``n_cycles`` columns.  With an ``executor``, the independent
        steps of each level run concurrently (numpy releases the GIL
        for the array ops); levels stay strictly ordered, which keeps
        results bit-identical — each step writes its own disjoint row
        range and reads only strictly-lower-level rows.
        """
        full = arr.shape[2] == n_cycles
        arr = arr if full else arr[:, :, :n_cycles]
        arr[:self.n_inputs] = quiet[:self.n_inputs][:, None, :]
        for start, stop in self.const_rows:
            arr[start:stop] = NEG_INF  # constants never toggle
        if active is not None and plan:
            # one reduceat gives per-step chunk activity (step row
            # ranges tile the arrival rows back-to-back) — replaces a
            # per-step .any() dispatch
            starts = np.fromiter((st.start for st in plan),
                                 dtype=np.int64, count=len(plan))
            step_active = np.maximum.reduceat(
                active.view(np.uint8), starts)
        else:
            step_active = None

        def run_step(si: int) -> None:
            st = plan[si]
            if step_active is not None and not step_active[si]:
                # nothing in this row range toggles anywhere in the
                # chunk: every output is quiet, any huge negative value
                # is as good as the computed one (see arrival_delays)
                arr[st.start:st.stop] = -_QUIET_SENTINEL
                return
            n = st.stop - st.start
            dtile = st.dtile if full else st.dtile[:, :, :n_cycles]
            seg = arr[st.start:st.stop]
            if st.pi_cone:
                # level-1 fanins (PI / constant arrivals) are corner-
                # independent: one 2-D max, quiet mask applied 2-D,
                # only the delay add runs over the corner axis
                g = quiet[st.fanin_flat]
                cand = np.maximum(g[:n], g[n:2 * n])
                for k in range(2, st.width):
                    np.maximum(cand, g[k * n:(k + 1) * n], out=cand)
                cand += quiet[st.start:st.stop]
                np.add(cand[:, None, :], dtile, out=seg)
            else:
                # one stacked gather materializes every pin; the max
                # lands straight in the output segment
                g = arr[st.fanin_flat]
                np.maximum(g[:n], g[n:2 * n], out=seg)
                for k in range(2, st.width):
                    np.maximum(seg, g[k * n:(k + 1) * n], out=seg)
                seg += dtile
                seg += quiet[st.start:st.stop][:, None, :]

        if executor is None:
            for si in range(len(plan)):
                run_step(si)
            return
        i = 0
        n_steps = len(plan)
        while i < n_steps:  # per-level barrier
            j = i + 1
            while j < n_steps and plan[j].level == plan[i].level:
                j += 1
            if j - i == 1:
                run_step(i)
            else:
                for _ in executor.map(run_step, range(i, j)):
                    pass  # drain so worker exceptions propagate
            i = j

    def _settled_outputs(self, values: np.ndarray, n_rows: int,
                         packed: bool) -> np.ndarray:
        """Primary-output values, ``(n_rows, n_outputs)`` uint8."""
        po_vals = values[self.po_rows]
        if packed:
            po_vals = np.unpackbits(
                np.ascontiguousarray(po_vals).view(np.uint8), axis=1,
                count=n_rows, bitorder="little")
        return np.ascontiguousarray(po_vals.T)

    # -- public API --------------------------------------------------------

    def default_chunk_cycles(self, n_corners: int) -> int:
        """Cycle-axis chunk derived from the corner-major footprint.

        The arrival pass holds ``n_corners * chunk`` float32 per live
        row (scratch) plus the same per arrival gate (delay tiles), so
        the chunk shrinks as the corner grid grows; a floor keeps
        per-level dispatch overhead amortized when the per-cycle
        footprint is large, a cap bounds single-corner scratch.
        """
        per_cycle = n_corners * max(1, self.n_live_rows
                                    + self.n_arrival_gates)
        chunk = _CHUNK_BUDGET_ELEMS // per_cycle
        return int(min(1024, max(128, (chunk // 64) * 64)))

    def run(self, input_matrix: np.ndarray, gate_delays: np.ndarray,
            collect_outputs: bool = False,
            chunk_cycles: Optional[int] = None,
            packed: bool = True,
            threads: Optional[int] = None) -> DelayTraceResult:
        """Simulate a stream of input vectors across corners.

        Same contract (and bit-identical delays/outputs) as
        :meth:`repro.sim.levelized.LevelizedSimulator.run`; chunk
        boundaries never affect results because cycle ``t`` only reads
        input rows ``t`` and ``t+1``.  ``threads > 1`` executes the
        independent arrival steps within each level concurrently —
        also never affecting results (see :meth:`_arrival_chunk`).
        """
        if threads is not None and threads < 1:
            raise ValueError("threads must be >= 1")
        executor = _thread_pool(threads) if threads and threads > 1 else None
        inputs = np.asarray(input_matrix, dtype=np.uint8)
        if inputs.ndim != 2 or inputs.shape[1] != self.n_inputs:
            raise ValueError(
                f"input matrix must be (rows, {self.n_inputs}), "
                f"got {inputs.shape}")
        if inputs.shape[0] < 2:
            raise ValueError(
                "need at least 2 input rows (initial state + 1 cycle)")
        delays = np.asarray(gate_delays, dtype=np.float32)
        if delays.ndim == 1:
            delays = delays[None, :]
        if delays.shape[1] != self.n_gates:
            raise ValueError(
                f"gate_delays must have {self.n_gates} per-gate "
                f"entries, got {delays.shape}")

        n_cycles = inputs.shape[0] - 1
        n_corners = delays.shape[0]
        if chunk_cycles is None:
            chunk_cycles = self.default_chunk_cycles(n_corners)
        chunk_cycles = min(chunk_cycles, n_cycles)
        out_delays = np.zeros((n_corners, n_cycles), dtype=np.float32)
        out_values = (np.zeros((n_cycles, self.n_outputs), dtype=np.uint8)
                      if collect_outputs else None)

        # per-run hoists: the arrival plan (delay tiles + fanin slices)
        # is chunk-invariant, and the primary inputs are substrated
        # once (chunks start at 64-cycle boundaries, so packed chunks
        # are word slices of the stream)
        plan = self.arrival_plan(delays, chunk_cycles)
        if packed:
            all_pi = pack_columns(inputs)
        else:
            all_pi = np.ascontiguousarray(inputs.T)

        # scratch reused across chunks (the ragged final chunk slices)
        # and across runs at the same corner count / chunk (single-slot
        # cache — repeated runs skip faulting in a fresh multi-MB array)
        val_buf: Optional[np.ndarray] = None
        scratch_key = (n_corners, chunk_cycles)
        if self._scratch_cache is not None \
                and self._scratch_cache[0] == scratch_key:
            arr_buf = self._scratch_cache[1]
        else:
            arr_buf = np.empty((self.n_live_rows, n_corners,
                                chunk_cycles), dtype=np.float32)
            self._scratch_cache = (scratch_key, arr_buf)
        start = 0
        while start < n_cycles:
            stop = min(start + chunk_cycles, n_cycles)
            chunk = inputs[start:stop + 1]
            chunk_rows = chunk.shape[0]
            if packed:
                if start % 64 == 0:
                    w0 = start // 64
                    pi_vals = all_pi[:, w0:w0 + (chunk_rows + 63) // 64]
                else:  # explicit chunk_cycles not word-aligned
                    pi_vals = pack_columns(chunk)
            else:
                pi_vals = all_pi[:, start:stop + 1]
            values = self.settled_net_values(chunk, packed, out=val_buf,
                                             pi_values=pi_vals,
                                             live_only=True)
            val_buf = values
            quiet, row_active = self._quiet_and_active(
                values, chunk_rows - 1, packed)
            self._arrival_chunk(quiet, plan, arr_buf, chunk_rows - 1,
                                row_active, executor=executor)
            if self.n_outputs:
                arr = arr_buf[:, :, :chunk_rows - 1]
                worst = arr[self.po_rows].max(axis=0)
                out_delays[:, start:stop] = np.maximum(worst, _ZERO)
            if collect_outputs:
                out_values[start:stop] = self._settled_outputs(
                    values, chunk_rows, packed)[1:]
            start = stop
        return DelayTraceResult(out_delays, out_values)

    def run_values(self, input_matrix: np.ndarray,
                   packed: bool = True) -> np.ndarray:
        """Settled output values only: ``(n_rows, n_outputs)`` uint8."""
        inputs = np.asarray(input_matrix, dtype=np.uint8)
        if inputs.ndim != 2 or inputs.shape[1] != self.n_inputs:
            raise ValueError("bad input matrix shape")
        values = self.settled_net_values(inputs, packed, live_only=True)
        return self._settled_outputs(values, inputs.shape[0], packed)


#: id(netlist) -> (weakref to netlist, program); evicted when the
#: netlist is garbage collected so id reuse can never alias programs.
_PROGRAM_CACHE: Dict[int, Tuple[weakref.ref, CompiledNetlist]] = {}

#: thread count -> shared executor for the per-level arrival steps.
#: Keyed per process: forked children (the campaign worker pool) would
#: otherwise inherit executors whose threads died with the fork —
#: submitting to one deadlocks, so the cache resets on pid change.
_THREAD_POOLS: Dict[int, ThreadPoolExecutor] = {}
_THREAD_POOLS_PID = os.getpid()


def _thread_pool(threads: int) -> ThreadPoolExecutor:
    global _THREAD_POOLS_PID
    if os.getpid() != _THREAD_POOLS_PID:
        _THREAD_POOLS.clear()
        _THREAD_POOLS_PID = os.getpid()
    executor = _THREAD_POOLS.get(threads)
    if executor is None:
        executor = ThreadPoolExecutor(
            max_workers=threads, thread_name_prefix="repro-arrival")
        _THREAD_POOLS[threads] = executor
    return executor


def compile_netlist(netlist: Netlist) -> CompiledNetlist:
    """Lower ``netlist`` to a :class:`CompiledNetlist`, cached per identity.

    The cache is keyed by object identity (netlists are mutable and
    unhashable) and guarded by a weak reference: a hit is only served
    while the original object is alive, and entries disappear with it.
    A netlist must not be mutated after its first simulation — the
    lowered program would go stale (the same held for the per-gate
    simulators' cached last-use tables).
    """
    key = id(netlist)
    entry = _PROGRAM_CACHE.get(key)
    if entry is not None and entry[0]() is netlist:
        return entry[1]
    program = CompiledNetlist(netlist)
    try:
        ref = weakref.ref(netlist,
                          lambda _, key=key: _PROGRAM_CACHE.pop(key, None))
    except TypeError:  # pragma: no cover - netlists support weakrefs
        return program
    _PROGRAM_CACHE[key] = (ref, program)
    return program


class CompiledBackend(SimBackend):
    """Level-parallel compiled engine behind the engine protocol.

    The canonical fast DTA engine: packed uint64 value substrate plus
    the level-parallel arrival kernel, with the compiled program cached
    per netlist.  Delays are bit-identical to ``levelized`` and
    ``bitpacked`` (which run on the same kernels).
    """

    name = "compiled"
    supports_multi_corner = True
    supports_cycle_sharding = True
    supports_corner_sharding = True
    models_glitches = False
    supports_chunking = True
    supports_threads = True

    def run_delays(self, netlist: Netlist, input_matrix: np.ndarray,
                   gate_delays: np.ndarray,
                   collect_outputs: bool = False,
                   chunk_cycles: Optional[int] = None,
                   threads: Optional[int] = None) -> DelayTraceResult:
        return compile_netlist(netlist).run(
            input_matrix, gate_delays, collect_outputs=collect_outputs,
            chunk_cycles=chunk_cycles, threads=threads)

    def run_values(self, netlist: Netlist,
                   input_matrix: np.ndarray) -> np.ndarray:
        return compile_netlist(netlist).run_values(input_matrix)
