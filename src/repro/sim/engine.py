"""Pluggable simulation-engine layer.

Every consumer of gate-level simulation — the DTA campaigns, the CLI,
the benches — talks to a :class:`SimBackend` instead of instantiating a
simulator class directly.  A backend knows how to produce the two
quantities the pipeline needs from a netlist and an input stream:

* ``run_delays`` — per-cycle dynamic delays across operating corners
  (the paper's ground-truth labels), and
* ``run_values`` — settled primary-output values per cycle (used for
  functional verification and toggle statistics).

Backends are looked up by name through :func:`get_backend`; the four
built-ins are

``levelized``
    The vectorized graph-based DTA engine (:mod:`repro.sim.levelized`).
``event``
    The glitch-accurate event-driven reference
    (:mod:`repro.sim.eventsim`) — orders of magnitude slower, models
    glitch pulses, so its delays are *not* interchangeable with the DTA
    engines (see :attr:`SimBackend.models_glitches`).
``bitpacked``
    Bit-parallel logic evaluation (:mod:`repro.sim.bitpacked`): the
    cycle axis is packed into ``uint64`` words so one bitwise op
    evaluates 64 cycles; the arrival pass is shared with ``levelized``
    and delays are bit-identical to it.
``compiled``
    The canonical fast engine (:mod:`repro.sim.compile`): the netlist
    is lowered once to level-parallel structure-of-arrays form and
    every pass is a loop over logic levels doing whole-level numpy
    ops.  Packed value substrate; delays bit-identical to both DTA
    engines above (which run on the same kernels).

Built-in registrations map names to ``"module:Class"`` strings
resolved on first :func:`get_backend`: backend modules import this one
for :class:`SimBackend` and :class:`DelayTraceResult`, so the registry
must not import them at module level (and standalone
:mod:`repro.sim.engine` users don't pay for backends they never
request — though importing the :mod:`repro.sim` package re-exports
every built-in eagerly).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from importlib import import_module
from typing import Dict, Optional, Tuple, Type, Union

import numpy as np

from ..circuits.netlist import Netlist

#: Backend used when callers do not ask for a specific one.  Shared by
#: the campaign layer (``repro.flow.campaign``) and the DTA front end
#: (``repro.sim.dta``) so their defaults can never drift apart.  The
#: compiled engine produces delays bit-identical to ``levelized`` and
#: ``bitpacked`` (asserted by tests/sim/test_engine.py) at a fraction
#: of the cost.
DEFAULT_BACKEND = "compiled"


@dataclass
class DelayTraceResult:
    """Result of a multi-corner delay simulation.

    Attributes
    ----------
    delays:
        ``(n_corners, n_cycles)`` float32 — dynamic delay per cycle (ps);
        0 where no primary output toggled.  Always 2-D: 1-D
        ``gate_delays`` inputs are treated as a single corner.
    outputs:
        ``(n_cycles, n_outputs)`` uint8 — settled output values per
        cycle (cycle ``t`` corresponds to input row ``t+1``).
    """

    delays: np.ndarray
    outputs: Optional[np.ndarray] = None

    @property
    def n_cycles(self) -> int:
        return self.delays.shape[1]

    @property
    def n_corners(self) -> int:
        return self.delays.shape[0]


class SimBackend(abc.ABC):
    """One way of simulating a combinational netlist.

    Concrete backends are stateless: per-netlist precomputation happens
    inside each call, so a single backend instance can be shared freely
    (the registry hands out singletons).
    """

    #: Registry key.
    name: str = ""
    #: ``run_delays`` vectorizes over an ``(n_corners, n_gates)`` delay
    #: matrix in one pass (as opposed to looping corner by corner).
    supports_multi_corner: bool = False
    #: Cycle ``t`` of ``run_delays`` depends only on input rows ``t``
    #: and ``t+1``, so a stream may be split into cycle-range shards
    #: (each shard receiving rows ``[start, stop + 1]``) and the delay
    #: matrices stitched back in order with bit-identical results.
    #: The campaign runner only cycle-shards jobs on backends that set
    #: this.
    supports_cycle_sharding: bool = False
    #: Corner rows of ``run_delays`` are computed independently of one
    #: another, so a delay matrix may be split row-wise across workers
    #: and the results stacked back with bit-identical results.  True
    #: by default: the protocol's delay semantics are per-corner (every
    #: built-in either vectorizes elementwise over the corner axis or
    #: loops corner by corner).  A backend whose corners interact (e.g.
    #: shared adaptive state across the grid) must clear this.
    supports_corner_sharding: bool = True
    #: Models glitch pulses on nets whose settled value does not change.
    #: Glitch-aware delays are systematically >= DTA delays, so traces
    #: from glitch backends must never share a cache entry with DTA
    #: traces (see :attr:`delay_model`).
    models_glitches: bool = False
    #: ``run_delays`` honors an explicit ``chunk_cycles`` (cycle-axis
    #: working-set chunk, never affecting results).  Backends that
    #: process streams cycle by cycle (no chunked working set) must
    #: leave this False; passing ``chunk_cycles`` to them is an error
    #: rather than a silent no-op.
    supports_chunking: bool = False
    #: ``run_delays`` honors an explicit ``threads`` count (intra-call
    #: thread parallelism over independent work units, never affecting
    #: results).  Backends without a threadable kernel must leave this
    #: False; passing ``threads`` to them is an error rather than a
    #: silent no-op — mirroring ``supports_chunking``.
    supports_threads: bool = False

    #: Capability attributes the registry validates on every instance.
    #: The campaign layer reads these as plain attributes (never via
    #: ``getattr`` with a default), so a backend that typos a flag name
    #: fails loudly at registration instead of silently losing e.g.
    #: sharding.
    CAPABILITY_FLAGS = ("supports_multi_corner", "supports_cycle_sharding",
                        "supports_corner_sharding", "models_glitches",
                        "supports_chunking", "supports_threads")

    @property
    def delay_model(self) -> str:
        """Equivalence class of the delays this backend produces.

        Backends with the same ``delay_model`` are interchangeable for
        characterization caching: ``"dta"`` engines agree bit-for-bit,
        ``"glitch"`` engines see extra transitions.
        """
        return "glitch" if self.models_glitches else "dta"

    @abc.abstractmethod
    def run_delays(self, netlist: Netlist, input_matrix: np.ndarray,
                   gate_delays: np.ndarray,
                   collect_outputs: bool = False,
                   chunk_cycles: Optional[int] = None,
                   threads: Optional[int] = None) -> DelayTraceResult:
        """Per-cycle dynamic delays for an input stream.

        Parameters
        ----------
        netlist:
            Combinational core to simulate.
        input_matrix:
            ``(n_cycles + 1, n_inputs)`` uint8; row 0 is the initial
            state.
        gate_delays:
            ``(n_gates,)`` for one corner or ``(n_corners, n_gates)``;
            picoseconds per gate.  Backends that do not support
            multi-corner vectorization loop over the corner axis.
        collect_outputs:
            Also return settled output values per cycle.
        chunk_cycles:
            Cycle-axis working-set chunk.  ``None`` lets the backend
            pick a cache-sized default; an explicit value requires
            :attr:`supports_chunking` and never affects results.
        threads:
            Intra-call thread parallelism over independent work units
            (numpy releases the GIL during array ops).  ``None``/1 runs
            single-threaded; an explicit value > 1 requires
            :attr:`supports_threads` and never affects results.
        """

    @abc.abstractmethod
    def run_values(self, netlist: Netlist,
                   input_matrix: np.ndarray) -> np.ndarray:
        """Settled output values only: ``(n_rows, n_outputs)`` uint8."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"<{type(self).__name__} name={self.name!r} "
                f"multi_corner={self.supports_multi_corner} "
                f"glitches={self.models_glitches}>")


#: name -> "module:Class" (lazy) or SimBackend subclass (eager).
#: The ``*_ref`` entries are the retained per-gate reference paths
#: (``compiled=False`` simulators) behind the same protocol — slow,
#: but delay-bit-identical to the compiled kernels, so campaigns can
#: audit the fast engines end to end
#: (``SimSpec(backend="levelized", compiled=False)`` resolves here).
_REGISTRY: Dict[str, Union[str, Type[SimBackend]]] = {
    "levelized": "repro.sim.levelized:LevelizedBackend",
    "levelized_ref": "repro.sim.levelized:ReferenceLevelizedBackend",
    "event": "repro.sim.eventsim:EventBackend",
    "bitpacked": "repro.sim.bitpacked:BitPackedBackend",
    "bitpacked_ref": "repro.sim.bitpacked:ReferenceBitPackedBackend",
    "compiled": "repro.sim.compile:CompiledBackend",
}
_INSTANCES: Dict[str, SimBackend] = {}


def register_backend(name: str,
                     target: Union[str, Type[SimBackend]]) -> None:
    """Register a backend under ``name``.

    ``target`` is either a :class:`SimBackend` subclass or a lazy
    ``"module:Class"`` string resolved on first :func:`get_backend`.
    Re-registering a name replaces it (and drops any cached instance).
    """
    _REGISTRY[name] = target
    _INSTANCES.pop(name, None)


def available_backends() -> Tuple[str, ...]:
    """Registered backend names, sorted."""
    return tuple(sorted(_REGISTRY))


def get_backend(name: str) -> SimBackend:
    """Resolve a backend by name (cached singleton instances)."""
    try:
        return _INSTANCES[name]
    except KeyError:
        pass
    try:
        target = _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown sim backend {name!r}; "
            f"available: {', '.join(available_backends())}") from None
    if isinstance(target, str):
        module_name, _, class_name = target.partition(":")
        target = getattr(import_module(module_name), class_name)
    backend = target()
    if backend.name != name:
        raise ValueError(
            f"backend class {type(backend).__name__} declares name "
            f"{backend.name!r} but is registered as {name!r}")
    for flag in SimBackend.CAPABILITY_FLAGS:
        value = getattr(backend, flag, None)
        if not isinstance(value, bool):
            raise ValueError(
                f"backend {name!r} capability {flag!r} must be a bool, "
                f"got {value!r} — a typo'd flag name would silently "
                f"disable the capability")
    _INSTANCES[name] = backend
    return backend
