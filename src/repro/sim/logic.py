"""Vectorized gate evaluation over numpy arrays.

Shared by the levelized simulator: evaluates one gate's truth table on
uint8 (0/1) arrays of per-cycle values.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from ..circuits.netlist import GateType


def eval_gate_array(gtype: GateType, inputs: Sequence[np.ndarray],
                    n: int) -> np.ndarray:
    """Evaluate a gate on vectors of input values.

    Parameters
    ----------
    gtype:
        Gate type.
    inputs:
        One uint8 0/1 array per input pin, each of shape ``(n,)``.
    n:
        Vector length (needed for constants which have no inputs).
    """
    if gtype is GateType.CONST0:
        return np.zeros(n, dtype=np.uint8)
    if gtype is GateType.CONST1:
        return np.ones(n, dtype=np.uint8)
    if gtype is GateType.BUF:
        return inputs[0]
    if gtype is GateType.NOT:
        return inputs[0] ^ 1
    if gtype is GateType.AND2:
        return inputs[0] & inputs[1]
    if gtype is GateType.OR2:
        return inputs[0] | inputs[1]
    if gtype is GateType.NAND2:
        return (inputs[0] & inputs[1]) ^ 1
    if gtype is GateType.NOR2:
        return (inputs[0] | inputs[1]) ^ 1
    if gtype is GateType.XOR2:
        return inputs[0] ^ inputs[1]
    if gtype is GateType.XNOR2:
        return (inputs[0] ^ inputs[1]) ^ 1
    if gtype is GateType.MUX2:
        sel, d0, d1 = inputs
        return (d0 & (sel ^ 1)) | (d1 & sel)
    raise ValueError(f"unknown gate type {gtype!r}")
