"""Vectorized gate evaluation over numpy arrays.

Shared by the simulators: :func:`eval_gate_array` evaluates one gate's
truth table on uint8 (0/1) arrays of per-cycle values (levelized
engine); :func:`eval_gate_words` does the same on bit-packed ``uint64``
words where every bitwise op evaluates 64 cycles at once (bit-packed
engine).
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from ..circuits.netlist import GateType


def eval_gate_array(gtype: GateType, inputs: Sequence[np.ndarray],
                    n: int) -> np.ndarray:
    """Evaluate a gate on vectors of input values.

    Parameters
    ----------
    gtype:
        Gate type.
    inputs:
        One uint8 0/1 array per input pin, each of shape ``(n,)``.
    n:
        Vector length (needed for constants which have no inputs).
    """
    if gtype is GateType.CONST0:
        return np.zeros(n, dtype=np.uint8)
    if gtype is GateType.CONST1:
        return np.ones(n, dtype=np.uint8)
    if gtype is GateType.BUF:
        return inputs[0]
    if gtype is GateType.NOT:
        return inputs[0] ^ 1
    if gtype is GateType.AND2:
        return inputs[0] & inputs[1]
    if gtype is GateType.OR2:
        return inputs[0] | inputs[1]
    if gtype is GateType.NAND2:
        return (inputs[0] & inputs[1]) ^ 1
    if gtype is GateType.NOR2:
        return (inputs[0] | inputs[1]) ^ 1
    if gtype is GateType.XOR2:
        return inputs[0] ^ inputs[1]
    if gtype is GateType.XNOR2:
        return (inputs[0] ^ inputs[1]) ^ 1
    if gtype is GateType.MUX2:
        sel, d0, d1 = inputs
        return (d0 & (sel ^ 1)) | (d1 & sel)
    raise ValueError(f"unknown gate type {gtype!r}")


_U64_ONES = np.uint64(0xFFFFFFFFFFFFFFFF)


def eval_gate_words(gtype: GateType, inputs: Sequence[np.ndarray],
                    n_words: int) -> np.ndarray:
    """Evaluate a gate on bit-packed value words.

    Each array holds ``uint64`` words with cycle ``t``'s value at bit
    ``t % 64`` of word ``t // 64``.  Inverting gates may leave garbage
    in the tail bits past the last cycle; consumers must mask or
    ``count``-limit when unpacking.
    """
    if gtype is GateType.CONST0:
        return np.zeros(n_words, dtype=np.uint64)
    if gtype is GateType.CONST1:
        return np.full(n_words, _U64_ONES, dtype=np.uint64)
    if gtype is GateType.BUF:
        return inputs[0]
    if gtype is GateType.NOT:
        return inputs[0] ^ _U64_ONES
    if gtype is GateType.AND2:
        return inputs[0] & inputs[1]
    if gtype is GateType.OR2:
        return inputs[0] | inputs[1]
    if gtype is GateType.NAND2:
        return (inputs[0] & inputs[1]) ^ _U64_ONES
    if gtype is GateType.NOR2:
        return (inputs[0] | inputs[1]) ^ _U64_ONES
    if gtype is GateType.XOR2:
        return inputs[0] ^ inputs[1]
    if gtype is GateType.XNOR2:
        return (inputs[0] ^ inputs[1]) ^ _U64_ONES
    if gtype is GateType.MUX2:
        sel, d0, d1 = inputs
        return (d0 & (sel ^ _U64_ONES)) | (d1 & sel)
    raise ValueError(f"unknown gate type {gtype!r}")
