"""Dynamic timing analysis: delay traces and timing-error labels.

Ties the simulators to the paper's quantities: a :class:`DelayTrace`
holds the per-cycle dynamic delay ``D[t]`` of an FU at one or more
operating conditions; :func:`timing_error_labels` turns delays into the
paper's two classes (``D[t] > tclk`` = timing erroneous), and
:func:`dynamic_delay_trace` is the one-call front end used by the
campaigns and benches.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Union

import numpy as np

from ..circuits.netlist import Netlist
from ..timing.cells import CellLibrary, DEFAULT_LIBRARY
from ..timing.corners import OperatingCondition
from .engine import DEFAULT_BACKEND, get_backend
from .eventsim import EventDrivenSimulator
from .vcd import delays_from_vcd, read_vcd


@dataclass
class DelayTrace:
    """Dynamic delays of one input stream across operating conditions.

    Attributes
    ----------
    delays:
        ``(n_conditions, n_cycles)`` float32 ps.
    conditions:
        The operating conditions, aligned with the first axis.
    inputs:
        The ``(n_cycles + 1, n_bits)`` input bit matrix that produced the
        trace (row 0 is the initial state).
    """

    delays: np.ndarray
    conditions: List[OperatingCondition]
    inputs: Optional[np.ndarray] = None

    @property
    def n_cycles(self) -> int:
        return self.delays.shape[1]

    def for_condition(self, condition: OperatingCondition) -> np.ndarray:
        """Delay vector for one condition."""
        idx = self.conditions.index(condition)
        return self.delays[idx]

    def average_delay(self) -> np.ndarray:
        """Mean dynamic delay per condition — the Fig. 3 quantity."""
        return self.delays.mean(axis=1)

    def max_delay(self) -> np.ndarray:
        """Max observed dynamic delay per condition (Delay-based model's
        offline measurement)."""
        return self.delays.max(axis=1)


def timing_error_labels(delays: np.ndarray, clock_period: float) -> np.ndarray:
    """Classify each cycle: 1 = timing erroneous, 0 = timing correct.

    A cycle has a timing error when its sensitized dynamic delay
    exceeds the clock period (Sec. III of the paper).
    """
    if clock_period <= 0:
        raise ValueError("clock_period must be positive")
    return (np.asarray(delays) > clock_period).astype(np.uint8)


def timing_error_rate(delays: np.ndarray, clock_period: float) -> float:
    """Fraction of erroneous cycles (the TER of the TER-based model)."""
    labels = timing_error_labels(delays, clock_period)
    return float(labels.mean())


def dynamic_delay_trace(netlist: Netlist,
                        input_matrix: np.ndarray,
                        conditions: Union[OperatingCondition,
                                          Sequence[OperatingCondition]],
                        library: CellLibrary = DEFAULT_LIBRARY,
                        engine: str = DEFAULT_BACKEND,
                        vcd_path=None) -> DelayTrace:
    """Run DTA for an input stream at one or more conditions.

    Parameters
    ----------
    netlist:
        FU combinational core.
    input_matrix:
        ``(n_cycles + 1, n_inputs)`` uint8; row 0 = initial state.
    conditions:
        One condition or a sequence (levelized engine vectorizes over
        them; the event engine loops).
    engine:
        Any name registered with the simulation-engine layer
        (``"compiled"``, ``"levelized"``, ``"bitpacked"``, ``"event"``,
        ...); defaults to the campaign layer's
        :data:`~repro.sim.engine.DEFAULT_BACKEND` so one-off traces and
        campaign traces come from the same engine.  Only the event
        engine supports ``vcd_path``.
    """
    single = isinstance(conditions, OperatingCondition)
    condition_list = [conditions] if single else list(conditions)
    if not condition_list:
        raise ValueError("need at least one operating condition")

    if engine == "event" and vcd_path is not None:
        rows = []
        for k, condition in enumerate(condition_list):
            delays = library.gate_delays(netlist, condition)
            sim = EventDrivenSimulator(netlist, delays)
            path = None
            clock = None
            if k == 0:
                path = vcd_path
                # generous clock so windows never overlap in the dump
                from ..timing.sta import static_delay

                clock = 2.0 * static_delay(netlist, condition, library)
            res = sim.run_trace(input_matrix, vcd_path=path,
                                clock_period=clock)
            rows.append(res.delays.astype(np.float32))
        return DelayTrace(np.stack(rows), condition_list, input_matrix)
    if vcd_path is not None:
        raise ValueError(f"engine {engine!r} does not support vcd_path")
    backend = get_backend(engine)
    delay_matrix = library.delay_matrix(netlist, condition_list)
    result = backend.run_delays(netlist, input_matrix, delay_matrix)
    return DelayTrace(result.delays, condition_list, input_matrix)


def delays_via_vcd(netlist: Netlist, input_matrix: np.ndarray,
                   condition: OperatingCondition,
                   vcd_path, library: CellLibrary = DEFAULT_LIBRARY
                   ) -> List[float]:
    """The paper's exact pipeline: simulate -> dump VCD -> parse VCD.

    Runs the event simulator with a safely slow clock, dumps the VCD,
    then recovers per-cycle dynamic delays purely from the file.  Used
    in tests to show the file-based path agrees with the in-memory path.
    """
    from ..timing.sta import static_delay

    clock = float(np.ceil(2.0 * static_delay(netlist, condition, library)))
    delays = library.gate_delays(netlist, condition)
    sim = EventDrivenSimulator(netlist, delays)
    n_cycles = np.asarray(input_matrix).shape[0] - 1
    sim.run_trace(input_matrix, vcd_path=vcd_path, clock_period=clock)
    vcd = read_vcd(vcd_path)
    return delays_from_vcd(vcd, int(clock), n_cycles)
