"""Vectorized levelized dynamic-timing simulator.

This is the workhorse behind the DTA campaigns: for a stream of input
vectors it computes, for every cycle and every operating corner, the
*dynamic delay* — the arrival time of the last toggling transition at
the primary outputs (the register D-pins), exactly the quantity the
paper extracts from ModelSim VCD dumps.

Model
-----
Combinational logic settles to ``f(x[t])`` each cycle, so per-cycle
values are corner-independent and are evaluated once.  A net *toggles*
in cycle ``t`` when its settled value differs from cycle ``t-1``.  The
transition time of a toggling gate output is approximated as::

    arr[out] = max(arr[i] for toggling inputs i) + gate_delay

i.e. the last-arriving toggling input launches the output transition.
This is the graph-based DTA of Cherupalli & Sartori (ICCAD'15) that the
paper cites as [3]; it ignores glitch pulses on nets whose settled
value does not change (the event-driven simulator in
:mod:`repro.sim.eventsim` models those and is used to cross-validate).

Because toggle masks are corner-independent, arrival propagation is
vectorized over *both* cycles and corners: gate delays enter as a
``(n_corners, n_gates)`` matrix and delays come out ``(n_corners,
n_cycles)``.  Memory is bounded by chunking the cycle axis.

Execution runs on the level-parallel compiled kernels of
:mod:`repro.sim.compile` (uint8 value substrate): the netlist is
lowered once to structure-of-arrays form and each pass is a loop over
logic levels instead of gates.  The original per-gate loop is retained
behind ``compiled=False`` as the reference semantics — the parity tests
assert the compiled path is bit-identical to it.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..circuits.netlist import Netlist
from .compile import compile_netlist
from .engine import DelayTraceResult, SimBackend
from .logic import eval_gate_array

NEG_INF = np.float32(-np.inf)


class LevelizedSimulator:
    """Reusable levelized simulator for one netlist.

    ``compiled=True`` (the default) runs on the cached level-parallel
    program; ``compiled=False`` keeps the original per-gate loop, which
    precomputes the last structural use of every net so intermediate
    arrays can be freed eagerly during the forward pass.
    """

    def __init__(self, netlist: Netlist, compiled: bool = True) -> None:
        self.netlist = netlist
        self.compiled = compiled
        if compiled:
            self._program = compile_netlist(netlist)  # validates, cached
        else:  # pre-compilation reference path: no lowering, no cache pin
            netlist.validate()
            self._last_use = self._compute_last_use(netlist)
            self._po_set = frozenset(netlist.primary_outputs)

    @staticmethod
    def _compute_last_use(netlist: Netlist) -> np.ndarray:
        """Gate index after which each net is dead (POs never die)."""
        n_gates = len(netlist.gates)
        last = np.zeros(netlist.n_nets, dtype=np.int64)
        for idx, gate in enumerate(netlist.gates):
            for i in gate.inputs:
                last[i] = idx
        for po in netlist.primary_outputs:
            last[po] = n_gates  # keep until the end
        return last

    # -- public API -----------------------------------------------------------

    def run(self, input_matrix: np.ndarray, gate_delays: np.ndarray,
            collect_outputs: bool = False,
            chunk_cycles: Optional[int] = None) -> DelayTraceResult:
        """Simulate a stream of input vectors across corners.

        Parameters
        ----------
        input_matrix:
            ``(n_rows, n_inputs)`` uint8 bit matrix.  Row 0 sets the
            initial state; each subsequent row is one clock cycle, so
            ``n_cycles = n_rows - 1``.
        gate_delays:
            ``(n_gates,)`` for a single corner or ``(n_corners,
            n_gates)``; picoseconds per gate.  The result's ``delays``
            are always ``(n_corners, n_cycles)`` — a 1-D input is
            treated as one corner and yields a ``(1, n_cycles)`` array
            (callers index ``result.delays[0]``; nothing is squeezed).
        collect_outputs:
            Also return settled output values per cycle.
        chunk_cycles:
            Cycle-axis chunk size.  Defaults to a cache-resident
            chunk on the compiled path and a ~100 MB memory budget on
            the per-gate reference path; never affects results.
        """
        if self.compiled:
            return self._program.run(input_matrix, gate_delays,
                                     collect_outputs=collect_outputs,
                                     chunk_cycles=chunk_cycles,
                                     packed=False)
        inputs = np.asarray(input_matrix, dtype=np.uint8)
        if inputs.ndim != 2 or inputs.shape[1] != len(self.netlist.primary_inputs):
            raise ValueError(
                f"input matrix must be (rows, {len(self.netlist.primary_inputs)}), "
                f"got {inputs.shape}"
            )
        if inputs.shape[0] < 2:
            raise ValueError("need at least 2 input rows (initial state + 1 cycle)")

        delays = np.asarray(gate_delays, dtype=np.float32)
        if delays.ndim == 1:
            delays = delays[None, :]
        if delays.shape[1] != len(self.netlist.gates):
            raise ValueError(
                f"gate_delays must have {len(self.netlist.gates)} per-gate "
                f"entries, got {delays.shape}"
            )

        n_cycles = inputs.shape[0] - 1
        n_corners = delays.shape[0]
        if chunk_cycles is None:
            budget_elems = 16 * 1024 * 1024  # ~64 MB of float32 live arrays
            width = max(64, self._live_width_estimate())
            chunk_cycles = max(64, budget_elems // max(1, n_corners * width))
        out_delays = np.zeros((n_corners, n_cycles), dtype=np.float32)
        out_values = (np.zeros((n_cycles, len(self.netlist.primary_outputs)),
                               dtype=np.uint8) if collect_outputs else None)

        start = 0
        while start < n_cycles:
            stop = min(start + chunk_cycles, n_cycles)
            # rows start..stop inclusive of the leading state row
            chunk = inputs[start:stop + 1]
            d, vals = self._run_chunk(chunk, delays, collect_outputs)
            out_delays[:, start:stop] = d
            if collect_outputs:
                out_values[start:stop] = vals
            start = stop

        return DelayTraceResult(out_delays, out_values)

    def run_values(self, input_matrix: np.ndarray) -> np.ndarray:
        """Settled output values only: ``(n_rows, n_outputs)`` uint8."""
        if self.compiled:
            return self._program.run_values(input_matrix, packed=False)
        inputs = np.asarray(input_matrix, dtype=np.uint8)
        if inputs.ndim != 2 or inputs.shape[1] != len(self.netlist.primary_inputs):
            raise ValueError("bad input matrix shape")
        n = inputs.shape[0]
        values: List[Optional[np.ndarray]] = [None] * self.netlist.n_nets
        for pos, net in enumerate(self.netlist.primary_inputs):
            values[net] = inputs[:, pos]
        for gate in self.netlist.gates:
            ins = [values[i] for i in gate.inputs]
            values[gate.output] = eval_gate_array(gate.gtype, ins, n)
        return np.stack(
            [values[o] for o in self.netlist.primary_outputs], axis=1)

    # -- per-gate reference internals ------------------------------------------

    def _live_width_estimate(self) -> int:
        """Upper-ish estimate of simultaneously-live nets (for chunking)."""
        alive = len(self.netlist.primary_inputs)
        peak = alive
        births = {}
        for idx, gate in enumerate(self.netlist.gates):
            births[gate.output] = idx
        deaths_at = {}
        for net, idx in enumerate(self._last_use):
            deaths_at.setdefault(int(idx), []).append(net)
        for idx in range(len(self.netlist.gates)):
            alive += 1
            peak = max(peak, alive)
            alive -= len(deaths_at.get(idx, ()))
        return max(peak, 1)

    def _run_chunk(self, inputs: np.ndarray, delays: np.ndarray,
                   collect_outputs: bool):
        """Per-gate reference chunk: ``inputs`` has n_cycles+1 rows."""
        nl = self.netlist
        n_rows = inputs.shape[0]
        n_cycles = n_rows - 1
        n_corners = delays.shape[0]
        last_use = self._last_use
        n_gates = len(nl.gates)

        values: List[Optional[np.ndarray]] = [None] * nl.n_nets   # (n_rows,)
        toggles: List[Optional[np.ndarray]] = [None] * nl.n_nets  # (n_cycles,)
        arrival: List[Optional[np.ndarray]] = [None] * nl.n_nets  # (C, n_cycles)

        zero_arr = np.zeros(n_cycles, dtype=np.float32)
        for pos, net in enumerate(nl.primary_inputs):
            col = inputs[:, pos]
            values[net] = col
            tog = (col[1:] != col[:-1])
            toggles[net] = tog
            # PI transitions launch at the clock edge (t = 0)
            arr = np.where(tog, zero_arr, NEG_INF).astype(np.float32)
            arrival[net] = arr  # (n_cycles,) broadcast against corners

        for idx, gate in enumerate(nl.gates):
            ins = gate.inputs
            in_vals = [values[i] for i in ins]
            out_val = eval_gate_array(gate.gtype, in_vals, n_rows)
            out_tog = (out_val[1:] != out_val[:-1])

            if ins and out_tog.any():
                cand = None
                for i in ins:
                    masked = np.where(toggles[i], arrival[i], NEG_INF)
                    cand = masked if cand is None else np.maximum(cand, masked)
                # delays column: (C, 1) broadcasts over cycles
                arr = cand + delays[:, idx][:, None]
                arr = np.where(out_tog, arr, NEG_INF).astype(np.float32)
            else:
                arr = np.full(n_cycles, NEG_INF, dtype=np.float32)

            values[gate.output] = out_val
            toggles[gate.output] = out_tog
            arrival[gate.output] = arr

            # free dead nets
            for i in ins:
                if last_use[i] == idx and i not in self._po_set:
                    values[i] = None
                    toggles[i] = None
                    arrival[i] = None

        worst = None
        for po in nl.primary_outputs:
            arr = arrival[po]
            if arr.ndim == 1:
                arr = np.broadcast_to(arr, (n_corners, n_cycles))
            worst = arr if worst is None else np.maximum(worst, arr)
        worst = np.maximum(worst, 0.0)  # no toggle -> delay 0

        out_vals = None
        if collect_outputs:
            out_vals = np.stack(
                [values[o][1:] for o in nl.primary_outputs], axis=1)
        return worst, out_vals


class LevelizedBackend(SimBackend):
    """:class:`LevelizedSimulator` behind the engine protocol.

    Runs the compiled level-parallel kernels on the uint8 value
    substrate; the per-netlist program cache makes repeated calls
    cheap (no re-validation or re-lowering).
    """

    name = "levelized"
    supports_multi_corner = True
    supports_cycle_sharding = True
    supports_corner_sharding = True
    models_glitches = False
    supports_chunking = True
    supports_threads = True

    def run_delays(self, netlist: Netlist, input_matrix: np.ndarray,
                   gate_delays: np.ndarray,
                   collect_outputs: bool = False,
                   chunk_cycles: Optional[int] = None,
                   threads: Optional[int] = None) -> DelayTraceResult:
        return compile_netlist(netlist).run(
            input_matrix, gate_delays, collect_outputs=collect_outputs,
            chunk_cycles=chunk_cycles, packed=False, threads=threads)

    def run_values(self, netlist: Netlist,
                   input_matrix: np.ndarray) -> np.ndarray:
        return compile_netlist(netlist).run_values(input_matrix,
                                                   packed=False)


class ReferenceLevelizedBackend(SimBackend):
    """The pre-compilation per-gate path behind the engine protocol.

    Runs :class:`LevelizedSimulator` with ``compiled=False`` — no
    lowering, no program cache, one python-level pass per gate.  Orders
    of magnitude slower than ``levelized`` but delay-bit-identical to
    it, so campaigns can audit the compiled kernels through the same
    caching/sharding machinery (``SimSpec(backend="levelized",
    compiled=False)`` resolves here).
    """

    name = "levelized_ref"
    supports_multi_corner = True
    supports_cycle_sharding = True
    supports_corner_sharding = True
    models_glitches = False
    supports_chunking = True
    supports_threads = False

    def run_delays(self, netlist: Netlist, input_matrix: np.ndarray,
                   gate_delays: np.ndarray,
                   collect_outputs: bool = False,
                   chunk_cycles: Optional[int] = None,
                   threads: Optional[int] = None) -> DelayTraceResult:
        if threads is not None and threads > 1:
            raise ValueError(
                "the per-gate reference path has no threadable kernel "
                "and does not honor threads (supports_threads=False)")
        return LevelizedSimulator(netlist, compiled=False).run(
            input_matrix, gate_delays, collect_outputs=collect_outputs,
            chunk_cycles=chunk_cycles)

    def run_values(self, netlist: Netlist,
                   input_matrix: np.ndarray) -> np.ndarray:
        return LevelizedSimulator(netlist,
                                  compiled=False).run_values(input_matrix)
