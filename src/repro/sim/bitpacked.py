"""Bit-packed logic-evaluation backend.

The levelized engine spends a large share of every characterization
pass on pure boolean work: settling each net's per-cycle value and
deriving toggle masks.  This backend packs the cycle axis into
``uint64`` words — cycle ``t`` lives at bit ``t % 64`` of word
``t // 64`` — so a single bitwise instruction evaluates 64 cycles of a
gate, cutting the memory traffic of value/toggle computation by 8x
versus one-byte-per-cycle arrays.

Execution runs on the level-parallel compiled kernels of
:mod:`repro.sim.compile` with the packed value substrate: the netlist
is lowered once (cached per netlist) and the value, toggle, and float
arrival passes are loops over logic levels, not gates.  Delay
propagation cannot be bit-packed (arrival times are floats); the shared
arrival kernel reproduces the levelized engine's float32 pipeline
operation for operation, which keeps delays **bit-identical** to the
levelized engine's (asserted by the backend parity tests).
``run_values`` stays packed end to end and only unpacks the primary
outputs.

The original per-gate loop is retained behind ``compiled=False`` as
the reference semantics for the parity tests and the simspeed bench.

Word layout invariants:

* packing is little-endian within bytes and words, so on a
  little-endian host ``np.unpackbits(words.view(np.uint8),
  bitorder="little")`` recovers cycle order directly;
* tail bits past the last row are unspecified (inverting gates flip
  them); toggle words are therefore masked to the first ``n_cycles``
  bits before any ``any()`` test or unpack.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..circuits.netlist import Netlist
from .compile import (
    compile_netlist,
    pack_columns,
    toggle_words,
    unpack_words,
)
from .engine import DelayTraceResult, SimBackend
from .levelized import LevelizedSimulator
from .logic import eval_gate_words

__all__ = [
    "BitPackedBackend",
    "BitPackedSimulator",
    "ReferenceBitPackedBackend",
    "pack_columns",
    "toggle_words",
    "unpack_words",
]

NEG_INF = np.float32(-np.inf)


class BitPackedSimulator:
    """Bit-parallel simulator for one netlist.

    Same public contract as :class:`LevelizedSimulator` (including the
    ``compiled`` switch); only the boolean substrate differs.
    """

    def __init__(self, netlist: Netlist, compiled: bool = True) -> None:
        self.netlist = netlist
        self.compiled = compiled
        if compiled:
            self._program = compile_netlist(netlist)  # validates, cached
        else:  # pre-compilation reference path: no lowering, no cache pin
            netlist.validate()
            self._last_use = LevelizedSimulator._compute_last_use(netlist)
            self._po_set = frozenset(netlist.primary_outputs)

    # -- public API -----------------------------------------------------------

    def run(self, input_matrix: np.ndarray, gate_delays: np.ndarray,
            collect_outputs: bool = False,
            chunk_cycles: Optional[int] = None) -> DelayTraceResult:
        """Simulate a stream of input vectors across corners.

        Arguments and result shapes match
        :meth:`LevelizedSimulator.run`; delays are bit-identical to it.
        Chunk boundaries never affect results because each cycle's
        arrival computation only reads input rows ``t`` and ``t+1``.
        """
        if self.compiled:
            return self._program.run(input_matrix, gate_delays,
                                     collect_outputs=collect_outputs,
                                     chunk_cycles=chunk_cycles,
                                     packed=True)
        inputs = np.asarray(input_matrix, dtype=np.uint8)
        if inputs.ndim != 2 or inputs.shape[1] != len(self.netlist.primary_inputs):
            raise ValueError(
                f"input matrix must be (rows, {len(self.netlist.primary_inputs)}), "
                f"got {inputs.shape}"
            )
        if inputs.shape[0] < 2:
            raise ValueError("need at least 2 input rows (initial state + 1 cycle)")

        delays = np.asarray(gate_delays, dtype=np.float32)
        if delays.ndim == 1:
            delays = delays[None, :]
        if delays.shape[1] != len(self.netlist.gates):
            raise ValueError(
                f"gate_delays must have {len(self.netlist.gates)} per-gate "
                f"entries, got {delays.shape}"
            )

        n_cycles = inputs.shape[0] - 1
        n_corners = delays.shape[0]
        if chunk_cycles is None:
            # arrival arrays dominate memory exactly as in the
            # levelized engine, so size chunks the same way (rounded to
            # whole words)
            budget_elems = 16 * 1024 * 1024
            width = max(64, self._live_width_estimate())
            chunk_cycles = max(64, budget_elems // max(1, n_corners * width))
        chunk_cycles = max(64, (chunk_cycles // 64) * 64)

        out_delays = np.zeros((n_corners, n_cycles), dtype=np.float32)
        out_values = (np.zeros((n_cycles, len(self.netlist.primary_outputs)),
                               dtype=np.uint8) if collect_outputs else None)

        start = 0
        while start < n_cycles:
            stop = min(start + chunk_cycles, n_cycles)
            chunk = inputs[start:stop + 1]
            d, vals = self._run_chunk(chunk, delays, collect_outputs)
            out_delays[:, start:stop] = d
            if collect_outputs:
                out_values[start:stop] = vals
            start = stop
        return DelayTraceResult(out_delays, out_values)

    def run_values(self, input_matrix: np.ndarray) -> np.ndarray:
        """Settled output values only: ``(n_rows, n_outputs)`` uint8.

        Fully bit-parallel — values stay packed through every gate and
        only the primary outputs are unpacked.
        """
        if self.compiled:
            return self._program.run_values(input_matrix, packed=True)
        inputs = np.asarray(input_matrix, dtype=np.uint8)
        if inputs.ndim != 2 or inputs.shape[1] != len(self.netlist.primary_inputs):
            raise ValueError("bad input matrix shape")
        nl = self.netlist
        n = inputs.shape[0]
        n_words = (n + 63) // 64
        last_use = self._last_use

        values: List[Optional[np.ndarray]] = [None] * nl.n_nets
        packed_pis = pack_columns(inputs)
        for pos, net in enumerate(nl.primary_inputs):
            values[net] = packed_pis[pos]
        for idx, gate in enumerate(nl.gates):
            values[gate.output] = eval_gate_words(
                gate.gtype, [values[i] for i in gate.inputs], n_words)
            for i in gate.inputs:
                if last_use[i] == idx and i not in self._po_set:
                    values[i] = None
        return np.stack(
            [unpack_words(values[o], n) for o in nl.primary_outputs], axis=1)

    # -- per-gate reference internals ------------------------------------------

    def _live_width_estimate(self) -> int:
        return LevelizedSimulator._live_width_estimate(self)  # type: ignore[arg-type]

    def _run_chunk(self, inputs: np.ndarray, delays: np.ndarray,
                   collect_outputs: bool):
        """Per-gate reference chunk: ``inputs`` has n_cycles+1 rows.

        Values and toggle masks are computed on packed words; the
        arrival pass reproduces the levelized engine's float pipeline
        operation for operation.
        """
        nl = self.netlist
        n_rows = inputs.shape[0]
        n_cycles = n_rows - 1
        n_corners = delays.shape[0]
        n_words = (n_rows + 63) // 64
        last_use = self._last_use

        values: List[Optional[np.ndarray]] = [None] * nl.n_nets   # packed words
        toggles: List[Optional[np.ndarray]] = [None] * nl.n_nets  # (n_cycles,) bool
        arrival: List[Optional[np.ndarray]] = [None] * nl.n_nets

        zero_arr = np.zeros(n_cycles, dtype=np.float32)
        no_toggles = np.zeros(n_cycles, dtype=bool)
        packed_pis = pack_columns(inputs)
        for pos, net in enumerate(nl.primary_inputs):
            vw = packed_pis[pos]
            tog = unpack_words(toggle_words(vw, n_cycles),
                               n_cycles).astype(bool)
            values[net] = vw
            toggles[net] = tog
            arrival[net] = np.where(tog, zero_arr, NEG_INF).astype(np.float32)

        for idx, gate in enumerate(nl.gates):
            ins = gate.inputs
            out_words = eval_gate_words(
                gate.gtype, [values[i] for i in ins], n_words)
            tog_words = toggle_words(out_words, n_cycles)

            if ins and tog_words.any():
                out_tog = unpack_words(tog_words, n_cycles).astype(bool)
                cand = None
                for i in ins:
                    masked = np.where(toggles[i], arrival[i], NEG_INF)
                    cand = masked if cand is None else np.maximum(cand, masked)
                arr = cand + delays[:, idx][:, None]
                arr = np.where(out_tog, arr, NEG_INF).astype(np.float32)
            else:
                out_tog = no_toggles
                arr = np.full(n_cycles, NEG_INF, dtype=np.float32)

            values[gate.output] = out_words
            toggles[gate.output] = out_tog
            arrival[gate.output] = arr

            for i in ins:
                if last_use[i] == idx and i not in self._po_set:
                    values[i] = None
                    toggles[i] = None
                    arrival[i] = None

        worst = None
        for po in nl.primary_outputs:
            arr = arrival[po]
            if arr.ndim == 1:
                arr = np.broadcast_to(arr, (n_corners, n_cycles))
            worst = arr if worst is None else np.maximum(worst, arr)
        worst = np.maximum(worst, 0.0)

        out_vals = None
        if collect_outputs:
            out_vals = np.stack(
                [unpack_words(values[o], n_rows)[1:]
                 for o in nl.primary_outputs], axis=1)
        return worst, out_vals


class BitPackedBackend(SimBackend):
    """:class:`BitPackedSimulator` behind the engine protocol.

    Runs the compiled level-parallel kernels on the packed uint64
    value substrate; the per-netlist program cache makes repeated
    calls cheap (no re-validation or re-lowering).
    """

    name = "bitpacked"
    supports_multi_corner = True
    supports_cycle_sharding = True
    supports_corner_sharding = True
    models_glitches = False
    supports_chunking = True
    supports_threads = True

    def run_delays(self, netlist: Netlist, input_matrix: np.ndarray,
                   gate_delays: np.ndarray,
                   collect_outputs: bool = False,
                   chunk_cycles: Optional[int] = None,
                   threads: Optional[int] = None) -> DelayTraceResult:
        return compile_netlist(netlist).run(
            input_matrix, gate_delays, collect_outputs=collect_outputs,
            chunk_cycles=chunk_cycles, packed=True, threads=threads)

    def run_values(self, netlist: Netlist,
                   input_matrix: np.ndarray) -> np.ndarray:
        return compile_netlist(netlist).run_values(input_matrix,
                                                   packed=True)


class ReferenceBitPackedBackend(SimBackend):
    """The per-gate bit-parallel reference path behind the protocol.

    Runs :class:`BitPackedSimulator` with ``compiled=False`` — the
    original word-at-a-time gate loop.  Slower than ``bitpacked`` but
    delay-bit-identical, so ``SimSpec(backend="bitpacked",
    compiled=False)`` can audit the compiled kernels through the full
    campaign machinery.
    """

    name = "bitpacked_ref"
    supports_multi_corner = True
    supports_cycle_sharding = True
    supports_corner_sharding = True
    models_glitches = False
    supports_chunking = True
    supports_threads = False

    def run_delays(self, netlist: Netlist, input_matrix: np.ndarray,
                   gate_delays: np.ndarray,
                   collect_outputs: bool = False,
                   chunk_cycles: Optional[int] = None,
                   threads: Optional[int] = None) -> DelayTraceResult:
        if threads is not None and threads > 1:
            raise ValueError(
                "the per-gate reference path has no threadable kernel "
                "and does not honor threads (supports_threads=False)")
        return BitPackedSimulator(netlist, compiled=False).run(
            input_matrix, gate_delays, collect_outputs=collect_outputs,
            chunk_cycles=chunk_cycles)

    def run_values(self, netlist: Netlist,
                   input_matrix: np.ndarray) -> np.ndarray:
        return BitPackedSimulator(netlist,
                                  compiled=False).run_values(input_matrix)
