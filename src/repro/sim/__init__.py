"""Simulation substrate: levelized + event-driven timing simulators, VCD, DTA."""

from .dta import (
    DelayTrace,
    delays_via_vcd,
    dynamic_delay_trace,
    timing_error_labels,
    timing_error_rate,
)
from .eventsim import EventDrivenSimulator, EventTraceResult
from .levelized import DelayTraceResult, LevelizedSimulator
from .vcd import VCDData, VCDWriter, delays_from_vcd, read_vcd

__all__ = [
    "DelayTrace",
    "DelayTraceResult",
    "EventDrivenSimulator",
    "EventTraceResult",
    "LevelizedSimulator",
    "VCDData",
    "VCDWriter",
    "delays_from_vcd",
    "delays_via_vcd",
    "dynamic_delay_trace",
    "read_vcd",
    "timing_error_labels",
    "timing_error_rate",
]
