"""Simulation substrate: pluggable engine layer over the compiled,
levelized, event-driven, and bit-packed timing simulators, plus VCD
and DTA."""

from .bitpacked import (
    BitPackedBackend,
    BitPackedSimulator,
    ReferenceBitPackedBackend,
)
from .compile import (
    CompiledBackend,
    CompiledNetlist,
    compile_netlist,
)
from .dta import (
    DelayTrace,
    delays_via_vcd,
    dynamic_delay_trace,
    timing_error_labels,
    timing_error_rate,
)
from .engine import (
    DEFAULT_BACKEND,
    DelayTraceResult,
    SimBackend,
    available_backends,
    get_backend,
    register_backend,
)
from .eventsim import EventBackend, EventDrivenSimulator, EventTraceResult
from .levelized import (
    LevelizedBackend,
    LevelizedSimulator,
    ReferenceLevelizedBackend,
)
from .vcd import VCDData, VCDWriter, delays_from_vcd, read_vcd

__all__ = [
    "BitPackedBackend",
    "BitPackedSimulator",
    "CompiledBackend",
    "CompiledNetlist",
    "DEFAULT_BACKEND",
    "DelayTrace",
    "DelayTraceResult",
    "EventBackend",
    "EventDrivenSimulator",
    "EventTraceResult",
    "LevelizedBackend",
    "LevelizedSimulator",
    "ReferenceBitPackedBackend",
    "ReferenceLevelizedBackend",
    "SimBackend",
    "VCDData",
    "VCDWriter",
    "available_backends",
    "compile_netlist",
    "delays_from_vcd",
    "delays_via_vcd",
    "dynamic_delay_trace",
    "get_backend",
    "read_vcd",
    "register_backend",
    "timing_error_labels",
    "timing_error_rate",
]
