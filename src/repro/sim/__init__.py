"""Simulation substrate: pluggable engine layer over the levelized,
event-driven, and bit-packed timing simulators, plus VCD and DTA."""

from .bitpacked import BitPackedBackend, BitPackedSimulator
from .dta import (
    DelayTrace,
    delays_via_vcd,
    dynamic_delay_trace,
    timing_error_labels,
    timing_error_rate,
)
from .engine import (
    DelayTraceResult,
    SimBackend,
    available_backends,
    get_backend,
    register_backend,
)
from .eventsim import EventBackend, EventDrivenSimulator, EventTraceResult
from .levelized import LevelizedBackend, LevelizedSimulator
from .vcd import VCDData, VCDWriter, delays_from_vcd, read_vcd

__all__ = [
    "BitPackedBackend",
    "BitPackedSimulator",
    "DelayTrace",
    "DelayTraceResult",
    "EventBackend",
    "EventDrivenSimulator",
    "EventTraceResult",
    "LevelizedBackend",
    "LevelizedSimulator",
    "SimBackend",
    "VCDData",
    "VCDWriter",
    "available_backends",
    "delays_from_vcd",
    "delays_via_vcd",
    "dynamic_delay_trace",
    "get_backend",
    "read_vcd",
    "register_backend",
    "timing_error_labels",
    "timing_error_rate",
]
