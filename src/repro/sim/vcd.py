"""Value Change Dump (VCD) writer and parser.

The paper's DTA extracts per-cycle dynamic delay by parsing the VCD
files ModelSim dumps during SDF-annotated gate-level simulation ("we
develop a Python script that can automatically parse VCD files").  This
module is that interface: the event-driven simulator writes VCDs via
:class:`VCDWriter`, and :func:`read_vcd` + :func:`delays_from_vcd`
recover per-cycle dynamic delays from any VCD that follows the same
clocked convention.
"""

from __future__ import annotations

import string
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

_ID_CHARS = string.printable[:94].replace(" ", "")  # printable, no whitespace


def identifier_code(index: int) -> str:
    """Short VCD identifier code for variable ``index`` (base-93)."""
    base = len(_ID_CHARS)
    code = _ID_CHARS[index % base]
    index //= base
    while index:
        code += _ID_CHARS[index % base]
        index //= base
    return code


class VCDWriter:
    """Streaming VCD writer (timescale 1 ps).

    Typical use::

        writer = VCDWriter(path, {"out[0]": 0, "out[1]": 1})
        writer.write_header()
        writer.change(0, 0, 0)       # time, var index, value
        writer.close()
    """

    def __init__(self, path: Union[str, Path], var_names: Sequence[str],
                 module: str = "dut") -> None:
        self.path = Path(path)
        self.var_names = list(var_names)
        self.module = module
        self._fh = None
        self._current_time: Optional[int] = None

    def write_header(self, initial_values: Optional[Sequence[int]] = None) -> None:
        self._fh = self.path.open("w")
        fh = self._fh
        fh.write("$date repro TEVoT DTA $end\n")
        fh.write("$version repro.sim.vcd 1.0 $end\n")
        fh.write("$timescale 1ps $end\n")
        fh.write(f"$scope module {self.module} $end\n")
        for idx, name in enumerate(self.var_names):
            fh.write(f"$var wire 1 {identifier_code(idx)} {name} $end\n")
        fh.write("$upscope $end\n$enddefinitions $end\n")
        if initial_values is not None:
            fh.write("$dumpvars\n")
            for idx, value in enumerate(initial_values):
                fh.write(f"{int(value)}{identifier_code(idx)}\n")
            fh.write("$end\n")

    def change(self, time: int, var_index: int, value: int) -> None:
        """Record a value change at an absolute time (ps)."""
        if self._fh is None:
            raise RuntimeError("write_header() must be called first")
        if self._current_time != time:
            self._fh.write(f"#{int(time)}\n")
            self._current_time = time
        self._fh.write(f"{int(value)}{identifier_code(var_index)}\n")

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "VCDWriter":
        if self._fh is None:
            self.write_header()
        return self

    def __exit__(self, *exc) -> None:
        self.close()


@dataclass
class VCDData:
    """Parsed VCD contents: per-variable change lists."""

    timescale: str
    var_names: List[str]
    #: per variable: list of (time_ps, value) including $dumpvars at t=0
    changes: Dict[str, List[Tuple[int, int]]] = field(default_factory=dict)

    def changes_for(self, name: str) -> List[Tuple[int, int]]:
        if name not in self.changes:
            raise KeyError(f"no variable {name!r} in VCD")
        return self.changes[name]

    def all_change_times(self) -> List[int]:
        """Sorted unique times at which anything changed (excl. t=0 dump)."""
        times = set()
        for change_list in self.changes.values():
            for t, _ in change_list:
                if t > 0:
                    times.add(t)
        return sorted(times)


def read_vcd(path: Union[str, Path]) -> VCDData:
    """Parse a VCD file (the subset VCDWriter emits + common variants)."""
    id_to_name: Dict[str, str] = {}
    changes: Dict[str, List[Tuple[int, int]]] = {}
    timescale = "1ps"
    current_time = 0
    in_dump = False
    with Path(path).open() as fh:
        for raw in fh:
            line = raw.strip()
            if not line:
                continue
            if line.startswith("$timescale"):
                parts = line.split()
                if len(parts) >= 2 and parts[1] != "$end":
                    timescale = parts[1]
                continue
            if line.startswith("$var"):
                parts = line.split()
                # $var wire 1 <id> <name> $end
                if len(parts) >= 5:
                    id_to_name[parts[3]] = parts[4]
                    changes[parts[4]] = []
                continue
            if line.startswith("$dumpvars"):
                in_dump = True
                continue
            if line.startswith("$end"):
                in_dump = False
                continue
            if line.startswith("$"):
                continue
            if line.startswith("#"):
                current_time = int(line[1:])
                continue
            if line[0] in "01xXzZ":
                value_char, code = line[0], line[1:]
                name = id_to_name.get(code)
                if name is None:
                    continue
                value = 1 if value_char == "1" else 0
                time = 0 if in_dump else current_time
                changes[name].append((time, value))
    return VCDData(timescale=timescale, var_names=list(changes), changes=changes)


def delays_from_vcd(vcd: VCDData, clock_period: int, n_cycles: int,
                    watch: Optional[Iterable[str]] = None) -> List[float]:
    """Per-cycle dynamic delay from a clocked VCD.

    The convention matches the event-driven simulator: input vector
    ``t`` is applied at absolute time ``t * clock_period``; the dynamic
    delay of cycle ``t`` is the time of the last change of any watched
    variable within ``(t*T, (t+1)*T]``, minus ``t*T`` — the paper's
    "time of the very last toggled event at the input pins of all
    sequential elements" minus the clock edge.
    """
    if clock_period <= 0:
        raise ValueError("clock_period must be positive")
    names = list(watch) if watch is not None else list(vcd.var_names)
    delays = [0.0] * n_cycles
    for name in names:
        for time, _value in vcd.changes_for(name):
            if time <= 0:
                continue
            cycle = (time - 1) // clock_period  # time in (cT, (c+1)T]
            if 0 <= cycle < n_cycles:
                offset = time - cycle * clock_period
                if offset > delays[cycle]:
                    delays[cycle] = float(offset)
    return delays
