"""Event-driven gate-level timing simulator.

The reference engine standing in for ModelSim's SDF-annotated
simulation: a transport-delay event queue that models glitch trains and
produces VCD dumps.  It is orders of magnitude slower than the
levelized engine (that gap *is* the paper's "TEVoT is 100X faster than
gate-level simulation" claim, reproduced in
``benchmarks/test_bench_speedup.py``), so campaigns use it only for
cross-validation and VCD generation.

Semantics
---------
At each clock edge the primary inputs switch to the next vector; every
gate whose inputs changed re-evaluates and schedules its (possibly
transient) output value ``gate_delay`` later.  A scheduled value equal
to the net's value at fire time is dropped (no propagation).  The
dynamic delay of a cycle is the time of the last value change on any
primary output, relative to the clock edge — including changes caused
by glitch pulses, exactly as a VCD-based extraction would see them.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..circuits.netlist import Netlist, evaluate_gate
from .engine import DelayTraceResult, SimBackend
from .vcd import VCDWriter


@dataclass
class EventTraceResult:
    """Per-cycle results of an event-driven run."""

    delays: np.ndarray            # (n_cycles,) float64, ps
    outputs: np.ndarray           # (n_cycles, n_outputs) uint8 settled values
    event_counts: np.ndarray      # (n_cycles,) int64, fired value changes
    vcd_path: Optional[Path] = None


class EventDrivenSimulator:
    """Transport-delay event-driven simulator for one netlist."""

    def __init__(self, netlist: Netlist, gate_delays: Sequence[float]) -> None:
        netlist.validate()
        if len(gate_delays) != len(netlist.gates):
            raise ValueError(
                f"gate_delays must have {len(netlist.gates)} entries, "
                f"got {len(gate_delays)}"
            )
        self.netlist = netlist
        self.gate_delays = [float(d) for d in gate_delays]
        # net -> indices of gates reading it
        self._fanout: List[List[int]] = [[] for _ in range(netlist.n_nets)]
        for idx, gate in enumerate(netlist.gates):
            for i in gate.inputs:
                self._fanout[i].append(idx)
        self._driver_index: Dict[int, int] = {
            g.output: idx for idx, g in enumerate(netlist.gates)}

    # -- single-cycle engine ---------------------------------------------------

    def settle(self, input_bits: Sequence[int]) -> List[int]:
        """Zero-delay settling (used to establish the initial state)."""
        values = self.netlist.evaluate(
            dict(zip(self.netlist.primary_inputs, input_bits)))
        return [values[n] for n in range(self.netlist.n_nets)]

    def run_cycle(self, state: List[int], next_bits: Sequence[int],
                  record_changes: Optional[List[Tuple[float, int, int]]] = None
                  ) -> Tuple[List[int], float, int]:
        """Apply one input transition and simulate to quiescence.

        Parameters
        ----------
        state:
            Current settled net values (mutated in place).
        next_bits:
            New primary-input vector applied at t = 0.
        record_changes:
            Optional sink for ``(time, net, value)`` change events.

        Returns
        -------
        ``(state, dynamic_delay, n_events)`` where ``dynamic_delay`` is
        the last PO change time (0.0 if no output changed).
        """
        nl = self.netlist
        po_set = set(nl.primary_outputs)
        counter = itertools.count()
        queue: List[Tuple[float, int, int, int]] = []  # (time, seq, net, value)

        def schedule(time: float, net: int, value: int) -> None:
            heapq.heappush(queue, (time, next(counter), net, value))

        # Input transition at t=0.
        for pos, net in enumerate(nl.primary_inputs):
            new = 1 if next_bits[pos] else 0
            if state[net] != new:
                schedule(0.0, net, new)

        last_po_change = 0.0
        n_events = 0
        while queue:
            time, _seq, net, value = heapq.heappop(queue)
            if state[net] == value:
                continue  # transient cancelled or redundant
            state[net] = value
            n_events += 1
            if record_changes is not None:
                record_changes.append((time, net, value))
            if net in po_set and time > last_po_change:
                last_po_change = time
            for gate_idx in self._fanout[net]:
                gate = nl.gates[gate_idx]
                new_out = evaluate_gate(
                    gate.gtype, [state[i] for i in gate.inputs])
                schedule(time + self.gate_delays[gate_idx],
                         gate.output, new_out)
        return state, last_po_change, n_events

    # -- trace API -----------------------------------------------------------------

    def run_trace(self, input_matrix: np.ndarray,
                  vcd_path: Optional[Union[str, Path]] = None,
                  clock_period: Optional[float] = None) -> EventTraceResult:
        """Simulate a stream of input vectors (row 0 = initial state).

        When ``vcd_path`` is given, primary-output changes are dumped as
        a VCD with cycle ``t``'s edge at absolute time ``t *
        clock_period`` (the period defaults to 2x the worst observed
        delay would be unknown upfront, so it must be supplied).
        """
        inputs = np.asarray(input_matrix, dtype=np.uint8)
        if inputs.ndim != 2 or inputs.shape[1] != len(self.netlist.primary_inputs):
            raise ValueError("bad input matrix shape")
        n_cycles = inputs.shape[0] - 1
        if n_cycles < 1:
            raise ValueError("need at least 2 input rows")

        writer = None
        po_positions: Dict[int, int] = {}
        if vcd_path is not None:
            if clock_period is None or clock_period <= 0:
                raise ValueError("clock_period required when dumping VCD")
            names = [self.netlist.net_names.get(po, f"po{k}")
                     for k, po in enumerate(self.netlist.primary_outputs)]
            writer = VCDWriter(vcd_path, names)
            po_positions = {po: k
                            for k, po in enumerate(self.netlist.primary_outputs)}

        state = self.settle(list(inputs[0]))
        if writer is not None:
            writer.write_header(
                [state[po] for po in self.netlist.primary_outputs])

        delays = np.zeros(n_cycles, dtype=np.float64)
        outputs = np.zeros((n_cycles, len(self.netlist.primary_outputs)),
                           dtype=np.uint8)
        event_counts = np.zeros(n_cycles, dtype=np.int64)
        for t in range(n_cycles):
            sink: Optional[List[Tuple[float, int, int]]] = (
                [] if writer is not None else None)
            state, delay, n_events = self.run_cycle(state, inputs[t + 1], sink)
            delays[t] = delay
            event_counts[t] = n_events
            outputs[t] = [state[po] for po in self.netlist.primary_outputs]
            if writer is not None:
                edge = int(round(t * clock_period))
                for time, net, value in sink:
                    pos = po_positions.get(net)
                    if pos is not None:
                        writer.change(edge + int(round(time)), pos, value)
        if writer is not None:
            writer.close()
        return EventTraceResult(delays, outputs, event_counts,
                                Path(vcd_path) if vcd_path else None)


class EventBackend(SimBackend):
    """:class:`EventDrivenSimulator` behind the engine protocol.

    Delays include glitch pulses, so this backend's traces live in the
    ``"glitch"`` delay-model class and are never cache-shared with the
    DTA engines.  Multi-corner delay matrices are handled by looping
    corner by corner (one event-driven pass each).
    """

    # every capability is declared explicitly (not inherited) so the
    # registry's bool validation covers this backend's real contract:
    # corner-by-corner looping makes corner sharding exact, but the
    # event queue couples adjacent cycles (glitch trains can straddle a
    # cut), so cycle sharding must stay off.
    name = "event"
    supports_multi_corner = False
    supports_cycle_sharding = False
    supports_corner_sharding = True
    models_glitches = True
    supports_chunking = False
    supports_threads = False

    def run_delays(self, netlist: Netlist, input_matrix: np.ndarray,
                   gate_delays: np.ndarray,
                   collect_outputs: bool = False,
                   chunk_cycles: Optional[int] = None,
                   threads: Optional[int] = None) -> DelayTraceResult:
        if chunk_cycles is not None:
            raise ValueError(
                "the event backend processes streams cycle by cycle and "
                "does not honor chunk_cycles (supports_chunking=False)")
        if threads is not None and threads > 1:
            raise ValueError(
                "the event backend's event queue is inherently serial "
                "and does not honor threads (supports_threads=False)")
        delays = np.asarray(gate_delays, dtype=np.float64)
        if delays.ndim == 1:
            delays = delays[None, :]
        rows: List[np.ndarray] = []
        outputs: Optional[np.ndarray] = None
        for k in range(delays.shape[0]):
            sim = EventDrivenSimulator(netlist, delays[k])
            res = sim.run_trace(input_matrix)
            rows.append(res.delays.astype(np.float32))
            if collect_outputs and outputs is None:
                outputs = res.outputs
        return DelayTraceResult(np.stack(rows), outputs)

    def run_values(self, netlist: Netlist,
                   input_matrix: np.ndarray) -> np.ndarray:
        inputs = np.asarray(input_matrix, dtype=np.uint8)
        if inputs.ndim != 2 or inputs.shape[1] != len(netlist.primary_inputs):
            raise ValueError("bad input matrix shape")
        sim = EventDrivenSimulator(netlist, [0.0] * len(netlist.gates))
        out = np.zeros((inputs.shape[0], len(netlist.primary_outputs)),
                       dtype=np.uint8)
        for t in range(inputs.shape[0]):
            state = sim.settle(list(inputs[t]))
            out[t] = [state[po] for po in netlist.primary_outputs]
        return out
