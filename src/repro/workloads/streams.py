"""Operand streams: the input workloads FUs consume cycle by cycle.

An :class:`OperandStream` is a named pair of operand-word arrays; row 0
is the initial register state and each following row is one clock
cycle.  Generators cover the paper's training/test sources: random data
with operands homogeneously distributed over the 2-D input space
(Sec. IV-B, following B-Hive), and application-profiled traces (built
by :mod:`repro.apps.profiling`).
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Union

import numpy as np


@dataclass
class OperandStream:
    """A stream of two-operand inputs for one FU."""

    name: str
    a: np.ndarray  # uint64 operand words, length n_cycles + 1
    b: np.ndarray

    def __post_init__(self) -> None:
        self.a = np.asarray(self.a, dtype=np.uint64)
        self.b = np.asarray(self.b, dtype=np.uint64)
        if self.a.shape != self.b.shape or self.a.ndim != 1:
            raise ValueError("operand arrays must be equal-length 1-D")
        if len(self.a) < 2:
            raise ValueError("stream needs at least 2 rows "
                             "(initial state + 1 cycle)")

    @property
    def n_cycles(self) -> int:
        return len(self.a) - 1

    def bit_matrix(self, fu) -> np.ndarray:
        """Encode as the FU's primary-input bit matrix."""
        return fu.encode_inputs_array(self.a, self.b)

    def head(self, n_cycles: int) -> "OperandStream":
        """First ``n_cycles`` cycles (plus the initial row)."""
        if n_cycles < 1:
            raise ValueError("need at least one cycle")
        stop = min(len(self.a), n_cycles + 1)
        return OperandStream(self.name, self.a[:stop], self.b[:stop])

    def save(self, path: Union[str, Path]) -> None:
        np.savez_compressed(path, name=self.name, a=self.a, b=self.b)

    @classmethod
    def load(cls, path: Union[str, Path]) -> "OperandStream":
        data = np.load(path, allow_pickle=False)
        return cls(str(data["name"]), data["a"], data["b"])


def random_stream(n_cycles: int, operand_width: int = 32,
                  seed: Optional[int] = None,
                  name: str = "random") -> OperandStream:
    """Uniform random operands: homogeneous over the 2-D input space.

    This is the paper's random training/test source — with two 32-bit
    operands the space is 2^64, so uniform sampling of each operand
    covers it homogeneously.
    """
    if n_cycles < 1:
        raise ValueError("need at least one cycle")
    rng = np.random.default_rng(seed)
    high = 1 << operand_width
    a = rng.integers(0, high, n_cycles + 1, dtype=np.uint64)
    b = rng.integers(0, high, n_cycles + 1, dtype=np.uint64)
    return OperandStream(name, a, b)


def float_random_stream(n_cycles: int, seed: Optional[int] = None,
                        low: float = -64.0, high: float = 64.0,
                        name: str = "random") -> OperandStream:
    """Random binary32 operands over a bounded magnitude range.

    Uniform bit patterns are mostly huge-magnitude floats; FP workloads
    in applications live in moderate ranges, so the FP units' random
    dataset samples uniformly in value space instead.
    """
    if n_cycles < 1:
        raise ValueError("need at least one cycle")
    rng = np.random.default_rng(seed)
    vals_a = rng.uniform(low, high, n_cycles + 1).astype(np.float32)
    vals_b = rng.uniform(low, high, n_cycles + 1).astype(np.float32)
    a = vals_a.view(np.uint32).astype(np.uint64)
    b = vals_b.view(np.uint32).astype(np.uint64)
    return OperandStream(name, a, b)


def stream_for_unit(fu_name: str, n_cycles: int,
                    seed: Optional[int] = None) -> OperandStream:
    """Random stream with the natural operand distribution for an FU."""
    if fu_name.startswith("fp"):
        return float_random_stream(n_cycles, seed)
    return random_stream(n_cycles, seed=seed)
