"""Workload generators: operand streams for DTA and training."""

from .streams import (
    OperandStream,
    float_random_stream,
    random_stream,
    stream_for_unit,
)

__all__ = [
    "OperandStream",
    "float_random_stream",
    "random_stream",
    "stream_for_unit",
]
