"""Operating conditions and the paper's corner grid (Table I).

The paper sweeps 20 voltage points (0.81 V to 1.00 V, step 0.01 V) and
5 temperature points (0 to 100 C, step 25 C) — 100 ``(V, T)`` pairs —
and 3 clock speedups (5 %, 10 %, 15 %) over the fastest error-free
clock.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Sequence, Tuple


@dataclass(frozen=True, order=True)
class OperatingCondition:
    """One ``(V, T)`` pair.  Voltage in volts, temperature in Celsius."""

    voltage: float
    temperature: float

    def __post_init__(self) -> None:
        if self.voltage <= 0:
            raise ValueError(f"voltage must be positive, got {self.voltage}")
        if not (-55.0 <= self.temperature <= 150.0):
            raise ValueError(
                f"temperature {self.temperature} C outside sane silicon range"
            )

    @property
    def label(self) -> str:
        """Short label like ``(0.81,50)`` used in Fig. 3 axes."""
        return f"({self.voltage:.2f},{self.temperature:g})"

    def as_tuple(self) -> Tuple[float, float]:
        return (self.voltage, self.temperature)


# Table I parameters.
VOLTAGE_START = 0.81
VOLTAGE_END = 1.00
VOLTAGE_STEP = 0.01
VOLTAGE_POINTS = 20

TEMPERATURE_START = 0.0
TEMPERATURE_END = 100.0
TEMPERATURE_STEP = 25.0
TEMPERATURE_POINTS = 5

#: Clock speedups over the fastest error-free clock (Table I).
CLOCK_SPEEDUPS: Tuple[float, ...] = (0.05, 0.10, 0.15)


def voltage_points() -> List[float]:
    """The 20 voltage points of Table I."""
    return [round(VOLTAGE_START + i * VOLTAGE_STEP, 2)
            for i in range(VOLTAGE_POINTS)]


def temperature_points() -> List[float]:
    """The 5 temperature points of Table I."""
    return [TEMPERATURE_START + i * TEMPERATURE_STEP
            for i in range(TEMPERATURE_POINTS)]


def paper_corner_grid() -> List[OperatingCondition]:
    """All 100 ``(V, T)`` operating conditions of Table I.

    Ordered voltage-major, i.e. ``(0.81, 0), (0.81, 25), ...`` so that
    corners sharing a voltage are adjacent (mirrors Fig. 3's x-axis).
    """
    return [
        OperatingCondition(v, t)
        for v in voltage_points()
        for t in temperature_points()
    ]


def fig3_corner_subset() -> List[OperatingCondition]:
    """The 9 corners plotted in Fig. 3 (V in {0.81, 0.90, 1.00}, T in
    {0, 50, 100})."""
    return [
        OperatingCondition(v, t)
        for v in (0.81, 0.90, 1.00)
        for t in (0.0, 50.0, 100.0)
    ]


def nominal_condition() -> OperatingCondition:
    """The nominal sign-off corner (1.00 V, 25 C)."""
    return OperatingCondition(1.00, 25.0)


def sped_up_clock(error_free_clock: float, speedup: float) -> float:
    """Clock period after overclocking by ``speedup`` (e.g. 0.10 = 10 %).

    The paper speeds up the *frequency* by 5/10/15 % from the fastest
    error-free frequency, so the period shrinks by ``1/(1+s)``.
    """
    if speedup < 0:
        raise ValueError(f"speedup must be non-negative, got {speedup}")
    return error_free_clock / (1.0 + speedup)
