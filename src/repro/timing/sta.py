"""Static timing analysis.

Computes worst-case (topological) arrival times — the *static delay* of
Sec. III: the critical-path delay that guardbanded designs sign off
against, regardless of whether any workload actually sensitizes it.
TEVoT's whole argument is that the dynamic (sensitized) delay is usually
much smaller; STA provides the per-corner error-free clock the paper
speeds up by 5/10/15 %.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..circuits.netlist import Netlist
from .cells import CellLibrary, DEFAULT_LIBRARY
from .corners import OperatingCondition


@dataclass
class STAResult:
    """Output of one STA run.

    Attributes
    ----------
    arrival:
        Worst arrival time (ps) per net, index = net id; primary inputs
        arrive at t = 0.
    critical_path:
        Net ids from a primary input to the worst primary output,
        following worst-arrival predecessors.
    critical_delay:
        Arrival at the worst primary output (ps) — the static delay.
    condition:
        The operating condition analysed (None = nominal).
    """

    arrival: np.ndarray
    critical_path: List[int]
    critical_delay: float
    condition: Optional[OperatingCondition] = None

    @property
    def error_free_clock(self) -> float:
        """Fastest clock period (ps) with zero timing errors at this
        corner — equal to the static critical-path delay."""
        return self.critical_delay


def run_sta(netlist: Netlist,
            condition: Optional[OperatingCondition] = None,
            library: CellLibrary = DEFAULT_LIBRARY,
            gate_delays: Optional[np.ndarray] = None) -> STAResult:
    """Topological worst-case arrival analysis.

    Parameters
    ----------
    netlist:
        Combinational circuit (gates already topologically ordered).
    condition:
        Operating condition for V/T derating (None = nominal corner).
    library:
        Cell library supplying per-gate delays.
    gate_delays:
        Optional precomputed per-gate delay vector (e.g. parsed from an
        SDF file); overrides ``library``/``condition``.
    """
    if gate_delays is None:
        gate_delays = library.gate_delays(netlist, condition)
    if len(gate_delays) != len(netlist.gates):
        raise ValueError(
            f"gate_delays has {len(gate_delays)} entries for "
            f"{len(netlist.gates)} gates"
        )

    arrival = np.zeros(netlist.n_nets, dtype=np.float64)
    worst_pred = np.full(netlist.n_nets, -1, dtype=np.int64)
    for idx, gate in enumerate(netlist.gates):
        if gate.inputs:
            in_arrivals = [arrival[i] for i in gate.inputs]
            worst = int(np.argmax(in_arrivals))
            arrival[gate.output] = in_arrivals[worst] + gate_delays[idx]
            worst_pred[gate.output] = gate.inputs[worst]
        else:
            arrival[gate.output] = 0.0  # constants are always stable

    if netlist.primary_outputs:
        po_arrivals = [arrival[o] for o in netlist.primary_outputs]
        worst_out = netlist.primary_outputs[int(np.argmax(po_arrivals))]
        critical_delay = float(arrival[worst_out])
    elif netlist.gates:
        worst_out = int(np.argmax(arrival))
        critical_delay = float(arrival[worst_out])
    else:
        return STAResult(arrival, [], 0.0, condition)

    path: List[int] = []
    net = worst_out
    while net != -1:
        path.append(net)
        net = int(worst_pred[net])
    path.reverse()
    return STAResult(arrival, path, critical_delay, condition)


def static_delay(netlist: Netlist,
                 condition: Optional[OperatingCondition] = None,
                 library: CellLibrary = DEFAULT_LIBRARY) -> float:
    """Critical-path delay (ps) — shorthand for ``run_sta(...).critical_delay``."""
    return run_sta(netlist, condition, library).critical_delay
