"""Voltage/temperature delay scaling (alpha-power-law surrogate for CCS).

The paper injects dynamic variations by re-running STA with the EDA
tools' composite-current-source (CCS) voltage-temperature scaling and a
TSMC 45 nm library.  Offline we model the same physics analytically with
the alpha-power law:

.. math::

    d(V, T) \\propto \\frac{V}{(V - V_{th}(T))^{\\alpha}}
             \\cdot \\left(\\frac{T_K}{T_{K,0}}\\right)^{m}

where the threshold voltage falls linearly with temperature
(``Vth(T) = Vth0 - kt * (T - T0)``) and carrier mobility degrades as a
power of absolute temperature.  The two temperature effects compete:

* lower ``Vth`` at high T -> more overdrive -> *faster* (dominates at
  low supply voltage),
* mobility degradation at high T -> *slower* (dominates at high V).

This produces the *inverse temperature dependence* (ITD) the paper
observes in Fig. 3: at 0.81 V delay falls with temperature, at 0.90 V
and above it rises.  The default parameters place the ITD crossover
near 0.86 V (calibration test in ``tests/timing/test_scaling.py``).
"""

from __future__ import annotations

from dataclasses import dataclass

KELVIN_OFFSET = 273.15


@dataclass(frozen=True)
class ScalingParameters:
    """Technology parameters of the alpha-power delay model.

    Defaults approximate a generic 45 nm bulk CMOS process.
    """

    vth_nominal: float = 0.45      # V, threshold at t_ref_celsius
    vth_slope: float = 0.0012      # V per deg C threshold drop
    alpha: float = 1.3             # velocity-saturation exponent
    mobility_exponent: float = 1.15
    t_ref_celsius: float = 25.0
    v_nominal: float = 1.0

    def threshold(self, temperature: float, vth_offset: float = 0.0) -> float:
        """Threshold voltage at a given temperature (Celsius).

        ``vth_offset`` shifts the effective threshold per cell class
        (transistor stacking); see
        :class:`repro.timing.cells.CellTiming`.
        """
        return (self.vth_nominal + vth_offset
                - self.vth_slope * (temperature - self.t_ref_celsius))

    def overdrive(self, voltage: float, temperature: float,
                  vth_offset: float = 0.0) -> float:
        """``V - Vth(T)``; raises if the transistor would not switch."""
        ov = voltage - self.threshold(temperature, vth_offset)
        if ov <= 0:
            raise ValueError(
                f"supply {voltage} V is at or below threshold "
                f"{self.threshold(temperature, vth_offset):.3f} V "
                f"at {temperature} C"
            )
        return ov

    def raw_delay_factor(self, voltage: float, temperature: float,
                         vth_offset: float = 0.0) -> float:
        """Unnormalized alpha-power delay factor."""
        t_kelvin = temperature + KELVIN_OFFSET
        t_ref_kelvin = self.t_ref_celsius + KELVIN_OFFSET
        mobility = (t_kelvin / t_ref_kelvin) ** self.mobility_exponent
        overdrive = self.overdrive(voltage, temperature, vth_offset)
        return voltage / overdrive ** self.alpha * mobility

    def delay_scale(self, voltage: float, temperature: float,
                    vth_offset: float = 0.0) -> float:
        """Delay multiplier relative to nominal ``(v_nominal, t_ref)``.

        ``delay_scale(1.0, 25.0) == 1.0`` by construction; lower voltage
        or (at high V) higher temperature give factors > 1.  The
        normalization is per cell class: a cell's nominal delay already
        includes its stacking penalty, so only the *relative* V/T
        sensitivity differs between classes.
        """
        nominal = self.raw_delay_factor(self.v_nominal, self.t_ref_celsius,
                                        vth_offset)
        return self.raw_delay_factor(voltage, temperature, vth_offset) / nominal

    def itd_crossover_voltage(self, temperature: float) -> float:
        """Supply voltage where the temperature sensitivity flips sign.

        Setting ``d(ln delay)/dT = 0`` gives
        ``V* = Vth(T) + alpha * kt * T_K / m``.  Below ``V*`` the circuit
        exhibits inverse temperature dependence.
        """
        t_kelvin = temperature + KELVIN_OFFSET
        return self.threshold(temperature) + (
            self.alpha * self.vth_slope * t_kelvin / self.mobility_exponent
        )


DEFAULT_SCALING = ScalingParameters()


def delay_scale(voltage: float, temperature: float,
                params: ScalingParameters = DEFAULT_SCALING) -> float:
    """Module-level convenience wrapper around
    :meth:`ScalingParameters.delay_scale`."""
    return params.delay_scale(voltage, temperature)
