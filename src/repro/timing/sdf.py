"""Standard Delay Format (SDF) emission and parsing.

The paper's flow runs corner STA in PrimeTime and hands one SDF file
per ``(V, T)`` pair to the gate-level simulator for back-annotation.
We reproduce that interface: :func:`write_sdf` serializes per-gate
delays into a (minimal but syntactically standard) SDF 3.0 file with
one ``CELL``/``IOPATH`` block per gate instance, and :func:`read_sdf`
parses such a file back into the delay vector the simulators consume.

Only the subset of SDF the flow needs is supported: absolute IOPATH
delays with equal (min:typ:max) triples, picosecond timescale, one
combinational output per cell.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Union

import numpy as np

from ..circuits.netlist import Netlist
from .corners import OperatingCondition

_HEADER_TEMPLATE = """(DELAYFILE
  (SDFVERSION "3.0")
  (DESIGN "{design}")
  (VOLTAGE {voltage}:{voltage}:{voltage})
  (TEMPERATURE {temperature}:{temperature}:{temperature})
  (TIMESCALE 1ps)
"""


def instance_name(gate_index: int) -> str:
    """Canonical gate instance name used in emitted SDF files."""
    return f"g{gate_index}"


def write_sdf(netlist: Netlist, gate_delays: np.ndarray,
              path: Union[str, Path],
              condition: Optional[OperatingCondition] = None) -> Path:
    """Serialize per-gate delays as an SDF file; returns the path.

    ``gate_delays`` is aligned with ``netlist.gates`` (ps).
    """
    if len(gate_delays) != len(netlist.gates):
        raise ValueError(
            f"gate_delays has {len(gate_delays)} entries for "
            f"{len(netlist.gates)} gates"
        )
    path = Path(path)
    voltage = condition.voltage if condition else 1.0
    temperature = condition.temperature if condition else 25.0
    lines = [_HEADER_TEMPLATE.format(design=netlist.name, voltage=voltage,
                                     temperature=temperature)]
    for idx, gate in enumerate(netlist.gates):
        delay = float(gate_delays[idx])
        lines.append(
            f"  (CELL (CELLTYPE \"{gate.gtype.value}\")\n"
            f"    (INSTANCE {instance_name(idx)})\n"
            f"    (DELAY (ABSOLUTE\n"
            f"      (IOPATH * o ({delay:.4f}:{delay:.4f}:{delay:.4f}))\n"
            f"    ))\n"
            f"  )\n"
        )
    lines.append(")\n")
    path.write_text("".join(lines))
    return path


@dataclass
class SDFFile:
    """Parsed SDF contents."""

    design: str
    voltage: float
    temperature: float
    delays: Dict[str, float]  # instance name -> typ delay (ps)

    def delay_vector(self, netlist: Netlist) -> np.ndarray:
        """Back-annotate: align parsed delays with ``netlist.gates``."""
        out = np.empty(len(netlist.gates), dtype=np.float64)
        for idx in range(len(netlist.gates)):
            name = instance_name(idx)
            if name not in self.delays:
                raise KeyError(f"SDF file missing instance {name}")
            out[idx] = self.delays[name]
        return out

    @property
    def condition(self) -> OperatingCondition:
        return OperatingCondition(self.voltage, self.temperature)


_DESIGN_RE = re.compile(r'\(DESIGN\s+"([^"]*)"\)')
_VOLTAGE_RE = re.compile(r"\(VOLTAGE\s+([-\d.eE]+):")
_TEMPERATURE_RE = re.compile(r"\(TEMPERATURE\s+([-\d.eE]+):")
_INSTANCE_RE = re.compile(r"\(INSTANCE\s+(\S+?)\)")
_IOPATH_RE = re.compile(
    r"\(IOPATH\s+\S+\s+\S+\s+\(([-\d.eE]+):([-\d.eE]+):([-\d.eE]+)\)\)")


def read_sdf(path: Union[str, Path]) -> SDFFile:
    """Parse an SDF file emitted by :func:`write_sdf`.

    Tolerates arbitrary whitespace; raises ``ValueError`` on files
    missing the header fields or containing IOPATHs before INSTANCEs.
    """
    text = Path(path).read_text()
    design_m = _DESIGN_RE.search(text)
    voltage_m = _VOLTAGE_RE.search(text)
    temperature_m = _TEMPERATURE_RE.search(text)
    if not (design_m and voltage_m and temperature_m):
        raise ValueError(f"{path}: not a recognized SDF file (missing header)")

    delays: Dict[str, float] = {}
    current: Optional[str] = None
    for token_m in re.finditer(
            r"\(INSTANCE\s+\S+?\)|\(IOPATH[^)]*\([^)]*\)\)", text):
        token = token_m.group(0)
        inst_m = _INSTANCE_RE.match(token)
        if inst_m:
            current = inst_m.group(1)
            continue
        io_m = _IOPATH_RE.match(token)
        if io_m:
            if current is None:
                raise ValueError(f"{path}: IOPATH before any INSTANCE")
            delays[current] = float(io_m.group(2))  # typ value
    return SDFFile(
        design=design_m.group(1),
        voltage=float(voltage_m.group(1)),
        temperature=float(temperature_m.group(1)),
        delays=delays,
    )
