"""NLDM-lite standard-cell timing library.

Each gate type gets an intrinsic delay plus a linear load term per
fanout pin — a one-segment non-linear-delay-model (NLDM) table.  The
absolute numbers approximate a generic 45 nm library in picoseconds;
the paper's conclusions depend only on relative path delays, which this
preserves (XOR-rich full-adder chains dominate, as in any real adder).

A :class:`CellLibrary` turns a netlist plus an operating condition into
the per-gate delay vector consumed by STA, SDF emission, and both
simulators.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from ..circuits.netlist import GateType, Netlist
from .corners import OperatingCondition
from .scaling import DEFAULT_SCALING, ScalingParameters


@dataclass(frozen=True)
class CellTiming:
    """Timing of one library cell.

    ``delay = intrinsic + load * fanout`` picoseconds at the nominal
    corner.  ``vth_offset`` models the cell's transistor stacking: taller
    stacks see a higher effective threshold, so such cells derate *more*
    at low voltage.  This per-cell sensitivity is what makes corner
    scaling non-uniform across paths (as with real CCS libraries) — the
    identity of the longest sensitized path can change with ``(V, T)``.
    """

    intrinsic: float
    load: float
    vth_offset: float = 0.0

    def delay(self, fanout: int) -> float:
        return self.intrinsic + self.load * max(1, fanout)


#: Nominal-corner cell timings (ps), loosely calibrated to 45 nm drive-1
#: cells: inverting gates fastest, XOR/XNOR (two stacked stages) and the
#: transmission-gate MUX slowest.  Stacked cells carry a Vth offset.
DEFAULT_CELL_TIMINGS: Dict[GateType, CellTiming] = {
    GateType.CONST0: CellTiming(0.0, 0.0),
    GateType.CONST1: CellTiming(0.0, 0.0),
    GateType.BUF: CellTiming(14.0, 3.0, 0.000),
    GateType.NOT: CellTiming(8.0, 2.5, -0.010),
    GateType.NAND2: CellTiming(12.0, 3.0, 0.010),
    GateType.NOR2: CellTiming(14.0, 3.5, 0.020),
    GateType.AND2: CellTiming(18.0, 3.0, 0.010),
    GateType.OR2: CellTiming(20.0, 3.5, 0.020),
    GateType.XOR2: CellTiming(28.0, 4.0, 0.030),
    GateType.XNOR2: CellTiming(28.0, 4.0, 0.030),
    GateType.MUX2: CellTiming(26.0, 4.0, 0.025),
}


@dataclass
class CellLibrary:
    """A set of cell timings plus a V/T scaling model.

    Parameters
    ----------
    timings:
        Per-gate-type nominal timing; defaults to the 45 nm-like table.
    scaling:
        Alpha-power V/T model used to derate every cell uniformly (the
        single-PVT-derate approximation standard cell libraries use for
        scalar corners).
    """

    timings: Dict[GateType, CellTiming] = field(
        default_factory=lambda: dict(DEFAULT_CELL_TIMINGS))
    scaling: ScalingParameters = DEFAULT_SCALING

    def cell_delay(self, gtype: GateType, fanout: int,
                   condition: Optional[OperatingCondition] = None) -> float:
        """Delay of one cell instance in ps at the given condition."""
        timing = self.timings.get(gtype)
        if timing is None:
            raise KeyError(f"no timing for cell type {gtype}")
        nominal = timing.delay(fanout)
        if condition is None:
            return nominal
        return nominal * self.scaling.delay_scale(
            condition.voltage, condition.temperature, timing.vth_offset)

    def type_scales(self, condition: Optional[OperatingCondition]
                    ) -> Dict[GateType, float]:
        """Per-cell-class V/T derating factors at a condition."""
        if condition is None:
            return {gtype: 1.0 for gtype in self.timings}
        return {
            gtype: self.scaling.delay_scale(
                condition.voltage, condition.temperature, timing.vth_offset)
            for gtype, timing in self.timings.items()
        }

    def gate_delays(self, netlist: Netlist,
                    condition: Optional[OperatingCondition] = None
                    ) -> np.ndarray:
        """Per-gate delay vector (ps), aligned with ``netlist.gates``.

        This is the substitute for reading an SDF file produced by
        corner STA: one scalar delay per gate instance at ``condition``.
        """
        fanout = netlist.fanout_counts()
        scales = self.type_scales(condition)
        delays = np.empty(len(netlist.gates), dtype=np.float64)
        for idx, gate in enumerate(netlist.gates):
            timing = self.timings.get(gate.gtype)
            if timing is None:
                raise KeyError(f"no timing for cell type {gate.gtype}")
            delays[idx] = timing.delay(fanout[gate.output]) * scales[gate.gtype]
        return delays

    def delay_matrix(self, netlist: Netlist, conditions) -> np.ndarray:
        """Per-corner, per-gate delay matrix ``(n_conditions, n_gates)``.

        The multi-corner input the vectorized DTA simulator consumes.
        """
        return np.stack([self.gate_delays(netlist, c) for c in conditions])


DEFAULT_LIBRARY = CellLibrary()
