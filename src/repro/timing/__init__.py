"""Timing substrate: cell library, V/T scaling, corners, STA, SDF."""

from .cells import DEFAULT_CELL_TIMINGS, DEFAULT_LIBRARY, CellLibrary, CellTiming
from .corners import (
    CLOCK_SPEEDUPS,
    OperatingCondition,
    fig3_corner_subset,
    nominal_condition,
    paper_corner_grid,
    sped_up_clock,
    temperature_points,
    voltage_points,
)
from .scaling import DEFAULT_SCALING, ScalingParameters, delay_scale
from .sdf import SDFFile, read_sdf, write_sdf
from .sta import STAResult, run_sta, static_delay

__all__ = [
    "CLOCK_SPEEDUPS",
    "CellLibrary",
    "CellTiming",
    "DEFAULT_CELL_TIMINGS",
    "DEFAULT_LIBRARY",
    "DEFAULT_SCALING",
    "OperatingCondition",
    "STAResult",
    "ScalingParameters",
    "SDFFile",
    "delay_scale",
    "fig3_corner_subset",
    "nominal_condition",
    "paper_corner_grid",
    "read_sdf",
    "run_sta",
    "sped_up_clock",
    "static_delay",
    "temperature_points",
    "voltage_points",
    "write_sdf",
]
