"""Application layer: images, filters, profiling, injection, quality."""

from .filters import FUHooks, gaussian_filter, run_filter, sobel_filter
from .images import image_corpus, split_corpus, synthetic_image
from .inject import InjectingHooks, quality_for_ters, run_filter_with_errors
from .profiling import (
    app_stream,
    characterize_app_streams,
    profile_filter,
    profile_filter_float,
)
from .quality import (
    ACCEPTABLE_PSNR_DB,
    estimation_accuracy,
    is_acceptable,
    psnr,
)

__all__ = [
    "ACCEPTABLE_PSNR_DB",
    "FUHooks",
    "InjectingHooks",
    "app_stream",
    "characterize_app_streams",
    "estimation_accuracy",
    "gaussian_filter",
    "image_corpus",
    "is_acceptable",
    "profile_filter",
    "profile_filter_float",
    "psnr",
    "quality_for_ters",
    "run_filter",
    "run_filter_with_errors",
    "sobel_filter",
    "split_corpus",
    "synthetic_image",
]
