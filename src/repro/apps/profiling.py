"""Application operand profiling (the Multi2Sim role).

Runs a filter over an image corpus with recording hooks, producing the
per-FU :class:`~repro.workloads.streams.OperandStream` the paper feeds
into DTA: the exact sequence of operand pairs each FU executes, in
program order.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from ..workloads.streams import OperandStream
from .filters import MASK32, FUHooks, run_filter


class RecordingHooks(FUHooks):
    """Exact execution + operand capture for both FUs."""

    def __init__(self) -> None:
        self.mul_ops: List[tuple] = []
        self.add_ops: List[tuple] = []

    def mul(self, a: int, b: int) -> int:
        self.mul_ops.append((a & MASK32, b & MASK32))
        return super().mul(a, b)

    def add(self, a: int, b: int) -> int:
        self.add_ops.append((a & MASK32, b & MASK32))
        return super().add(a, b)


def profile_filter(filter_name: str, images: Sequence[np.ndarray],
                   max_cycles: int = 0) -> Dict[str, OperandStream]:
    """Profile a filter over a corpus.

    Returns ``{"int_mul": stream, "int_add": stream}`` — the operand
    pairs each FU consumed, in execution order.  ``max_cycles``
    optionally truncates the streams (0 = keep everything).
    """
    hooks = RecordingHooks()
    for image in images:
        run_filter(filter_name, image, hooks)
    if len(hooks.mul_ops) < 2 or len(hooks.add_ops) < 2:
        raise ValueError("corpus too small: not enough profiled operations")

    streams = {}
    for fu_name, ops in (("int_mul", hooks.mul_ops),
                         ("int_add", hooks.add_ops)):
        if max_cycles:
            ops = ops[:max_cycles + 1]
        a = np.array([p[0] for p in ops], dtype=np.uint64)
        b = np.array([p[1] for p in ops], dtype=np.uint64)
        streams[fu_name] = OperandStream(f"{filter_name}_{fu_name}", a, b)
    return streams


def profile_filter_float(filter_name: str, images: Sequence[np.ndarray],
                         max_cycles: int = 0) -> Dict[str, OperandStream]:
    """FP-pipeline variant: profile the same kernels on normalized
    float32 pixels, yielding streams for the FP adder and multiplier.

    (The paper's OpenCL kernels run on a GPU whose ALUs include FPUs;
    this provides application workloads for FP_ADD / FP_MUL.)
    """
    from ..circuits.refmodels import float_to_bits

    mul_ops: List[tuple] = []
    add_ops: List[tuple] = []
    for image in images:
        img = np.asarray(image, dtype=np.float32) / np.float32(255.0)
        h, w = img.shape
        from .filters import GAUSS_KERNEL, SOBEL_GX
        kernels = ([SOBEL_GX, tuple(zip(*SOBEL_GX))]
                   if filter_name == "sobel" else [GAUSS_KERNEL])
        for kernel in kernels:
            for y in range(1, h - 1):
                for x in range(1, w - 1):
                    acc = np.float32(0.0)
                    for ky in range(3):
                        for kx in range(3):
                            coeff = np.float32(kernel[ky][kx])
                            if coeff == 0:
                                continue
                            pix = img[y + ky - 1, x + kx - 1]
                            mul_ops.append((float_to_bits(float(coeff)),
                                            float_to_bits(float(pix))))
                            prod = coeff * pix
                            add_ops.append((float_to_bits(float(acc)),
                                            float_to_bits(float(prod))))
                            acc = acc + prod
    streams = {}
    for fu_name, ops in (("fp_mul", mul_ops), ("fp_add", add_ops)):
        if max_cycles:
            ops = ops[:max_cycles + 1]
        a = np.array([p[0] for p in ops], dtype=np.uint64)
        b = np.array([p[1] for p in ops], dtype=np.uint64)
        streams[fu_name] = OperandStream(f"{filter_name}_{fu_name}", a, b)
    return streams


def app_stream(fu_name: str, filter_name: str,
               images: Sequence[np.ndarray],
               max_cycles: int = 0) -> OperandStream:
    """Profiled stream for one (FU, filter) pair."""
    if fu_name.startswith("fp"):
        return profile_filter_float(filter_name, images, max_cycles)[fu_name]
    return profile_filter(filter_name, images, max_cycles)[fu_name]


def characterize_app_streams(filter_name: str,
                             images: Sequence[np.ndarray],
                             conditions,
                             fu_names: Sequence[str] = ("int_mul",
                                                        "int_add"),
                             max_cycles: int = 0,
                             runner=None) -> Dict[str, "object"]:
    """Profile a filter and characterize every FU stream in one batch.

    The profiling hooks produce one operand stream per FU; those
    streams become one :class:`~repro.flow.campaign.CampaignJob` each
    and run through a shared
    :class:`~repro.flow.campaign.CampaignRunner` (so a multi-worker
    runner characterizes the FUs concurrently).  Returns ``{fu_name:
    DelayTrace}``.
    """
    from ..circuits.functional_units import build_functional_unit
    from ..flow.campaign import CampaignJob, CampaignRunner

    if runner is None:
        runner = CampaignRunner()
    conditions = list(conditions)
    jobs = []
    for fu_name in fu_names:
        fu = build_functional_unit(fu_name)
        stream = app_stream(fu_name, filter_name, images, max_cycles)
        jobs.append(CampaignJob(fu, stream, conditions))
    traces = runner.run(jobs)
    return dict(zip(fu_names, traces))
