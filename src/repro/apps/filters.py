"""Convolution-kernel image filters with an instrumentable MAC executor.

The paper profiles the AMD APP SDK Sobel and Gaussian OpenCL kernels on
Multi2Sim to (a) capture the operand stream each FU sees and (b) inject
timing errors back into the computation.  Our substitute is a small
multiply-accumulate executor: every multiply and every accumulate add
is routed through an ``FUHooks`` object, so the same kernel code serves
exact execution, operand profiling, and error injection.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

import numpy as np

MASK32 = 0xFFFFFFFF

#: Sobel horizontal gradient kernel (vertical is its transpose).
SOBEL_GX = ((-1, 0, 1),
            (-2, 0, 2),
            (-1, 0, 1))

#: 3x3 binomial Gaussian kernel, normalized by 16 after accumulation.
GAUSS_KERNEL = ((1, 2, 1),
                (2, 4, 2),
                (1, 2, 1))


class FUHooks:
    """Hook points for the two integer FUs a MAC kernel exercises.

    The default implementation is exact 32-bit two's-complement
    arithmetic; subclasses observe operands (profiling) or corrupt
    results (error injection).
    """

    def mul(self, a: int, b: int) -> int:
        return (a * b) & MASK32

    def add(self, a: int, b: int) -> int:
        return (a + b) & MASK32


def _to_signed(word: int) -> int:
    word &= MASK32
    return word - (1 << 32) if word & 0x80000000 else word


def _convolve3x3(image: np.ndarray, kernel, hooks: FUHooks) -> np.ndarray:
    """3x3 convolution through the FU hooks; returns int32 signed sums.

    Border pixels are skipped (output framed with zeros), like the SDK
    kernels.
    """
    h, w = image.shape
    out = np.zeros((h, w), dtype=np.int64)
    img = image.astype(np.int64)
    for y in range(1, h - 1):
        for x in range(1, w - 1):
            acc = 0
            for ky in range(3):
                for kx in range(3):
                    coeff = kernel[ky][kx]
                    if coeff == 0:
                        continue
                    pixel = int(img[y + ky - 1, x + kx - 1])
                    product = hooks.mul(coeff & MASK32, pixel)
                    acc = hooks.add(acc, product)
            out[y, x] = _to_signed(acc)
    return out


def sobel_filter(image: np.ndarray,
                 hooks: Optional[FUHooks] = None) -> np.ndarray:
    """Sobel edge magnitude: ``clip(|Gx| + |Gy|, 0, 255)`` as uint8."""
    hooks = hooks or FUHooks()
    image = np.asarray(image, dtype=np.uint8)
    gx = _convolve3x3(image, SOBEL_GX, hooks)
    gy = _convolve3x3(image, tuple(zip(*SOBEL_GX)), hooks)
    mag = np.abs(gx) + np.abs(gy)
    return np.clip(mag, 0, 255).astype(np.uint8)


def gaussian_filter(image: np.ndarray,
                    hooks: Optional[FUHooks] = None) -> np.ndarray:
    """3x3 Gaussian blur (binomial kernel / 16) as uint8."""
    hooks = hooks or FUHooks()
    image = np.asarray(image, dtype=np.uint8)
    total = _convolve3x3(image, GAUSS_KERNEL, hooks)
    out = total >> 4  # divide by 16
    inner = np.clip(out, 0, 255).astype(np.uint8)
    # keep the original border (blur undefined there)
    result = image.copy()
    result[1:-1, 1:-1] = inner[1:-1, 1:-1]
    return result


FILTERS = {
    "sobel": sobel_filter,
    "gauss": gaussian_filter,
}


def run_filter(name: str, image: np.ndarray,
               hooks: Optional[FUHooks] = None) -> np.ndarray:
    if name not in FILTERS:
        raise ValueError(f"unknown filter {name!r}; choose from {sorted(FILTERS)}")
    return FILTERS[name](image, hooks)
