"""Synthetic structured image corpus.

Substitute for the Caltech-101 butterfly images: procedural grayscale
images with the properties that matter for TEVoT — spatial correlation
and low per-pixel entropy, so consecutive filter operands are similar
and sensitize much shorter paths than random data (the Fig. 3 effect).
Each image blends smooth gradients, elliptical blobs ("wings"), and
band textures.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np


def synthetic_image(size: int = 24, seed: Optional[int] = None) -> np.ndarray:
    """One structured grayscale image, uint8 of shape ``(size, size)``."""
    if size < 4:
        raise ValueError("image size must be at least 4")
    rng = np.random.default_rng(seed)
    yy, xx = np.mgrid[0:size, 0:size].astype(np.float64) / size

    # smooth background gradient
    gx, gy = rng.uniform(-1, 1, 2)
    img = 0.5 + 0.3 * (gx * xx + gy * yy)

    # elliptical blobs (the "butterfly wings")
    for _ in range(rng.integers(2, 5)):
        cx, cy = rng.uniform(0.2, 0.8, 2)
        ax, ay = rng.uniform(0.05, 0.3, 2)
        brightness = rng.uniform(-0.6, 0.6)
        blob = np.exp(-(((xx - cx) / ax) ** 2 + ((yy - cy) / ay) ** 2))
        img += brightness * blob

    # band texture (antennae / stripes)
    freq = rng.uniform(2, 8)
    phase = rng.uniform(0, 2 * np.pi)
    angle = rng.uniform(0, np.pi)
    direction = xx * np.cos(angle) + yy * np.sin(angle)
    img += 0.1 * np.sin(2 * np.pi * freq * direction + phase)

    img = np.clip(img, 0.0, 1.0)
    return (img * 255).astype(np.uint8)


def image_corpus(n_images: int = 8, size: int = 24,
                 seed: int = 0) -> List[np.ndarray]:
    """A reproducible corpus of structured images."""
    if n_images < 1:
        raise ValueError("need at least one image")
    return [synthetic_image(size, seed * 1000 + k) for k in range(n_images)]


def split_corpus(corpus: List[np.ndarray], train_fraction: float = 0.05,
                 seed: int = 0):
    """Paper's split: ~5 % of images for training, the rest for test.

    Always puts at least one image in each side.
    """
    if not 0.0 < train_fraction < 1.0:
        raise ValueError("train_fraction must be in (0, 1)")
    if len(corpus) < 2:
        raise ValueError("need at least two images to split")
    rng = np.random.default_rng(seed)
    order = rng.permutation(len(corpus))
    n_train = max(1, int(round(train_fraction * len(corpus))))
    n_train = min(n_train, len(corpus) - 1)
    train_idx = set(order[:n_train].tolist())
    train = [corpus[i] for i in sorted(train_idx)]
    test = [corpus[i] for i in range(len(corpus)) if i not in train_idx]
    return train, test
