"""Timing-error injection into application kernels (Sec. V-D).

The paper derives per-FU timing error rates (TERs) from each model,
then uses Multi2Sim to re-run the application with the FUs returning a
*random value* whenever an operation suffers a timing error at that
rate.  :class:`InjectingHooks` reproduces that exactly on our MAC
executor, and :func:`quality_for_ters` turns a TER assignment into an
output PSNR / acceptability verdict.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from .filters import MASK32, FUHooks, run_filter
from .quality import is_acceptable, psnr


class InjectingHooks(FUHooks):
    """FU hooks that corrupt results at given per-FU error rates.

    ``ters`` maps ``"int_mul"`` / ``"int_add"`` to per-operation timing
    error probabilities; an erroneous operation returns a uniformly
    random 32-bit word (the paper's injection policy, following [12]).
    """

    def __init__(self, ters: Dict[str, float],
                 seed: Optional[int] = 0) -> None:
        for name, p in ters.items():
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"TER for {name} must be in [0,1], got {p}")
        self.ters = dict(ters)
        self._rng = np.random.default_rng(seed)
        self.injected = {"int_mul": 0, "int_add": 0}
        self.executed = {"int_mul": 0, "int_add": 0}

    def _maybe_corrupt(self, fu_name: str, exact: int) -> int:
        self.executed[fu_name] += 1
        p = self.ters.get(fu_name, 0.0)
        if p > 0.0 and self._rng.random() < p:
            self.injected[fu_name] += 1
            return int(self._rng.integers(0, 1 << 32))
        return exact

    def mul(self, a: int, b: int) -> int:
        return self._maybe_corrupt("int_mul", super().mul(a, b))

    def add(self, a: int, b: int) -> int:
        return self._maybe_corrupt("int_add", super().add(a, b))


def run_filter_with_errors(filter_name: str, image: np.ndarray,
                           ters: Dict[str, float],
                           seed: Optional[int] = 0) -> np.ndarray:
    """One error-injected filter execution."""
    hooks = InjectingHooks(ters, seed)
    return run_filter(filter_name, image, hooks)


def quality_for_ters(filter_name: str, images: Sequence[np.ndarray],
                     ters: Dict[str, float],
                     seed: Optional[int] = 0) -> Dict[str, float]:
    """Run a corpus with injection; return mean PSNR and acceptability.

    Returns ``{"psnr": mean PSNR dB, "acceptable": 0/1}`` where the
    acceptability is judged on the mean PSNR across images (one verdict
    per operating point, as in Table IV).
    """
    if not len(images):
        raise ValueError("need at least one image")
    psnrs = []
    for k, image in enumerate(images):
        clean = run_filter(filter_name, image)
        noisy = run_filter_with_errors(filter_name, image, ters,
                                       seed=None if seed is None
                                       else seed + k)
        value = psnr(clean, noisy)
        psnrs.append(min(value, 99.0))  # cap inf for averaging
    mean_psnr = float(np.mean(psnrs))
    return {"psnr": mean_psnr,
            "acceptable": 1.0 if is_acceptable(mean_psnr) else 0.0}
