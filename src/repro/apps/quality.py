"""Output-quality metrics: PSNR and the paper's acceptability threshold."""

from __future__ import annotations

import numpy as np

#: PSNR threshold (dB) separating acceptable from unacceptable outputs
#: (Sec. V-D).
ACCEPTABLE_PSNR_DB = 30.0


def psnr(reference: np.ndarray, test: np.ndarray,
         peak: float = 255.0) -> float:
    """Peak signal-to-noise ratio in dB; ``inf`` for identical images."""
    reference = np.asarray(reference, dtype=np.float64)
    test = np.asarray(test, dtype=np.float64)
    if reference.shape != test.shape:
        raise ValueError(
            f"shape mismatch: {reference.shape} vs {test.shape}")
    mse = float(np.mean((reference - test) ** 2))
    if mse == 0.0:
        return float("inf")
    return 10.0 * np.log10(peak * peak / mse)


def is_acceptable(psnr_db: float,
                  threshold: float = ACCEPTABLE_PSNR_DB) -> bool:
    """The paper's binary quality class: acceptable iff PSNR >= 30 dB."""
    return psnr_db >= threshold


def estimation_accuracy(true_acceptable, predicted_acceptable) -> float:
    """Eq. 5: matched acceptability estimations / total estimations."""
    true_acceptable = np.asarray(true_acceptable, dtype=bool)
    predicted_acceptable = np.asarray(predicted_acceptable, dtype=bool)
    if true_acceptable.shape != predicted_acceptable.shape:
        raise ValueError("shape mismatch")
    if true_acceptable.size == 0:
        raise ValueError("no estimations to compare")
    return float((true_acceptable == predicted_acceptable).mean())
